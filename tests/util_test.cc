// Unit tests for the util layer: hex/bytes, RNG statistics, Welford stats,
// Hoeffding helpers, time series, table formatting, and the bounds-checked
// wire codec (including a decode fuzz loop: arbitrary bytes must never
// crash or over-read).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/bytes.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timeseries.h"
#include "util/wire.h"

namespace paai {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(to_hex(ByteView(data.data(), data.size())), "0001abcdefff");
  EXPECT_EQ(from_hex("0001abcdefff"), data);
  EXPECT_EQ(from_hex("0001ABCDEFFF"), data);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, ConcatAndCtEqual) {
  const Bytes a = bytes_of("foo");
  const Bytes b = bytes_of("bar");
  const Bytes joined = concat({ByteView(a.data(), a.size()),
                               ByteView(b.data(), b.size())});
  EXPECT_EQ(joined, bytes_of("foobar"));
  EXPECT_TRUE(ct_equal(ByteView(a.data(), a.size()), ByteView(a.data(), a.size())));
  EXPECT_FALSE(ct_equal(ByteView(a.data(), a.size()), ByteView(b.data(), b.size())));
  EXPECT_FALSE(ct_equal(ByteView(a.data(), 2), ByteView(a.data(), 3)));
}

TEST(Rng, UniformMoments) {
  Rng rng(12345);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, BernoulliRate) {
  Rng rng(99);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.01) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.01, 0.002);
  EXPECT_FALSE(Rng(1).bernoulli(0.0));
  EXPECT_TRUE(Rng(1).bernoulli(1.0));
}

TEST(Rng, NextBelowIsUnbiased) {
  Rng rng(7);
  std::vector<std::uint64_t> hist(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++hist[rng.next_below(7)];
  EXPECT_LT(chi_square_uniform(hist), 22.5);  // 6 dof, ~99.9%
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(42);
  Rng b = a.fork(1);
  Rng c = a.fork(2);
  int equal_bc = 0;
  for (int i = 0; i < 64; ++i) {
    if (b.next_u64() == c.next_u64()) ++equal_bc;
  }
  EXPECT_EQ(equal_bc, 0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, HoeffdingInverseConsistency) {
  const double eps = 0.01, sigma = 0.03;
  const double n = hoeffding_samples(eps, sigma);
  EXPECT_NEAR(hoeffding_failure(n, eps), sigma, 1e-9);
}

TEST(Stats, Quantiles) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Stats, WilsonHalfwidthShrinks) {
  EXPECT_GT(wilson_halfwidth(0.5, 10), wilson_halfwidth(0.5, 1000));
  EXPECT_EQ(wilson_halfwidth(0.5, 0), 1.0);
}

TEST(TimeSeries, StepInterpolation) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(2.0, 20.0);
  ts.add(5.0, 50.0);
  EXPECT_DOUBLE_EQ(ts.at(0.5, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(1.5), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(2.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.at(4.999), 20.0);
  EXPECT_DOUBLE_EQ(ts.at(100.0), 50.0);
}

TEST(SeriesGrid, AccumulatesRuns) {
  SeriesGrid grid(10.0, 5);  // x = 2,4,6,8,10
  TimeSeries a, b;
  a.add(0.0, 1.0);
  b.add(0.0, 3.0);
  grid.accumulate(a);
  grid.accumulate(b);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid.stat(i).mean(), 2.0);
    EXPECT_EQ(grid.stat(i).count(), 2u);
  }
}

TEST(SeriesGrid, LogspaceCoversRange) {
  const SeriesGrid g = SeriesGrid::logspace(10.0, 1000.0, 3);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_NEAR(g.x(0), 10.0, 1e-9);
  EXPECT_NEAR(g.x(1), 100.0, 1e-6);
  EXPECT_NEAR(g.x(2), 1000.0, 1e-6);
}

TEST(Table, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.row().cell("alpha").num(0.03, 3);
  t.row().cell("d").integer(6);
  std::ostringstream aligned, csv;
  t.print(aligned);
  t.print_csv(csv);
  EXPECT_NE(aligned.str().find("alpha"), std::string::npos);
  EXPECT_EQ(csv.str(), "name,value\nalpha,0.03\nd,6\n");
}

TEST(Table, CsvQuotesCommasQuotesAndNewlines) {
  Table t({"metric", "note"});
  t.row().cell("queue_wait,mean").cell("plain");
  t.row().cell("say \"hi\"").cell("line1\nline2");
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(),
            "metric,note\n"
            "\"queue_wait,mean\",plain\n"
            "\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(Flags, ParsesFlagsAndEnv) {
  const char* argv_c[] = {"prog", "--csv", "--runs=25"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_TRUE(has_flag(3, argv, "--csv"));
  EXPECT_FALSE(has_flag(3, argv, "--json"));
  EXPECT_EQ(flag_or_env(3, argv, "--runs", nullptr, 7), 25);
  EXPECT_EQ(flag_or_env(3, argv, "--packets", nullptr, 7), 7);
}

TEST(Flags, ParseLlAcceptsBase10Integers) {
  EXPECT_EQ(parse_ll("0"), 0);
  EXPECT_EQ(parse_ll("42"), 42);
  EXPECT_EQ(parse_ll("-17"), -17);
  EXPECT_EQ(parse_ll("9223372036854775807"),
            std::numeric_limits<long long>::max());
  EXPECT_EQ(parse_ll("-9223372036854775808"),
            std::numeric_limits<long long>::min());
}

TEST(Flags, ParseLlRejectsGarbage) {
  EXPECT_FALSE(parse_ll("").has_value());
  EXPECT_FALSE(parse_ll("-").has_value());
  EXPECT_FALSE(parse_ll("all").has_value());
  EXPECT_FALSE(parse_ll("12x").has_value());
  EXPECT_FALSE(parse_ll("x12").has_value());
  EXPECT_FALSE(parse_ll(" 12").has_value());
  EXPECT_FALSE(parse_ll("1.5").has_value());
  EXPECT_FALSE(parse_ll("+5").has_value());
  EXPECT_FALSE(parse_ll("0x10").has_value());
  EXPECT_FALSE(parse_ll("9223372036854775808").has_value());   // max+1
  EXPECT_FALSE(parse_ll("-9223372036854775809").has_value());  // min-1
}

TEST(FlagsDeathTest, InvalidFlagValueExitsWithError) {
  const char* argv_c[] = {"prog", "--runs=many"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EXIT(flag_or_env(2, argv, "--runs", nullptr, 7),
              testing::ExitedWithCode(2), "invalid integer for flag --runs");
}

TEST(FlagsDeathTest, InvalidEnvValueExitsWithError) {
  // PAAI_JOBS=all must be a hard error, not a silent fall-back to the
  // default (the bug this guards against).
  const char* argv_c[] = {"prog"};
  char** argv = const_cast<char**>(argv_c);
  setenv("PAAI_TEST_BADENV", "all", 1);
  EXPECT_EXIT(flag_or_env(1, argv, "--jobs", "PAAI_TEST_BADENV", 0),
              testing::ExitedWithCode(2),
              "invalid integer for environment variable PAAI_TEST_BADENV");
  unsetenv("PAAI_TEST_BADENV");
}

TEST(Flags, ValidEnvValueIsUsed) {
  const char* argv_c[] = {"prog"};
  char** argv = const_cast<char**>(argv_c);
  setenv("PAAI_TEST_GOODENV", "12", 1);
  EXPECT_EQ(flag_or_env(1, argv, "--jobs", "PAAI_TEST_GOODENV", 0), 12);
  unsetenv("PAAI_TEST_GOODENV");
}

TEST(Flags, FlagStrParsesBothForms) {
  const char* argv_c[] = {"prog", "--metrics-out=a.json", "--trace-out",
                          "b.json"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EQ(flag_str(4, argv, "--metrics-out").value(), "a.json");
  EXPECT_EQ(flag_str(4, argv, "--trace-out").value(), "b.json");
  EXPECT_FALSE(flag_str(4, argv, "--absent").has_value());
}

TEST(FlagsDeathTest, FlagStrMissingValueExitsWithError) {
  const char* argv_c[] = {"prog", "--metrics-out"};
  char** argv = const_cast<char**>(argv_c);
  EXPECT_EXIT(flag_str(2, argv, "--metrics-out"),
              testing::ExitedWithCode(2), "requires a value");
}

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  const Bytes payload = bytes_of("hello");
  w.var_bytes(ByteView(payload.data(), payload.size()));

  WireReader r(ByteView(w.data().data(), w.data().size()));
  std::uint8_t a;
  std::uint16_t b;
  std::uint32_t c;
  std::uint64_t d;
  Bytes e;
  ASSERT_TRUE(r.u8(a));
  ASSERT_TRUE(r.u16(b));
  ASSERT_TRUE(r.u32(c));
  ASSERT_TRUE(r.u64(d));
  ASSERT_TRUE(r.var_bytes(e));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0x1234);
  EXPECT_EQ(c, 0xdeadbeefu);
  EXPECT_EQ(d, 0x0102030405060708ULL);
  EXPECT_EQ(e, payload);
}

TEST(Wire, BigEndianOnTheWire) {
  WireWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(to_hex(ByteView(w.data().data(), w.data().size())), "01020304");
}

TEST(Wire, TruncatedReadsFailCleanly) {
  WireWriter w;
  w.u32(7);
  WireReader r(ByteView(w.data().data(), 3));  // one byte short
  std::uint32_t v;
  EXPECT_FALSE(r.u32(v));
  // A failed read consumes nothing further.
  std::uint16_t h;
  EXPECT_TRUE(r.u16(h));
}

TEST(Wire, VarBytesLengthPrefixBounds) {
  // A length prefix that exceeds the remaining buffer must fail.
  Bytes evil = {0xff, 0xff, 0x01};
  WireReader r(ByteView(evil.data(), evil.size()));
  Bytes out;
  EXPECT_FALSE(r.var_bytes(out));
}

TEST(Wire, DecodeFuzzNeverCrashes) {
  Rng rng(2024);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.next_below(64);
    Bytes junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    WireReader r(ByteView(junk.data(), junk.size()));
    std::uint8_t a;
    Bytes v;
    std::uint64_t q;
    // Exercise all getters; only invariant: no crash, no over-read.
    (void)r.u8(a);
    (void)r.var_bytes(v);
    (void)r.u64(q);
    (void)r.skip(3);
    EXPECT_LE(v.size(), len);
  }
}

}  // namespace
}  // namespace paai
