// Onion-report property tests: for every path length and every break
// position, verification pinpoints exactly the first dishonest hop —
// truncation, tampering, layer substitution, and reordering all stop the
// valid prefix at the right place. These properties are what make the
// full-ack / PAAI-1 blame assignment secure (§4).
#include <gtest/gtest.h>

#include <tuple>

#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "net/onion.h"
#include "net/packet.h"
#include "util/wire.h"

namespace paai::net {
namespace {

using crypto::Key;
using crypto::KeyStore;

struct Fixture {
  std::unique_ptr<crypto::CryptoProvider> crypto = crypto::make_real_crypto();
  std::size_t d;
  KeyStore keys;
  std::vector<Key> key_vec;

  explicit Fixture(std::size_t path_len)
      : d(path_len), keys(crypto::test_master_key(7), path_len),
        key_vec(path_len + 1) {
    for (std::size_t i = 1; i <= d; ++i) key_vec[i] = keys.node_key(i);
  }

  Bytes report_for(std::size_t i) const {
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(i));
    w.u32(0xfeedf00d);
    return std::move(w).take();
  }

  /// Builds the onion that nodes origin..1 would produce.
  Bytes build(std::size_t origin) const {
    Bytes r = report_for(origin);
    Bytes onion = onion_originate(*crypto, key_vec[origin],
                                  static_cast<std::uint8_t>(origin),
                                  ByteView(r.data(), r.size()));
    for (std::size_t i = origin; i-- > 1;) {
      const Bytes ri = report_for(i);
      onion = onion_wrap(*crypto, key_vec[i], static_cast<std::uint8_t>(i),
                         ByteView(ri.data(), ri.size()),
                         ByteView(onion.data(), onion.size()));
    }
    return onion;
  }

  OnionVerifyResult verify(ByteView onion) const {
    return onion_verify(*crypto, key_vec, d, onion,
                        [this](std::uint8_t i, ByteView r) {
                          return r.size() == 5 && r[0] == i;
                        });
  }
};

class OnionOrigin : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OnionOrigin, ValidOnionReportsOrigin) {
  const auto [d, origin] = GetParam();
  if (origin > d) GTEST_SKIP();
  Fixture f(static_cast<std::size_t>(d));
  const Bytes onion = f.build(static_cast<std::size_t>(origin));
  const auto result = f.verify(ByteView(onion.data(), onion.size()));
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.valid_layers, static_cast<std::size_t>(origin));
  EXPECT_EQ(result.origin, origin);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrigins, OnionOrigin,
    ::testing::Combine(::testing::Values(2, 4, 6, 10),
                       ::testing::Values(1, 2, 3, 5, 6, 9, 10)));

class OnionTamper : public ::testing::TestWithParam<int> {};

// Mid-flight tampering: the adversary at F_z alters the inner onion it
// received (from F_{z+1}..origin), then wraps its own — necessarily
// valid-looking — layer, and the honest nodes F_{z-1}..F_1 wrap over the
// altered content. Verification must stop exactly after layer z: the
// adversary can only get its *own* adjacent link blamed.
TEST_P(OnionTamper, MidFlightTamperBlamesAdversaryBoundary) {
  const std::size_t d = 6;
  const std::size_t z = static_cast<std::size_t>(GetParam());
  Fixture f(d);

  // Inner onion as produced by nodes origin..z+1.
  Bytes inner = f.report_for(d);
  Bytes onion = onion_originate(*f.crypto, f.key_vec[d],
                                static_cast<std::uint8_t>(d),
                                ByteView(inner.data(), inner.size()));
  for (std::size_t i = d; i-- > z + 1;) {
    const Bytes ri = f.report_for(i);
    onion = onion_wrap(*f.crypto, f.key_vec[i], static_cast<std::uint8_t>(i),
                       ByteView(ri.data(), ri.size()),
                       ByteView(onion.data(), onion.size()));
  }
  // F_z tampers with the received inner bytes...
  onion.back() ^= 0x01;
  // ...then wraps honestly-looking layers z..1 over the altered content.
  for (std::size_t i = z + 1; i-- > 1;) {
    const Bytes ri = f.report_for(i);
    onion = onion_wrap(*f.crypto, f.key_vec[i], static_cast<std::uint8_t>(i),
                       ByteView(ri.data(), ri.size()),
                       ByteView(onion.data(), onion.size()));
  }

  const auto result = f.verify(ByteView(onion.data(), onion.size()));
  EXPECT_EQ(result.valid_layers, z);  // blame lands on l_z
  EXPECT_FALSE(result.complete);
}

INSTANTIATE_TEST_SUITE_P(EveryPosition, OnionTamper,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Onion, OutsideTamperingInvalidatesEverything) {
  // Flipping a byte anywhere in a *finished* onion breaks every MAC above
  // it (each MAC covers the full inner serialization), so an off-path
  // observer or the l_0 link cannot alter deep layers while keeping an
  // honest-looking prefix it did not author.
  Fixture f(6);
  const Bytes onion = f.build(6);
  Bytes tampered = onion;
  tampered.back() ^= 0x01;  // innermost byte
  const auto result = f.verify(ByteView(tampered.data(), tampered.size()));
  EXPECT_EQ(result.valid_layers, 0u);
}

TEST(Onion, TruncationStopsAtTruncationPoint) {
  Fixture f(6);
  const Bytes onion = f.build(6);
  // Removing bytes from the end invalidates every layer (MACs cover the
  // inner serialization).
  Bytes truncated(onion.begin(), onion.end() - 3);
  const auto result = f.verify(ByteView(truncated.data(), truncated.size()));
  EXPECT_EQ(result.valid_layers, 0u);
  EXPECT_FALSE(result.complete);
}

TEST(Onion, StrippedOuterLayerFailsIndexCheck) {
  // An adversary removing F_1's layer exposes F_2's layer first; the
  // verifier expects index 1 and rejects immediately.
  Fixture f(6);
  const Bytes onion = f.build(6);
  WireReader r(ByteView(onion.data(), onion.size()));
  std::uint8_t idx;
  Bytes rep, mac;
  ASSERT_TRUE(r.u8(idx));
  ASSERT_TRUE(r.var_bytes(rep));
  ASSERT_TRUE(r.raw(crypto::kMacSize, mac));
  const std::size_t first_len = 1 + 2 + rep.size() + crypto::kMacSize;
  const Bytes stripped(onion.begin() + first_len, onion.end());
  const auto result = f.verify(ByteView(stripped.data(), stripped.size()));
  EXPECT_EQ(result.valid_layers, 0u);
}

TEST(Onion, WrongKeyFailsVerification) {
  Fixture f(4);
  const Bytes onion = f.build(4);
  Fixture other(4);
  // Same structure, different master key.
  const KeyStore other_keys(crypto::test_master_key(999), 4);
  std::vector<Key> wrong(5);
  for (std::size_t i = 1; i <= 4; ++i) wrong[i] = other_keys.node_key(i);
  const auto result = onion_verify(
      *f.crypto, wrong, 4, ByteView(onion.data(), onion.size()),
      [](std::uint8_t, ByteView) { return true; });
  EXPECT_EQ(result.valid_layers, 0u);
}

TEST(Onion, ReportContentCheckIsEnforced) {
  Fixture f(3);
  const Bytes onion = f.build(3);
  const auto result = onion_verify(
      *f.crypto, f.key_vec, 3, ByteView(onion.data(), onion.size()),
      [](std::uint8_t i, ByteView) { return i < 2; });  // reject layer 2+
  EXPECT_EQ(result.valid_layers, 1u);
}

TEST(Onion, EmptyAndGarbageInputs) {
  Fixture f(6);
  EXPECT_EQ(f.verify(ByteView{}).valid_layers, 0u);
  const Bytes junk = {0x01, 0x00};
  EXPECT_EQ(f.verify(ByteView(junk.data(), junk.size())).valid_layers, 0u);
}

TEST(Onion, LayerOverheadFormulaMatchesWire) {
  Fixture f(5);
  const Bytes r1 = f.report_for(5);
  const Bytes onion = f.build(5);
  std::size_t expected = 0;
  for (std::size_t i = 1; i <= 5; ++i) {
    expected += onion_layer_overhead(f.report_for(i).size());
  }
  EXPECT_EQ(onion.size(), expected);
}

TEST(PacketFormats, RoundTripAllTypes) {
  const auto crypto = crypto::make_real_crypto();

  DataPacket data{42, 123456789, 1000};
  const Bytes dw = data.encode();
  const auto data2 = DataPacket::decode(ByteView(dw.data(), dw.size()));
  ASSERT_TRUE(data2);
  EXPECT_EQ(data2->seq, 42u);
  EXPECT_EQ(data2->timestamp_ns, 123456789u);
  EXPECT_EQ(data2->payload_size, 1000);
  EXPECT_EQ(data.wire_size(), dw.size() + 1000);
  EXPECT_EQ(data.id(*crypto), data2->id(*crypto));

  DestAck ack;
  ack.data_id = data.id(*crypto);
  ack.tag = crypto->mac(crypto::test_master_key(1), ByteView(dw.data(), 4));
  const Bytes aw = ack.encode();
  const auto ack2 = DestAck::decode(ByteView(aw.data(), aw.size()));
  ASSERT_TRUE(ack2);
  EXPECT_EQ(ack2->data_id, ack.data_id);
  EXPECT_EQ(ack2->tag, ack.tag);

  Probe probe;
  probe.data_id = ack.data_id;
  probe.challenge = 0xfeedfacecafebeefULL;
  const Bytes pw = probe.encode();
  const auto probe2 = Probe::decode(ByteView(pw.data(), pw.size()));
  ASSERT_TRUE(probe2);
  EXPECT_EQ(probe2->challenge, probe.challenge);

  ReportAck rep;
  rep.data_id = ack.data_id;
  rep.report = bytes_of("some-onion");
  const Bytes rw = rep.encode();
  const auto rep2 = ReportAck::decode(ByteView(rw.data(), rw.size()));
  ASSERT_TRUE(rep2);
  EXPECT_EQ(rep2->report, rep.report);

  FlRequest req{77};
  const Bytes qw = req.encode();
  const auto req2 = FlRequest::decode(ByteView(qw.data(), qw.size()));
  ASSERT_TRUE(req2);
  EXPECT_EQ(req2->interval, 77u);

  FlReport flr;
  flr.interval = 78;
  flr.report = bytes_of("counters");
  const Bytes fw = flr.encode();
  const auto flr2 = FlReport::decode(ByteView(fw.data(), fw.size()));
  ASSERT_TRUE(flr2);
  EXPECT_EQ(flr2->interval, 78u);
  EXPECT_EQ(flr2->report, flr.report);
}

TEST(PacketFormats, PeekTypeAndCrossDecodeRejection) {
  DataPacket data{1, 2, 3};
  const Bytes dw = data.encode();
  EXPECT_EQ(peek_type(ByteView(dw.data(), dw.size())), PacketType::kData);
  EXPECT_FALSE(Probe::decode(ByteView(dw.data(), dw.size())));
  EXPECT_FALSE(DestAck::decode(ByteView(dw.data(), dw.size())));
  EXPECT_FALSE(peek_type(ByteView{}));
  const Bytes junk = {0x77};
  EXPECT_FALSE(peek_type(ByteView(junk.data(), junk.size())));
}

TEST(PacketFormats, IdentifierBindsAllHeaderFields) {
  const auto crypto = crypto::make_real_crypto();
  DataPacket a{1, 100, 50};
  DataPacket b = a;
  b.seq = 2;
  DataPacket c = a;
  c.timestamp_ns = 101;
  DataPacket d = a;
  d.payload_size = 51;
  EXPECT_NE(a.id(*crypto), b.id(*crypto));
  EXPECT_NE(a.id(*crypto), c.id(*crypto));
  EXPECT_NE(a.id(*crypto), d.id(*crypto));
}

}  // namespace
}  // namespace paai::net
