// Parameterized end-to-end localization sweep: every protocol must
// localize a data-dropping compromised node at every path position, and
// convict nothing on clean paths — across path lengths.
#include <gtest/gtest.h>

#include <tuple>

#include "runner/experiment.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

std::uint64_t packets_for(ProtocolKind kind) {
  // Enough traffic for a strong (0.5 data-drop) adversary to stand out.
  switch (kind) {
    case ProtocolKind::kFullAck:
      return 2500;
    case ProtocolKind::kPaai1:
      return 20000;
    case ProtocolKind::kPaai2:
      return 25000;
    case ProtocolKind::kCombination1:
      return 25000;
    case ProtocolKind::kCombination2:
      return 90000;
    case ProtocolKind::kStatisticalFl:
      return 40000;
    case ProtocolKind::kSigAck:
      return 2500;  // W-OTS is CPU-heavy; full-ack-like detection speed
  }
  return 20000;
}

ExperimentConfig sweep_config(ProtocolKind kind, std::uint64_t seed) {
  ExperimentConfig cfg = paper_config(kind, packets_for(kind), seed);
  cfg.link_faults.clear();
  // Faster sampling keeps the sweep quick while exercising the same code.
  // Statistical FL samples everything here: at its paper-setting p the
  // protocol needs ~1e7 packets to converge (that slowness is the point
  // of the comparison, and the benches show it); the localization sweep
  // only checks correctness of the machinery.
  cfg.params.probe_probability = 1.0 / 9.0;
  cfg.params.fl_sampling = 1.0;
  cfg.params.fl_interval_packets = 300;
  cfg.params.send_rate_pps = 500.0;
  return cfg;
}

std::string protocol_ident(ProtocolKind kind) {
  std::string name = protocols::protocol_name(kind);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

std::string localization_name(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, std::size_t>>&
        info) {
  return protocol_ident(std::get<0>(info.param)) + "_F" +
         std::to_string(std::get<1>(info.param));
}

std::string protocol_only_name(
    const ::testing::TestParamInfo<ProtocolKind>& info) {
  return protocol_ident(info.param);
}

class Localization
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, std::size_t>> {
};

TEST_P(Localization, DataDropperIsLocalizedToItsDownstreamLink) {
  const ProtocolKind kind = std::get<0>(GetParam());
  const std::size_t z = std::get<1>(GetParam());
  ExperimentConfig cfg = sweep_config(kind, 1000 + z);
  AdversarySpec spec;
  spec.node = z;
  spec.kind = AdversarySpec::Kind::kTypeRates;
  spec.type_rates.data = 0.5;
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  // A node dropping data while pretending honesty in the ack machinery
  // charges its downstream link l_z.
  ASSERT_FALSE(result.final_convicted.empty())
      << protocols::protocol_name(kind) << " missed the adversary at F_"
      << z;
  for (const std::size_t link : result.final_convicted) {
    EXPECT_TRUE(link == z || link + 1 == z)
        << protocols::protocol_name(kind) << " convicted non-adjacent l_"
        << link << " for adversary at F_" << z;
  }
  EXPECT_NE(std::find(result.final_convicted.begin(),
                      result.final_convicted.end(), z),
            result.final_convicted.end())
      << protocols::protocol_name(kind) << " did not convict l_" << z;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllPositions, Localization,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::kFullAck, ProtocolKind::kPaai1,
                          ProtocolKind::kPaai2, ProtocolKind::kCombination1,
                          ProtocolKind::kCombination2,
                          ProtocolKind::kStatisticalFl,
                          ProtocolKind::kSigAck),
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{4}, std::size_t{5})),
    localization_name);

class CleanPath : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(CleanPath, NaturalLossAloneConvictsNothing) {
  ExperimentConfig cfg = sweep_config(GetParam(), 77);
  const ExperimentResult result = run_experiment(cfg);
  EXPECT_TRUE(result.final_convicted.empty())
      << protocols::protocol_name(GetParam()) << " falsely convicted "
      << result.final_convicted.size() << " link(s)";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, CleanPath,
    ::testing::Values(ProtocolKind::kFullAck, ProtocolKind::kPaai1,
                      ProtocolKind::kPaai2, ProtocolKind::kCombination1,
                      ProtocolKind::kCombination2,
                      ProtocolKind::kStatisticalFl, ProtocolKind::kSigAck),
    protocol_only_name);

class PathLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PathLengths, Paai1LocalizesOnDifferentPathLengths) {
  const std::size_t d = GetParam();
  ExperimentConfig cfg = sweep_config(ProtocolKind::kPaai1, 300 + d);
  cfg.path.length = d;
  const std::size_t z = d / 2;
  AdversarySpec spec;
  spec.node = z;
  spec.kind = AdversarySpec::Kind::kTypeRates;
  spec.type_rates.data = 0.5;
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  ASSERT_FALSE(result.final_convicted.empty());
  EXPECT_EQ(result.final_convicted.front(), z);
}

INSTANTIATE_TEST_SUITE_P(Lengths, PathLengths,
                         ::testing::Values(std::size_t{2}, std::size_t{3},
                                           std::size_t{4}, std::size_t{8},
                                           std::size_t{12}));

TEST(Protocol, LooseClockSyncDoesNotCauseFalsePositives) {
  ExperimentConfig cfg = sweep_config(ProtocolKind::kPaai1, 55);
  cfg.path.max_clock_error_ms = 2.0;
  const ExperimentResult result = run_experiment(cfg);
  EXPECT_TRUE(result.final_convicted.empty());
  // Healthy delivery despite skewed clocks: freshness windows must admit
  // all honest transit times.
  EXPECT_LT(result.observed_e2e_rate, 0.2);
}

TEST(Protocol, DeterministicForSeed) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 1500, 9);
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.final_thetas, b.final_thetas);
  EXPECT_EQ(a.observations, b.observations);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(Protocol, RealAndFastCryptoAgreeOnOutcome) {
  for (const auto kind : {ProtocolKind::kFullAck, ProtocolKind::kPaai1}) {
    ExperimentConfig cfg = sweep_config(kind, 31);
    AdversarySpec spec;
    spec.node = 3;
    spec.kind = AdversarySpec::Kind::kTypeRates;
    spec.type_rates.data = 0.5;
    cfg.adversaries.push_back(spec);
    cfg.params.total_packets = packets_for(kind) / 2;

    cfg.crypto = crypto::CryptoKind::kReal;
    const ExperimentResult real = run_experiment(cfg);
    cfg.crypto = crypto::CryptoKind::kFast;
    const ExperimentResult fast = run_experiment(cfg);
    ASSERT_FALSE(real.final_convicted.empty());
    ASSERT_FALSE(fast.final_convicted.empty());
    EXPECT_EQ(real.final_convicted.front(), 3u);
    EXPECT_EQ(fast.final_convicted.front(), 3u);
  }
}

}  // namespace
}  // namespace paai::runner
