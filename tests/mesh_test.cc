// src/mesh tests: topology generators and grammar, the O(links) score
// store's deterministic merge, and the MeshRunner's Corollary 2 claims —
// cross-path union conviction, no false accusation on shared honest
// nodes under every benign fault plan, spread-vs-concentrated damage
// against the closed forms, and bit-identity across --jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "analysis/bounds.h"
#include "faults/plan.h"
#include "mesh/runner.h"
#include "mesh/score_store.h"
#include "mesh/topology.h"

namespace paai::mesh {
namespace {

/// True when every consecutive pair of links in every path connects
/// (link j's head is link j+1's tail) — routes must be real walks.
bool paths_are_walks(const Topology& topo, const PathSet& paths) {
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::uint32_t* pl = paths.links(i);
    for (std::size_t j = 0; j + 1 < paths.length(i); ++j) {
      if (topo.link(pl[j]).to != topo.link(pl[j + 1]).from) return false;
    }
  }
  return true;
}

TEST(MeshTopology, LinearIsLinkDisjointChains) {
  const Topology topo = Topology::linear(4, 6);
  EXPECT_EQ(topo.num_nodes(), 4u * 7u);
  EXPECT_EQ(topo.num_links(), 24u);
  const PathSet paths = topo.enumerate_paths(8, 3);
  ASSERT_EQ(paths.size(), 8u);
  EXPECT_TRUE(paths_are_walks(topo, paths));
  // Paths on different chains never share a link.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths.length(i), 6u);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(paths.links(i)[j], (i % 4) * 6 + j);
    }
  }
}

TEST(MeshTopology, GridRoutesAreValidWalks) {
  const Topology topo = Topology::grid(5, 7);
  EXPECT_EQ(topo.num_nodes(), 35u);
  // 5 rows x 6 right links + 4 row-gaps x 7 down links.
  EXPECT_EQ(topo.num_links(), 5u * 6u + 4u * 7u);
  const PathSet paths = topo.enumerate_paths(64, 17);
  ASSERT_EQ(paths.size(), 64u);
  EXPECT_TRUE(paths_are_walks(topo, paths));
  // Every route starts in the left column and ends in the right column.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_GE(paths.length(i), 6u);
    EXPECT_EQ(topo.link(paths.links(i)[0]).from % 7, 0u);
    EXPECT_EQ(topo.link(paths.links(i)[paths.length(i) - 1]).to % 7, 6u);
  }
}

TEST(MeshTopology, FatTreeShapeAndSharedCores) {
  const Topology topo = Topology::fat_tree(4);
  // (k/2)^2 cores + k pods x k switches; per pod 8 edge<->agg and 8
  // agg<->core directed links.
  EXPECT_EQ(topo.num_nodes(), 4u + 16u);
  EXPECT_EQ(topo.num_links(), 64u);
  const PathSet paths = topo.enumerate_paths(200, 5);
  ASSERT_EQ(paths.size(), 200u);
  EXPECT_TRUE(paths_are_walks(topo, paths));
  std::vector<std::size_t> per_link(topo.num_links(), 0);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::size_t len = paths.length(i);
    EXPECT_TRUE(len == 2 || len == 4);  // intra- vs inter-pod
    for (std::size_t j = 0; j < len; ++j) ++per_link[paths.links(i)[j]];
  }
  // Shared intermediate nodes are the point: some link carries many
  // paths' evidence.
  EXPECT_GT(*std::max_element(per_link.begin(), per_link.end()), 10u);
}

TEST(MeshTopology, ChainsRoutesDeterministic) {
  const Topology topo = Topology::chains(32, 3, 7);
  EXPECT_EQ(topo.num_nodes(), 32u);
  EXPECT_GE(topo.num_links(), 32u);  // ring backbone at minimum
  const PathSet a = topo.enumerate_paths(50, 9);
  const PathSet b = topo.enumerate_paths(50, 9);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(paths_are_walks(topo, a));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.length(i), b.length(i));
    EXPECT_GE(a.length(i), 1u);
    for (std::size_t j = 0; j < a.length(i); ++j) {
      EXPECT_EQ(a.links(i)[j], b.links(i)[j]);
    }
  }
}

TEST(MeshTopology, GrammarRoundTripsAndRejectsMalformedSpecs) {
  for (const char* spec :
       {"linear@4:hops=6", "grid@5:cols=7", "fattree@4",
        "chains@32:degree=3,seed=7"}) {
    const Topology topo = Topology::parse(spec);
    EXPECT_EQ(topo.to_string(), spec);
    const Topology again = Topology::parse(topo.to_string());
    EXPECT_EQ(again.num_nodes(), topo.num_nodes());
    EXPECT_EQ(again.num_links(), topo.num_links());
  }
  EXPECT_THROW(Topology::parse("ring@5"), std::invalid_argument);
  EXPECT_THROW(Topology::parse("fattree@5"), std::invalid_argument);
  EXPECT_THROW(Topology::parse("grid@4:cols=2"), std::invalid_argument);
  EXPECT_THROW(Topology::parse("linear@4:hops=6,bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("fattree@4;fattree@4"),
               std::invalid_argument);
}

TEST(MeshStore, MergeIsOrderIndependentAndMemoryIsPerLink) {
  ScoreShard a(3), b(3);
  a.add(0, 100, 5, /*path=*/7, false);
  a.add(2, 50, 0, /*path=*/9, true);
  b.add(0, 200, 12, /*path=*/2, false);
  b.add(1, 80, 3, /*path=*/4, false);

  GlobalScoreStore ab(3), ba(3);
  ab.absorb(a);
  ab.absorb(b);
  ba.absorb(b);
  ba.absorb(a);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(ab.units(l), ba.units(l));
    EXPECT_EQ(ab.blames(l), ba.blames(l));
    EXPECT_EQ(ab.paths(l), ba.paths(l));
    EXPECT_EQ(ab.solo_convictions(l), ba.solo_convictions(l));
    EXPECT_EQ(ab.witnesses(l), ba.witnesses(l));
  }
  // Witnesses: only blame-contributing paths, ascending ids.
  EXPECT_EQ(ab.witnesses(0), (std::vector<std::uint32_t>{2, 7}));
  EXPECT_TRUE(ab.witnesses(2).empty());  // clean evidence, no witness
  EXPECT_EQ(ab.solo_convictions(2), 1u);

  // O(links): feeding 10k more paths through a shard never grows it.
  ScoreShard big(3);
  const std::size_t before = ScoreShard::bytes_for(3);
  for (std::uint32_t p = 0; p < 10000; ++p) big.add(1, 10, 1, p, false);
  EXPECT_EQ(ScoreShard::bytes_for(3), before);
  EXPECT_EQ(big.num_links(), 3u);
  GlobalScoreStore store(3);
  store.absorb(big);
  EXPECT_EQ(store.paths(1), 10000u);
  EXPECT_EQ(store.witnesses(1),
            (std::vector<std::uint32_t>{0, 1, 2, 3}));  // smallest-K
}

/// The acceptance scenario: one adversarial node straddling many paths,
/// each path's own evidence too scarce to convict (zero solo
/// convictions), while the aggregated cross-path union convicts — the
/// Corollary 2 regime. Constants are calibrated against the pinned
/// seed; the engine is bit-deterministic, so the realized zero-solo /
/// union-convicts split is stable.
MeshConfig union_conviction_config() {
  MeshConfig cfg;
  cfg.topo = Topology::parse("linear@1:hops=6");
  cfg.paths = cfg.topo.enumerate_paths(20, 1);
  cfg.engine = MeshEngine::kStat;
  cfg.units_per_path = 6;
  cfg.rounds = 1;
  cfg.natural_loss = 0.01;
  cfg.decision_threshold = 0.02;
  cfg.adversaries = adversary::AdversaryPlan::parse("uniform@4:rate=0.05");
  cfg.seed0 = 9000;
  return cfg;
}

TEST(MeshRunner, CrossPathUnionConvictsWhereNoSinglePathCan) {
  const MeshResult r = run_mesh(union_conviction_config());
  // Node 4's outgoing link (chain link 4) is convicted from the union...
  const MeshResult::LinkVerdict& bad = r.links[4];
  EXPECT_TRUE(bad.malicious);
  EXPECT_TRUE(bad.convicted);
  EXPECT_EQ(bad.paths, 20u);
  // ...but no single path's own evidence would have convicted any link.
  for (const MeshResult::LinkVerdict& row : r.links) {
    EXPECT_EQ(row.solo_convictions, 0u);
  }
  // Provenance names at least two contributing paths.
  EXPECT_GE(bad.witnesses.size(), 2u);
  // And the union never frames an honest link.
  EXPECT_EQ(r.false_accusations, 0u);
  EXPECT_EQ(r.convicted, std::vector<std::size_t>{4});
  EXPECT_GT(bad.first_convicted_units, 0u);
}

TEST(MeshRunner, HonestSharedNodeSurvivesEveryBenignPlan) {
  // An honest chain shared by 1000 paths: every mesh link carries the
  // union of 1000 paths' evidence — exactly where a spurious conviction
  // would be cheapest — under each shipped benign fault plan.
  for (const faults::NamedPlan& plan : faults::benign_plans()) {
    MeshConfig cfg;
    cfg.topo = Topology::parse("linear@1:hops=6");
    cfg.paths = cfg.topo.enumerate_paths(1000, 2);
    cfg.engine = MeshEngine::kStat;
    cfg.units_per_path = 500;
    cfg.rounds = 8;
    cfg.natural_loss = 0.01;
    cfg.decision_threshold = 0.02;
    cfg.faults = faults::FaultPlan::parse(plan.spec);
    cfg.seed0 = 9100;
    const MeshResult r = run_mesh(cfg);
    EXPECT_TRUE(r.convicted.empty()) << "plan " << plan.name;
    EXPECT_EQ(r.false_accusations, 0u) << "plan " << plan.name;
    for (const MeshResult::LinkVerdict& row : r.links) {
      EXPECT_EQ(row.paths, 1000u);
      EXPECT_FALSE(row.malicious);
    }
  }
}

TEST(MeshRunner, SpreadVersusConcentratedMatchesCorollary2) {
  // z = 4 links at alpha = 0.2, natural loss zero, conviction disabled
  // (threshold above any estimate): measure pure damage. Spread (one
  // link per path) must land at z*alpha; concentrated (all four on one
  // path) at 1-(1-alpha)^4 — the closed forms in analysis/bounds.h.
  analysis::Params prm;
  prm.alpha = 0.2;
  const auto run_damage = [](const std::vector<MeshLinkFault>& faults) {
    MeshConfig cfg;
    cfg.topo = Topology::parse("linear@4:hops=4");
    cfg.paths = cfg.topo.enumerate_paths(4, 0);
    cfg.engine = MeshEngine::kStat;
    cfg.units_per_path = 20000;
    cfg.rounds = 1;
    cfg.natural_loss = 0.0;
    cfg.decision_threshold = 0.5;  // measurement only, nothing convicts
    cfg.link_faults = faults;
    cfg.seed0 = 42;
    return run_mesh(cfg).total_damage;
  };
  // One mid-chain link per chain (chain c's links are ids 4c..4c+3).
  const double spread =
      run_damage({{1, 0.2}, {5, 0.2}, {9, 0.2}, {13, 0.2}});
  // All four links of chain 0.
  const double concentrated =
      run_damage({{0, 0.2}, {1, 0.2}, {2, 0.2}, {3, 0.2}});
  EXPECT_NEAR(spread, analysis::optimal_spread_total(4, prm), 0.02);
  EXPECT_NEAR(concentrated, analysis::concentrated_total(4, prm), 0.02);
  EXPECT_NEAR(spread - concentrated, analysis::spread_advantage(4, prm),
              0.03);
  EXPECT_GT(spread, concentrated);
}

TEST(MeshRunner, StatEngineBitIdenticalAcrossJobs) {
  MeshConfig cfg;
  cfg.topo = Topology::parse("fattree@4");
  cfg.paths = cfg.topo.enumerate_paths(2000, 3);
  cfg.engine = MeshEngine::kStat;
  cfg.units_per_path = 400;
  cfg.rounds = 4;
  cfg.adversaries = adversary::AdversaryPlan::parse("uniform@0:rate=0.03");
  cfg.faults = faults::FaultPlan::parse("ge@7:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15");
  cfg.seed0 = 77;

  cfg.jobs = 1;
  const MeshResult serial = run_mesh(cfg);
  cfg.jobs = 8;
  const MeshResult parallel = run_mesh(cfg);

  EXPECT_EQ(serial.total_damage, parallel.total_damage);  // bit-exact
  EXPECT_EQ(serial.baseline_delivery, parallel.baseline_delivery);
  EXPECT_EQ(serial.convicted, parallel.convicted);
  EXPECT_EQ(serial.detection_units_p50, parallel.detection_units_p50);
  EXPECT_EQ(serial.detection_units_p99, parallel.detection_units_p99);
  ASSERT_EQ(serial.links.size(), parallel.links.size());
  for (std::size_t l = 0; l < serial.links.size(); ++l) {
    EXPECT_EQ(serial.links[l].units, parallel.links[l].units);
    EXPECT_EQ(serial.links[l].blames, parallel.links[l].blames);
    EXPECT_EQ(serial.links[l].paths, parallel.links[l].paths);
    EXPECT_EQ(serial.links[l].solo_convictions,
              parallel.links[l].solo_convictions);
    EXPECT_EQ(serial.links[l].theta, parallel.links[l].theta);
    EXPECT_EQ(serial.links[l].first_convicted_units,
              parallel.links[l].first_convicted_units);
    EXPECT_EQ(serial.links[l].witnesses, parallel.links[l].witnesses);
  }
}

// Same contract under a windowed blame mode: the per-round window
// counters are u64 sums keyed by round index, so they must absorb
// order-independently — any --jobs value lands every delta in the same
// round cell and the windowed verdict is bit-identical.
TEST(MeshRunner, StatEngineWindowedModeBitIdenticalAcrossJobs) {
  MeshConfig cfg;
  cfg.topo = Topology::parse("fattree@4");
  cfg.paths = cfg.topo.enumerate_paths(2000, 3);
  cfg.engine = MeshEngine::kStat;
  cfg.units_per_path = 400;
  cfg.rounds = 4;
  cfg.blame = protocols::BlameSpec::parse("windowed:192");
  cfg.adversaries = adversary::AdversaryPlan::parse("uniform@0:rate=0.03");
  cfg.faults = faults::FaultPlan::parse("ge@7:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15");
  cfg.seed0 = 77;

  cfg.jobs = 1;
  const MeshResult serial = run_mesh(cfg);
  cfg.jobs = 8;
  const MeshResult parallel = run_mesh(cfg);

  EXPECT_EQ(serial.total_damage, parallel.total_damage);  // bit-exact
  EXPECT_EQ(serial.convicted, parallel.convicted);
  EXPECT_EQ(serial.detection_units_p50, parallel.detection_units_p50);
  EXPECT_EQ(serial.detection_units_p99, parallel.detection_units_p99);
  ASSERT_EQ(serial.links.size(), parallel.links.size());
  for (std::size_t l = 0; l < serial.links.size(); ++l) {
    EXPECT_EQ(serial.links[l].units, parallel.links[l].units);
    EXPECT_EQ(serial.links[l].blames, parallel.links[l].blames);
    EXPECT_EQ(serial.links[l].theta, parallel.links[l].theta);
    EXPECT_EQ(serial.links[l].convicted, parallel.links[l].convicted);
    EXPECT_EQ(serial.links[l].first_convicted_units,
              parallel.links[l].first_convicted_units);
  }

  // Margin mode on the same scenario is unchanged by the window
  // counters riding along: its verdict comes from the cumulative sums.
  MeshConfig margin = cfg;
  margin.blame = protocols::BlameSpec{};
  margin.jobs = 1;
  const MeshResult margin_result = run_mesh(margin);
  for (std::size_t l = 0; l < margin_result.links.size(); ++l) {
    EXPECT_EQ(margin_result.links[l].units, serial.links[l].units);
    EXPECT_EQ(margin_result.links[l].blames, serial.links[l].blames);
    EXPECT_EQ(margin_result.links[l].theta, serial.links[l].theta);
  }
}

// The store's window cells cover the cumulative evidence exactly, and
// the blame-aware convicts() reproduces the legacy margin verdict.
TEST(ScoreStore, WindowCountersCommuteAndCoverTotals) {
  ScoreShard a(3, /*rounds=*/2);
  ScoreShard b(3, /*rounds=*/2);
  a.add(0, 100, 10, /*path=*/1, false);
  a.add_window(0, 0, 60, 8);
  a.add_window(0, 1, 40, 2);
  b.add(0, 50, 5, /*path=*/2, false);
  b.add_window(0, 1, 50, 5);

  GlobalScoreStore ab(3, 2);
  ab.absorb(a);
  ab.absorb(b);
  GlobalScoreStore ba(3, 2);
  ba.absorb(b);
  ba.absorb(a);

  for (const GlobalScoreStore* store : {&ab, &ba}) {
    EXPECT_EQ(store->round_units(0, 0), 60u);
    EXPECT_EQ(store->round_blames(0, 0), 8u);
    EXPECT_EQ(store->round_units(0, 1), 90u);
    EXPECT_EQ(store->round_blames(0, 1), 7u);
    EXPECT_EQ(store->units_through(0, 2), store->units(0));
    EXPECT_EQ(store->blames_through(0, 2), store->blames(0));
    // Margin via the blame-aware overload == the legacy rule.
    const protocols::BlameSpec margin;
    EXPECT_EQ(store->convicts(0, 0.02, margin), store->convicts(0, 0.02));
  }

  // Round mismatch is a hard error, not a silent mis-keying.
  GlobalScoreStore narrow(3, 1);
  EXPECT_THROW(narrow.absorb(a), std::invalid_argument);
}

TEST(MeshRunner, PacketEngineMapsMeshPlansOntoPaths) {
  // Full discrete-event engine on a shared chain: the mesh-level
  // adversary at node 4 must project onto every path's local F_4 and be
  // convicted by the aggregated store, agreeing with the stat engine's
  // verdict on the same scenario.
  MeshConfig cfg;
  cfg.topo = Topology::parse("linear@1:hops=6");
  cfg.paths = cfg.topo.enumerate_paths(6, 0);
  cfg.engine = MeshEngine::kPacket;
  cfg.adversaries = adversary::AdversaryPlan::parse("uniform@4:rate=0.05");
  cfg.decision_threshold = 0.02;
  cfg.seed0 = 500;
  // Full-ack: per-hop acks localize blame to the dropping node's own
  // out-link. PAAI-1's blame-to-first-failing-hop heuristic measurably
  // over-blames the upstream link here (bench_robustness C) — same
  // reason tools/check.sh leg 5 runs its colluder smoke on full-ack.
  cfg.packet_base =
      runner::paper_config(protocols::ProtocolKind::kFullAck, 20000, 0);
  cfg.packet_base.link_faults.clear();
  cfg.packet_base.params.send_rate_pps = 1000.0;
  const MeshResult packet = run_mesh(cfg);

  ASSERT_EQ(packet.path_outcomes.size(), 6u);
  EXPECT_TRUE(std::find(packet.convicted.begin(), packet.convicted.end(),
                        std::size_t{4}) != packet.convicted.end());
  EXPECT_EQ(packet.false_accusations, 0u);
  EXPECT_TRUE(packet.links[4].malicious);
  EXPECT_EQ(packet.links[4].paths, 6u);
  EXPECT_GT(packet.baseline_delivery, 0.9);
  EXPECT_GT(packet.total_damage, 0.0);
  for (const MeshPathOutcome& outcome : packet.path_outcomes) {
    EXPECT_EQ(outcome.malicious, std::vector<std::size_t>{4});
    EXPECT_FALSE(outcome.any_honest_convicted);
  }

  // Stat engine on the same mesh scenario reaches the same verdict.
  MeshConfig stat = cfg;
  stat.engine = MeshEngine::kStat;
  stat.units_per_path = 20000;
  stat.rounds = 8;
  stat.natural_loss = 0.01;
  const MeshResult quick = run_mesh(stat);
  EXPECT_TRUE(std::find(quick.convicted.begin(), quick.convicted.end(),
                        std::size_t{4}) != quick.convicted.end());
  EXPECT_EQ(quick.false_accusations, 0u);
}

TEST(MeshRunner, RejectsOutOfRangeSpecs) {
  MeshConfig cfg;
  cfg.topo = Topology::parse("linear@1:hops=6");
  cfg.paths = cfg.topo.enumerate_paths(2, 0);
  cfg.adversaries = adversary::AdversaryPlan::parse("uniform@99:rate=0.05");
  EXPECT_THROW(run_mesh(cfg), std::invalid_argument);
  cfg.adversaries = {};
  cfg.link_faults = {{/*link=*/6, 0.05}};
  EXPECT_THROW(run_mesh(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace paai::mesh
