// Fault-injection subsystem tests (src/faults) and the robustness chaos
// suite: the Gilbert-Elliott model's long-run statistics, the FaultPlan
// grammar (compact + JSON), construction-time validation across
// Link/PathNetwork/FaultInjector, node crash/restart semantics (including
// PendingStore state loss and recovery), and the false-identification
// invariant — every shipped benign plan, run against every protocol at
// paper scale with no adversary, must convict nobody, bit-identically
// across --jobs values.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "faults/injector.h"
#include "faults/loss_process.h"
#include "faults/plan.h"
#include "protocols/context.h"
#include "protocols/pending.h"
#include "runner/experiment.h"
#include "runner/montecarlo.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/rng.h"

namespace paai {
namespace {

using faults::FaultPlan;
using faults::GilbertElliott;

// ---------------------------------------------------------------------------
// Gilbert-Elliott model

TEST(GilbertElliott, StationaryLossMatchesEmpiricalRate) {
  GilbertElliott::Params p;
  p.loss_good = 0.005;
  p.loss_bad = 0.3;
  p.good_to_bad = 0.003;
  p.bad_to_good = 0.15;
  GilbertElliott ge(p);

  // pi_bad = g2b / (g2b + b2g) ~ 0.0196; mixture ~ 0.0108.
  EXPECT_NEAR(ge.stationary_loss(), 0.0108, 0.0005);

  Rng rng(42);
  std::uint64_t drops = 0;
  const std::uint64_t draws = 1'000'000;
  for (std::uint64_t i = 0; i < draws; ++i) {
    if (ge.drop(static_cast<sim::SimTime>(i), rng)) ++drops;
  }
  const double empirical = static_cast<double>(drops) / draws;
  EXPECT_NEAR(empirical, ge.stationary_loss(), 0.0015);
  EXPECT_GT(ge.transitions(), 0u);
}

TEST(GilbertElliott, LossArrivesInBursts) {
  // Drops happen only in the Bad state, so a drop run's length is the Bad
  // sojourn time: geometric with mean 1 / bad_to_good = 5 traversals.
  GilbertElliott::Params p;
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  p.good_to_bad = 0.01;
  p.bad_to_good = 0.2;
  GilbertElliott ge(p);

  Rng rng(7);
  std::uint64_t bursts = 0;
  std::uint64_t dropped = 0;
  bool in_burst = false;
  for (std::uint64_t i = 0; i < 500'000; ++i) {
    const bool drop = ge.drop(static_cast<sim::SimTime>(i), rng);
    if (drop) {
      ++dropped;
      if (!in_burst) ++bursts;
    }
    in_burst = drop;
  }
  ASSERT_GT(bursts, 100u);
  const double mean_burst =
      static_cast<double>(dropped) / static_cast<double>(bursts);
  EXPECT_GT(mean_burst, 3.5);
  EXPECT_LT(mean_burst, 6.5);
}

TEST(GilbertElliott, RejectsBadParameters) {
  GilbertElliott::Params p;
  p.loss_bad = 1.5;  // probability out of range
  EXPECT_THROW(GilbertElliott{p}, std::invalid_argument);
  p.loss_bad = 0.5;
  p.good_to_bad = 0.0;
  p.bad_to_good = 0.0;  // chain never moves
  EXPECT_THROW(GilbertElliott{p}, std::invalid_argument);
  p.good_to_bad = std::nan("");
  p.bad_to_good = 0.5;
  EXPECT_THROW(GilbertElliott{p}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FaultPlan grammar

TEST(FaultPlan, CompactRoundTrip) {
  const std::string spec =
      "ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15;"
      "set@1:t=150,loss=0.02,lat=3.5;"
      "outage@3:t=120,dur=1.5;"
      "reorder@1:p=0.05,delay=2;"
      "dup@4:p=0.01";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.gilbert.size(), 1u);
  EXPECT_EQ(plan.gilbert[0].link, 2u);
  EXPECT_DOUBLE_EQ(plan.gilbert[0].params.loss_bad, 0.3);
  ASSERT_EQ(plan.retunes.size(), 1u);
  EXPECT_EQ(plan.retunes[0].link, 1u);
  EXPECT_DOUBLE_EQ(plan.retunes[0].at_seconds, 150.0);
  ASSERT_TRUE(plan.retunes[0].loss.has_value());
  ASSERT_TRUE(plan.retunes[0].latency_ms.has_value());
  EXPECT_FALSE(plan.retunes[0].jitter_ms.has_value());
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].node, 3u);
  EXPECT_DOUBLE_EQ(plan.outages[0].duration_seconds, 1.5);
  ASSERT_EQ(plan.reorders.size(), 1u);
  ASSERT_EQ(plan.duplicates.size(), 1u);
  EXPECT_FALSE(plan.empty());

  // Canonical rendering reparses to the same plan.
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
  EXPECT_EQ(again.gilbert.size(), plan.gilbert.size());
  EXPECT_EQ(again.retunes.size(), plan.retunes.size());
  EXPECT_EQ(again.outages.size(), plan.outages.size());
}

TEST(FaultPlan, JsonForms) {
  const FaultPlan array_form = FaultPlan::parse(
      R"([{"kind":"outage","node":3,"t":120,"dur":2},
          {"kind":"ge","link":2,"pb":0.3,"g2b":0.01,"b2g":0.2}])");
  ASSERT_EQ(array_form.outages.size(), 1u);
  EXPECT_EQ(array_form.outages[0].node, 3u);
  ASSERT_EQ(array_form.gilbert.size(), 1u);
  EXPECT_DOUBLE_EQ(array_form.gilbert[0].params.loss_good, 0.0);

  const FaultPlan object_form = FaultPlan::parse(
      R"({"faults":[{"kind":"dup","link":4,"p":0.01}]})");
  ASSERT_EQ(object_form.duplicates.size(), 1u);
  EXPECT_EQ(object_form.duplicates[0].link, 4u);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  \n ").empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  // Unknown kind, malformed clause, unknown key, bad/NaN numbers,
  // out-of-range probabilities, semantically empty clauses.
  EXPECT_THROW(FaultPlan::parse("meteor@1:p=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("ge:pb=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dup@1:prob=0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dup@1:p=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dup@1:p=nan"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dup@1:p=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dup@x:p=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("set@1:t=10"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("outage@3:t=1,dur=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("ge@1:pb=0.3,g2b=0.1"),  // missing b2g
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("[{\"t\":1}]"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("[{\"kind\":\"dup\",\"p\":0.1}]"),
               std::invalid_argument);  // missing link/node
  EXPECT_THROW(FaultPlan::parse("[not json"), std::invalid_argument);
}

TEST(FaultPlan, FuzzedSpecsRejectCleanlyOrRoundTrip) {
  // Mutation fuzz over the compact grammar: every mutated spec must either
  // parse (and then survive a parse(to_string()) round trip) or throw
  // std::invalid_argument — never crash, never throw anything else.
  const std::vector<std::string> seeds = {
      "ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15",
      "set@1:t=150,loss=0.02,lat=3.5,jitter=0.5",
      "outage@3:t=120,dur=1.5",
      "reorder@1:p=0.05,delay=2",
      "dup@4:p=0.01",
      "ge@2:pb=0.3,g2b=0.01,b2g=0.2;outage@3:t=60,dur=2;dup@1:p=0.02",
      "",
  };
  const std::string charset = "0123456789abcdefgXZ@:;,=.+- \t";
  Rng rng(20260805);

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string spec = seeds[rng.next_below(seeds.size())];
    // 0..3 random edits; zero edits keeps some iterations on the valid
    // seeds so the accept path stays exercised.
    const std::uint64_t edits = rng.next_below(4);
    for (std::uint64_t e = 0; e < edits; ++e) {
      const std::uint64_t op = rng.next_below(3);
      if (spec.empty() || op == 2) {
        spec.insert(rng.next_below(spec.size() + 1),
                    1, charset[rng.next_below(charset.size())]);
      } else if (op == 0) {
        spec[rng.next_below(spec.size())] =
            charset[rng.next_below(charset.size())];
      } else {
        spec.erase(rng.next_below(spec.size()), 1);
      }
    }
    try {
      const FaultPlan plan = FaultPlan::parse(spec);
      // Accepted: the canonical rendering must reparse to itself.
      const FaultPlan again = FaultPlan::parse(plan.to_string());
      EXPECT_EQ(again.to_string(), plan.to_string()) << "spec: " << spec;
      ++accepted;
    } catch (const std::invalid_argument&) {
      ++rejected;  // clean rejection is the expected failure mode
    }
  }
  // The mutator must have exercised both paths.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(FaultPlan, ProvisioningWorstCases) {
  const FaultPlan plan = FaultPlan::parse(
      "set@3:t=60,lat=4.5,jitter=0.5;set@3:t=240,lat=8;"
      "reorder@1:p=0.05,delay=2");
  EXPECT_DOUBLE_EQ(plan.max_latency_ms(), 8.0);
  EXPECT_DOUBLE_EQ(plan.max_extra_delay_ms(), 2.5);
  EXPECT_DOUBLE_EQ(FaultPlan{}.max_latency_ms(), 0.0);
  EXPECT_DOUBLE_EQ(FaultPlan{}.max_extra_delay_ms(), 0.0);
}

TEST(FaultPlan, ShippedBenignPlansParseAndFitThePaperPath) {
  ASSERT_FALSE(faults::benign_plans().empty());
  for (const auto& named : faults::benign_plans()) {
    SCOPED_TRACE(named.name);
    const FaultPlan plan = FaultPlan::parse(named.spec);
    EXPECT_FALSE(plan.empty());
    // Installing on the paper's d=6 path validates every index.
    sim::Simulator sim;
    sim::PathNetwork net(sim, sim::PathConfig{});
    EXPECT_NO_THROW(faults::FaultInjector(sim, net, plan));
  }
}

// ---------------------------------------------------------------------------
// Construction-time validation (satellite: reject nonsense loudly)

TEST(LinkValidation, RejectsBadRatesAndLatencies) {
  sim::Simulator sim;
  sim::TrafficCounters counters(1);
  EXPECT_THROW(sim::Link(sim, 0, 1.5, sim::milliseconds(1), Rng(1),
                         &counters),
               std::invalid_argument);
  EXPECT_THROW(sim::Link(sim, 0, -0.1, sim::milliseconds(1), Rng(1),
                         &counters),
               std::invalid_argument);
  EXPECT_THROW(sim::Link(sim, 0, std::nan(""), sim::milliseconds(1), Rng(1),
                         &counters),
               std::invalid_argument);
  EXPECT_THROW(sim::Link(sim, 0, 0.01, -sim::milliseconds(1), Rng(1),
                         &counters),
               std::invalid_argument);

  sim::Link link(sim, 0, 0.01, sim::milliseconds(1), Rng(1), &counters);
  EXPECT_THROW(link.set_loss_rate(1.5), std::invalid_argument);
  EXPECT_THROW(link.set_loss_rate(std::nan("")), std::invalid_argument);
  EXPECT_THROW(link.set_latency(-1), std::invalid_argument);
  EXPECT_THROW(link.set_jitter(-1), std::invalid_argument);
  EXPECT_THROW(link.set_reordering(1.5, 0), std::invalid_argument);
  EXPECT_THROW(link.set_reordering(0.5, -1), std::invalid_argument);
  EXPECT_THROW(link.set_duplication(-0.5), std::invalid_argument);
  EXPECT_NO_THROW(link.set_loss_rate(0.0));
  EXPECT_NO_THROW(link.set_loss_rate(1.0));
}

TEST(NetworkValidation, RejectsBadPathConfigs) {
  sim::Simulator sim;
  sim::PathConfig cfg;
  cfg.natural_loss = 1.5;
  EXPECT_THROW(sim::PathNetwork(sim, cfg), std::invalid_argument);
  cfg = sim::PathConfig{};
  cfg.natural_loss = std::nan("");
  EXPECT_THROW(sim::PathNetwork(sim, cfg), std::invalid_argument);
  cfg = sim::PathConfig{};
  cfg.min_latency_ms = 6.0;  // inverted range
  cfg.max_latency_ms = 5.0;
  EXPECT_THROW(sim::PathNetwork(sim, cfg), std::invalid_argument);
  cfg = sim::PathConfig{};
  cfg.min_latency_ms = -1.0;
  EXPECT_THROW(sim::PathNetwork(sim, cfg), std::invalid_argument);
  cfg = sim::PathConfig{};
  cfg.jitter_ms = -0.5;
  EXPECT_THROW(sim::PathNetwork(sim, cfg), std::invalid_argument);
  cfg = sim::PathConfig{};
  cfg.extra_rtt_slack_ms = std::nan("");
  EXPECT_THROW(sim::PathNetwork(sim, cfg), std::invalid_argument);
  cfg = sim::PathConfig{};
  EXPECT_NO_THROW(sim::PathNetwork(sim, cfg));
}

TEST(InjectorValidation, RejectsOutOfPathIndices) {
  sim::Simulator sim;
  sim::PathNetwork net(sim, sim::PathConfig{});  // d = 6
  EXPECT_THROW(
      faults::FaultInjector(sim, net, FaultPlan::parse("dup@6:p=0.1")),
      std::invalid_argument);
  EXPECT_THROW(faults::FaultInjector(
                   sim, net,
                   FaultPlan::parse("ge@9:pb=0.3,g2b=0.1,b2g=0.2")),
               std::invalid_argument);
  // S and D are trusted infrastructure; outages may only hit relays.
  EXPECT_THROW(
      faults::FaultInjector(sim, net,
                            FaultPlan::parse("outage@0:t=1,dur=1")),
      std::invalid_argument);
  EXPECT_THROW(
      faults::FaultInjector(sim, net,
                            FaultPlan::parse("outage@6:t=1,dur=1")),
      std::invalid_argument);
  EXPECT_NO_THROW(
      faults::FaultInjector(sim, net,
                            FaultPlan::parse("outage@5:t=1,dur=1")));
}

// ---------------------------------------------------------------------------
// Node crash/restart mechanics

class CountingAgent final : public sim::Agent {
 public:
  void on_packet(const sim::PacketEnv&) override { ++packets_; }
  void on_crash() override { ++crashes_; }
  int packets() const { return packets_; }
  int crashes() const { return crashes_; }

 private:
  int packets_ = 0;
  int crashes_ = 0;
};

sim::PacketEnv test_packet() {
  sim::PacketEnv env;
  env.wire = std::make_shared<const Bytes>(Bytes{1, 2, 3});
  env.wire_size = 3;
  return env;
}

TEST(NodeOutage, DownNodeBlackholesAndRunsCrashHooks) {
  sim::Simulator sim;
  sim::Node node(sim, 1);
  auto agent = std::make_unique<CountingAgent>();
  CountingAgent* counting = agent.get();
  node.attach_agent(std::move(agent));
  int hook_runs = 0;
  node.add_crash_hook([&hook_runs] { ++hook_runs; });

  ASSERT_TRUE(node.up());
  node.deliver(test_packet());
  EXPECT_EQ(counting->packets(), 1);

  node.set_up(false);
  EXPECT_FALSE(node.up());
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(counting->crashes(), 1);
  node.deliver(test_packet());
  node.deliver(test_packet());
  EXPECT_EQ(counting->packets(), 1);  // blackholed, not delivered
  EXPECT_EQ(node.crash_drops(), 2u);

  node.set_up(true);
  EXPECT_TRUE(node.up());
  EXPECT_EQ(hook_runs, 1);  // restart is not a crash
  node.deliver(test_packet());
  EXPECT_EQ(counting->packets(), 2);
  EXPECT_EQ(node.crash_drops(), 2u);
}

// ---------------------------------------------------------------------------
// PendingStore across a node outage (satellite: purge/recovery coverage)

net::PacketId make_id(std::uint8_t n) {
  net::PacketId id{};
  id[0] = n;
  return id;
}

TEST(PendingCrash, OutageDropsEntriesAndAutoPurgeRecovers) {
  sim::Simulator sim;
  sim::Node node(sim, 2);
  node.attach_agent(std::make_unique<CountingAgent>());

  protocols::PendingStore<int> store;
  store.attach(node, sim::milliseconds(10));

  store.put(make_id(1), 11, sim::seconds(1.0));
  store.put(make_id(2), 22, sim::seconds(1.0));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(node.storage().current(), 2u);
  ASSERT_NE(store.find(make_id(1)), nullptr);

  // Crash: the attach()-registered hook drops every in-flight entry and
  // the storage meter drains with it — volatile state does not survive.
  node.set_up(false);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(node.storage().current(), 0u);
  EXPECT_EQ(store.find(make_id(1)), nullptr);

  // The crash left an auto-purge timer armed; it must fire on the empty
  // map without incident (same path as a wait timer whose entry expired).
  node.set_up(true);
  sim.run();
  EXPECT_EQ(store.size(), 0u);

  // Recovery: the store keeps working after restart, and the re-armed
  // auto-purge expires stale entries even with no packet arrivals.
  store.put(make_id(3), 33, sim.now() + sim::milliseconds(5));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(node.storage().current(), 1u);
  sim.run();  // auto-purge period (10 ms) passes the 5 ms expiry
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(node.storage().current(), 0u);
}

TEST(PendingCrash, RelayOutageDoesNotLeaveStaleAccusation) {
  // Protocol-level version of the same property: a mid-run relay crash
  // (dropping its pending table and interval counters) must not make the
  // source convict anyone once traffic resumes — the recovery path is the
  // wait-timer machinery the protocols already have.
  for (const auto kind : {protocols::ProtocolKind::kPaai1,
                          protocols::ProtocolKind::kStatisticalFl}) {
    SCOPED_TRACE(protocols::protocol_name(kind));
    runner::ExperimentConfig cfg = runner::paper_config(kind, 12000, 5);
    cfg.link_faults.clear();  // honest path
    // Same convention as the protocol_test sweeps: at the paper's p the
    // FL estimator needs ~1e7 packets to converge; exact counters keep
    // the crash/interval machinery under test without the sampling noise.
    cfg.params.fl_sampling = 1.0;
    cfg.faults = FaultPlan::parse("outage@3:t=30,dur=1;outage@2:t=80,dur=1");
    const runner::ExperimentResult r = runner::run_experiment(cfg);
    EXPECT_TRUE(r.final_convicted.empty())
        << "convicted " << r.final_convicted.size() << " honest link(s)";
    EXPECT_GT(r.observations, 0u);
  }
}

// ---------------------------------------------------------------------------
// Determinism: a fault plan must not break the bit-identity contract

TEST(FaultDeterminism, SameSeedSameResult) {
  runner::ExperimentConfig cfg =
      runner::paper_config(protocols::ProtocolKind::kPaai1, 4000, 9);
  cfg.faults = FaultPlan::parse(
      "ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15;"
      "outage@3:t=10,dur=0.5;set@1:t=20,loss=0.02;"
      "reorder@5:p=0.05,delay=1;dup@0:p=0.01");
  const runner::ExperimentResult a = runner::run_experiment(cfg);
  const runner::ExperimentResult b = runner::run_experiment(cfg);
  EXPECT_EQ(a.final_thetas, b.final_thetas);
  EXPECT_EQ(a.observations, b.observations);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.ground_truth_delivery, b.ground_truth_delivery);
}

TEST(FaultDeterminism, BitIdenticalAcrossJobs) {
  runner::MonteCarloConfig mc;
  mc.base = runner::paper_config(protocols::ProtocolKind::kPaai1, 4000, 1);
  mc.base.faults = FaultPlan::parse(
      "ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15;outage@3:t=10,dur=0.5");
  mc.base.checkpoints = {1000, 2000, 4000};
  mc.runs = 4;
  mc.jobs = 1;
  const runner::MonteCarloResult serial = runner::run_monte_carlo(mc);
  mc.jobs = 4;
  const runner::MonteCarloResult parallel = runner::run_monte_carlo(mc);

  ASSERT_EQ(serial.curve.size(), parallel.curve.size());
  for (std::size_t i = 0; i < serial.curve.size(); ++i) {
    EXPECT_EQ(serial.curve[i].fp, parallel.curve[i].fp);
    EXPECT_EQ(serial.curve[i].fn, parallel.curve[i].fn);
  }
  ASSERT_EQ(serial.final_thetas.size(), parallel.final_thetas.size());
  for (std::size_t i = 0; i < serial.final_thetas.size(); ++i) {
    EXPECT_EQ(serial.final_thetas[i].mean(), parallel.final_thetas[i].mean());
  }
  EXPECT_EQ(serial.total_events, parallel.total_events);
}

TEST(FaultDeterminism, EmptyPlanMatchesNoPlan) {
  // `--faults=""` must be byte-for-byte the run you get without the flag:
  // an empty plan installs nothing and provisions nothing.
  runner::ExperimentConfig cfg =
      runner::paper_config(protocols::ProtocolKind::kPaai1, 3000, 3);
  const runner::ExperimentResult without = runner::run_experiment(cfg);
  cfg.faults = FaultPlan::parse("");
  const runner::ExperimentResult with = runner::run_experiment(cfg);
  EXPECT_EQ(without.final_thetas, with.final_thetas);
  EXPECT_EQ(without.events_processed, with.events_processed);
}

// ---------------------------------------------------------------------------
// The false-identification invariant (chaos suite)

constexpr protocols::ProtocolKind kAllProtocols[] = {
    protocols::ProtocolKind::kFullAck,      protocols::ProtocolKind::kPaai1,
    protocols::ProtocolKind::kPaai2,        protocols::ProtocolKind::kCombination1,
    protocols::ProtocolKind::kCombination2, protocols::ProtocolKind::kStatisticalFl,
    protocols::ProtocolKind::kSigAck,
};

/// No adversary anywhere: whatever the benign plan does, convicting any
/// link is a false identification.
void expect_no_false_identification(protocols::ProtocolKind kind,
                                    const char* plan_spec,
                                    std::uint64_t packets,
                                    std::uint64_t seed, double pps = 100.0) {
  if (kind == protocols::ProtocolKind::kCombination2) {
    // Comb-2 detects 1/p slower by design (Table 1): at the paper's
    // p = 1/36 its two-standard-error conviction rule is still in the
    // small-sample regime at 60k packets, where estimator variance alone
    // can convict. Extend the horizon to the sample count the
    // protocol_test.cc converged-regime sweeps use (~10k sampled probes);
    // every shipped plan is calibrated to stay benign at any horizon.
    packets *= 6;
  }
  runner::ExperimentConfig cfg = runner::paper_config(kind, packets, seed);
  cfg.params.send_rate_pps = pps;
  cfg.link_faults.clear();
  cfg.faults = FaultPlan::parse(plan_spec);
  if (kind == protocols::ProtocolKind::kStatisticalFl) {
    // Established convention (see protocol_test.cc): at the paper's
    // sampling rate the FL estimator needs ~1e7 packets to converge, so
    // its sampling variance alone trips any threshold at this scale.
    // Exact counters remove that noise while the interval / report /
    // crash-recovery machinery stays fully exercised.
    cfg.params.fl_sampling = 1.0;
  }
  const runner::ExperimentResult r = runner::run_experiment(cfg);
  EXPECT_TRUE(r.final_convicted.empty())
      << protocols::protocol_name(kind) << " convicted link l_"
      << (r.final_convicted.empty() ? 0 : r.final_convicted[0])
      << " under a benign plan";
  EXPECT_GT(r.observations, 0u);
}

TEST(ChaosSmoke, EverythingPlanConvictsNobody) {
  // Fast representative (also run under the sanitizer legs): the combined
  // plan against one probe-based and one ack-based protocol.
  for (const auto kind : {protocols::ProtocolKind::kPaai1,
                          protocols::ProtocolKind::kFullAck}) {
    SCOPED_TRACE(protocols::protocol_name(kind));
    expect_no_false_identification(
        kind, faults::benign_plans().back().spec, /*packets=*/6000,
        /*seed=*/11);
  }
}

/// Paper scale: d = 6, rho = 0.01, 100 pps, 60k packets (600 simulated
/// seconds), threshold 0.018 — the acceptance bar for the PR. One test
/// per (protocol, shipped plan) pair.
class ChaosPaperScale
    : public ::testing::TestWithParam<
          std::tuple<protocols::ProtocolKind, std::size_t>> {};

TEST_P(ChaosPaperScale, BenignPlanConvictsNobody) {
  const auto [kind, plan_index] = GetParam();
  const auto& named = faults::benign_plans()[plan_index];
  SCOPED_TRACE(named.name);
  // sig-ack signs every data packet with W-OTS (~3 CPU-minutes per
  // 60k-packet run), so it keeps the full 600 s horizon — the shipped
  // plans schedule events up to t = 550 — at a tenth of the rate and
  // therefore a tenth of the signing cost.
  if (kind == protocols::ProtocolKind::kSigAck) {
    expect_no_false_identification(kind, named.spec, /*packets=*/6000,
                                   /*seed=*/2026, /*pps=*/10.0);
  } else {
    expect_no_false_identification(kind, named.spec, /*packets=*/60000,
                                   /*seed=*/2026);
  }
}

std::string chaos_name(
    const ::testing::TestParamInfo<ChaosPaperScale::ParamType>& info) {
  std::string name = protocols::protocol_name(std::get<0>(info.param));
  name += "_";
  name += faults::benign_plans()[std::get<1>(info.param)].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllPlans, ChaosPaperScale,
    ::testing::Combine(::testing::ValuesIn(kAllProtocols),
                       ::testing::Range<std::size_t>(
                           0, faults::benign_plans().size())),
    chaos_name);

}  // namespace
}  // namespace paai
