// Tests for the live telemetry plane (obs/telemetry.h, obs/profile.h):
// schema round-trip through the strict parser (write -> parse -> rewrite
// must be byte-identical), fail-closed rejection of malformed lines,
// delta encoding across registry resets, tick cadence, the observational
// guarantee (profiler on/off and telemetry attached/detached never change
// simulation results, bit for bit, for all seven protocols), and serve
// lag/back-pressure gauges under a throttled consumer. The concurrency
// test at the bottom races producers against the sampler and runs under
// TSan in tools/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "runner/experiment.h"
#include "stream/engine.h"
#include "stream/service.h"

namespace paai::obs {
namespace {

struct RegistryGuard {
  RegistryGuard() {
    MetricsRegistry::global().reset();
    MetricsRegistry::global().set_enabled(true);
  }
  ~RegistryGuard() {
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

struct ProfilerGuard {
  ProfilerGuard() {
    PhaseProfiler::global().reset();
    PhaseProfiler::global().set_enabled(true);
  }
  ~ProfilerGuard() {
    PhaseProfiler::global().set_enabled(false);
    PhaseProfiler::global().reset();
  }
};

TelemetrySample make_sample() {
  TelemetrySample s;
  s.sample = 3;
  s.wall_ns = 123456789;
  s.virt_ns = 5000000000ull;
  s.units = 499;
  s.counters.push_back({"proto.score.updates", 496});
  s.counters.push_back({"sim.link.0.tx_bytes", 18446744073709551615ull});
  GaugeSnapshot g;
  g.name = "stream.serve.lag_events";
  g.value = -7;
  g.high = 98326;
  s.gauges.push_back(g);
  s.phases.push_back({"sim-loop", PhaseDelta{910618953, 9209, 442848}});
  s.phases.push_back({"crypto", PhaseDelta{616254, 3370, 0}});
  s.queues.push_back({"sim-queue", 30});
  return s;
}

std::string to_line(const TelemetrySample& s) {
  std::ostringstream os;
  write_telemetry_line(os, s);
  return os.str();
}

TEST(TelemetrySchema, RoundTripByteIdentical) {
  const std::string first = to_line(make_sample());
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.back(), '\n');

  TelemetrySample parsed;
  std::string error;
  ASSERT_TRUE(parse_telemetry_line(
      std::string_view(first).substr(0, first.size() - 1), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.sample, 3u);
  EXPECT_EQ(parsed.units, 499u);
  ASSERT_EQ(parsed.counters.size(), 2u);
  EXPECT_EQ(parsed.counters[1].second, 18446744073709551615ull);
  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_EQ(parsed.gauges[0].value, -7);
  EXPECT_EQ(parsed.gauges[0].high, 98326);
  ASSERT_EQ(parsed.phases.size(), 2u);
  EXPECT_EQ(parsed.phases[0].second.ns, 910618953u);

  EXPECT_EQ(to_line(parsed), first);  // byte-identical rewrite
}

TEST(TelemetrySchema, EmptyContainersStillRoundTrip) {
  TelemetrySample s;
  s.sample = 0;
  const std::string line = to_line(s);
  EXPECT_NE(line.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(line.find("\"queues\":{}"), std::string::npos);
  TelemetrySample parsed;
  ASSERT_TRUE(parse_telemetry_line(
      std::string_view(line).substr(0, line.size() - 1), &parsed));
  EXPECT_EQ(to_line(parsed), line);
}

TEST(TelemetrySchema, FailClosed) {
  const auto rejects = [](const std::string& line) {
    TelemetrySample out;
    std::string error;
    const bool ok = parse_telemetry_line(line, &out, &error);
    EXPECT_FALSE(ok) << line;
    EXPECT_FALSE(error.empty());
  };
  const std::string good = to_line(make_sample());
  const std::string bare = good.substr(0, good.size() - 1);

  rejects("");
  rejects("not json");
  rejects("[1,2,3]");
  // Unknown top-level key.
  rejects("{\"schema\":\"paai.telemetry.v1\",\"sample\":0,\"wall_ns\":\"0\","
          "\"virt_ns\":\"0\",\"units\":\"0\",\"counters\":{},\"gauges\":{},"
          "\"phases\":{},\"queues\":{},\"extra\":1}");
  // Wrong schema string.
  rejects("{\"schema\":\"paai.telemetry.v2\",\"sample\":0,\"wall_ns\":\"0\","
          "\"virt_ns\":\"0\",\"units\":\"0\",\"counters\":{},\"gauges\":{},"
          "\"phases\":{},\"queues\":{}}");
  // Missing required member (no units).
  rejects("{\"schema\":\"paai.telemetry.v1\",\"sample\":0,\"wall_ns\":\"0\","
          "\"virt_ns\":\"0\",\"counters\":{},\"gauges\":{},"
          "\"phases\":{},\"queues\":{}}");
  // Counter as a JSON number instead of a decimal string.
  rejects("{\"schema\":\"paai.telemetry.v1\",\"sample\":0,\"wall_ns\":\"0\","
          "\"virt_ns\":\"0\",\"units\":\"0\",\"counters\":{\"x\":5},"
          "\"gauges\":{},\"phases\":{},\"queues\":{}}");
  // Gauge above 2^53 cannot rewrite exactly: fail closed.
  rejects("{\"schema\":\"paai.telemetry.v1\",\"sample\":0,\"wall_ns\":\"0\","
          "\"virt_ns\":\"0\",\"units\":\"0\",\"counters\":{},"
          "\"gauges\":{\"g\":[9007199254740993,0]},\"phases\":{},"
          "\"queues\":{}}");
  // Non-integral gauge.
  rejects("{\"schema\":\"paai.telemetry.v1\",\"sample\":0,\"wall_ns\":\"0\","
          "\"virt_ns\":\"0\",\"units\":\"0\",\"counters\":{},"
          "\"gauges\":{\"g\":[1.5,2]},\"phases\":{},\"queues\":{}}");
  // Phase tuple with the wrong arity.
  rejects("{\"schema\":\"paai.telemetry.v1\",\"sample\":0,\"wall_ns\":\"0\","
          "\"virt_ns\":\"0\",\"units\":\"0\",\"counters\":{},\"gauges\":{},"
          "\"phases\":{\"p\":[\"1\",\"2\"]},\"queues\":{}}");
  // A good line with a trailing character is not a valid document.
  rejects(bare + "x");
}

std::vector<TelemetrySample> parse_all(const std::string& text) {
  std::vector<TelemetrySample> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TelemetrySample s;
    std::string error;
    EXPECT_TRUE(parse_telemetry_line(line, &s, &error)) << error;
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t counter_delta(const TelemetrySample& s, const std::string& n) {
  for (const auto& [name, delta] : s.counters) {
    if (name == n) return delta;
  }
  return 0;
}

TEST(TelemetrySink, DeltaEncodingAcrossResets) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  std::ostringstream os;
  TelemetrySink sink(os, 1);

  reg.counter("tele.test.delta").add(100);
  sink.sample_now(1);
  reg.counter("tele.test.delta").add(50);
  sink.sample_now(2);
  // Registry reset: the counter restarts below its previous total; the
  // delta must restart from the current value, not wrap around.
  reg.reset();
  reg.counter("tele.test.delta").add(30);
  sink.sample_now(3);

  const auto samples = parse_all(os.str());
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(counter_delta(samples[0], "tele.test.delta"), 100u);
  EXPECT_EQ(counter_delta(samples[1], "tele.test.delta"), 50u);
  EXPECT_EQ(counter_delta(samples[2], "tele.test.delta"), 30u);
  // Monotone sample indices.
  EXPECT_EQ(samples[0].sample, 0u);
  EXPECT_EQ(samples[1].sample, 1u);
  EXPECT_EQ(samples[2].sample, 2u);
}

TEST(TelemetrySink, TickCadence) {
  RegistryGuard guard;
  std::ostringstream os;
  TelemetrySink sink(os, 10);
  for (std::uint64_t u = 1; u <= 35; ++u) sink.tick(u);
  // Thresholds crossed at units 10, 20, 30 -> exactly three samples.
  EXPECT_EQ(sink.samples(), 3u);
  const auto samples = parse_all(os.str());
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].units, 10u);
  EXPECT_EQ(samples[1].units, 20u);
  EXPECT_EQ(samples[2].units, 30u);
}

// --- the observational guarantee ------------------------------------

void expect_identical(const runner::ExperimentResult& a,
                      const runner::ExperimentResult& b) {
  EXPECT_EQ(a.final_thetas, b.final_thetas);
  EXPECT_EQ(a.final_convicted, b.final_convicted);
  EXPECT_EQ(a.observations, b.observations);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.observed_e2e_rate, b.observed_e2e_rate);
  EXPECT_EQ(a.ground_truth_delivery, b.ground_truth_delivery);
  EXPECT_EQ(a.true_link_loss, b.true_link_loss);
  EXPECT_EQ(a.overhead_bytes_ratio, b.overhead_bytes_ratio);
  EXPECT_EQ(a.overhead_packets_ratio, b.overhead_packets_ratio);
  EXPECT_EQ(a.data_link_crossings, b.data_link_crossings);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i].packets, b.checkpoints[i].packets);
    EXPECT_EQ(a.checkpoints[i].convicted, b.checkpoints[i].convicted);
  }
}

constexpr protocols::ProtocolKind kAllProtocols[] = {
    protocols::ProtocolKind::kFullAck,
    protocols::ProtocolKind::kPaai1,
    protocols::ProtocolKind::kPaai2,
    protocols::ProtocolKind::kCombination1,
    protocols::ProtocolKind::kCombination2,
    protocols::ProtocolKind::kStatisticalFl,
    protocols::ProtocolKind::kSigAck,
};

TEST(Integration, ProfilerNeverAffectsResults) {
  for (const auto kind : kAllProtocols) {
    runner::ExperimentConfig cfg = runner::paper_config(kind, 1200, 42);
    cfg.checkpoints = {400, 1200};

    const runner::ExperimentResult off = runner::run_experiment(cfg);
    runner::ExperimentResult on;
    {
      ProfilerGuard prof;
      on = runner::run_experiment(cfg);
      // The profiler actually saw the run (the guarantee is about
      // results, not about the profiler being a no-op).
      EXPECT_GT(
          PhaseProfiler::global().totals(Phase::kSimLoop).calls, 0u)
          << protocols::protocol_name(kind);
    }
    SCOPED_TRACE(protocols::protocol_name(kind));
    expect_identical(off, on);
  }
}

TEST(Integration, TelemetryNeverAffectsResults) {
  RegistryGuard guard;
  for (const auto kind : kAllProtocols) {
    runner::ExperimentConfig cfg = runner::paper_config(kind, 1200, 7);
    cfg.checkpoints = {600};

    const runner::ExperimentResult without = runner::run_experiment(cfg);

    std::ostringstream os;
    TelemetrySink sink(os, 100);
    runner::ExperimentConfig with_sink = cfg;
    with_sink.telemetry = &sink;
    const runner::ExperimentResult with = runner::run_experiment(with_sink);
    EXPECT_GT(sink.samples(), 0u) << protocols::protocol_name(kind);

    SCOPED_TRACE(protocols::protocol_name(kind));
    // events_processed included: the sampler's own fires are subtracted.
    expect_identical(without, with);
  }
}

// --- serve lag / back-pressure --------------------------------------

TEST(ServeLag, ThrottledConsumerShowsBacklogAndLag) {
  RegistryGuard guard;

  // Record a real event stream.
  runner::ExperimentConfig cfg =
      runner::paper_config(protocols::ProtocolKind::kPaai1, 2000, 3);
  EventLog log(1 << 18);
  cfg.path.events = &log;
  runner::run_experiment(cfg);
  std::stringstream wire;
  log.write_jsonl(wire);
  const std::int64_t total_bytes =
      static_cast<std::int64_t>(wire.str().size());
  ASSERT_GT(total_bytes, 0);

  std::ostringstream tele;
  TelemetrySink sink(tele, 200);

  stream::ScoreEngine engine;
  stream::ServeConfig serve_cfg;
  serve_cfg.announce = false;
  serve_cfg.telemetry = &sink;
  // Throttled-consumer probe: everything the producer wrote that the
  // loop has not consumed yet counts as backlog. Mid-stream this is
  // large; at EOF it is zero.
  serve_cfg.backlog_bytes = [&wire, total_bytes]() -> std::int64_t {
    const auto pos = wire.tellg();
    if (pos < 0) return 0;
    return total_bytes - static_cast<std::int64_t>(pos);
  };
  std::ostringstream sink_log;
  const stream::ServeReport report =
      stream::serve_stream(engine, wire, sink_log, serve_cfg, nullptr);

  ASSERT_FALSE(report.failed) << report.error;
  EXPECT_GT(report.applied, 0u);
  // Forensic logs carry many more wire events than score-relevant ones,
  // so the ingest/apply lag is structurally nonzero.
  EXPECT_GT(report.peak_lag_events, 0u);
  EXPECT_GT(report.peak_backlog_bytes, 0);
  EXPECT_EQ(report.final_backlog_bytes, 0);
  EXPECT_GT(report.parse_stall_ns, 0u);
  EXPECT_GT(report.apply_stall_ns, 0u);

  // The telemetry stream saw the lag gauges with nonzero values.
  const auto samples = parse_all(tele.str());
  ASSERT_GE(samples.size(), 2u);
  bool lag_seen = false;
  bool backlog_seen = false;
  for (const auto& s : samples) {
    for (const auto& g : s.gauges) {
      if (g.name == "stream.serve.lag_events" && g.high > 0) lag_seen = true;
      if (g.name == "stream.serve.backlog_bytes" && g.high > 0) {
        backlog_seen = true;
      }
    }
  }
  EXPECT_TRUE(lag_seen);
  EXPECT_TRUE(backlog_seen);
}

// --- concurrency (runs under TSan in tools/check.sh) -----------------

TEST(Concurrency, SamplerRacesProducers) {
  RegistryGuard guard;
  ProfilerGuard prof;
  std::ostringstream os;
  TelemetrySink sink(os, 1);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stop, t] {
      auto counter = MetricsRegistry::global().counter("tele.race.counter");
      auto gauge = MetricsRegistry::global().gauge("tele.race.gauge");
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.add();
        gauge.set(static_cast<std::int64_t>(i % 1000));
        PhaseProfiler::global().add(Phase::kExecTask, 5);
        PhaseProfiler::global().record_queue_depth(QueueId::kExecQueue,
                                                   (t + i) % 64);
        ++i;
      }
    });
  }
  for (std::uint64_t u = 1; u <= 200; ++u) sink.sample_now(u);
  stop.store(true);
  for (auto& w : workers) w.join();

  const auto samples = parse_all(os.str());
  ASSERT_EQ(samples.size(), 200u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].sample, i);  // monotone under contention
  }
}

}  // namespace
}  // namespace paai::obs
