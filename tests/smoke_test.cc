// End-to-end smoke tests: each protocol runs on the paper's reference path
// (d = 6, rho = 0.01, malicious F_4 at 0.02) and must localize link l_4;
// on a clean path nothing may be convicted.
#include <gtest/gtest.h>

#include "runner/experiment.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

TEST(Smoke, FullAckLocalizesMaliciousLink) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 4000, 42);
  const ExperimentResult result = run_experiment(cfg);
  EXPECT_EQ(result.packets_sent, 4000u);
  EXPECT_GT(result.observations, 3900u);
  EXPECT_EQ(result.final_convicted, std::vector<std::size_t>{4});
}

TEST(Smoke, FullAckCleanPathConvictsNothing) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 4000, 43);
  cfg.adversaries.clear();
  cfg.link_faults.clear();
  const ExperimentResult result = run_experiment(cfg);
  EXPECT_TRUE(result.final_convicted.empty());
  EXPECT_LT(result.observed_e2e_rate, 0.15);
}

TEST(Smoke, Paai1LocalizesMaliciousLink) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kPaai1, 60000, 44);
  const ExperimentResult result = run_experiment(cfg);
  EXPECT_EQ(result.final_convicted, std::vector<std::size_t>{4});
}

TEST(Smoke, Paai2LocalizesMaliciousLink) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kPaai2, 400000, 45);
  const ExperimentResult result = run_experiment(cfg);
  EXPECT_EQ(result.final_convicted, std::vector<std::size_t>{4});
}

}  // namespace
}  // namespace paai::runner
