// Adversarial behaviour tests — the attacks the protocol design calls out
// and defeats:
//   * selective ack-dropping to incriminate honest links (§5 fn. 6, §4);
//   * withhold-until-probed against delayed sampling (§5), defeated by
//     timestamp freshness;
//   * packet alteration folded into the drop semantics (§5);
//   * colluding multi-node droppers sharing the work (§4 "Security");
//   * per-type drop-rate splitting (Corollary 1).
// The security property asserted throughout: every convicted link is
// adjacent to a compromised node, and data-dropping adversaries do get
// convicted. ("The literature shows that such protocols can only identify
// links adjacent to malicious nodes" — §3.1.)
#include <gtest/gtest.h>

#include <algorithm>

#include "runner/experiment.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

std::string protocol_only_name(
    const ::testing::TestParamInfo<ProtocolKind>& info) {
  std::string name = protocols::protocol_name(info.param);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

bool adjacent_to(std::size_t link, std::size_t node) {
  return link == node || link + 1 == node;
}

ExperimentConfig attack_config(ProtocolKind kind, std::uint64_t packets,
                               std::uint64_t seed) {
  ExperimentConfig cfg = paper_config(kind, packets, seed);
  cfg.link_faults.clear();
  cfg.params.probe_probability = 1.0 / 9.0;
  cfg.params.send_rate_pps = 500.0;
  return cfg;
}

class AckDropAttack : public ::testing::TestWithParam<ProtocolKind> {};

// A node dropping *every* report/ack that crosses it cannot get an honest
// non-adjacent link convicted.
TEST_P(AckDropAttack, CannotIncriminateHonestLinks) {
  ExperimentConfig cfg = attack_config(GetParam(), 20000, 21);
  AdversarySpec spec;
  spec.node = 3;
  spec.kind = AdversarySpec::Kind::kAckOnly;
  spec.rate = 1.0;
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  for (const std::size_t link : result.final_convicted) {
    EXPECT_TRUE(adjacent_to(link, 3))
        << protocols::protocol_name(GetParam())
        << ": ack-dropper at F_3 incriminated honest l_" << link;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AckDropAttack,
    ::testing::Values(ProtocolKind::kFullAck, ProtocolKind::kPaai1,
                      ProtocolKind::kPaai2, ProtocolKind::kCombination1),
    protocol_only_name);

// Withholding data until the probe reveals whether it is monitored: the
// released packet carries an expired timestamp, honest neighbours reject
// it, and the drop lands on the adversary's own link.
TEST(WithholdAttack, ReleaseOnProbeStillConvictsAdversary) {
  ExperimentConfig cfg = attack_config(ProtocolKind::kPaai1, 20000, 22);
  AdversarySpec spec;
  spec.node = 3;
  spec.kind = AdversarySpec::Kind::kWithholdRelease;
  spec.rate = 0.5;
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  ASSERT_FALSE(result.final_convicted.empty())
      << "withhold-release attack went undetected";
  for (const std::size_t link : result.final_convicted) {
    EXPECT_TRUE(adjacent_to(link, 3)) << "incriminated honest l_" << link;
  }
}

TEST(WithholdAttack, SilentDropVariantConvictsAdversary) {
  ExperimentConfig cfg = attack_config(ProtocolKind::kPaai1, 20000, 23);
  AdversarySpec spec;
  spec.node = 2;
  spec.kind = AdversarySpec::Kind::kWithholdDrop;
  spec.rate = 0.5;
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  ASSERT_FALSE(result.final_convicted.empty());
  for (const std::size_t link : result.final_convicted) {
    EXPECT_TRUE(adjacent_to(link, 2)) << "incriminated honest l_" << link;
  }
}

// Alteration is treated exactly like dropping (§5): a corrupting node is
// localized the same way a dropping node is.
class CorruptAttack : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(CorruptAttack, AlterationIsLocalizedLikeDropping) {
  ExperimentConfig cfg = attack_config(GetParam(), 25000, 24);
  if (GetParam() == ProtocolKind::kFullAck) cfg.params.total_packets = 4000;
  AdversarySpec spec;
  spec.node = 4;
  spec.kind = AdversarySpec::Kind::kCorrupt;
  spec.rate = 0.5;
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  ASSERT_FALSE(result.final_convicted.empty())
      << protocols::protocol_name(GetParam()) << " missed the corrupter";
  for (const std::size_t link : result.final_convicted) {
    EXPECT_TRUE(adjacent_to(link, 4)) << "incriminated honest l_" << link;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CorruptAttack,
    ::testing::Values(ProtocolKind::kFullAck, ProtocolKind::kPaai1,
                      ProtocolKind::kPaai2),
    protocol_only_name);

// Colluding droppers: both compromised regions are localized; nothing
// outside their adjacency is convicted. (§4: colluders can share the
// drops, but the total stays bounded and each share is attributable.)
TEST(Collusion, TwoDroppersBothLocalized) {
  ExperimentConfig cfg = attack_config(ProtocolKind::kPaai1, 30000, 25);
  for (const std::size_t z : {std::size_t{2}, std::size_t{4}}) {
    AdversarySpec spec;
    spec.node = z;
    spec.kind = AdversarySpec::Kind::kTypeRates;
    spec.type_rates.data = 0.3;
    cfg.adversaries.push_back(spec);
  }

  const ExperimentResult result = run_experiment(cfg);
  auto convicted = result.final_convicted;
  EXPECT_NE(std::find(convicted.begin(), convicted.end(), 2u),
            convicted.end())
      << "l_2 escaped";
  EXPECT_NE(std::find(convicted.begin(), convicted.end(), 4u),
            convicted.end())
      << "l_4 escaped";
  for (const std::size_t link : convicted) {
    EXPECT_TRUE(adjacent_to(link, 2) || adjacent_to(link, 4))
        << "incriminated honest l_" << link;
  }
}

// Bursty (non-i.i.d.) dropping: localization depends only on long-run
// rates, so a congestion-mimicking burst dropper is convicted like a
// uniform one.
TEST(BurstAttack, BurstyDropperIsLocalized) {
  ExperimentConfig cfg = attack_config(ProtocolKind::kPaai1, 30000, 28);
  AdversarySpec spec;
  spec.node = 4;
  spec.kind = AdversarySpec::Kind::kBurst;
  spec.burst = 30;
  spec.burst_period = 100;  // 30% long-run data drop, in bursts
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  ASSERT_FALSE(result.final_convicted.empty());
  for (const std::size_t link : result.final_convicted) {
    EXPECT_TRUE(adjacent_to(link, 4)) << "incriminated honest l_" << link;
  }
}

// Latency jitter: per-hop delay variation within the provisioned bounds
// must not break the wait-timer cascade — no false positives, and the
// adversary is still localized.
TEST(Robustness, LatencyJitterWithinBoundsIsHarmless) {
  ExperimentConfig clean = attack_config(ProtocolKind::kPaai1, 25000, 29);
  clean.path.jitter_ms = 0.5;
  const ExperimentResult rc = run_experiment(clean);
  EXPECT_TRUE(rc.final_convicted.empty());

  ExperimentConfig attacked = attack_config(ProtocolKind::kPaai1, 25000, 29);
  attacked.path.jitter_ms = 0.5;
  AdversarySpec spec;
  spec.node = 4;
  spec.kind = AdversarySpec::Kind::kTypeRates;
  spec.type_rates.data = 0.4;
  attacked.adversaries.push_back(spec);
  const ExperimentResult ra = run_experiment(attacked);
  ASSERT_FALSE(ra.final_convicted.empty());
  EXPECT_EQ(ra.final_convicted.front(), 4u);
}

TEST(Robustness, JitterFullAckAndStatFlStayClean) {
  for (const auto kind :
       {ProtocolKind::kFullAck, ProtocolKind::kStatisticalFl}) {
    ExperimentConfig cfg = attack_config(kind, 12000, 30);
    cfg.path.jitter_ms = 0.5;
    cfg.params.fl_sampling = 1.0;
    cfg.params.fl_interval_packets = 300;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_TRUE(r.final_convicted.empty())
        << protocols::protocol_name(kind) << " FP under jitter";
  }
}

// Corollary 1: splitting the same drop budget across packet types does not
// let the adversary escape — it is still convicted, and only adjacently.
TEST(Corollary1, TypeSplitDropperStillConvicted) {
  ExperimentConfig cfg = attack_config(ProtocolKind::kPaai1, 30000, 26);
  AdversarySpec spec;
  spec.node = 4;
  spec.kind = AdversarySpec::Kind::kTypeRates;
  spec.type_rates = {0.25, 0.25, 0.25};
  cfg.adversaries.push_back(spec);

  const ExperimentResult result = run_experiment(cfg);
  ASSERT_FALSE(result.final_convicted.empty());
  for (const std::size_t link : result.final_convicted) {
    EXPECT_TRUE(adjacent_to(link, 4)) << "incriminated honest l_" << link;
  }
}

// An ack-only dropper cannot reduce *data* delivery at all: suppressing
// the control plane wastes the source's probes but every data packet keeps
// flowing. (This is why Corollary 1 says type-splitting buys nothing.)
TEST(AckDropAttackEffect, DataPlaneThroughputUnaffected) {
  ExperimentConfig clean = attack_config(ProtocolKind::kFullAck, 4000, 27);
  ExperimentConfig attacked = clean;
  AdversarySpec spec;
  spec.node = 3;
  spec.kind = AdversarySpec::Kind::kAckOnly;
  spec.rate = 1.0;
  attacked.adversaries.push_back(spec);

  const ExperimentResult a = run_experiment(clean);
  const ExperimentResult b = run_experiment(attacked);
  // Data-packet link crossings (ground truth) match within natural-loss
  // noise: the attack did not remove a single data packet.
  const double ratio = static_cast<double>(b.data_link_crossings) /
                       static_cast<double>(a.data_link_crossings);
  EXPECT_NEAR(ratio, 1.0, 0.02);
}

// The delayed-sampling secrecy property: an adversary that drops only
// *unsampled* packets would evade detection — but it cannot identify them.
// We verify the mechanism: with PAAI-1, probes arrive strictly after the
// freshness window, so "wait for the probe, then decide" forces staleness.
TEST(DelayedSampling, ProbeDelayExceedsFreshnessWindow) {
  sim::Simulator simulator;
  sim::PathConfig pc;
  pc.length = 6;
  pc.seed = 1;
  sim::PathNetwork net(simulator, pc);
  const auto provider = crypto::make_fast_crypto();
  const crypto::KeyStore keys(crypto::test_master_key(1), 6);
  const protocols::ProtocolContext ctx(*provider, keys, net, {});
  EXPECT_GT(ctx.probe_delay(), ctx.freshness_window());
  // And the freshness window itself admits any honest transit.
  EXPECT_GE(ctx.freshness_window(), net.path_rtt_bound() / 2);
}

}  // namespace
}  // namespace paai::runner
