// Adaptive-adversary tests: the AdversaryPlan grammar (parse/round-trip/
// mutation fuzz), the four adaptive strategies' decision behaviour against
// the observation channel, end-to-end forensic fidelity of the fault
// colluder (convict the adversarial link, not the bursty honest one), the
// inert-chaos invariant (zero-rate adaptive strategies under every benign
// fault plan change nothing), and bit-identity across --jobs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/spec.h"
#include "adversary/strategy.h"
#include "faults/plan.h"
#include "protocols/factory.h"
#include "runner/experiment.h"
#include "runner/montecarlo.h"
#include "sim/time.h"
#include "util/rng.h"

namespace paai::adversary {
namespace {

// ---------------------------------------------------------------------------
// Grammar: parse, canonical rendering, rejection, mutation fuzz.

TEST(AdversaryPlan, ParsesEveryKindAndRoundTrips) {
  const std::vector<std::string> specs = {
      "uniform@4:rate=0.02",
      "type@3:data=0.1,probe=0,ack=0.5",
      "ack@1:rate=1",
      "corrupt@2:rate=0.05",
      "withhold@3:rate=1,release=1",
      "withhold@3:rate=0.5,release=0",
      "originfilter@1:min=3",
      "burst@4:burst=30,period=100",
      "collude@4:rate=0.5",
      "stealth@4:margin=0.9",
      "probeshy@4:rate=0.05,cooldown=5",
      "onoff@4:rate=0.25,on=5,off=15",
  };
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec);
    const AdversaryPlan plan = AdversaryPlan::parse(spec);
    ASSERT_EQ(plan.specs.size(), 1u);
    const AdversaryPlan again = AdversaryPlan::parse(plan.to_string());
    EXPECT_EQ(again.to_string(), plan.to_string());
  }
  // Multi-clause specs join with ';' and keep clause order.
  const AdversaryPlan multi =
      AdversaryPlan::parse("stealth@4:margin=0.9;ack@1:rate=1");
  ASSERT_EQ(multi.specs.size(), 2u);
  EXPECT_EQ(multi.specs[0].node, 4u);
  EXPECT_EQ(multi.specs[1].node, 1u);
  EXPECT_EQ(AdversaryPlan::parse(multi.to_string()).to_string(),
            multi.to_string());
}

TEST(AdversaryPlan, JsonFormsParse) {
  const AdversaryPlan array = AdversaryPlan::parse(
      R"([{"kind": "stealth", "node": 4, "margin": 0.8}])");
  ASSERT_EQ(array.specs.size(), 1u);
  EXPECT_EQ(array.specs[0].kind, Spec::Kind::kThresholdStealth);
  EXPECT_DOUBLE_EQ(array.specs[0].margin, 0.8);

  const AdversaryPlan object = AdversaryPlan::parse(
      R"({"adversaries": [{"kind": "collude", "node": 4, "rate": 1},
                          {"kind": "ack", "node": 1, "rate": 0.5}]})");
  ASSERT_EQ(object.specs.size(), 2u);
  EXPECT_EQ(object.specs[0].kind, Spec::Kind::kFaultCollude);
  EXPECT_EQ(object.specs[1].kind, Spec::Kind::kAckOnly);
  // JSON and compact forms canonicalise identically.
  EXPECT_EQ(object.to_string(),
            AdversaryPlan::parse("collude@4:rate=1;ack@1:rate=0.5")
                .to_string());
}

TEST(AdversaryPlan, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "uniform@4",                        // missing required rate
      "uniform@4:rate=1.5",               // rate out of [0, 1]
      "uniform@4:rate=0.1,typo=1",        // unknown key
      "nosuchkind@4:rate=0.1",            // unknown kind
      "uniform@x:rate=0.1",               // non-numeric node
      "collude@4:rate=0.5;collude@4:rate=1",  // duplicate node
      "onoff@4:rate=0.1,on=0,off=0",      // degenerate duty cycle
      "burst@4:burst=200,period=100",     // burst longer than period
      "withhold@3:rate=1,release=2",      // release must be 0|1
      "stealth@4:margin=-1",              // negative margin
      R"([{"node": 4}])",                 // JSON clause without kind
      R"({"adversaries": 3})",            // wrong JSON shape
  };
  for (const auto& spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(AdversaryPlan::parse(spec), std::invalid_argument);
  }
}

TEST(AdversaryPlan, FuzzedSpecsRejectCleanlyOrRoundTrip) {
  // Mutation fuzz over the compact grammar, mirroring the FaultPlan fuzz
  // in faults_test.cc (the two plans share util/specgrammar, so both
  // suites hammer the same lexer): every mutated spec must either parse —
  // and then survive a parse(to_string()) round trip — or throw
  // std::invalid_argument. Never crash, never throw anything else.
  const std::vector<std::string> seeds = {
      "uniform@4:rate=0.02",
      "collude@4:rate=0.5",
      "stealth@4:margin=0.9",
      "probeshy@4:rate=0.05,cooldown=5",
      "onoff@4:rate=0.25,on=5,off=15",
      "withhold@3:rate=1,release=1;originfilter@1:min=3",
      "burst@4:burst=30,period=100;type@2:data=0.1,probe=0,ack=0.5",
      "",
  };
  const std::string charset = "0123456789abcdefgXZ@:;,=.+- \t";
  Rng rng(20260808);

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string spec = seeds[rng.next_below(seeds.size())];
    // 0..3 random edits; zero edits keeps some iterations on the valid
    // seeds so the accept path stays exercised.
    const std::uint64_t edits = rng.next_below(4);
    for (std::uint64_t e = 0; e < edits; ++e) {
      const std::uint64_t op = rng.next_below(3);
      if (spec.empty() || op == 2) {
        spec.insert(rng.next_below(spec.size() + 1), 1,
                    charset[rng.next_below(charset.size())]);
      } else if (op == 0) {
        spec[rng.next_below(spec.size())] =
            charset[rng.next_below(charset.size())];
      } else {
        spec.erase(rng.next_below(spec.size()), 1);
      }
    }
    try {
      const AdversaryPlan plan = AdversaryPlan::parse(spec);
      const AdversaryPlan again = AdversaryPlan::parse(plan.to_string());
      EXPECT_EQ(again.to_string(), plan.to_string()) << "spec: " << spec;
      ++accepted;
    } catch (const std::invalid_argument&) {
      ++rejected;  // clean rejection is the expected failure mode
    }
  }
  // The mutator must have exercised both paths.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(AdversaryPlan, MakeStrategyBuildsEveryKind) {
  const AdversaryPlan plan = AdversaryPlan::parse(
      "uniform@1:rate=0.1;type@2:data=0.1,probe=0,ack=0;ack@3:rate=1;"
      "collude@4:rate=0.5");
  Environment env;
  Rng rng(7);
  for (const auto& spec : plan.specs) {
    SCOPED_TRACE(spec.to_string());
    auto s = make_strategy(spec, env, rng.fork(spec.node));
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->active());
  }
}

// ---------------------------------------------------------------------------
// Strategy behaviour against a synthetic observation channel.

Context data_ctx(sim::SimTime now = 0) {
  Context c;
  c.type = net::PacketType::kData;
  c.dir = sim::Direction::kToDest;
  c.node_index = 4;
  c.now = now;
  return c;
}

/// Scripted cover signal: active exactly inside [open, close).
class WindowCover final : public FaultObservation {
 public:
  WindowCover(sim::SimTime open, sim::SimTime close)
      : open_(open), close_(close) {}
  bool cover_active(sim::SimTime now) const override {
    return now >= open_ && now < close_;
  }

 private:
  sim::SimTime open_;
  sim::SimTime close_;
};

TEST(FaultColluder, HonestWithoutCoverSignal) {
  // No fault plan → Environment::cover is null → nothing to hide behind,
  // so even a rate-1 colluder forwards everything.
  Environment env;  // cover == nullptr
  auto s = make_fault_colluder(1.0, env, Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(s->on_packet(data_ctx(sim::seconds(i))), Action::kForward);
  }
}

TEST(FaultColluder, DropsOnlyInsideCoverWindows) {
  const WindowCover cover(sim::seconds(10.0), sim::seconds(20.0));
  Environment env;
  env.cover = &cover;
  auto s = make_fault_colluder(1.0, env, Rng(2));
  int in_window_drops = 0;
  for (int i = 0; i < 30; ++i) {
    const sim::SimTime t = sim::seconds(static_cast<double>(i) + 0.5);
    const Action a = s->on_packet(data_ctx(t));
    if (i >= 10 && i < 20) {
      EXPECT_EQ(a, Action::kDrop) << "t=" << i;
      ++in_window_drops;
    } else {
      EXPECT_EQ(a, Action::kForward) << "t=" << i;
    }
  }
  EXPECT_EQ(in_window_drops, 10);
  // Acks and reverse-path traffic pass even inside the window.
  Context ack = data_ctx(sim::seconds(15.0));
  ack.type = net::PacketType::kReportAck;
  ack.dir = sim::Direction::kToSource;
  EXPECT_EQ(s->on_packet(ack), Action::kForward);
}

TEST(ThresholdStealthDropper, TracksMarginTimesThreshold) {
  Environment env;
  env.decision_threshold = 0.018;
  env.natural_loss = 0.01;
  auto s = make_threshold_stealth_dropper(0.9, env, Rng(3));
  const int n = 50000;
  int drops = 0;
  for (int i = 0; i < n; ++i) {
    if (s->on_packet(data_ctx(sim::seconds(i * 0.01))) == Action::kDrop) {
      ++drops;
    }
  }
  // Composite downstream loss the scorer would converge to:
  const double own = static_cast<double>(drops) / n;
  const double composite = env.natural_loss + (1.0 - env.natural_loss) * own;
  const double target = 0.9 * env.decision_threshold;
  EXPECT_LE(composite, target);
  EXPECT_GT(composite, target * 0.95);  // rides the target, not far below
}

TEST(ThresholdStealthDropper, MarginAboveOneExceedsThreshold) {
  Environment env;
  env.decision_threshold = 0.018;
  env.natural_loss = 0.01;
  auto s = make_threshold_stealth_dropper(1.5, env, Rng(3));
  int drops = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (s->on_packet(data_ctx(sim::seconds(i * 0.01))) == Action::kDrop) {
      ++drops;
    }
  }
  const double composite =
      env.natural_loss +
      (1.0 - env.natural_loss) * static_cast<double>(drops) / n;
  EXPECT_GT(composite, env.decision_threshold);
}

TEST(ProbeShyDropper, BacksOffAfterBeingSampled) {
  Environment env;
  auto s = make_probe_shy_dropper(1.0, /*cooldown_seconds=*/10.0, env,
                                  Rng(4));
  ASSERT_TRUE(s->wants_packet_ids());

  const net::PacketId id{{1, 2, 3}};
  Context data = data_ctx(sim::seconds(1.0));
  data.packet_id = &id;
  // rate=1, no probe seen yet: drops.
  EXPECT_EQ(s->on_packet(data), Action::kDrop);

  // A probe referencing the recently-seen id opens the cooldown.
  Context probe = data_ctx(sim::seconds(2.0));
  probe.type = net::PacketType::kProbe;
  probe.probe_data_id = &id;
  EXPECT_EQ(s->on_packet(probe), Action::kForward);

  // Inside the cooldown even a rate-1 dropper forwards...
  data.now = sim::seconds(5.0);
  EXPECT_EQ(s->on_packet(data), Action::kForward);
  // ...and resumes dropping once it expires.
  data.now = sim::seconds(12.5);
  EXPECT_EQ(s->on_packet(data), Action::kDrop);

  // A probe for an id the node never saw does not trigger backoff.
  const net::PacketId unseen{{9, 9, 9}};
  probe.now = sim::seconds(13.0);
  probe.probe_data_id = &unseen;
  EXPECT_EQ(s->on_packet(probe), Action::kForward);
  data.now = sim::seconds(13.5);
  EXPECT_EQ(s->on_packet(data), Action::kDrop);
}

TEST(OnOffDropper, RespectsDutyCycle) {
  auto s = make_on_off_dropper(1.0, /*on=*/5.0, /*off=*/15.0, Rng(5));
  int drops = 0;
  const int n = 4000;  // 400 s ≈ 20 periods at 10 pps
  for (int i = 0; i < n; ++i) {
    if (s->on_packet(data_ctx(sim::seconds(i * 0.1))) == Action::kDrop) {
      ++drops;
    }
  }
  // rate=1 inside ON windows → overall ≈ on / (on + off) = 25%.
  const double duty = static_cast<double>(drops) / n;
  EXPECT_NEAR(duty, 0.25, 0.05);
  // Drops arrive in contiguous runs, not Bernoulli-scattered: the count
  // of OFF→ON transitions must be ~n_periods, far below drop count.
  int transitions = 0;
  bool prev = false;
  auto s2 = make_on_off_dropper(1.0, 5.0, 15.0, Rng(5));
  for (int i = 0; i < n; ++i) {
    const bool d =
        s2->on_packet(data_ctx(sim::seconds(i * 0.1))) == Action::kDrop;
    if (d && !prev) ++transitions;
    prev = d;
  }
  EXPECT_LE(transitions, 25);
}

TEST(AdaptiveStrategies, SetActiveFalseForwardsEverything) {
  const WindowCover cover(0, sim::seconds(1e6));
  Environment env;
  env.cover = &cover;
  std::vector<std::unique_ptr<Strategy>> all;
  all.push_back(make_fault_colluder(1.0, env, Rng(6)));
  all.push_back(make_threshold_stealth_dropper(5.0, env, Rng(6)));
  all.push_back(make_probe_shy_dropper(1.0, 1.0, env, Rng(6)));
  all.push_back(make_on_off_dropper(1.0, 10.0, 0.0, Rng(6)));
  for (auto& s : all) {
    s->set_active(false);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(s->on_packet(data_ctx(sim::seconds(i))), Action::kForward);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: forensic fidelity, inert chaos, --jobs bit-identity.

runner::ExperimentConfig colluder_config(std::uint64_t seed) {
  // The §8.1 path with a rate-1 fault colluder at F_4 hiding in the
  // calibrated Gilbert–Elliott burst plan on honest l_2. Full-ack monitors
  // every packet and localises per hop, so it attributes the in-window
  // drops to l_4 even though they land exactly when l_2 is bursting —
  // PAAI-1's blame-to-first-failing-hop heuristic is measurably worse
  // here (see bench_robustness section C).
  runner::ExperimentConfig cfg = runner::paper_config(
      protocols::ProtocolKind::kFullAck, 20000, seed);
  cfg.link_faults.clear();
  cfg.adversaries = AdversaryPlan::parse("collude@4:rate=1").specs;
  cfg.faults =
      faults::FaultPlan::parse("ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15");
  return cfg;
}

TEST(ForensicFidelity, ColluderConvictedBurstyHonestLinkExonerated) {
  const runner::ExperimentResult r =
      runner::run_experiment(colluder_config(1));
  // Exactly the adversarial link is convicted: not the GE-bursty honest
  // l_2, whose stationary loss (~0.011 over the horizon) stays below the
  // threshold, and not any other honest link.
  ASSERT_EQ(r.final_convicted.size(), 1u);
  EXPECT_EQ(r.final_convicted[0], 4u);
  // Ground truth confirms the colluder did real damage on l_4 (well above
  // both rho and the threshold) while l_2 stayed near its benign rate.
  ASSERT_EQ(r.true_link_loss.size(), 6u);
  EXPECT_GT(r.true_link_loss[4], 0.022);
  EXPECT_LT(r.true_link_loss[2], 0.018);
  EXPECT_GT(r.final_thetas[4], 0.018);
  EXPECT_LT(r.final_thetas[2], 0.018);
}

TEST(InertChaos, ZeroRateStrategiesUnderBenignPlansChangeNothing) {
  // Every benign fault plan × every adaptive strategy with its drop knob
  // at zero: nobody is convicted, and — stronger — the run is
  // bit-identical to the same plan with no strategy installed at all
  // (a zero-rate adaptive adversary only *observes*; observation must
  // never perturb the simulation).
  const std::vector<std::string> inert = {
      "collude@4:rate=0",
      "stealth@4:margin=0",
      "probeshy@4:rate=0,cooldown=5",
      "onoff@4:rate=0,on=5,off=15",
  };
  ASSERT_FALSE(faults::benign_plans().empty());
  for (const auto& named : faults::benign_plans()) {
    runner::ExperimentConfig base = runner::paper_config(
        protocols::ProtocolKind::kPaai1, 6000, /*seed=*/11);
    base.link_faults.clear();
    base.faults = faults::FaultPlan::parse(named.spec);
    const runner::ExperimentResult clean = runner::run_experiment(base);
    EXPECT_TRUE(clean.final_convicted.empty()) << named.name;
    for (const auto& spec : inert) {
      SCOPED_TRACE(std::string(named.name) + " + " + spec);
      runner::ExperimentConfig cfg = base;
      cfg.adversaries = AdversaryPlan::parse(spec).specs;
      const runner::ExperimentResult r = runner::run_experiment(cfg);
      EXPECT_TRUE(r.final_convicted.empty());
      EXPECT_EQ(r.final_thetas, clean.final_thetas);
      EXPECT_EQ(r.observations, clean.observations);
      EXPECT_EQ(r.events_processed, clean.events_processed);
      EXPECT_EQ(r.true_link_loss, clean.true_link_loss);
    }
  }
}

TEST(AdaptiveDeterminism, BitIdenticalAcrossJobs) {
  // Monte-Carlo with an adaptive (stateful, observation-driven) adversary
  // must fold to identical results whatever the worker count — the
  // acceptance bar for the --adversary flag on every bench.
  runner::MonteCarloConfig mc;
  mc.base =
      runner::paper_config(protocols::ProtocolKind::kPaai1, 4000, 1);
  mc.base.link_faults.clear();
  mc.base.adversaries =
      AdversaryPlan::parse("collude@4:rate=1;probeshy@2:rate=0.05,cooldown=2")
          .specs;
  mc.base.faults =
      faults::FaultPlan::parse("ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15");
  mc.base.checkpoints = {1000, 2000, 4000};
  mc.runs = 4;
  mc.malicious_links = {4};
  mc.jobs = 1;
  const runner::MonteCarloResult serial = runner::run_monte_carlo(mc);
  mc.jobs = 4;
  const runner::MonteCarloResult parallel = runner::run_monte_carlo(mc);

  ASSERT_EQ(serial.curve.size(), parallel.curve.size());
  for (std::size_t i = 0; i < serial.curve.size(); ++i) {
    EXPECT_EQ(serial.curve[i].fp, parallel.curve[i].fp);
    EXPECT_EQ(serial.curve[i].fn, parallel.curve[i].fn);
  }
  ASSERT_EQ(serial.final_thetas.size(), parallel.final_thetas.size());
  for (std::size_t i = 0; i < serial.final_thetas.size(); ++i) {
    EXPECT_EQ(serial.final_thetas[i].mean(),
              parallel.final_thetas[i].mean());
    EXPECT_EQ(serial.true_link_loss[i].mean(),
              parallel.true_link_loss[i].mean());
  }
  EXPECT_EQ(serial.total_events, parallel.total_events);
}

}  // namespace
}  // namespace paai::adversary
