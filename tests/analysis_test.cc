// Analysis-module tests: the closed forms must reproduce the paper's §7.2
// worked example and the qualitative statements of Corollaries 1-3 and
// Table 1.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.h"

namespace paai::analysis {
namespace {

Params reference() {
  Params p;
  p.d = 6;
  p.rho = 0.01;
  p.alpha = 0.03;
  p.sigma = 0.03;
  p.p = 1.0 / 36.0;
  return p;
}

TEST(Bounds, WorkedExampleSection72) {
  const Params p = reference();
  // "we have tau_1 = 1500, tau_2 = 5e4 and tau_3 = 6e5; whereas the
  // detection rate in statistical FL is 2e7."
  EXPECT_NEAR(tau_fullack(p), 1500.0, 150.0);
  EXPECT_NEAR(tau_paai1(p), 5e4, 5e3);
  EXPECT_NEAR(tau_paai2(p), 6e5, 1e5);
  EXPECT_NEAR(tau_statfl(p), 2e7, 5e6);
}

TEST(Bounds, Table2MinutesAt100pps) {
  const Params p = reference();
  // Table 2 bounds: 0.25, 9, 100, 3333 minutes at 100 packets/second.
  EXPECT_NEAR(detection_minutes(tau_fullack(p), 100.0), 0.25, 0.05);
  EXPECT_NEAR(detection_minutes(tau_paai1(p), 100.0), 9.0, 1.0);
  EXPECT_NEAR(detection_minutes(tau_paai2(p), 100.0), 100.0, 15.0);
  EXPECT_NEAR(detection_minutes(tau_statfl(p), 100.0), 3333.0, 1000.0);
}

TEST(Bounds, Corollary3SensitivityToSigma) {
  // sigma dominates full-ack/PAAI-1 detection; d and rho barely matter.
  Params p = reference();
  const double base = tau_paai1(p);
  Params tighter = p;
  tighter.sigma = 0.003;
  EXPECT_GT(tau_paai1(tighter), base * 1.4);

  Params longer = p;
  longer.d = 12;
  EXPECT_LT(tau_paai1(longer) / base, 1.15);  // negligible influence

  // PAAI-2, in contrast, depends heavily on d (2^d factor).
  EXPECT_GT(tau_paai2(longer) / tau_paai2(p), 100.0);
}

TEST(Bounds, Theorem1MaliciousRates) {
  const Params p = reference();
  EXPECT_DOUBLE_EQ(zeta_onion(1, p), 0.03);
  EXPECT_DOUBLE_EQ(zeta_onion(3, p), 0.09);
  // PAAI-2's bound exceeds the onion bound (coarser localization lets the
  // adversary hide more), and grows with z.
  EXPECT_GT(zeta_paai2(1, p), zeta_onion(1, p));
  EXPECT_GT(zeta_paai2(3, p), zeta_paai2(1, p));
  // psi_th = 1 - (1-alpha)^{2d}.
  EXPECT_NEAR(psi_threshold(p), 1.0 - std::pow(0.97, 12.0), 1e-12);
  // With every link malicious, the bound degenerates to psi_th itself
  // (the (1-rho) correction disappears when d - z = 0).
  EXPECT_NEAR(zeta_paai2(p.d, p), psi_threshold(p), 1e-12);
}

TEST(Bounds, Corollary2LinearInZ) {
  const Params p = reference();
  EXPECT_DOUBLE_EQ(optimal_spread_total(4, p), 4.0 * optimal_spread_total(1, p));
}

TEST(Bounds, CommunicationOverheadOrdering) {
  Params p = reference();
  p.psi = 0.077;
  // Full-ack is the most expensive; PAAI-1 cheap; combinations cheaper
  // than their parents; statistical FL nearly free.
  EXPECT_GT(comm_fullack(p), comm_paai2(p));
  EXPECT_GT(comm_paai2(p), comm_paai1(p));
  EXPECT_GT(comm_paai1(p), comm_comb1(p));
  EXPECT_GT(comm_paai2(p), comm_comb2(p));
  EXPECT_LE(comm_statfl(p), comm_comb2(p));
  // §9: p = 1/(5 d^2) gives ~3% overhead for d = 6... in packet terms the
  // paper quotes ~3% of normal traffic for the O(d)-sized onion per
  // sampled packet.
  Params p9 = p;
  p9.p = 1.0 / (5.0 * 36.0);
  EXPECT_NEAR(comm_paai1(p9) * 100.0, 3.3, 0.5);
}

TEST(Bounds, StorageBoundsMatchTable1) {
  const Params p = reference();
  EXPECT_DOUBLE_EQ(storage_fullack(p).worst, 2.0);
  EXPECT_DOUBLE_EQ(storage_fullack(p).ideal, 1.0);
  EXPECT_NEAR(storage_paai1(p).worst, 0.5 + p.p, 1e-12);
  EXPECT_DOUBLE_EQ(storage_paai2(p).worst, 2.0);
  EXPECT_NEAR(storage_statfl(p).worst, p.p, 1e-12);
  EXPECT_NEAR(storage_comb1(p).worst, 0.5 + 2.0 * p.p, 1e-12);
  EXPECT_NEAR(storage_comb2(p).worst, 1.0 + p.p, 1e-12);
  EXPECT_DOUBLE_EQ(storage_comb2(p).ideal, 1.0);
  // PAAI-1's worst case beats full-ack's by ~4x.
  EXPECT_LT(storage_paai1(p).worst, storage_fullack(p).worst / 3.0);
}

TEST(Bounds, Corollary2SpreadVersusConcentrated) {
  Params p = reference();
  p.alpha = 0.2;
  // Spread grows linearly; concentrated compounds and saturates.
  EXPECT_NEAR(optimal_spread_total(4, p), 0.8, 1e-12);
  EXPECT_NEAR(concentrated_total(4, p), 1.0 - std::pow(0.8, 4), 1e-12);
  EXPECT_NEAR(spread_advantage(4, p),
              0.8 - (1.0 - std::pow(0.8, 4)), 1e-12);
  // Degenerate budgets: with z <= 1 links there is nothing to spread.
  EXPECT_NEAR(spread_advantage(0, p), 0.0, 1e-12);
  EXPECT_NEAR(spread_advantage(1, p), 0.0, 1e-12);
  // The gap widens with the budget, ~alpha^2 z(z-1)/2 for small z*alpha.
  EXPECT_LT(spread_advantage(2, p), spread_advantage(3, p));
  EXPECT_LT(spread_advantage(3, p), spread_advantage(4, p));
  Params small = reference();  // alpha = 0.03
  EXPECT_NEAR(spread_advantage(3, small),
              small.alpha * small.alpha * 3.0, 3e-4);
}

TEST(Bounds, DetectionRateOrderingAcrossProtocols) {
  const Params p = reference();
  EXPECT_LT(tau_fullack(p), tau_paai1(p));
  EXPECT_LT(tau_paai1(p), tau_paai2(p));
  EXPECT_LT(tau_paai2(p), tau_statfl(p));
  EXPECT_LT(tau_statfl(p), tau_comb2(p));
  EXPECT_DOUBLE_EQ(tau_comb1(p), tau_paai1(p));
}

}  // namespace
}  // namespace paai::analysis
