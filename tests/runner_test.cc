// Runner tests: checkpointing, Monte-Carlo aggregation (FP/FN accounting,
// detection point), storage sampling, bypass behaviour, overhead capture.
#include <gtest/gtest.h>

#include "runner/montecarlo.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

TEST(LogCheckpoints, CoversRangeAndDedupes) {
  const auto cps = log_checkpoints(100, 10000, 9);
  ASSERT_FALSE(cps.empty());
  EXPECT_EQ(cps.front(), 100u);
  EXPECT_EQ(cps.back(), 10000u);
  for (std::size_t i = 1; i < cps.size(); ++i) EXPECT_GT(cps[i], cps[i - 1]);
}

TEST(Experiment, CheckpointsSnapshotConvictions) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 3000, 5);
  cfg.checkpoints = {200, 1000, 3000};
  const ExperimentResult result = run_experiment(cfg);
  ASSERT_EQ(result.checkpoints.size(), 3u);
  EXPECT_EQ(result.checkpoints[0].packets, 200u);
  EXPECT_EQ(result.checkpoints[2].packets, 3000u);
  // By packet 3000 full-ack has converged on l_4.
  EXPECT_EQ(result.checkpoints[2].convicted, std::vector<std::size_t>{4});
}

TEST(Experiment, StorageSamplingProducesSeries) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 500, 6);
  cfg.params.send_rate_pps = 1000.0;
  cfg.storage_sample_period = sim::milliseconds(5.0);
  const ExperimentResult result = run_experiment(cfg);
  ASSERT_EQ(result.storage.size(), 7u);
  EXPECT_FALSE(result.storage[1].empty());
  // F_1 must hold some state while traffic flows.
  double peak = 0.0;
  for (const auto& pt : result.storage[1].points()) {
    peak = std::max(peak, pt.value);
  }
  EXPECT_GT(peak, 0.0);
}

TEST(Experiment, BypassRestoresLinkAndDropsStop) {
  // With the fault bypassed halfway, the final theta estimate for l_4
  // lands between rho and the full malicious rate.
  ExperimentConfig with_bypass =
      paper_config(ProtocolKind::kFullAck, 4000, 7);
  with_bypass.bypass_after_packets = 2000;
  ExperimentConfig without = paper_config(ProtocolKind::kFullAck, 4000, 7);

  const ExperimentResult a = run_experiment(with_bypass);
  const ExperimentResult b = run_experiment(without);
  EXPECT_LT(a.final_thetas[4], b.final_thetas[4] * 0.8);
  EXPECT_GT(a.final_thetas[4], 0.01);
}

TEST(Experiment, OverheadCapturedPerProtocol) {
  // Full-ack: ~1 control packet per data packet (plus onions on loss);
  // PAAI-1: ~p * 2 control packets per data packet. Byte ratios follow.
  ExperimentConfig fa = paper_config(ProtocolKind::kFullAck, 2000, 8);
  ExperimentConfig p1 = paper_config(ProtocolKind::kPaai1, 2000, 8);
  const ExperimentResult ra = run_experiment(fa);
  const ExperimentResult rp = run_experiment(p1);
  EXPECT_GT(ra.overhead_packets_ratio, 0.9);
  EXPECT_LT(rp.overhead_packets_ratio, 0.1);
  EXPECT_GT(ra.overhead_bytes_ratio, 5.0 * rp.overhead_bytes_ratio);
}

TEST(MonteCarlo, AggregatesFpFnAndDetects) {
  MonteCarloConfig mc;
  mc.base = paper_config(ProtocolKind::kFullAck, 3000, 0);
  mc.base.checkpoints = log_checkpoints(100, 3000, 8);
  mc.runs = 20;
  mc.seed0 = 400;
  mc.malicious_links = {4};
  mc.sigma = 0.05;

  const MonteCarloResult result = run_monte_carlo(mc);
  ASSERT_EQ(result.curve.size(), mc.base.checkpoints.size());
  // Early checkpoints are noisy; the last one must be converged.
  EXPECT_LE(result.curve.back().fp, 0.05);
  EXPECT_LE(result.curve.back().fn, 0.05);
  ASSERT_TRUE(result.detection_packets.has_value());
  EXPECT_LE(*result.detection_packets, 3000u);
  EXPECT_GT(result.per_run_detection_packets.count(), 15u);
  // theta for the malicious link concentrates near 0.03.
  EXPECT_NEAR(result.final_thetas[4].mean(), 0.0298, 0.006);
  EXPECT_NEAR(result.final_thetas[1].mean(), 0.0099, 0.004);
}

TEST(MonteCarlo, StorageGridsAggregate) {
  MonteCarloConfig mc;
  mc.base = paper_config(ProtocolKind::kPaai1, 400, 0);
  mc.base.params.send_rate_pps = 1000.0;
  mc.base.storage_sample_period = sim::milliseconds(2.0);
  mc.runs = 5;
  mc.storage_bins = 20;
  mc.storage_horizon_seconds = 0.5;

  const MonteCarloResult result = run_monte_carlo(mc);
  ASSERT_EQ(result.storage_grids.size(), 7u);
  double mean_mid = result.storage_grids[1].stat(10).mean();
  EXPECT_GT(mean_mid, 0.0);
  EXPECT_EQ(result.storage_grids[1].stat(10).count(), 5u);
}

}  // namespace
}  // namespace paai::runner
