// W-OTS signature tests and the signature-ack protocol end-to-end.
#include <gtest/gtest.h>

#include "crypto/wots.h"
#include "runner/experiment.h"

namespace paai::crypto {
namespace {

TEST(Wots, SignVerifyRoundTrip) {
  const Key seed = test_master_key(1);
  const Bytes msg = bytes_of("packet 42 arrived intact");
  const WotsPublicKey pk = wots_public_key(seed, 42);
  const Bytes sig = wots_sign(seed, 42, ByteView(msg.data(), msg.size()));
  ASSERT_EQ(sig.size(), kWotsSignatureSize);
  EXPECT_TRUE(wots_verify(pk, ByteView(msg.data(), msg.size()),
                          ByteView(sig.data(), sig.size())));
}

TEST(Wots, RejectsTamperedMessageAndSignature) {
  const Key seed = test_master_key(2);
  const Bytes msg = bytes_of("original message");
  const WotsPublicKey pk = wots_public_key(seed, 7);
  const Bytes sig = wots_sign(seed, 7, ByteView(msg.data(), msg.size()));

  Bytes other = msg;
  other.back() ^= 1;
  EXPECT_FALSE(wots_verify(pk, ByteView(other.data(), other.size()),
                           ByteView(sig.data(), sig.size())));

  Bytes bad_sig = sig;
  bad_sig[100] ^= 1;
  EXPECT_FALSE(wots_verify(pk, ByteView(msg.data(), msg.size()),
                           ByteView(bad_sig.data(), bad_sig.size())));

  EXPECT_FALSE(wots_verify(pk, ByteView(msg.data(), msg.size()),
                           ByteView(sig.data(), sig.size() - 1)));
}

TEST(Wots, KeysSeparateByIndexAndSeed) {
  const Key seed = test_master_key(3);
  EXPECT_NE(wots_public_key(seed, 0), wots_public_key(seed, 1));
  EXPECT_NE(wots_public_key(seed, 0),
            wots_public_key(test_master_key(4), 0));

  // A signature under index 0 must not verify under index 1's key.
  const Bytes msg = bytes_of("m");
  const Bytes sig = wots_sign(seed, 0, ByteView(msg.data(), msg.size()));
  EXPECT_FALSE(wots_verify(wots_public_key(seed, 1),
                           ByteView(msg.data(), msg.size()),
                           ByteView(sig.data(), sig.size())));
}

TEST(Wots, ChecksumPreventsTrivialDigitIncrease) {
  // The W-OTS checksum makes it impossible to forge by advancing chains:
  // increasing a message digit requires *decreasing* a checksum digit,
  // which would require inverting the hash chain. We spot-check that two
  // different messages never yield digit vectors where one dominates the
  // other (the classic broken-without-checksum case is common otherwise).
  const Key seed = test_master_key(5);
  const Bytes m1 = bytes_of("message one");
  const Bytes m2 = bytes_of("message two");
  const Bytes s1 = wots_sign(seed, 9, ByteView(m1.data(), m1.size()));
  const WotsPublicKey pk = wots_public_key(seed, 9);
  // Cross-verification must fail.
  EXPECT_FALSE(wots_verify(pk, ByteView(m2.data(), m2.size()),
                           ByteView(s1.data(), s1.size())));
}

}  // namespace
}  // namespace paai::crypto

namespace paai::runner {
namespace {

TEST(SigAck, LocalizesMaliciousLinkEndToEnd) {
  ExperimentConfig cfg = paper_config(protocols::ProtocolKind::kSigAck,
                                      2500, 61);
  cfg.params.send_rate_pps = 500.0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.final_convicted, std::vector<std::size_t>{4});
}

TEST(SigAck, CommunicationOverheadIsEnormous) {
  // The point of footnote 1, measured: per-packet signed acks cost more
  // bytes than the data they protect.
  ExperimentConfig cfg = paper_config(protocols::ProtocolKind::kSigAck,
                                      1500, 62);
  cfg.params.send_rate_pps = 500.0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.overhead_bytes_ratio, 1.0);

  ExperimentConfig mac_cfg = paper_config(protocols::ProtocolKind::kFullAck,
                                          1500, 62);
  mac_cfg.params.send_rate_pps = 500.0;
  const ExperimentResult mac = run_experiment(mac_cfg);
  EXPECT_GT(r.overhead_bytes_ratio, 20.0 * mac.overhead_bytes_ratio);
}

TEST(SigAck, CleanPathConvictsNothing) {
  ExperimentConfig cfg = paper_config(protocols::ProtocolKind::kSigAck,
                                      2000, 63);
  cfg.link_faults.clear();
  cfg.params.send_rate_pps = 500.0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.final_convicted.empty());
}

}  // namespace
}  // namespace paai::runner
