// Tests for the src/obs observability subsystem: metric registry
// semantics (enabled/disabled, reset, log2 bucketing, exact aggregation
// under the exec pool), the trace ring (wraparound, Chrome JSON export),
// the strict JSON writer/parser pair (hostile strings, non-finite
// numbers, malformed documents), and the BenchReport document schema —
// every emitted document must survive the strict parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "exec/parallel_for.h"
#include "obs/events.h"
#include "obs/forensics.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "runner/montecarlo.h"

namespace paai::obs {
namespace {

// Every test runs against the (process-global) registry; reset + disable
// around each use keeps them independent.
struct RegistryGuard {
  RegistryGuard() {
    MetricsRegistry::global().reset();
    MetricsRegistry::global().set_enabled(true);
  }
  ~RegistryGuard() {
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

const CounterSnapshot* find_counter(const MetricsSnapshot& snap,
                                    const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* find_gauge(const MetricsSnapshot& snap,
                                const std::string& name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* find_histogram(const MetricsSnapshot& snap,
                                        const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(Metrics, CounterBasics) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Counter c = reg.counter("test.counter");
  c.add();
  c.add(41);
  const auto snap = reg.snapshot();
  const auto* counter = find_counter(snap, "test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 42u);
}

TEST(Metrics, DisabledRegistryRecordsNothing) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Counter c = reg.counter("test.disabled");
  const Histogram h = reg.histogram("test.disabled_hist");
  reg.set_enabled(false);
  c.add(100);
  h.observe(7);
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(h.live());
  reg.set_enabled(true);
  const auto snap = reg.snapshot();
  EXPECT_EQ(find_counter(snap, "test.disabled")->value, 0u);
  EXPECT_EQ(find_histogram(snap, "test.disabled_hist")->count, 0u);
}

TEST(Metrics, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add();         // must not crash
  g.set(5);
  h.observe(9);
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(g.live());
  EXPECT_FALSE(h.live());
}

TEST(Metrics, ResetZeroesButKeepsHandles) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Counter c = reg.counter("test.reset");
  c.add(5);
  reg.reset();
  c.add(2);  // handle stays valid after reset
  const auto snap = reg.snapshot();
  EXPECT_EQ(find_counter(snap, "test.reset")->value, 2u);
}

TEST(Metrics, SameNameReturnsSameCells) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Counter a = reg.counter("test.same");
  const Counter b = reg.counter("test.same");
  a.add(1);
  b.add(2);
  const auto snap = reg.snapshot();
  EXPECT_EQ(find_counter(snap, "test.same")->value, 3u);
}

TEST(Metrics, GaugeValueAndHighWater) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Gauge g = reg.gauge("test.gauge");
  g.set(10);
  g.set(50);
  g.set(20);
  const auto snap = reg.snapshot();
  const auto* gauge = find_gauge(snap, "test.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 20);
  EXPECT_EQ(gauge->high, 50);
}

TEST(Metrics, GaugeHighFallsBackToValueWhenNeverRaised) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Gauge g = reg.gauge("test.gauge_neg");
  g.set(-5);
  const auto snap = reg.snapshot();
  const auto* gauge = find_gauge(snap, "test.gauge_neg");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, -5);
  EXPECT_EQ(gauge->high, -5);
}

TEST(Metrics, HistogramLog2BucketBoundaries) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Histogram h = reg.histogram("test.hist");
  // bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b - 1].
  h.observe(0);                       // bucket 0
  h.observe(1);                       // bucket 1
  h.observe(2);                       // bucket 2
  h.observe(3);                       // bucket 2
  h.observe(4);                       // bucket 3
  h.observe(1023);                    // bucket 10
  h.observe(1024);                    // bucket 11
  h.observe(std::numeric_limits<std::uint64_t>::max());  // bucket 64
  const auto snap = reg.snapshot();
  const auto* hist = find_histogram(snap, "test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 8u);
  EXPECT_EQ(hist->min, 0u);
  EXPECT_EQ(hist->max, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(hist->buckets[0], 1u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[2], 2u);
  EXPECT_EQ(hist->buckets[3], 1u);
  EXPECT_EQ(hist->buckets[10], 1u);
  EXPECT_EQ(hist->buckets[11], 1u);
  EXPECT_EQ(hist->buckets[64], 1u);
}

TEST(Metrics, HistogramQuantileBounds) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Histogram h = reg.histogram("test.quantile");
  for (int i = 0; i < 99; ++i) h.observe(5);    // bucket 3, bound 7
  h.observe(1'000'000);                         // bucket 20
  const auto snap = reg.snapshot();
  const auto* hist = find_histogram(snap, "test.quantile");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->quantile_bound(0.5), 7u);
  EXPECT_GE(hist->quantile_bound(1.0), 1'000'000u);
  EXPECT_NEAR(hist->mean(), (99.0 * 5.0 + 1e6) / 100.0, 1.0);
}

TEST(Metrics, ParallelAggregationIsExact) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Counter c = reg.counter("test.parallel");
  const Histogram h = reg.histogram("test.parallel_hist");
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  exec::parallel_for_each(
      kTasks,
      [&](std::size_t) {
        for (std::uint64_t i = 0; i < kPerTask; ++i) {
          c.add();
          h.observe(i);
        }
      },
      /*jobs=*/8);
  const auto snap = reg.snapshot();
  EXPECT_EQ(find_counter(snap, "test.parallel")->value, kTasks * kPerTask);
  const auto* hist = find_histogram(snap, "test.parallel_hist");
  EXPECT_EQ(hist->count, kTasks * kPerTask);
  EXPECT_EQ(hist->sum, kTasks * (kPerTask * (kPerTask - 1) / 2));
  EXPECT_EQ(hist->min, 0u);
  EXPECT_EQ(hist->max, kPerTask - 1);
}

TEST(Metrics, ScopedTimerRecordsOnlyWhenLive) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  const Histogram h = reg.histogram("test.timer");
  { ScopedTimer t(h); }
  reg.set_enabled(false);
  { ScopedTimer t(h); }
  reg.set_enabled(true);
  const auto snap = reg.snapshot();
  EXPECT_EQ(find_histogram(snap, "test.timer")->count, 1u);
}

// ---------------------------------------------------------------- tracer

TEST(Tracer, RecordsAndExports) {
  TraceRing ring(16);
  ring.instant("drop", "sim", 100, /*track=*/1, /*arg=*/4);
  ring.complete("tx", "sim", 200, /*dur_us=*/5, /*track=*/1);
  EXPECT_EQ(ring.recorded(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);

  std::ostringstream os;
  ring.write_chrome_json(os);
  std::string error;
  const auto doc = json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].find("name")->string, "drop");
  EXPECT_EQ(events->array[0].find("ph")->string, "i");
  EXPECT_EQ(events->array[1].find("ph")->string, "X");
  EXPECT_EQ(events->array[1].find("dur")->number, 5.0);
}

TEST(Tracer, WrapOverwritesOldestAndCountsDropped) {
  TraceRing ring(8);
  for (int i = 0; i < 20; ++i) {
    ring.instant("e", "t", i, /*track=*/0, i);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.retained(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::ostringstream os;
  ring.write_chrome_json(os);
  std::string error;
  const auto doc = json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_EQ(events->array.size(), 8u);
  // Oldest retained event first: 20 recorded into 8 slots keeps 12..19.
  EXPECT_EQ(events->array.front().find("ts")->number, 12.0);
  EXPECT_EQ(events->array.back().find("ts")->number, 19.0);
  EXPECT_EQ(doc->find("otherData")->find("dropped")->number, 12.0);
}

TEST(Tracer, ClearEmptiesTheRing) {
  TraceRing ring(8);
  ring.instant("e", "t", 1, 0);
  ring.clear();
  EXPECT_EQ(ring.retained(), 0u);
}

// ------------------------------------------------------------------ json

TEST(Json, QuoteEscapesHostileStrings) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote(std::string("a\0b", 3)), "\"a\\u0000b\"");
  EXPECT_EQ(json_quote("\n\t\r"), "\"\\n\\t\\r\"");
  EXPECT_EQ(json_quote("\x01"), "\"\\u0001\"");
}

TEST(Json, NumberMapsNonFiniteToNull) {
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(1.5), "1.5");
}

TEST(Json, WriterRoundTripsHostileContent) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("quote\"backslash\\").value("control\x02\x1f chars");
  w.key("nan").value(std::nan(""));
  w.key("nested").begin_array();
  w.value(std::int64_t{-42});
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();

  std::string error;
  const auto doc = json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error << " in: " << os.str();
  EXPECT_EQ(doc->find("quote\"backslash\\")->string, "control\x02\x1f chars");
  EXPECT_TRUE(doc->find("nan")->is_null());
  const JsonValue* nested = doc->find("nested");
  ASSERT_EQ(nested->array.size(), 3u);
  EXPECT_EQ(nested->array[0].number, -42.0);
  EXPECT_TRUE(nested->array[1].boolean);
  EXPECT_TRUE(nested->array[2].is_null());
}

TEST(Json, ParserAcceptsValidDocuments) {
  EXPECT_TRUE(json_parse("{}").has_value());
  EXPECT_TRUE(json_parse("[1, 2.5, -3e10, 0]").has_value());
  EXPECT_TRUE(json_parse("\"\\ud83d\\ude00\"").has_value());  // 😀 pair
  EXPECT_TRUE(json_parse("  {\"a\": [true, false, null]}  ").has_value());
}

TEST(Json, ParserRejectsMalformedDocuments) {
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("{} trailing").has_value());
  EXPECT_FALSE(json_parse("{\"a\":}").has_value());
  EXPECT_FALSE(json_parse("[1,]").has_value());
  EXPECT_FALSE(json_parse("01").has_value());          // leading zero
  EXPECT_FALSE(json_parse("\"\\x41\"").has_value());   // bad escape
  EXPECT_FALSE(json_parse("\"\\ud83d\"").has_value()); // lone surrogate
  EXPECT_FALSE(json_parse("\"\x01\"").has_value());    // raw control char
  EXPECT_FALSE(json_parse("nulL").has_value());
  EXPECT_FALSE(json_parse("+1").has_value());
  // Depth bomb: 100 nested arrays exceeds the 64-deep limit.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json_parse(deep).has_value());
}

// ---------------------------------------------------------------- report

TEST(Report, DocumentMatchesSchemaAndSurvivesStrictParse) {
  RegistryGuard guard;
  auto& reg = MetricsRegistry::global();
  reg.counter("sim.link.0.tx_packets").add(7);
  reg.gauge("sim.storage.peak_entries").set(12);
  reg.histogram("runner.run_wall_ns").observe(1500);

  BenchReport report("bench_unit_test");
  report.set_arg("runs", 10);
  report.set_arg("label", "with \"quotes\"");
  report.set_info("protocol", "PAAI-1");
  report.set_metric("detection_packets", 1234.0);
  report.set_metric("broken_ratio", std::nan(""));  // must emit null
  report.set_exec(4, 1.25, 10, 0.12, 0.01, 0.96);
  report.set_wall_seconds(1.5);

  std::ostringstream os;
  report.write(os, reg.snapshot());

  std::string error;
  const auto doc = json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->string, kBenchSchema);
  EXPECT_EQ(doc->find("bench")->string, "bench_unit_test");
  EXPECT_GT(doc->find("created_unix")->number, 0.0);

  const JsonValue* prov = doc->find("provenance");
  ASSERT_NE(prov, nullptr);
  EXPECT_TRUE(prov->find("git_commit")->is_string());
  EXPECT_TRUE(prov->find("build_type")->is_string());
  EXPECT_TRUE(prov->find("compiler")->is_string());
  EXPECT_TRUE(prov->find("sanitizer")->is_string());

  EXPECT_EQ(doc->find("args")->find("runs")->number, 10.0);
  EXPECT_EQ(doc->find("args")->find("label")->string, "with \"quotes\"");
  EXPECT_EQ(doc->find("info")->find("protocol")->string, "PAAI-1");
  EXPECT_EQ(doc->find("results")->find("detection_packets")->number, 1234.0);
  EXPECT_TRUE(doc->find("results")->find("broken_ratio")->is_null());
  EXPECT_EQ(doc->find("wall_seconds")->number, 1.5);
  EXPECT_EQ(doc->find("exec")->find("jobs")->number, 4.0);

  const JsonValue* obs = doc->find("observability");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->find("counters")->find("sim.link.0.tx_packets")->number,
            7.0);
  EXPECT_EQ(obs->find("gauges")->find("sim.storage.peak_entries")
                ->find("high")->number,
            12.0);
  const JsonValue* hist =
      obs->find("histograms")->find("runner.run_wall_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 1.0);
  EXPECT_EQ(hist->find("sum")->number, 1500.0);
  ASSERT_EQ(hist->find("buckets")->array.size(), 1u);
  EXPECT_EQ(hist->find("buckets")->array[0].array[0].number, 1024.0);
  EXPECT_EQ(hist->find("buckets")->array[0].array[1].number, 1.0);
}

// ------------------------------------------------------- integration (MC)

TEST(Events, KindNamesRoundTrip) {
  for (int i = 0; i < kEventKindCount; ++i) {
    const EventKind kind = static_cast<EventKind>(i);
    const char* name = event_kind_name(kind);
    ASSERT_NE(name, nullptr);
    const auto back = event_kind_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(event_kind_from_name("no-such-kind").has_value());
  EXPECT_FALSE(event_kind_from_name("").has_value());
}

TEST(Events, BoundedRingOverflowKeepsNewest) {
  EventLog log(/*per_node_capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    log.append(3, EventKind::kDataSend, static_cast<std::int64_t>(i),
               /*link=*/-1, /*a=*/i, /*b=*/0, 0.0);
  }
  EXPECT_EQ(log.recorded(), 20u);
  EXPECT_EQ(log.retained(), 8u);
  EXPECT_EQ(log.dropped(), 12u);
  const auto merged = log.merged();
  ASSERT_EQ(merged.size(), 8u);
  // The ring keeps the newest-capacity window: events 12..19.
  EXPECT_EQ(merged.front().ts_ns, 12);
  EXPECT_EQ(merged.back().ts_ns, 19);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].seq, merged[i].seq);
  }
  log.clear();
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.retained(), 0u);
}

TEST(Events, JsonlRoundTripsThroughStrictParser) {
  EventLog log;
  // u64 payloads above 2^53 must survive exactly (they are packet-id
  // halves), as must negative "no link" markers and double scores.
  log.append(0, EventKind::kRunStart, 0, -1, 20000, 1, 0.018);
  log.append(0, EventKind::kDataSend, 10'000'000, -1,
             0xdeadbeefcafebabeULL, 7, 0.0);
  log.append(2, EventKind::kPacketForward, 12'345'678, -1, 0x3d, 1019, 0.0);
  log.append(0, EventKind::kScoreBlame, 99'000'000, 3,
             0xffffffffffffffffULL, 42, 0.234567891234567);
  log.append(5, EventKind::kNodeCrash, 4'000'000'000'000LL, -1, 0, 0, 0.0);

  std::ostringstream os;
  log.write_jsonl(os);
  const std::string text = os.str();

  // Every line is strict-parser-valid JSON.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string error;
    ASSERT_TRUE(json_parse(line, &error).has_value())
        << error << " in " << line;
  }

  std::istringstream in(text);
  std::string error;
  const auto back = EventLog::read_jsonl(in, &error);
  ASSERT_EQ(back.size(), 5u) << error;
  const auto original = log.merged();
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], original[i]) << "event " << i;
  }
}

TEST(Events, ReadJsonlReportsMalformedInput) {
  std::istringstream in("{\"ts_ns\":1}\nnot json at all\n");
  std::string error;
  const auto events = EventLog::read_jsonl(in, &error);
  EXPECT_TRUE(events.empty());
  EXPECT_FALSE(error.empty());
}

TEST(Forensics, ConvictionAuditMatchesVerdict) {
  // The acceptance scenario: PAAI-1, adversary planted at l_3. The audit
  // trail replayed from the event log must name exactly the links the
  // run's own verdict convicted.
  EventLog log(1 << 16);
  runner::ExperimentConfig cfg =
      runner::paper_config(protocols::ProtocolKind::kPaai1, 20000, 1);
  cfg.link_faults.clear();
  cfg.link_faults.push_back(runner::LinkFault{3, 0.02});
  cfg.path.events = &log;
  const runner::ExperimentResult r = runner::run_experiment(cfg);
  ASSERT_FALSE(r.final_convicted.empty());

  const ForensicsReport report = forensics_analyze(log.merged());
  EXPECT_EQ(report.threshold, cfg.decision_threshold);
  EXPECT_EQ(report.packets_sent, r.packets_sent);
  EXPECT_EQ(report.observations, r.observations);

  // Final verdicts in the report == the run's convicted set.
  std::vector<std::size_t> audited;
  for (const auto& c : report.convictions) {
    if (c.final_verdict) audited.push_back(c.link);
  }
  std::sort(audited.begin(), audited.end());
  audited.erase(std::unique(audited.begin(), audited.end()), audited.end());
  EXPECT_EQ(audited, r.final_convicted);

  std::ostringstream os;
  write_audit_trail(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("CONVICTED l_3"), std::string::npos) << text;
  EXPECT_NE(text.find("blames:"), std::string::npos);
  EXPECT_NE(text.find("score trajectory"), std::string::npos);
}

TEST(Integration, MonteCarloPopulatesMetricsAndTrace) {
  RegistryGuard guard;
  TraceRing ring(1 << 12);

  runner::MonteCarloConfig mc;
  mc.base = runner::paper_config(protocols::ProtocolKind::kFullAck, 200, 0);
  mc.base.checkpoints = {100, 200};
  mc.runs = 4;
  mc.seed0 = 42;
  mc.jobs = 2;
  mc.trace = &ring;
  const auto result = runner::run_monte_carlo(mc);
  EXPECT_EQ(result.runs, 4u);

  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(find_counter(snap, "runner.runs")->value, 4u);
  EXPECT_EQ(find_histogram(snap, "runner.run_wall_ns")->count, 4u);
  EXPECT_GT(find_counter(snap, "sim.link.0.tx_packets")->value, 0u);
  EXPECT_GT(find_counter(snap, "proto.dest_acks_received")->value, 0u);
  EXPECT_GT(find_counter(snap, "proto.score.updates")->value, 0u);
  // Natural loss 1% + malicious l_4 => some probes and some drops.
  EXPECT_GT(find_counter(snap, "proto.probes_sent")->value, 0u);

  // The per-run "run" span plus per-link events made it into the ring and
  // the export is strict-parser clean.
  EXPECT_GT(ring.recorded(), 0u);
  std::ostringstream os;
  ring.write_chrome_json(os);
  std::string error;
  ASSERT_TRUE(json_parse(os.str(), &error).has_value()) << error;
}

TEST(Integration, MetricsNeverAffectResults) {
  // Identical configs with the registry on and off (and with a trace ring
  // on one side) must produce bit-identical Monte-Carlo aggregates.
  auto run_once = [](bool instrumented, TraceRing* ring) {
    MetricsRegistry::global().reset();
    MetricsRegistry::global().set_enabled(instrumented);
    runner::MonteCarloConfig mc;
    mc.base =
        runner::paper_config(protocols::ProtocolKind::kPaai1, 400, 0);
    mc.base.checkpoints = {200, 400};
    mc.runs = 3;
    mc.seed0 = 7;
    mc.jobs = 2;
    mc.trace = ring;
    return runner::run_monte_carlo(mc);
  };
  TraceRing ring(256);
  const auto with = run_once(true, &ring);
  const auto without = run_once(false, nullptr);
  MetricsRegistry::global().set_enabled(false);
  MetricsRegistry::global().reset();

  ASSERT_EQ(with.curve.size(), without.curve.size());
  for (std::size_t i = 0; i < with.curve.size(); ++i) {
    EXPECT_EQ(with.curve[i].fp, without.curve[i].fp);
    EXPECT_EQ(with.curve[i].fn, without.curve[i].fn);
  }
  EXPECT_EQ(with.total_events, without.total_events);
  EXPECT_EQ(with.final_e2e_rate.mean(), without.final_e2e_rate.mean());
}

TEST(Integration, EventsNeverAffectResults) {
  // The forensic log is strictly observational: enabling it (under any
  // jobs value) must leave every Monte-Carlo aggregate bit-identical,
  // and the single-writer run-0 stream itself must be bit-identical
  // across jobs values.
  auto run_once = [](EventLog* log, std::size_t jobs) {
    runner::MonteCarloConfig mc;
    mc.base = runner::paper_config(protocols::ProtocolKind::kPaai1, 400, 0);
    mc.base.checkpoints = {200, 400};
    mc.runs = 3;
    mc.seed0 = 7;
    mc.jobs = jobs;
    mc.events = log;
    return runner::run_monte_carlo(mc);
  };

  EventLog log_a;
  const auto with = run_once(&log_a, 2);
  const auto without = run_once(nullptr, 1);
  EXPECT_GT(log_a.recorded(), 0u);

  ASSERT_EQ(with.curve.size(), without.curve.size());
  for (std::size_t i = 0; i < with.curve.size(); ++i) {
    EXPECT_EQ(with.curve[i].fp, without.curve[i].fp);
    EXPECT_EQ(with.curve[i].fn, without.curve[i].fn);
  }
  EXPECT_EQ(with.total_events, without.total_events);
  EXPECT_EQ(with.final_e2e_rate.mean(), without.final_e2e_rate.mean());
  EXPECT_EQ(with.detection_samples, without.detection_samples);
  EXPECT_EQ(with.detection_p50, without.detection_p50);
  EXPECT_EQ(with.detection_p99, without.detection_p99);

  // Same config, different jobs: the exported run-0 stream is identical.
  EventLog log_b;
  run_once(&log_b, 4);
  std::ostringstream os_a;
  std::ostringstream os_b;
  log_a.write_jsonl(os_a);
  log_b.write_jsonl(os_b);
  EXPECT_EQ(os_a.str(), os_b.str());
}

}  // namespace
}  // namespace paai::obs
