// Crypto substrate tests: official test vectors for SHA-256 (FIPS 180-4 /
// NIST CAVS), HMAC-SHA256 (RFC 4231), ChaCha20 (RFC 8439), and SipHash-2-4
// (reference vectors from the SipHash paper), plus behavioural tests for
// the provider seam, key store, and keyed samplers.
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "crypto/sampler.h"
#include "crypto/sha256.h"
#include "crypto/siphash.h"
#include "util/bytes.h"

namespace paai::crypto {
namespace {

std::string hex_digest(const Digest32& d) {
  return to_hex(ByteView(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const Bytes msg = bytes_of("abc");
  EXPECT_EQ(hex_digest(Sha256::digest(ByteView(msg.data(), msg.size()))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const Bytes msg =
      bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(hex_digest(Sha256::digest(ByteView(msg.data(), msg.size()))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(ByteView(chunk.data(), chunk.size()));
  EXPECT_EQ(hex_digest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    h.update(ByteView(msg.data() + i, 1));
  }
  EXPECT_EQ(h.finish(), Sha256::digest(ByteView(msg.data(), msg.size())));
}

TEST(Sha256, ExactBlockBoundary) {
  const Bytes msg(64, 0x61);
  EXPECT_EQ(hex_digest(Sha256::digest(ByteView(msg.data(), msg.size()))),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = bytes_of("Hi There");
  const Digest32 tag = hmac_sha256(ByteView(key.data(), key.size()),
                                   ByteView(msg.data(), msg.size()));
  EXPECT_EQ(hex_digest(tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  const Bytes key = bytes_of("Jefe");
  const Bytes msg = bytes_of("what do ya want for nothing?");
  const Digest32 tag = hmac_sha256(ByteView(key.data(), key.size()),
                                   ByteView(msg.data(), msg.size()));
  EXPECT_EQ(hex_digest(tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa key, 0xdd data).
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  const Digest32 tag = hmac_sha256(ByteView(key.data(), key.size()),
                                   ByteView(msg.data(), msg.size()));
  EXPECT_EQ(hex_digest(tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(Hmac, Rfc4231LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes msg = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  const Digest32 tag = hmac_sha256(ByteView(key.data(), key.size()),
                                   ByteView(msg.data(), msg.size()));
  EXPECT_EQ(hex_digest(tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  Nonce96 nonce{0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex(ByteView(block.data(), 16)),
            "10f1e7e4d13b5915500fdd1fa32071c4");
  EXPECT_EQ(to_hex(ByteView(block.data() + 48, 16)),
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2 encryption test vector.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  Key256 key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  Nonce96 nonce{0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes ct =
      chacha20_xor(key, nonce, 1, ByteView(plaintext.data(), plaintext.size()));
  EXPECT_EQ(to_hex(ByteView(ct.data(), 16)), "6e2e359a2568f98041ba0728dd0d6981");
  // Round trip.
  const Bytes pt = chacha20_xor(key, nonce, 1, ByteView(ct.data(), ct.size()));
  EXPECT_EQ(pt, plaintext);
}

// SipHash-2-4 reference vectors (key 000102..0f, messages 00,01,02,...).
TEST(SipHash, ReferenceVectors) {
  Key128 key;
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  Bytes msg;
  for (int len = 0; len < 9; ++len) {
    EXPECT_EQ(siphash24(key, ByteView(msg.data(), msg.size())), expected[len])
        << "length " << len;
    msg.push_back(static_cast<std::uint8_t>(len));
  }
}

TEST(Provider, MacVerifyRoundTrip) {
  for (const auto kind : {CryptoKind::kReal, CryptoKind::kFast}) {
    const auto crypto = make_crypto(kind);
    const Key key = test_master_key(7);
    const Bytes msg = bytes_of("attack at dawn");
    const Mac tag = crypto->mac(key, ByteView(msg.data(), msg.size()));
    EXPECT_TRUE(crypto->verify_mac(key, ByteView(msg.data(), msg.size()), tag));
    Mac bad = tag;
    bad[0] ^= 1;
    EXPECT_FALSE(
        crypto->verify_mac(key, ByteView(msg.data(), msg.size()), bad));
    // Different key must not verify.
    const Key other = test_master_key(8);
    EXPECT_FALSE(
        crypto->verify_mac(other, ByteView(msg.data(), msg.size()), tag));
  }
}

TEST(Provider, EncryptDecryptRoundTrip) {
  for (const auto kind : {CryptoKind::kReal, CryptoKind::kFast}) {
    const auto crypto = make_crypto(kind);
    const Key key = test_master_key(11);
    for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 300u}) {
      Bytes pt(len);
      for (std::size_t i = 0; i < len; ++i) pt[i] = static_cast<std::uint8_t>(i);
      const Bytes ct = crypto->encrypt(key, 42, ByteView(pt.data(), pt.size()));
      EXPECT_EQ(ct.size(), pt.size());
      if (len > 2) EXPECT_NE(ct, pt);
      EXPECT_EQ(crypto->decrypt(key, 42, ByteView(ct.data(), ct.size())), pt);
      // Wrong nonce decrypts to garbage (not the plaintext) for len > 8.
      if (len > 8) {
        EXPECT_NE(crypto->decrypt(key, 43, ByteView(ct.data(), ct.size())), pt);
      }
    }
  }
}

TEST(KeyStore, DerivesDistinctPerNodeKeys) {
  const KeyStore ks(test_master_key(1), 6);
  for (std::size_t i = 1; i <= 6; ++i) {
    for (std::size_t j = i + 1; j <= 6; ++j) {
      EXPECT_NE(ks.node_key(i), ks.node_key(j));
    }
    EXPECT_NE(ks.node_key(i), ks.source_sampling_key());
    EXPECT_NE(ks.node_key(i), ks.fl_sampling_key(i));
  }
  EXPECT_EQ(ks.destination_key(), ks.node_key(6));
  EXPECT_THROW(ks.node_key(0), std::out_of_range);
  EXPECT_THROW(ks.node_key(7), std::out_of_range);
}

TEST(KeyStore, DeterministicAcrossInstances) {
  const KeyStore a(test_master_key(5), 4);
  const KeyStore b(test_master_key(5), 4);
  for (std::size_t i = 1; i <= 4; ++i) EXPECT_EQ(a.node_key(i), b.node_key(i));
  const KeyStore c(test_master_key(6), 4);
  EXPECT_NE(a.node_key(1), c.node_key(1));
}

TEST(SecureSampler, RateConcentratesAroundP) {
  const auto crypto = make_real_crypto();
  const Key key = test_master_key(3);
  const double p = 1.0 / 36.0;
  const SecureSampler sampler(*crypto, key, p);
  const int trials = 20000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    std::uint8_t id[16] = {};
    for (int b = 0; b < 4; ++b) id[b] = static_cast<std::uint8_t>(i >> (8 * b));
    if (sampler.sampled(ByteView(id, sizeof(id)))) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, p, 4.0 * std::sqrt(p * (1 - p) / trials));
}

TEST(SecureSampler, DegenerateProbabilities) {
  const auto crypto = make_fast_crypto();
  const Key key = test_master_key(3);
  const SecureSampler never(*crypto, key, 0.0);
  const SecureSampler always(*crypto, key, 1.0);
  const Bytes id = bytes_of("0123456789abcdef");
  EXPECT_FALSE(never.sampled(ByteView(id.data(), id.size())));
  EXPECT_TRUE(always.sampled(ByteView(id.data(), id.size())));
}

TEST(SelectionPredicate, DestinationAlwaysFires) {
  const auto crypto = make_fast_crypto();
  const KeyStore ks(test_master_key(2), 6);
  const Bytes challenge = bytes_of("challenge-xyz");
  EXPECT_TRUE(selection_predicate(*crypto, ks.node_key(6),
                                  ByteView(challenge.data(), challenge.size()),
                                  6, 6));
}

TEST(SelectionPredicate, SelectedNodeIsUniform) {
  const auto crypto = make_fast_crypto();
  const std::size_t d = 6;
  const KeyStore ks(test_master_key(9), d);
  std::vector<Key> keys(d + 1);
  for (std::size_t i = 1; i <= d; ++i) keys[i] = ks.node_key(i);

  std::vector<std::uint64_t> histogram(d, 0);
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    std::uint8_t challenge[8];
    for (int b = 0; b < 8; ++b) {
      challenge[b] = static_cast<std::uint8_t>((t * 2654435761u) >> (8 * b));
    }
    const std::size_t e =
        selected_node(*crypto, keys, ByteView(challenge, 8), d);
    ASSERT_GE(e, 1u);
    ASSERT_LE(e, d);
    ++histogram[e - 1];
  }
  // Chi-square with d-1 = 5 dof; 99.9% critical value ~20.5. Deterministic
  // inputs, so no flakiness.
  double stat = 0.0;
  const double expected = static_cast<double>(trials) / d;
  for (const auto c : histogram) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  EXPECT_LT(stat, 20.5) << "selection not uniform";
}

TEST(DeriveKey, SeparatesLabelsAndIndices) {
  const Key master = test_master_key(1);
  const Bytes l1 = bytes_of("label-a");
  const Bytes l2 = bytes_of("label-b");
  const Key a = derive_key(master, ByteView(l1.data(), l1.size()), 0);
  const Key b = derive_key(master, ByteView(l2.data(), l2.size()), 0);
  const Key c = derive_key(master, ByteView(l1.data(), l1.size()), 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

}  // namespace
}  // namespace paai::crypto
