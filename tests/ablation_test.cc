// Ablation regression tests: the intentionally insecure variants must
// stay insecure in exactly the documented way (they are the experimental
// evidence that delayed sampling and onion reports are load-bearing), and
// the safe configurations must defeat the same attacks.
#include <gtest/gtest.h>

#include <algorithm>

#include "runner/experiment.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

ExperimentConfig base_config(std::uint64_t seed) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kPaai1, 40000, seed);
  cfg.link_faults.clear();
  cfg.params.probe_probability = 1.0 / 9.0;
  cfg.params.send_rate_pps = 500.0;
  return cfg;
}

TEST(DelayedSamplingAblation, ShortProbeDelayEnablesEvasion) {
  ExperimentConfig cfg = base_config(101);
  cfg.params.unsafe_probe_delay_ms = 1.0;  // probe << freshness window
  AdversarySpec spec;
  spec.node = 3;
  spec.kind = AdversarySpec::Kind::kWithholdRelease;
  spec.rate = 1.0;
  cfg.adversaries.push_back(spec);

  const ExperimentResult r = run_experiment(cfg);
  // Ground truth: barely more than half the link crossings happen (the
  // unmonitored ~8/9 of traffic dies at F_3)...
  EXPECT_LT(static_cast<double>(r.data_link_crossings) /
                (static_cast<double>(r.packets_sent) * 6.0),
            0.6);
  // ...yet the source convicts nothing: full evasion.
  EXPECT_TRUE(r.final_convicted.empty());
  EXPECT_LT(r.observed_e2e_rate, 0.25);
}

TEST(DelayedSamplingAblation, SafeDelayDefeatsTheSameAttack) {
  ExperimentConfig cfg = base_config(101);
  AdversarySpec spec;
  spec.node = 3;
  spec.kind = AdversarySpec::Kind::kWithholdRelease;
  spec.rate = 1.0;
  cfg.adversaries.push_back(spec);

  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.final_convicted.empty());
  for (const std::size_t link : r.final_convicted) {
    EXPECT_TRUE(link == 3 || link == 2);
  }
}

TEST(OnionAblation, IndependentAcksAllowFramingHonestLinks) {
  ExperimentConfig cfg = base_config(102);
  cfg.params.paai1_independent_acks = true;
  AdversarySpec spec;
  spec.node = 1;
  spec.kind = AdversarySpec::Kind::kOriginFilter;
  spec.min_origin = 3;
  cfg.adversaries.push_back(spec);

  const ExperimentResult r = run_experiment(cfg);
  // The adversary at F_1 gets honest l_2 convicted.
  EXPECT_NE(std::find(r.final_convicted.begin(), r.final_convicted.end(), 2u),
            r.final_convicted.end());
}

TEST(OnionAblation, OnionReportsAreImmuneToOriginFiltering) {
  ExperimentConfig cfg = base_config(102);
  AdversarySpec spec;
  spec.node = 1;
  spec.kind = AdversarySpec::Kind::kOriginFilter;
  spec.min_origin = 3;
  cfg.adversaries.push_back(spec);

  const ExperimentResult r = run_experiment(cfg);
  for (const std::size_t link : r.final_convicted) {
    EXPECT_TRUE(link == 0 || link == 1)
        << "origin filter framed honest l_" << link << " despite onions";
  }
}

TEST(OnionAblation, IndependentAcksStillWorkWithoutAdversary) {
  // The ablated mode is insecure, not broken: honest operation localizes
  // an ordinary data dropper the same way.
  ExperimentConfig cfg = base_config(103);
  cfg.params.paai1_independent_acks = true;
  AdversarySpec spec;
  spec.node = 4;
  spec.kind = AdversarySpec::Kind::kTypeRates;
  spec.type_rates.data = 0.4;
  cfg.adversaries.push_back(spec);

  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.final_convicted.empty());
  // Independent acks smear some blame onto l_3 (a naturally lost F_4 ack
  // is indistinguishable from F_4 never answering), so both adjacent
  // links may convict; nothing non-adjacent may.
  bool has_l4 = false;
  for (const std::size_t link : r.final_convicted) {
    EXPECT_TRUE(link == 3 || link == 4);
    has_l4 |= link == 4;
  }
  EXPECT_TRUE(has_l4);
}

}  // namespace
}  // namespace paai::runner
