// Exec subsystem tests: thread-pool lifecycle, parallel_for_each exception
// propagation / cancellation / oversubscription / empty input, ordered
// reduction, and the headline guarantee — run_monte_carlo and run_fleet
// are bit-identical across jobs values for a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.h"
#include "exec/shard_plan.h"
#include "exec/thread_pool.h"
#include "runner/fleet.h"
#include "runner/montecarlo.h"

namespace paai::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndShutsDownCleanly) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ParallelForEach, ZeroItemsReturnsImmediately) {
  const ExecTelemetry t =
      parallel_for_each(0, [](std::size_t) { FAIL(); }, 8);
  EXPECT_EQ(t.task_seconds.count(), 0u);
}

TEST(ParallelForEach, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{7}}) {
    std::vector<std::atomic<int>> hits(257);
    const ExecTelemetry t = parallel_for_each(
        hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); }, jobs);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_EQ(t.task_seconds.count(), hits.size());
  }
}

TEST(ParallelForEach, OversubscriptionClampsToItemCount) {
  const ExecTelemetry t =
      parallel_for_each(3, [](std::size_t) {}, 64);
  EXPECT_EQ(t.jobs, 3u);
  EXPECT_EQ(t.task_seconds.count(), 3u);
}

TEST(ParallelForEach, PropagatesExceptionAndCancelsPendingWork) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(
        parallel_for_each(
            10000,
            [&executed](std::size_t) {
              executed.fetch_add(1);
              throw std::runtime_error("boom");
            },
            jobs),
        std::runtime_error);
    // Cancellation: the overwhelming majority of items never ran.
    EXPECT_LT(executed.load(), 10000u);
  }
}

TEST(ShardPlan, SeedsAreFixedUpFrontAndAdditive) {
  const ShardPlan plan(1000, 5);
  ASSERT_EQ(plan.count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(plan.seed(i), 1000u + i);
}

TEST(ShardPlan, PartitionCoversRangeContiguously) {
  const ShardPlan plan(0, 10);
  const auto shards = plan.partition(3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards.front().first, 0u);
  EXPECT_EQ(shards.back().second, 10u);
  for (std::size_t s = 1; s < shards.size(); ++s) {
    EXPECT_EQ(shards[s].first, shards[s - 1].second);
  }
  EXPECT_TRUE(plan.partition(0).size() == 1u);
  EXPECT_TRUE(ShardPlan(0, 0).partition(4).empty());
}

TEST(OrderedReducer, FoldsInIndexOrderRegardlessOfCommitOrder) {
  std::vector<std::size_t> folded;
  OrderedReducer<std::size_t> reducer(
      4, [&folded](std::size_t i, std::size_t&& v) {
        EXPECT_EQ(i, v);
        folded.push_back(v);
      });
  reducer.commit(2, 2);
  reducer.commit(0, 0);
  EXPECT_EQ(folded, (std::vector<std::size_t>{0}));
  reducer.commit(1, 1);
  EXPECT_EQ(folded, (std::vector<std::size_t>{0, 1, 2}));
  reducer.commit(3, 3);
  EXPECT_EQ(reducer.completed(), 4u);
}

runner::MonteCarloConfig small_mc(std::size_t jobs) {
  runner::MonteCarloConfig mc;
  mc.base = runner::paper_config(protocols::ProtocolKind::kFullAck, 1500, 0);
  mc.base.checkpoints = runner::log_checkpoints(100, 1500, 6);
  mc.base.storage_sample_period = sim::milliseconds(20.0);
  mc.runs = 8;
  mc.seed0 = 4242;
  mc.storage_bins = 12;
  mc.storage_horizon_seconds = 16.0;
  mc.jobs = jobs;
  return mc;
}

// The headline determinism guarantee: jobs=8 is bit-identical to jobs=1.
TEST(Determinism, MonteCarloIsBitIdenticalAcrossJobCounts) {
  const runner::MonteCarloResult serial =
      runner::run_monte_carlo(small_mc(1));
  const runner::MonteCarloResult parallel =
      runner::run_monte_carlo(small_mc(8));

  ASSERT_EQ(serial.curve.size(), parallel.curve.size());
  for (std::size_t i = 0; i < serial.curve.size(); ++i) {
    EXPECT_EQ(serial.curve[i].packets, parallel.curve[i].packets);
    EXPECT_EQ(serial.curve[i].fp, parallel.curve[i].fp);
    EXPECT_EQ(serial.curve[i].fn, parallel.curve[i].fn);
  }
  EXPECT_EQ(serial.detection_packets, parallel.detection_packets);
  EXPECT_EQ(serial.per_run_detection_packets.count(),
            parallel.per_run_detection_packets.count());
  EXPECT_EQ(serial.per_run_detection_packets.mean(),
            parallel.per_run_detection_packets.mean());
  EXPECT_EQ(serial.per_run_detection_packets.stddev(),
            parallel.per_run_detection_packets.stddev());
  EXPECT_EQ(serial.final_e2e_rate.mean(), parallel.final_e2e_rate.mean());
  EXPECT_EQ(serial.total_events, parallel.total_events);
  ASSERT_EQ(serial.final_thetas.size(), parallel.final_thetas.size());
  for (std::size_t i = 0; i < serial.final_thetas.size(); ++i) {
    EXPECT_EQ(serial.final_thetas[i].mean(), parallel.final_thetas[i].mean());
    EXPECT_EQ(serial.final_thetas[i].variance(),
              parallel.final_thetas[i].variance());
  }
  ASSERT_EQ(serial.storage_grids.size(), parallel.storage_grids.size());
  for (std::size_t g = 0; g < serial.storage_grids.size(); ++g) {
    ASSERT_EQ(serial.storage_grids[g].size(), parallel.storage_grids[g].size());
    for (std::size_t i = 0; i < serial.storage_grids[g].size(); ++i) {
      EXPECT_EQ(serial.storage_grids[g].stat(i).mean(),
                parallel.storage_grids[g].stat(i).mean());
      EXPECT_EQ(serial.storage_grids[g].stat(i).max(),
                parallel.storage_grids[g].stat(i).max());
    }
  }
}

TEST(Determinism, FleetIsBitIdenticalAcrossJobCounts) {
  runner::FleetConfig cfg;
  cfg.base = runner::paper_config(protocols::ProtocolKind::kFullAck, 800, 0);
  cfg.base.link_faults.clear();
  cfg.paths = {{runner::LinkFault{4, 0.05}},
               {runner::LinkFault{2, 0.05}},
               {},
               {runner::LinkFault{1, 0.05}, runner::LinkFault{3, 0.05}}};
  cfg.seed0 = 777;

  cfg.jobs = 1;
  const runner::FleetResult serial = runner::run_fleet(cfg);
  cfg.jobs = 4;
  const runner::FleetResult parallel = runner::run_fleet(cfg);

  EXPECT_EQ(serial.total_damage, parallel.total_damage);
  EXPECT_EQ(serial.baseline_delivery, parallel.baseline_delivery);
  ASSERT_EQ(serial.paths.size(), parallel.paths.size());
  for (std::size_t i = 0; i < serial.paths.size(); ++i) {
    EXPECT_EQ(serial.paths[i].ground_truth_delivery,
              parallel.paths[i].ground_truth_delivery);
    EXPECT_EQ(serial.paths[i].observed_e2e_rate,
              parallel.paths[i].observed_e2e_rate);
    EXPECT_EQ(serial.paths[i].convicted, parallel.paths[i].convicted);
    EXPECT_EQ(serial.paths[i].all_malicious_convicted,
              parallel.paths[i].all_malicious_convicted);
  }
}

TEST(Progress, IsMonotonicCompletedCountUnderParallelism) {
  runner::MonteCarloConfig mc = small_mc(4);
  mc.storage_bins = 0;  // keep it light
  mc.base.storage_sample_period = 0;
  std::vector<std::size_t> seen;
  mc.progress = [&seen](std::size_t completed) { seen.push_back(completed); };
  const runner::MonteCarloResult r = runner::run_monte_carlo(mc);
  EXPECT_EQ(r.runs, mc.runs);
  ASSERT_EQ(seen.size(), mc.runs);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(Telemetry, PopulatedOnSerialAndParallelPaths) {
  runner::MonteCarloConfig mc = small_mc(1);
  mc.storage_bins = 0;
  mc.base.storage_sample_period = 0;
  mc.runs = 3;
  const runner::MonteCarloResult serial = runner::run_monte_carlo(mc);
  EXPECT_EQ(serial.exec.jobs, 1u);
  EXPECT_EQ(serial.exec.task_seconds.count(), 3u);
  EXPECT_GT(serial.exec.wall_seconds, 0.0);
  EXPECT_GT(serial.exec.utilization(), 0.0);

  mc.jobs = 2;
  const runner::MonteCarloResult parallel = runner::run_monte_carlo(mc);
  EXPECT_EQ(parallel.exec.jobs, 2u);
  EXPECT_EQ(parallel.exec.task_seconds.count(), 3u);
}

}  // namespace
}  // namespace paai::exec
