// Simulator-core tests: event ordering and determinism, link loss and
// latency behaviour, path construction, RTT-bound nesting (the property
// the protocol wait-timer cascade relies on), storage metering, and
// traffic accounting.
#include <gtest/gtest.h>

#include <vector>

#include "sim/link.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/storage.h"
#include "sim/trace.h"

namespace paai::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, TieBreakIsSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.at(10, [&] {
    times.push_back(sim.now());
    sim.after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  SimTime fired = -1;
  sim.at(100, [&] {
    sim.at(50, [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, RunUntilStopsBeforeBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(StorageMeter, TracksCurrentAndPeak) {
  StorageMeter m;
  m.add(3);
  m.add();
  EXPECT_EQ(m.current(), 4u);
  EXPECT_EQ(m.peak(), 4u);
  m.remove(2);
  EXPECT_EQ(m.current(), 2u);
  EXPECT_EQ(m.peak(), 4u);
  m.remove(10);  // saturates at zero
  EXPECT_EQ(m.current(), 0u);
}

TEST(TrafficCounters, AggregatesByTypeAndOverhead) {
  TrafficCounters c(3);
  c.on_transmit(net::PacketType::kData, 1000, 0);
  c.on_transmit(net::PacketType::kData, 1000, 1);
  c.on_transmit(net::PacketType::kDestAck, 25, 1);
  c.on_transmit(net::PacketType::kProbe, 25, 2);
  c.on_link_drop(1, net::PacketType::kData);
  EXPECT_EQ(c.by_type(net::PacketType::kData).packets, 2u);
  EXPECT_EQ(c.by_type(net::PacketType::kDestAck).bytes, 25u);
  EXPECT_DOUBLE_EQ(c.overhead_ratio(), 50.0 / 2000.0);
  EXPECT_DOUBLE_EQ(c.control_packets_per_data(), 1.0);
  EXPECT_EQ(c.drops_on_link(1), 1u);
  EXPECT_EQ(c.drops_on_link(0), 0u);
  EXPECT_EQ(c.data_tx(1), 1u);
  EXPECT_EQ(c.data_drops(1), 1u);
  EXPECT_DOUBLE_EQ(c.true_link_loss(1), 1.0);
  EXPECT_DOUBLE_EQ(c.true_link_loss(0), 0.0);
  EXPECT_EQ(c.total_packets(), 4u);
  c.reset();
  EXPECT_EQ(c.total_packets(), 0u);
  EXPECT_EQ(c.data_tx(1), 0u);
}

class CountingAgent final : public Agent {
 public:
  void on_packet(const PacketEnv& env) override {
    ++received;
    last_size = env.wire_size;
  }
  int received = 0;
  std::size_t last_size = 0;
};

PacketEnv make_env(Direction dir) {
  net::DataPacket pkt{1, 2, 100};
  auto wire = std::make_shared<const Bytes>(pkt.encode());
  return PacketEnv{wire, pkt.wire_size(), dir};
}

TEST(Link, DeliversAfterLatencyWithoutLoss) {
  Simulator sim;
  TrafficCounters counters(1);
  Node a(sim, 0), b(sim, 1);
  Link link(sim, 0, /*loss=*/0.0, milliseconds(3.0), Rng(1), &counters);
  link.connect(&a, &b);
  a.set_link_toward_dest(&link);
  b.set_link_toward_source(&link);
  auto agent = std::make_unique<CountingAgent>();
  CountingAgent* bp = agent.get();
  b.attach_agent(std::move(agent));

  a.originate(Direction::kToDest, make_env(Direction::kToDest).wire, 119);
  sim.run();
  EXPECT_EQ(bp->received, 1);
  EXPECT_EQ(bp->last_size, 119u);
  EXPECT_EQ(sim.now(), milliseconds(3.0));
  EXPECT_EQ(counters.by_type(net::PacketType::kData).packets, 1u);
}

TEST(Link, EmpiricalLossRateMatchesConfig) {
  Simulator sim;
  TrafficCounters counters(1);
  Node a(sim, 0), b(sim, 1);
  Link link(sim, 0, /*loss=*/0.1, 0, Rng(99), &counters);
  link.connect(&a, &b);
  auto agent = std::make_unique<CountingAgent>();
  CountingAgent* bp = agent.get();
  b.attach_agent(std::move(agent));

  const int n = 20000;
  const auto env = make_env(Direction::kToDest);
  for (int i = 0; i < n; ++i) link.transmit(env);
  sim.run();
  const double delivered = static_cast<double>(bp->received) / n;
  EXPECT_NEAR(delivered, 0.9, 0.01);
  EXPECT_EQ(counters.drops_on_link(0) + bp->received,
            static_cast<std::uint64_t>(n));
}

TEST(PathNetwork, BuildsChainAndValidates) {
  Simulator sim;
  PathConfig cfg;
  cfg.length = 6;
  cfg.seed = 3;
  PathNetwork net(sim, cfg);
  EXPECT_EQ(net.length(), 6u);
  EXPECT_EQ(net.source().index(), 0u);
  EXPECT_EQ(net.destination().index(), 6u);
  EXPECT_EQ(net.node(3).link_toward_dest(), &net.link(3));
  EXPECT_EQ(net.node(3).link_toward_source(), &net.link(2));
  EXPECT_EQ(net.source().link_toward_source(), nullptr);
  EXPECT_EQ(net.destination().link_toward_dest(), nullptr);

  PathConfig bad;
  bad.length = 1;
  EXPECT_THROW(PathNetwork(sim, bad), std::invalid_argument);
}

TEST(PathNetwork, LatenciesWithinConfiguredRange) {
  Simulator sim;
  PathConfig cfg;
  cfg.length = 6;
  cfg.min_latency_ms = 0.0;
  cfg.max_latency_ms = 5.0;
  cfg.seed = 11;
  PathNetwork net(sim, cfg);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(net.link(i).latency(), 0);
    EXPECT_LE(net.link(i).latency(), milliseconds(5.0));
  }
}

TEST(PathNetwork, RttBoundsNestStrictly) {
  // r_i > r_{i+1} + 2 * latency(l_i): the wait-timer cascade property —
  // a downstream node's timed-out report always beats its upstream
  // neighbour's own deadline.
  Simulator sim;
  PathConfig cfg;
  cfg.length = 8;
  cfg.seed = 17;
  PathNetwork net(sim, cfg);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(net.rtt_bound(i),
              net.rtt_bound(i + 1) + 2 * net.link(i).latency())
        << "at node " << i;
  }
  EXPECT_EQ(net.rtt_bound(8), 0);
  EXPECT_THROW(net.rtt_bound(9), std::out_of_range);
}

TEST(PathNetwork, ClockOffsetsWithinSyncBound) {
  Simulator sim;
  PathConfig cfg;
  cfg.length = 6;
  cfg.max_clock_error_ms = 2.0;
  cfg.seed = 23;
  PathNetwork net(sim, cfg);
  for (std::size_t i = 0; i <= 6; ++i) {
    const SimTime local = net.node(i).local_now();
    EXPECT_LE(std::abs(local - sim.now()), milliseconds(2.0));
  }
}

TEST(PathNetwork, DeterministicForSeed) {
  Simulator s1, s2;
  PathConfig cfg;
  cfg.length = 6;
  cfg.seed = 5;
  PathNetwork a(s1, cfg), b(s2, cfg);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a.link(i).latency(), b.link(i).latency());
  }
}

TEST(TrafficCounters, RatiosAreZeroWithoutDataTraffic) {
  // Pure control traffic: the per-data ratios must not divide by zero.
  TrafficCounters c(4);
  c.on_transmit(net::PacketType::kProbe, 40, 0);
  c.on_transmit(net::PacketType::kDestAck, 24, 3);
  EXPECT_EQ(c.overhead_ratio(), 0.0);
  EXPECT_EQ(c.control_packets_per_data(), 0.0);
  EXPECT_EQ(c.total_packets(), 2u);
  EXPECT_EQ(c.total_bytes(), 64u);
}

TEST(TrafficCounters, TrueLinkLossOnUntraversedLinkIsZero) {
  TrafficCounters c(4);
  // No data packet ever entered link 2 — loss is 0/0, reported as 0, and
  // out-of-range indices behave the same instead of reading past the end.
  EXPECT_EQ(c.true_link_loss(2), 0.0);
  EXPECT_EQ(c.true_link_loss(99), 0.0);
  EXPECT_EQ(c.data_tx(99), 0u);
  EXPECT_EQ(c.data_drops(99), 0u);
  EXPECT_EQ(c.drops_on_link(99), 0u);
  // One traversal, one drop: loss is exact, neighbours stay untouched.
  c.on_transmit(net::PacketType::kData, 1500, 1);
  c.on_link_drop(1, net::PacketType::kData);
  EXPECT_EQ(c.true_link_loss(1), 1.0);
  EXPECT_EQ(c.true_link_loss(0), 0.0);
}

TEST(TrafficCounters, ResetClearsEverything) {
  TrafficCounters c(2);
  c.on_transmit(net::PacketType::kData, 1500, 0);
  c.on_transmit(net::PacketType::kProbe, 40, 0);
  c.on_link_drop(0, net::PacketType::kData);
  c.on_link_drop(1, net::PacketType::kProbe);
  c.reset();
  EXPECT_EQ(c.total_packets(), 0u);
  EXPECT_EQ(c.total_bytes(), 0u);
  EXPECT_EQ(c.data_tx(0), 0u);
  EXPECT_EQ(c.data_drops(0), 0u);
  EXPECT_EQ(c.drops_on_link(0), 0u);
  EXPECT_EQ(c.drops_on_link(1), 0u);
  EXPECT_EQ(c.true_link_loss(0), 0.0);
  EXPECT_EQ(c.by_type(net::PacketType::kData).packets, 0u);
  // The instance stays usable after reset.
  c.on_transmit(net::PacketType::kData, 100, 1);
  EXPECT_EQ(c.data_tx(1), 1u);
}

}  // namespace
}  // namespace paai::sim
