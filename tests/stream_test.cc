// Tests for src/stream — the online scoring engine.
//
// The correctness anchor is batch/stream equivalence: for every protocol,
// feeding a batch run's recorded event stream through ScoreEngine must
// reproduce the run's final thetas, conviction set, observation counts,
// and e2e rate *bit-identically* (exact double equality, no tolerance),
// including across a mid-stream snapshot/restore cycle. Around that
// anchor: paai.state.v1 round-trips, EventReader strictness (fuzz-style
// malformed input with line-numbered errors), persistence-mode
// conviction, and the serve loop's drain/snapshot behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/spec.h"
#include "faults/plan.h"
#include "obs/events.h"
#include "protocols/score.h"
#include "runner/experiment.h"
#include "runner/producer.h"
#include "stream/engine.h"
#include "stream/service.h"
#include "stream/state.h"

namespace paai::stream {
namespace {

constexpr protocols::ProtocolKind kAllProtocols[] = {
    protocols::ProtocolKind::kFullAck,      protocols::ProtocolKind::kPaai1,
    protocols::ProtocolKind::kPaai2,        protocols::ProtocolKind::kCombination1,
    protocols::ProtocolKind::kCombination2, protocols::ProtocolKind::kStatisticalFl,
    protocols::ProtocolKind::kSigAck,
};

struct BatchRun {
  runner::ExperimentResult result;
  std::vector<obs::Event> events;
  std::uint64_t dropped = 0;
};

BatchRun run_with_log(runner::ExperimentConfig cfg) {
  obs::EventLog log(
      static_cast<std::size_t>(cfg.params.total_packets) * 16 + 4096);
  cfg.path.events = &log;
  BatchRun out;
  out.result = runner::run_experiment(cfg);
  out.events = log.merged();
  out.dropped = log.dropped();
  return out;
}

/// Bit-exact comparison between a finished engine and the batch result it
/// replays. EXPECT_EQ on doubles is exact equality — that is the point.
void expect_equivalent(const runner::ExperimentResult& batch,
                       const ScoreEngine& engine, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_TRUE(engine.run_ended());
  EXPECT_EQ(engine.packets_sent(), batch.packets_sent);
  EXPECT_EQ(engine.observations(), batch.observations);
  EXPECT_EQ(engine.observed_e2e_rate(), batch.observed_e2e_rate);
  const std::vector<double> thetas = engine.thetas();
  ASSERT_EQ(thetas.size(), batch.final_thetas.size());
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    EXPECT_EQ(thetas[i], batch.final_thetas[i]) << "theta of l_" << i;
  }
  EXPECT_EQ(engine.convicted(), batch.final_convicted);
}

obs::Event make_event(obs::EventKind kind, std::int32_t link = -1,
                      std::uint64_t a = 0, std::uint64_t b = 0,
                      double v = 0.0) {
  obs::Event e;
  e.kind = kind;
  e.link = link;
  e.a = a;
  e.b = b;
  e.value = v;
  return e;
}

obs::Event run_config_event(protocols::ProtocolKind protocol, std::size_t d,
                            double threshold,
                            const protocols::BlameSpec& blame = {}) {
  return make_event(obs::EventKind::kRunConfig, blame.encode32(),
                    static_cast<std::uint64_t>(protocol), d, threshold);
}

// ------------------------------------------------------- batch equivalence

// Every protocol, the paper's reference scenario (link fault on l_4).
TEST(Equivalence, AllProtocolsReferenceScenario) {
  for (const auto protocol : kAllProtocols) {
    const BatchRun batch =
        run_with_log(runner::paper_config(protocol, 3000, 7));
    ASSERT_EQ(batch.dropped, 0u);
    ScoreEngine engine;
    for (const obs::Event& e : batch.events) engine.apply(e);
    EXPECT_EQ(engine.config().protocol, protocol);
    expect_equivalent(batch.result, engine,
                      protocols::protocol_name(protocol));
  }
}

// Every protocol under a benign fault plan (Gilbert-Elliott bursts on an
// honest link) — the stream must absorb the same noisy evidence.
TEST(Equivalence, AllProtocolsBenignFaults) {
  for (const auto protocol : kAllProtocols) {
    runner::ExperimentConfig cfg = runner::paper_config(protocol, 3000, 11);
    cfg.faults =
        faults::FaultPlan::parse("ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15");
    const BatchRun batch = run_with_log(cfg);
    ASSERT_EQ(batch.dropped, 0u);
    ScoreEngine engine;
    for (const obs::Event& e : batch.events) engine.apply(e);
    expect_equivalent(batch.result, engine,
                      protocols::protocol_name(protocol));
  }
}

// Every protocol against a behavioural adversary (colluding dropper).
TEST(Equivalence, AllProtocolsAdversary) {
  for (const auto protocol : kAllProtocols) {
    runner::ExperimentConfig cfg = runner::paper_config(protocol, 3000, 13);
    cfg.link_faults.clear();
    const auto plan = adversary::AdversaryPlan::parse("collude@4:rate=0.5");
    cfg.adversaries.assign(plan.specs.begin(), plan.specs.end());
    const BatchRun batch = run_with_log(cfg);
    ASSERT_EQ(batch.dropped, 0u);
    ScoreEngine engine;
    for (const obs::Event& e : batch.events) engine.apply(e);
    expect_equivalent(batch.result, engine,
                      protocols::protocol_name(protocol));
  }
}

// Persistence mode travels through the stream: the kRunConfig prologue
// carries K, and the engine's conviction rule matches the batch one.
TEST(Equivalence, PersistentBlameModeReplays) {
  runner::ExperimentConfig cfg =
      runner::paper_config(protocols::ProtocolKind::kPaai1, 3000, 17);
  cfg.params.blame = protocols::BlameSpec::parse("persistent:3");
  const BatchRun batch = run_with_log(cfg);
  ASSERT_EQ(batch.dropped, 0u);
  ScoreEngine engine;
  for (const obs::Event& e : batch.events) engine.apply(e);
  EXPECT_EQ(engine.config().blame, cfg.params.blame);
  EXPECT_EQ(engine.config().blame.to_string(), "persistent:3");
  expect_equivalent(batch.result, engine, "paai1-persistent");
}

// Same for the window-backed modes: the kRunConfig prologue carries the
// full BlameSpec wire encoding, and every protocol's window ledger replays
// bit-identically from the same forensic events.
TEST(Equivalence, WindowedAndHybridModesReplayAllProtocols) {
  for (const char* spec : {"windowed:64", "hybrid:2,64"}) {
    for (const auto protocol : kAllProtocols) {
      SCOPED_TRACE(std::string(spec) + " / " +
                   protocols::protocol_name(protocol));
      runner::ExperimentConfig cfg =
          runner::paper_config(protocol, 2000, 19);
      cfg.params.blame = protocols::BlameSpec::parse(spec);
      const BatchRun batch = run_with_log(cfg);
      ASSERT_EQ(batch.dropped, 0u);
      ScoreEngine engine;
      for (const obs::Event& e : batch.events) engine.apply(e);
      EXPECT_EQ(engine.config().blame, cfg.params.blame);
      expect_equivalent(batch.result, engine, spec);
    }
  }
}

// Window bookkeeping is passive until a windowed blame mode reads it: a
// margin-mode run must be bit-identical — thetas, conviction set, e2e —
// to the same seed run before windows existed, which the windowed-mode
// run of the same scenario demonstrates by sharing every estimate and
// differing at most in the verdict.
TEST(Equivalence, WindowedNeverAffectsMarginMode) {
  for (const auto protocol : kAllProtocols) {
    SCOPED_TRACE(protocols::protocol_name(protocol));
    runner::ExperimentConfig margin_cfg =
        runner::paper_config(protocol, 2000, 21);
    runner::ExperimentConfig windowed_cfg = margin_cfg;
    windowed_cfg.params.blame = protocols::BlameSpec::parse("windowed:32");
    const runner::ExperimentResult margin =
        runner::run_experiment(margin_cfg);
    const runner::ExperimentResult windowed =
        runner::run_experiment(windowed_cfg);
    EXPECT_EQ(margin.packets_sent, windowed.packets_sent);
    EXPECT_EQ(margin.observations, windowed.observations);
    EXPECT_EQ(margin.observed_e2e_rate, windowed.observed_e2e_rate);
    ASSERT_EQ(margin.final_thetas.size(), windowed.final_thetas.size());
    for (std::size_t i = 0; i < margin.final_thetas.size(); ++i) {
      EXPECT_EQ(margin.final_thetas[i], windowed.final_thetas[i])
          << "theta of l_" << i;
    }
    // The windowed verdict may only ADD convictions (its extra clauses
    // are disjunctive on top of the margin rule).
    for (const std::size_t link : margin.final_convicted) {
      EXPECT_NE(std::find(windowed.final_convicted.begin(),
                          windowed.final_convicted.end(), link),
                windowed.final_convicted.end())
          << "margin conviction of l_" << link << " lost under windowed";
    }
  }
}

// ------------------------------------------------- snapshot / restore

// One protocol per table family: interrupting the stream at an arbitrary
// point, snapshotting, restoring into a fresh engine, and continuing must
// land on the exact same final state as an uninterrupted pass.
TEST(Snapshot, MidStreamRestoreIsLossless) {
  const protocols::ProtocolKind families[] = {
      protocols::ProtocolKind::kPaai1,         // ScoreTable
      protocols::ProtocolKind::kPaai2,         // Paai2ScoreTable
      protocols::ProtocolKind::kStatisticalFl, // FlScoreTable
  };
  for (const auto protocol : families) {
    SCOPED_TRACE(protocols::protocol_name(protocol));
    const BatchRun batch =
        run_with_log(runner::paper_config(protocol, 3000, 23));
    ASSERT_EQ(batch.dropped, 0u);

    ScoreEngine uninterrupted;
    for (const obs::Event& e : batch.events) uninterrupted.apply(e);

    const std::size_t cut = batch.events.size() / 2;
    ScoreEngine first_half;
    for (std::size_t i = 0; i < cut; ++i) first_half.apply(batch.events[i]);
    const std::string snapshot = state_to_string(first_half);

    ScoreEngine resumed;
    std::string error;
    ASSERT_TRUE(load_state(snapshot, &resumed, &error)) << error;
    for (std::size_t i = cut; i < batch.events.size(); ++i) {
      resumed.apply(batch.events[i]);
    }

    expect_equivalent(batch.result, resumed, "resumed");
    EXPECT_EQ(resumed.events_seen(), uninterrupted.events_seen());
    EXPECT_EQ(resumed.events_applied(), uninterrupted.events_applied());
    EXPECT_EQ(resumed.recorded_convictions().size(),
              uninterrupted.recorded_convictions().size());
  }
}

// The windowed modes carry extra per-table state (window bins + ledger);
// a mid-stream snapshot/restore must be lossless for every protocol so a
// resumed serve reaches the exact same verdict — including streak and
// flagrant history that cumulative counters cannot reconstruct.
TEST(Snapshot, WindowedAndHybridMidStreamRestoreIsLossless) {
  for (const char* spec : {"windowed:64", "hybrid:2,64"}) {
    for (const auto protocol : kAllProtocols) {
      SCOPED_TRACE(std::string(spec) + " / " +
                   protocols::protocol_name(protocol));
      runner::ExperimentConfig cfg =
          runner::paper_config(protocol, 2000, 43);
      cfg.params.blame = protocols::BlameSpec::parse(spec);
      const BatchRun batch = run_with_log(cfg);
      ASSERT_EQ(batch.dropped, 0u);

      const std::size_t cut = batch.events.size() / 2;
      ScoreEngine first_half;
      for (std::size_t i = 0; i < cut; ++i) {
        first_half.apply(batch.events[i]);
      }
      const std::string snapshot = state_to_string(first_half);

      ScoreEngine resumed;
      std::string error;
      ASSERT_TRUE(load_state(snapshot, &resumed, &error)) << error;
      EXPECT_EQ(resumed.config().blame, cfg.params.blame);
      for (std::size_t i = cut; i < batch.events.size(); ++i) {
        resumed.apply(batch.events[i]);
      }
      expect_equivalent(batch.result, resumed, spec);

      // The snapshot itself must also round-trip byte-identically (the
      // window objects are part of the canonical serialization).
      ScoreEngine reloaded;
      ASSERT_TRUE(load_state(snapshot, &reloaded, &error)) << error;
      EXPECT_EQ(state_to_string(reloaded), snapshot);
    }
  }
}

// A legacy snapshot (no "window" objects, no "blame" field) must restore
// fail-safe: accepted, margin mode, clean window ledger. A present but
// malformed window object must be rejected, never half-applied.
TEST(Snapshot, WindowStateFailsClosed) {
  const BatchRun batch = run_with_log(
      runner::paper_config(protocols::ProtocolKind::kPaai1, 500, 47));
  ScoreEngine engine;
  for (const obs::Event& e : batch.events) engine.apply(e);
  std::string snapshot = state_to_string(engine);

  // Tamper: unsupported window state version.
  const std::string versioned = R"("v":1,"w")";
  const std::size_t at = snapshot.find(versioned);
  ASSERT_NE(at, std::string::npos) << snapshot;
  std::string tampered = snapshot;
  tampered.replace(at, versioned.size(), R"("v":9,"w")");
  ScoreEngine rejected;
  std::string error;
  EXPECT_FALSE(load_state(tampered, &rejected, &error));
  EXPECT_NE(error.find("window"), std::string::npos) << error;
}

TEST(Snapshot, StateRoundTripsByteIdentically) {
  const BatchRun batch = run_with_log(
      runner::paper_config(protocols::ProtocolKind::kFullAck, 1000, 29));
  ScoreEngine engine;
  for (const obs::Event& e : batch.events) engine.apply(e);
  const std::string once = state_to_string(engine);
  ScoreEngine reloaded;
  std::string error;
  ASSERT_TRUE(load_state(once, &reloaded, &error)) << error;
  EXPECT_EQ(state_to_string(reloaded), once);
}

TEST(Snapshot, LoadRejectsGarbage) {
  ScoreEngine engine;
  std::string error;
  EXPECT_FALSE(load_state("not json", &engine, &error));
  EXPECT_FALSE(load_state("{}", &engine, &error));
  EXPECT_FALSE(load_state(R"({"schema":"paai.state.v2"})", &engine, &error));
  // Valid schema, wrong table shape.
  EXPECT_FALSE(load_state(
      R"({"schema":"paai.state.v1","protocol":1,"links":6,"threshold":0.018,)"
      R"("persistence":"0","events_seen":"0","events_applied":"0",)"
      R"("packets_sent":"0","delivered":"0","run_ended":false,)"
      R"("recorded_convictions":[],)"
      R"("table":{"kind":"onion","s":["0","0"],"n":"0","probes":"0"}})",
      &engine, &error));
  EXPECT_NE(error.find("shape"), std::string::npos);
}

// ------------------------------------------------------------- the engine

TEST(Engine, ScoreEventBeforeConfigThrows) {
  ScoreEngine engine;
  EXPECT_THROW(engine.apply(make_event(obs::EventKind::kScoreClean)),
               std::runtime_error);
  EXPECT_THROW(engine.apply(make_event(obs::EventKind::kDataSend)),
               std::runtime_error);
}

TEST(Engine, RunConfigMismatchThrows) {
  ScoreEngine engine;
  engine.apply(
      run_config_event(protocols::ProtocolKind::kPaai1, 6, 0.018));
  ASSERT_TRUE(engine.configured());
  // Same config again is fine (concatenated identical runs).
  EXPECT_NO_THROW(engine.apply(
      run_config_event(protocols::ProtocolKind::kPaai1, 6, 0.018)));
  EXPECT_THROW(engine.apply(run_config_event(
                   protocols::ProtocolKind::kFullAck, 6, 0.018)),
               std::runtime_error);
  EXPECT_THROW(
      engine.apply(run_config_event(protocols::ProtocolKind::kPaai1, 7,
                                    0.018)),
      std::runtime_error);
}

TEST(Engine, CrossProtocolEventsThrow) {
  ScoreEngine engine(
      EngineConfig{protocols::ProtocolKind::kPaai1, 6, 0.018});
  EXPECT_THROW(engine.apply(make_event(obs::EventKind::kFlCount, 2, 0, 10)),
               std::runtime_error);
  EXPECT_THROW(
      engine.apply(make_event(obs::EventKind::kScoreBlame, /*link=*/9)),
      std::runtime_error);
  EXPECT_THROW(
      engine.apply(make_event(obs::EventKind::kScoreBlame, /*link=*/-1)),
      std::runtime_error);
}

TEST(Engine, ConvictionTransitionsFireOnce) {
  ScoreEngine engine(
      EngineConfig{protocols::ProtocolKind::kPaai1, 6, 0.001});
  // Enough clean mass plus repeated blames of l_3 to cross the margin.
  for (int i = 0; i < 50; ++i) {
    engine.apply(make_event(obs::EventKind::kScoreClean));
  }
  EXPECT_TRUE(engine.take_new_convictions().empty());
  for (int i = 0; i < 50; ++i) {
    engine.apply(make_event(obs::EventKind::kScoreBlame, /*link=*/3));
  }
  const std::vector<std::size_t> fresh = engine.take_new_convictions();
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], 3u);
  // Already announced: no re-announcement while convicted.
  EXPECT_TRUE(engine.take_new_convictions().empty());
}

// ------------------------------------------------------- persistence rule

TEST(Persistence, RequiresKRepetitions) {
  protocols::ScoreTable table(6, /*traversals=*/1.0);
  table.set_persistence(3);
  for (int i = 0; i < 200; ++i) table.add_clean();
  table.blame(4);
  table.blame(4);
  // theta(4) ~ 2/202 ≈ 0.0099 — far above a 0.001 threshold, but only two
  // first-failing-hop observations: not convictable yet.
  EXPECT_TRUE(table.convicted(0.001).empty());
  table.blame(4);
  const std::vector<std::size_t> convicted = table.convicted(0.001);
  ASSERT_EQ(convicted.size(), 1u);
  EXPECT_EQ(convicted[0], 4u);
}

TEST(Persistence, ReplacesMarginNotThreshold) {
  protocols::ScoreTable table(6, /*traversals=*/1.0);
  table.set_persistence(2);
  for (int i = 0; i < 100; ++i) table.add_clean();
  table.blame(1);
  table.blame(1);
  // theta(1) ~ 2/102 ≈ 0.0196: above a 0.01 threshold (convict), below a
  // 0.05 threshold (not) — K alone never convicts.
  EXPECT_EQ(table.convicted(0.01).size(), 1u);
  EXPECT_TRUE(table.convicted(0.05).empty());
}

// ------------------------------------------------------ blame spec grammar

TEST(BlameSpec, ParsesEveryModeAndRoundTrips) {
  const char* specs[] = {"margin", "persistent:3", "windowed:192",
                         "hybrid:4,192"};
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const protocols::BlameSpec parsed = protocols::BlameSpec::parse(spec);
    EXPECT_EQ(parsed.to_string(), spec);
    // Wire round trip: encode32 -> decode32 is the kRunConfig path.
    EXPECT_EQ(protocols::BlameSpec::decode32(parsed.encode32()), parsed);
  }
  // Defaults: bare modes pick the calibrated parameters.
  EXPECT_EQ(protocols::BlameSpec::parse("persistent").k,
            protocols::kDefaultPersistence);
  EXPECT_EQ(protocols::BlameSpec::parse("windowed").w,
            protocols::kDefaultWindowWidth);
  const protocols::BlameSpec hybrid = protocols::BlameSpec::parse("hybrid");
  EXPECT_EQ(hybrid.k, protocols::kDefaultHybridStreak);
  EXPECT_EQ(hybrid.w, protocols::kDefaultWindowWidth);
  // "standard" is the historical alias for margin.
  EXPECT_EQ(protocols::BlameSpec::parse("standard").mode,
            protocols::BlameSpec::Mode::kMargin);
  // Persistent keeps the PR 7 bare-K wire format.
  EXPECT_EQ(protocols::BlameSpec::parse("persistent:3").encode32(), 3);
  EXPECT_EQ(protocols::BlameSpec::parse("margin").encode32(), 0);
}

TEST(BlameSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",             // empty
      "turbo",        // unknown mode
      "margin:1",     // margin takes no argument
      "persistent:0", // K out of range
      "windowed:7",   // below the minimum width
      "windowed:0",   // zero width
      "hybrid:9,64",  // streak above the ring capacity
      "hybrid:2,x",   // non-numeric width
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(protocols::BlameSpec::parse(spec), std::invalid_argument);
  }
  EXPECT_THROW(protocols::BlameSpec::decode32(-1), std::invalid_argument);
}

// -------------------------------------------------------- event reader

std::string to_jsonl(const std::vector<obs::Event>& events) {
  obs::EventLog log(events.size() + 1);
  for (const obs::Event& e : events) {
    log.append(e.node, e.kind, e.ts_ns, e.link, e.a, e.b, e.value);
  }
  std::ostringstream os;
  log.write_jsonl(os);
  return os.str();
}

TEST(Reader, RoundTripsAndCounts) {
  std::vector<obs::Event> events;
  events.push_back(make_event(obs::EventKind::kDataSend, -1, 42, 7));
  events.push_back(make_event(obs::EventKind::kScoreBlame, 3, 42, 1, 0.5));
  const std::string jsonl = "\n" + to_jsonl(events) + "\n\n";

  std::istringstream is(jsonl);
  obs::EventReader reader(is);
  obs::Event e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEvent);
  EXPECT_EQ(e.kind, obs::EventKind::kDataSend);
  EXPECT_EQ(e.a, 42u);
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEvent);
  EXPECT_EQ(e.kind, obs::EventKind::kScoreBlame);
  EXPECT_EQ(e.link, 3);
  EXPECT_EQ(e.value, 0.5);
  EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEof);
  EXPECT_EQ(reader.events(), 2u);
  EXPECT_EQ(reader.errors(), 0u);
}

TEST(Reader, ErrorsCarryLineNumbersAndReaderSurvives) {
  const std::string good =
      to_jsonl({make_event(obs::EventKind::kDataSend, -1, 1, 0)});
  const std::string jsonl = good + "this is not json\n" + good;
  std::istringstream is(jsonl);
  obs::EventReader reader(is);
  obs::Event e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEvent);
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kError);
  EXPECT_NE(error.find("line 2:"), std::string::npos) << error;
  // Count-and-continue: the reader moves past the bad line.
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEvent);
  EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEof);
  EXPECT_EQ(reader.events(), 2u);
  EXPECT_EQ(reader.errors(), 1u);
}

TEST(Reader, RejectsMistypedFields) {
  const char* bad_lines[] = {
      // ts_ns as string
      R"({"ts_ns":"0","node":0,"seq":0,"kind":"data-send","a":"1","b":"0","v":0})",
      // unknown kind
      R"({"ts_ns":0,"node":0,"seq":0,"kind":"no-such-kind","a":"1","b":"0","v":0})",
      // a as JSON number instead of a decimal string
      R"({"ts_ns":0,"node":0,"seq":0,"kind":"data-send","a":1,"b":"0","v":0})",
      // missing seq
      R"({"ts_ns":0,"node":0,"kind":"data-send","a":"1","b":"0","v":0})",
      // v as string
      R"({"ts_ns":0,"node":0,"seq":0,"kind":"data-send","a":"1","b":"0","v":"x"})",
      // not an object
      R"([1,2,3])",
  };
  for (const char* line : bad_lines) {
    SCOPED_TRACE(line);
    std::istringstream is(std::string(line) + "\n");
    obs::EventReader reader(is);
    obs::Event e;
    std::string error;
    EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kError);
    EXPECT_NE(error.find("line 1:"), std::string::npos) << error;
  }
}

// Fuzz-style: every strict prefix of a valid line must be rejected (a
// truncated tail from a killed producer), and deterministic byte
// corruption must never crash the reader — it either still parses or
// reports a line-numbered error.
TEST(Reader, TruncationAndCorruptionFuzz) {
  const std::string line = to_jsonl(
      {make_event(obs::EventKind::kScoreBlame, 4, 0xdeadbeefULL, 9, 0.25)});
  ASSERT_FALSE(line.empty());
  const std::string body = line.substr(0, line.size() - 1);  // strip '\n'

  for (std::size_t len = 1; len < body.size(); ++len) {
    std::istringstream is(body.substr(0, len) + "\n");
    obs::EventReader reader(is);
    obs::Event e;
    std::string error;
    EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kError)
        << "prefix length " << len;
  }

  // The same prefixes WITHOUT the newline: a torn tail must be rejected
  // as unterminated even when the fragment would parse as valid JSON.
  for (std::size_t len = 1; len <= body.size(); ++len) {
    std::istringstream is(body.substr(0, len));
    obs::EventReader reader(is);
    obs::Event e;
    std::string error;
    EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kError)
        << "unterminated prefix length " << len;
    EXPECT_NE(error.find("unterminated"), std::string::npos) << error;
  }

  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  auto next_rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = body;
    const std::size_t flips = 1 + next_rand() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[next_rand() % mutated.size()] =
          static_cast<char>(next_rand() % 256);
    }
    std::istringstream is(mutated + "\n");
    obs::EventReader reader(is);
    obs::Event e;
    std::string error;
    const auto status = reader.next(&e, &error);
    if (status == obs::EventReader::Status::kError) {
      EXPECT_NE(error.find("line"), std::string::npos);
    }
  }
}

// A stream that ends mid-line (killed producer, torn pipe) must be a
// line-numbered hard error, not a silently-parsed fragment.
TEST(Reader, UnterminatedFinalLineIsError) {
  const std::string line = to_jsonl(
      {make_event(obs::EventKind::kDataSend, -1, 1, 0)});
  const std::string body = line.substr(0, line.size() - 1);  // strip '\n'
  std::istringstream is(line + body);  // good line, then truncated tail
  obs::EventReader reader(is);
  obs::Event e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEvent);
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kError);
  EXPECT_NE(error.find("line 2:"), std::string::npos) << error;
  EXPECT_NE(error.find("unterminated"), std::string::npos) << error;
  EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEof);
  EXPECT_EQ(reader.errors(), 1u);
}

// A newline-free garbage line longer than the cap must fail fast with the
// line number — bounded buffering, never an O(stream) allocation — and
// the reader must stay usable on the next line.
TEST(Reader, OversizedLineFailsFastAndReaderSurvives) {
  const std::string good = to_jsonl(
      {make_event(obs::EventKind::kDataSend, -1, 1, 0)});
  const std::string huge(obs::EventReader::kMaxLineBytes + 16, 'x');
  std::istringstream is(good + huge + "\n" + good);
  obs::EventReader reader(is);
  obs::Event e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEvent);
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kError);
  EXPECT_NE(error.find("line 2:"), std::string::npos) << error;
  EXPECT_NE(error.find("maximum line length"), std::string::npos) << error;
  // Count-and-continue: the oversized tail was discarded, line 3 parses.
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEvent);
  EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEof);
  EXPECT_EQ(reader.events(), 2u);
  EXPECT_EQ(reader.errors(), 1u);
}

// An oversized line that is ALSO the unterminated tail reports the length
// cap (the earlier, more specific failure).
TEST(Reader, OversizedUnterminatedTailIsError) {
  const std::string huge(obs::EventReader::kMaxLineBytes + 16, 'x');
  std::istringstream is(huge);  // no newline at all
  obs::EventReader reader(is);
  obs::Event e;
  std::string error;
  ASSERT_EQ(reader.next(&e, &error), obs::EventReader::Status::kError);
  EXPECT_NE(error.find("line 1:"), std::string::npos) << error;
  EXPECT_NE(error.find("maximum line length"), std::string::npos) << error;
  EXPECT_EQ(reader.next(&e, &error), obs::EventReader::Status::kEof);
}

TEST(Reader, ReadJsonlWrapperFailsClosed) {
  std::istringstream is("garbage\n");
  std::string error;
  const std::vector<obs::Event> events = obs::EventLog::read_jsonl(is, &error);
  EXPECT_TRUE(events.empty());
  EXPECT_NE(error.find("line 1:"), std::string::npos);
}

// ------------------------------------------------------------- the service

TEST(Service, FailFastStopsAtFirstBadLine) {
  const std::string good =
      to_jsonl({make_event(obs::EventKind::kDataSend, -1, 1, 0)});
  std::istringstream is(good + "garbage\n" + good);
  ScoreEngine engine(
      EngineConfig{protocols::ProtocolKind::kPaai1, 6, 0.018});
  std::ostringstream log;
  ServeConfig cfg;
  cfg.fail_fast = true;
  const ServeReport report = serve_stream(engine, is, log, cfg);
  EXPECT_TRUE(report.failed);
  EXPECT_EQ(report.events, 1u);
  EXPECT_EQ(report.parse_errors, 1u);
  EXPECT_NE(report.error.find("line 2:"), std::string::npos);
}

TEST(Service, SkipMalformedContinues) {
  const std::string good =
      to_jsonl({make_event(obs::EventKind::kDataSend, -1, 1, 0)});
  std::istringstream is(good + "garbage\n" + good);
  ScoreEngine engine(
      EngineConfig{protocols::ProtocolKind::kPaai1, 6, 0.018});
  std::ostringstream log;
  ServeConfig cfg;
  cfg.fail_fast = false;
  const ServeReport report = serve_stream(engine, is, log, cfg);
  EXPECT_FALSE(report.failed);
  EXPECT_EQ(report.events, 2u);
  EXPECT_EQ(report.parse_errors, 1u);
  EXPECT_EQ(engine.packets_sent(), 2u);
}

TEST(Service, StopFlagDrainsImmediately) {
  std::istringstream is(
      to_jsonl({make_event(obs::EventKind::kDataSend, -1, 1, 0)}));
  ScoreEngine engine(
      EngineConfig{protocols::ProtocolKind::kPaai1, 6, 0.018});
  std::ostringstream log;
  const volatile std::sig_atomic_t stop = 1;
  const ServeReport report =
      serve_stream(engine, is, log, ServeConfig{}, &stop);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.events, 0u);
}

TEST(Service, SnapshotsAreReloadable) {
  const BatchRun batch = run_with_log(
      runner::paper_config(protocols::ProtocolKind::kPaai1, 1000, 31));
  std::ostringstream jsonl;
  {
    obs::EventLog log(batch.events.size() + 1);
    for (const obs::Event& e : batch.events) {
      log.append(e.node, e.kind, e.ts_ns, e.link, e.a, e.b, e.value);
    }
    log.write_jsonl(jsonl);
  }
  const std::string state_path =
      testing::TempDir() + "/stream_test_state.json";
  std::istringstream is(jsonl.str());
  ScoreEngine engine;
  std::ostringstream log;
  ServeConfig cfg;
  cfg.state_out = state_path;
  cfg.snapshot_every = 100;
  const ServeReport report = serve_stream(engine, is, log, cfg);
  EXPECT_FALSE(report.failed) << report.error;
  EXPECT_GE(report.snapshots, 2u);  // periodic + exit

  std::ifstream in(state_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  ScoreEngine restored;
  std::string error;
  ASSERT_TRUE(load_state(buf.str(), &restored, &error)) << error;
  expect_equivalent(batch.result, restored, "from exit snapshot");
}

// --------------------------------------------------------- the producer

TEST(Producer, StreamsADropFreeLog) {
  std::ostringstream os;
  const runner::StreamProduceResult produced = runner::run_experiment_to_stream(
      runner::paper_config(protocols::ProtocolKind::kPaai1, 1000, 37), os);
  EXPECT_EQ(produced.events_dropped, 0u);
  EXPECT_GT(produced.events_recorded, 0u);

  std::istringstream is(os.str());
  ScoreEngine engine;
  std::ostringstream log;
  const ServeReport report = serve_stream(engine, is, log, ServeConfig{});
  EXPECT_FALSE(report.failed) << report.error;
  expect_equivalent(produced.result, engine, "producer stream");
}

}  // namespace
}  // namespace paai::stream
