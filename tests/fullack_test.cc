// Full-ack behavioural tests beyond the shared sweeps: blame-location
// accounting against the ground-truth per-link losses, e2e rate accuracy,
// and the bypass dynamics Table 2/Fig. 3 rely on.
#include <gtest/gtest.h>

#include <numeric>

#include "runner/experiment.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

TEST(FullAck, EstimatesTrackGroundTruthPerLink) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 20000, 91);
  cfg.params.send_rate_pps = 1000.0;
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_EQ(r.final_thetas.size(), r.true_link_loss.size());
  for (std::size_t i = 0; i < r.final_thetas.size(); ++i) {
    // The estimator reads the data-leg loss of each link within ~35%
    // relative error at this sample size (the last link under-reads
    // hardest; see the exposure discussion in score.h).
    EXPECT_NEAR(r.final_thetas[i], r.true_link_loss[i],
                0.35 * r.true_link_loss[i] + 0.003)
        << "link " << i;
  }
}

TEST(FullAck, ObservedE2eTracksGroundTruthDelivery) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 10000, 92);
  cfg.params.send_rate_pps = 1000.0;
  const ExperimentResult r = run_experiment(cfg);
  // observed_e2e counts unconfirmed packets; confirmation reaches ~every
  // delivered packet via ack or onion, so the two agree closely.
  EXPECT_NEAR(r.observed_e2e_rate, 1.0 - r.ground_truth_delivery, 0.02);
}

TEST(FullAck, EveryPacketIsResolvedExactlyOnce) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 5000, 93);
  cfg.params.send_rate_pps = 1000.0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.observations, r.packets_sent);
}

TEST(FullAck, BypassRestoresDeliveryAndE2e) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 10000, 94);
  cfg.params.send_rate_pps = 1000.0;
  cfg.link_faults = {LinkFault{4, 0.1}};
  cfg.bypass_after_packets = 5000;
  const ExperimentResult with_bypass = run_experiment(cfg);

  cfg.bypass_after_packets = 0;
  const ExperimentResult without = run_experiment(cfg);
  EXPECT_GT(with_bypass.ground_truth_delivery,
            without.ground_truth_delivery + 0.03);
}

TEST(FullAck, ConvictionSurvivesCleanTail) {
  // After the bypass, l_4's rolling estimate dilutes but history keeps it
  // above the honest band for a while — the "history of scores" property
  // §5 mentions. With a 1/6 clean tail the diluted estimate
  // (~5/6 * 0.03 + 1/6 * 0.01 ~ 0.027) stays well convictable.
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 9000, 95);
  cfg.params.send_rate_pps = 1000.0;
  cfg.bypass_after_packets = 7500;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.final_convicted, std::vector<std::size_t>{4});
}

TEST(FullAck, RelayStorageDrainsAfterTrafficStops) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kFullAck, 800, 96);
  cfg.params.send_rate_pps = 1000.0;
  cfg.storage_sample_period = sim::milliseconds(5.0);
  const ExperimentResult r = run_experiment(cfg);
  for (std::size_t i = 1; i < r.storage.size(); ++i) {
    ASSERT_FALSE(r.storage[i].empty());
    EXPECT_EQ(r.storage[i].points().back().value, 0.0)
        << "node " << i << " leaked state";
  }
}

TEST(Paai1, SamplingKeepsSourceStorageProportionalToP) {
  // Only sampled packets create source-side state.
  ExperimentConfig cfg = paper_config(ProtocolKind::kPaai1, 4000, 97);
  cfg.params.send_rate_pps = 1000.0;
  cfg.storage_sample_period = sim::milliseconds(5.0);
  const ExperimentResult r = run_experiment(cfg);
  double src_peak = 0.0, relay_peak = 0.0;
  for (const auto& pt : r.storage[0].points()) {
    src_peak = std::max(src_peak, pt.value);
  }
  for (const auto& pt : r.storage[1].points()) {
    relay_peak = std::max(relay_peak, pt.value);
  }
  EXPECT_LT(src_peak, relay_peak / 4.0);
}

TEST(Paai1, ObservationsMatchSampledCount) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kPaai1, 72000, 98);
  cfg.params.send_rate_pps = 1000.0;
  const ExperimentResult r = run_experiment(cfg);
  // E[observations] = N * p = 2000.
  EXPECT_NEAR(static_cast<double>(r.observations), 2000.0, 200.0);
}

}  // namespace
}  // namespace paai::runner
