// Combination-protocol (§10) specific behaviour: the K_d-keyed sampling
// agreement between source and destination, the overhead orderings of
// Table 1, and convergence of both hybrids.
#include <gtest/gtest.h>

#include "crypto/sampler.h"
#include "runner/experiment.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

TEST(Combinations, SourceAndDestinationAgreeOnSampling) {
  // Both ends evaluate the same K_d-keyed sampler; relays (holding other
  // keys) see ~p agreement only by chance.
  const auto provider = crypto::make_real_crypto();
  const crypto::KeyStore keys(crypto::test_master_key(8), 6);
  const double p = 1.0 / 9.0;
  const crypto::SecureSampler source_view(*provider, keys.destination_key(),
                                          p);
  const crypto::SecureSampler dest_view(*provider, keys.node_key(6), p);
  int sampled = 0;
  for (int i = 0; i < 5000; ++i) {
    net::DataPacket pkt{static_cast<std::uint64_t>(i), 1, 2};
    const auto id = pkt.id(*provider);
    const bool s = source_view.sampled(ByteView(id.data(), id.size()));
    const bool d = dest_view.sampled(ByteView(id.data(), id.size()));
    EXPECT_EQ(s, d);
    sampled += s ? 1 : 0;
  }
  EXPECT_NEAR(sampled / 5000.0, p, 0.02);
}

TEST(Combinations, Comb1CutsCommVersusPaai1) {
  ExperimentConfig p1 = paper_config(ProtocolKind::kPaai1, 30000, 81);
  p1.params.send_rate_pps = 1000.0;
  ExperimentConfig c1 = paper_config(ProtocolKind::kCombination1, 30000, 81);
  c1.params.send_rate_pps = 1000.0;

  const ExperimentResult rp = run_experiment(p1);
  const ExperimentResult rc = run_experiment(c1);
  // Comb-1 solicits the O(d) onion only for lost sampled packets.
  EXPECT_LT(rc.overhead_bytes_ratio, rp.overhead_bytes_ratio);
}

TEST(Combinations, Comb2CutsCommVersusPaai2) {
  ExperimentConfig p2 = paper_config(ProtocolKind::kPaai2, 30000, 82);
  p2.params.send_rate_pps = 1000.0;
  ExperimentConfig c2 = paper_config(ProtocolKind::kCombination2, 30000, 82);
  c2.params.send_rate_pps = 1000.0;

  const ExperimentResult rp = run_experiment(p2);
  const ExperimentResult rc = run_experiment(c2);
  // PAAI-2 acks every packet; Comb-2 acks only the sampled fraction.
  EXPECT_LT(rc.overhead_packets_ratio, rp.overhead_packets_ratio * 0.25);
}

TEST(Combinations, Comb1StorageExceedsPaai1) {
  // Relays cannot evaluate the K_d-keyed sampler, so they hold state for
  // every packet across the ack round trip (Table 1's 0.5 + 2p vs
  // 0.5 + p coefficients; in our secure-timer implementation both are
  // higher, but the ordering persists).
  auto measure = [](ProtocolKind kind) {
    ExperimentConfig cfg = paper_config(kind, 3000, 83);
    cfg.params.send_rate_pps = 1000.0;
    cfg.storage_sample_period = sim::milliseconds(2.0);
    const ExperimentResult r = run_experiment(cfg);
    RunningStat avg;
    for (const auto& pt : r.storage[1].points()) {
      if (pt.t > 0.3) avg.add(pt.value);
    }
    return avg.mean();
  };
  EXPECT_GT(measure(ProtocolKind::kCombination1),
            measure(ProtocolKind::kPaai1) * 1.05);
}

TEST(Combinations, Comb1ObservationsTrackSampledFraction) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kCombination1, 90000, 84);
  cfg.params.send_rate_pps = 1000.0;
  const ExperimentResult r = run_experiment(cfg);
  // ~N*p monitored units.
  EXPECT_NEAR(static_cast<double>(r.observations), 2500.0, 250.0);
  EXPECT_EQ(r.final_convicted, std::vector<std::size_t>{4});
}

}  // namespace
}  // namespace paai::runner
