// Scoring/identification unit tests: ScoreTable per-traversal inversion,
// conviction thresholds, the PAAI-2 prefix-difference estimator on
// synthetic drop processes, and the PendingStore expiry machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "protocols/pending.h"
#include "protocols/score.h"
#include "sim/storage.h"
#include "util/rng.h"

namespace paai::protocols {
namespace {

TEST(ScoreTable, ThetaInvertsTraversalCompounding) {
  ScoreTable table(6, 2.0);
  // Feed a synthetic blame process on link 3 at per-traversal rate 0.03
  // over 2 traversals: per-observation blame prob = 1-(1-0.03)^2.
  Rng rng(1);
  const double per_obs = 1.0 - std::pow(1.0 - 0.03, 2.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(per_obs)) {
      table.blame(3);
    } else {
      table.add_clean();
    }
  }
  EXPECT_EQ(table.observations(), static_cast<std::uint64_t>(n));
  EXPECT_NEAR(table.theta(3), 0.03, 0.002);
  EXPECT_DOUBLE_EQ(table.theta(0), 0.0);
}

TEST(ScoreTable, ConvictionThreshold) {
  ScoreTable table(3, 1.0);
  for (int i = 0; i < 70; ++i) table.add_clean();
  for (int i = 0; i < 30; ++i) table.blame(1);
  // theta_1 = 0.3.
  EXPECT_EQ(table.convicted(0.2), std::vector<std::size_t>{1});
  EXPECT_TRUE(table.convicted(0.35).empty());
  table.reset();
  EXPECT_EQ(table.observations(), 0u);
  EXPECT_TRUE(table.convicted(0.0).empty());
}

TEST(ScoreTable, RejectsBadConstructionAndIndices) {
  EXPECT_THROW(ScoreTable(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ScoreTable(3, 0.0), std::invalid_argument);
  ScoreTable t(3, 1.0);
  EXPECT_THROW(t.blame(3), std::out_of_range);
}

// Synthetic PAAI-2 process: d = 6 links with given per-traversal rates;
// per "cycle" the data crosses all links; a probe fires iff the data (or
// its dest-ack) dropped; on probe a uniform node e is selected and the
// prefix [0, e-1] fails iff any of ~3 traversals dropped there.
TEST(Paai2ScoreTable, EstimatorRecoversPerLinkRates) {
  const std::size_t d = 6;
  std::vector<double> theta = {0.01, 0.01, 0.01, 0.01, 0.03, 0.01};
  Paai2ScoreTable table(d);
  Rng rng(7);

  const int cycles = 600000;
  for (int c = 0; c < cycles; ++c) {
    table.add_data_packet();
    // Data leg: find first dropping link (or none).
    std::size_t data_drop = d;  // d = none
    for (std::size_t j = 0; j < d; ++j) {
      if (rng.bernoulli(theta[j])) {
        data_drop = j;
        break;
      }
    }
    // Dest-ack leg (only if data survived).
    bool ack_dropped = false;
    if (data_drop == d) {
      for (std::size_t j = d; j-- > 0;) {
        if (rng.bernoulli(theta[j])) {
          ack_dropped = true;
          break;
        }
      }
    }
    if (data_drop == d && !ack_dropped) continue;  // no probe

    const std::size_t e = 1 + rng.next_below(d);
    // Prefix failure: data dropped in prefix, or probe/report dropped
    // in prefix.
    bool failed = data_drop < e;
    for (std::size_t leg = 0; leg < 2 && !failed; ++leg) {
      for (std::size_t j = 0; j < e && !failed; ++j) {
        if (rng.bernoulli(theta[j])) failed = true;
      }
    }
    table.add_probe(e, failed);
  }

  const std::vector<double> est = table.thetas();
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(est[j], theta[j], 0.006) << "link " << j;
  }
  EXPECT_EQ(table.convicted(0.02), std::vector<std::size_t>{4});
}

TEST(Paai2ScoreTable, InterfaceBasics) {
  Paai2ScoreTable table(6);
  table.add_data_packet();
  table.add_data_packet();
  table.add_probe(3, true);
  EXPECT_EQ(table.probes(), 1u);
  EXPECT_EQ(table.selections(3), 1u);
  EXPECT_DOUBLE_EQ(table.observed_e2e_rate(), 0.5);
  // The paper's interval scoring: links 0..2 gained a point.
  EXPECT_EQ(table.interval_score(0), 1u);
  EXPECT_EQ(table.interval_score(2), 1u);
  EXPECT_EQ(table.interval_score(3), 0u);
  EXPECT_THROW(table.add_probe(0, true), std::out_of_range);
  EXPECT_THROW(table.add_probe(7, true), std::out_of_range);
  table.reset();
  EXPECT_EQ(table.probes(), 0u);
}

TEST(Paai2ScoreTable, IntervalScoresShowDifferenceAcrossMaliciousLink) {
  // The paper's identification intuition: E[s_j - s_{j+1}] is the failure
  // mass at selection e = j+1; a malicious l_4 makes s_4 - s_5 much
  // bigger than other adjacent differences.
  const std::size_t d = 6;
  std::vector<double> theta = {0.01, 0.01, 0.01, 0.01, 0.05, 0.01};
  Paai2ScoreTable table(d);
  Rng rng(11);
  for (int c = 0; c < 300000; ++c) {
    table.add_data_packet();
    std::size_t drop = d;
    for (std::size_t j = 0; j < d; ++j) {
      if (rng.bernoulli(theta[j])) {
        drop = j;
        break;
      }
    }
    if (drop == d) continue;
    const std::size_t e = 1 + rng.next_below(d);
    table.add_probe(e, drop < e);
  }
  std::vector<double> diffs;
  for (std::size_t j = 0; j + 1 < d; ++j) {
    diffs.push_back(static_cast<double>(table.interval_score(j)) -
                    static_cast<double>(table.interval_score(j + 1)));
  }
  // diffs[j] corresponds to failures with e = j+1 i.e. prefix up to l_j.
  // The jump in prefix failure mass happens between e=4 (prefix l_0..l_3,
  // clean) and e=5 (prefix includes l_4).
  std::size_t argmax = 0;
  for (std::size_t j = 1; j < diffs.size(); ++j) {
    if (diffs[j] > diffs[argmax]) argmax = j;
  }
  EXPECT_EQ(argmax, 4u);
}

TEST(PendingStore, PutFindEraseWithMeter) {
  sim::StorageMeter meter;
  PendingStore<int> store(&meter);
  net::PacketId a{}, b{};
  b[0] = 1;
  store.put(a, 10, 100);
  store.put(b, 20, 200);
  EXPECT_EQ(meter.current(), 2u);
  ASSERT_NE(store.find(a), nullptr);
  EXPECT_EQ(*store.find(a), 10);
  store.erase(a);
  EXPECT_EQ(store.find(a), nullptr);
  EXPECT_EQ(meter.current(), 1u);
  store.erase(a);  // idempotent
  EXPECT_EQ(meter.current(), 1u);
}

TEST(PendingStore, PurgeRespectsExpiryAndExtension) {
  sim::StorageMeter meter;
  PendingStore<int> store(&meter);
  net::PacketId a{}, b{};
  b[0] = 1;
  store.put(a, 1, 100);
  store.put(b, 2, 100);
  store.extend(b, 300);
  store.purge(150);
  EXPECT_EQ(store.find(a), nullptr);
  ASSERT_NE(store.find(b), nullptr);
  EXPECT_EQ(meter.current(), 1u);
  store.purge(350);
  EXPECT_EQ(store.find(b), nullptr);
  EXPECT_EQ(meter.current(), 0u);
}

TEST(PendingStore, ExtendNeverShrinks) {
  PendingStore<int> store;
  net::PacketId a{};
  store.put(a, 1, 500);
  store.extend(a, 100);  // ignored
  store.purge(200);
  EXPECT_NE(store.find(a), nullptr);
}

TEST(PendingStore, ReinsertAfterEraseWorks) {
  PendingStore<int> store;
  net::PacketId a{};
  store.put(a, 1, 100);
  store.erase(a);
  store.put(a, 2, 300);
  store.purge(150);  // stale FIFO entry for the erased generation
  ASSERT_NE(store.find(a), nullptr);
  EXPECT_EQ(*store.find(a), 2);
}

}  // namespace
}  // namespace paai::protocols
