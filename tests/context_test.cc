// ProtocolContext timing-invariant tests: the relationships between RTT
// bounds, the freshness window, and the probe delay that the security
// argument of §5 rests on — across path lengths, latency ranges, and
// clock-synchronization error bounds.
#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "protocols/context.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace paai::protocols {
namespace {

class ContextTiming
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, double>> {
};

TEST_P(ContextTiming, InvariantsHoldAcrossConfigurations) {
  const std::size_t d = std::get<0>(GetParam());
  const double max_lat = std::get<1>(GetParam());
  const double clock_err = std::get<2>(GetParam());

  sim::Simulator simulator;
  sim::PathConfig pc;
  pc.length = d;
  pc.max_latency_ms = max_lat;
  pc.max_clock_error_ms = clock_err;
  pc.seed = 3;
  sim::PathNetwork net(simulator, pc);
  const auto provider = crypto::make_fast_crypto();
  const crypto::KeyStore keys(crypto::test_master_key(3), d);
  const ProtocolContext ctx(*provider, keys, net, {});

  // 1. Freshness admits every honest transit: one-way worst case plus the
  //    clock disagreement between sender and checker.
  sim::SimDuration worst_transit = 0;
  for (std::size_t i = 0; i < d; ++i) worst_transit += net.link(i).latency();
  EXPECT_GE(ctx.freshness_window(),
            worst_transit + 2 * sim::milliseconds(clock_err));

  // 2. Withholding defense: the probe strictly trails the window, so data
  //    released on probe arrival is already stale everywhere.
  EXPECT_GT(ctx.probe_delay(), ctx.freshness_window());

  // 3. Wait-timer nesting: r_i decreases strictly toward the destination.
  for (std::size_t i = 0; i < d; ++i) {
    EXPECT_GT(ctx.rtt(i), ctx.rtt(i + 1));
  }
  EXPECT_EQ(ctx.rtt(d), 0);

  // 4. Relay state outlives any probe that can still arrive.
  EXPECT_GE(ctx.unprobed_state_horizon(),
            ctx.probe_delay() + worst_transit);

  EXPECT_EQ(ctx.d(), d);
  EXPECT_EQ(ctx.key_vector().size(), d + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContextTiming,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{6},
                                         std::size_t{12}),
                       ::testing::Values(1.0, 5.0, 20.0),
                       ::testing::Values(0.0, 1.0, 5.0)));

TEST(Context, RejectsMismatchedKeyStore) {
  sim::Simulator simulator;
  sim::PathConfig pc;
  pc.length = 6;
  sim::PathNetwork net(simulator, pc);
  const auto provider = crypto::make_fast_crypto();
  const crypto::KeyStore wrong(crypto::test_master_key(1), 4);
  EXPECT_THROW(ProtocolContext(*provider, wrong, net, {}),
               std::invalid_argument);
}

TEST(Context, ProtocolNamesAreStable) {
  EXPECT_STREQ(protocol_name(ProtocolKind::kFullAck), "full-ack");
  EXPECT_STREQ(protocol_name(ProtocolKind::kPaai1), "PAAI-1");
  EXPECT_STREQ(protocol_name(ProtocolKind::kPaai2), "PAAI-2");
  EXPECT_STREQ(protocol_name(ProtocolKind::kCombination1), "combination-1");
  EXPECT_STREQ(protocol_name(ProtocolKind::kCombination2), "combination-2");
  EXPECT_STREQ(protocol_name(ProtocolKind::kStatisticalFl),
               "statistical-FL");
}

}  // namespace
}  // namespace paai::protocols
