// Footnote-7 authenticated probes: bogus probes are rejected before any
// resources are spent; genuine operation is unchanged (at an O(d)-bytes
// probe cost).
#include <gtest/gtest.h>

#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "protocols/paai1.h"
#include "runner/experiment.h"

namespace paai::runner {
namespace {

using protocols::ProtocolKind;

TEST(AuthProbes, ChainBuildsAndVerifiesPerNode) {
  sim::Simulator simulator;
  sim::PathConfig pc;
  pc.length = 6;
  pc.seed = 1;
  sim::PathNetwork net(simulator, pc);
  const auto provider = crypto::make_real_crypto();
  const crypto::KeyStore keys(crypto::test_master_key(1), 6);
  protocols::ProtocolParams params;
  params.authenticated_probes = true;
  const protocols::ProtocolContext ctx(*provider, keys, net, params);

  net::Probe probe;
  net::DataPacket pkt{5, 6, 7};
  probe.data_id = pkt.id(*provider);
  probe.challenge = 99;
  probe.auth = protocols::build_probe_auth(ctx, probe);
  EXPECT_EQ(probe.auth.size(), 6 * crypto::kMacSize);

  for (std::size_t i = 1; i <= 6; ++i) {
    EXPECT_TRUE(protocols::verify_probe_auth(ctx, probe, i)) << i;
  }

  // Any tampering breaks the affected node's check.
  net::Probe bogus = probe;
  bogus.auth[8] ^= 1;  // node 2's tag
  EXPECT_TRUE(protocols::verify_probe_auth(ctx, bogus, 1));
  EXPECT_FALSE(protocols::verify_probe_auth(ctx, bogus, 2));

  // Changing the probe content invalidates every tag.
  net::Probe other = probe;
  other.challenge = 100;
  for (std::size_t i = 1; i <= 6; ++i) {
    EXPECT_FALSE(protocols::verify_probe_auth(ctx, other, i)) << i;
  }

  // Missing or short chains are rejected outright.
  net::Probe empty = probe;
  empty.auth.clear();
  EXPECT_FALSE(protocols::verify_probe_auth(ctx, empty, 1));
  EXPECT_FALSE(protocols::verify_probe_auth(ctx, probe, 0));
  EXPECT_FALSE(protocols::verify_probe_auth(ctx, probe, 7));
}

TEST(AuthProbes, ProbeWireFormatRoundTripsWithChain) {
  net::Probe probe;
  probe.challenge = 42;
  probe.auth = Bytes(48, 0xaa);
  const Bytes wire = probe.encode();
  const auto decoded = net::Probe::decode(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->challenge, 42u);
  EXPECT_EQ(decoded->auth, probe.auth);
  EXPECT_EQ(probe.wire_size(), wire.size());
}

TEST(AuthProbes, Paai1StillLocalizesWithAuthenticationOn) {
  ExperimentConfig cfg = paper_config(ProtocolKind::kPaai1, 40000, 71);
  cfg.params.authenticated_probes = true;
  cfg.params.probe_probability = 1.0 / 9.0;
  cfg.params.send_rate_pps = 500.0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.final_convicted, std::vector<std::size_t>{4});
}

TEST(AuthProbes, OverheadGrowsByOrderD) {
  ExperimentConfig plain = paper_config(ProtocolKind::kPaai1, 20000, 72);
  plain.params.send_rate_pps = 500.0;
  ExperimentConfig authed = plain;
  authed.params.authenticated_probes = true;

  const ExperimentResult a = run_experiment(plain);
  const ExperimentResult b = run_experiment(authed);
  // Probes grow from 27 to 27 + 48 bytes; overall control bytes rise but
  // stay tiny relative to the data.
  EXPECT_GT(b.overhead_bytes_ratio, a.overhead_bytes_ratio);
  EXPECT_LT(b.overhead_bytes_ratio, 0.02);
}

}  // namespace
}  // namespace paai::runner
