// Statistical-FL internals: per-node sampling independence, local report
// format, interval accounting through losses and retransmissions, and
// estimator convergence at scale.
#include <gtest/gtest.h>

#include "protocols/statfl.h"
#include "runner/experiment.h"
#include "util/wire.h"

namespace paai::protocols {
namespace {

TEST(StatFl, PerNodeSamplingStreamsAreIndependent) {
  sim::Simulator simulator;
  sim::PathConfig pc;
  pc.length = 6;
  pc.seed = 1;
  sim::PathNetwork net(simulator, pc);
  const auto provider = crypto::make_real_crypto();
  const crypto::KeyStore keys(crypto::test_master_key(1), 6);
  ProtocolParams params;
  params.fl_sampling = 0.5;
  const ProtocolContext ctx(*provider, keys, net, params);

  // Count agreements between node 2's and node 3's sampling decisions:
  // independent fair streams agree ~half the time. A shared stream (the
  // insecure design) would agree always.
  int agree = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    net::DataPacket pkt{static_cast<std::uint64_t>(i), 7, 9};
    const net::PacketId id = pkt.id(*provider);
    const bool a = statfl_counts(ctx, 2, id);
    const bool b = statfl_counts(ctx, 3, id);
    if (a == b) ++agree;
  }
  EXPECT_NEAR(static_cast<double>(agree) / trials, 0.5, 0.05);
}

TEST(StatFl, LocalReportRoundTrip) {
  const Bytes r = statfl_local_report(4, 17, 12345);
  WireReader rd(ByteView(r.data(), r.size()));
  std::uint8_t idx;
  std::uint64_t interval;
  std::uint32_t count;
  ASSERT_TRUE(rd.u8(idx));
  ASSERT_TRUE(rd.u64(interval));
  ASSERT_TRUE(rd.u32(count));
  EXPECT_TRUE(rd.done());
  EXPECT_EQ(idx, 4);
  EXPECT_EQ(interval, 17u);
  EXPECT_EQ(count, 12345u);
}

TEST(StatFl, ConvergesWithFullSampling) {
  // With p = 1 the counters are exact and the estimator converges fast.
  runner::ExperimentConfig cfg = runner::paper_config(
      ProtocolKind::kStatisticalFl, 60000, 11);
  cfg.params.fl_sampling = 1.0;
  cfg.params.fl_interval_packets = 500;
  cfg.params.send_rate_pps = 1000.0;
  const auto result = runner::run_experiment(cfg);
  EXPECT_EQ(result.final_convicted, std::vector<std::size_t>{4});
  EXPECT_NEAR(result.final_thetas[4], 0.0298, 0.005);
  EXPECT_NEAR(result.final_thetas[1], 0.0099, 0.004);
  // Virtually every interval must have been reported despite natural
  // losses (retransmissions cover them).
  EXPECT_GT(result.observations, 115u);  // of 120 intervals
}

TEST(StatFl, ObservedE2eRateIsDataLegOnly) {
  runner::ExperimentConfig cfg = runner::paper_config(
      ProtocolKind::kStatisticalFl, 30000, 12);
  cfg.params.fl_sampling = 1.0;
  cfg.params.send_rate_pps = 1000.0;
  const auto result = runner::run_experiment(cfg);
  // 1 - (1-rho)^5 (1-~0.0298) ~= 0.077 on the data leg.
  EXPECT_NEAR(result.observed_e2e_rate, 0.077, 0.012);
}

TEST(StatFl, NearZeroOverhead) {
  runner::ExperimentConfig cfg = runner::paper_config(
      ProtocolKind::kStatisticalFl, 20000, 13);
  cfg.params.send_rate_pps = 1000.0;
  const auto result = runner::run_experiment(cfg);
  EXPECT_LT(result.overhead_bytes_ratio, 0.005);
  EXPECT_LT(result.overhead_packets_ratio, 0.02);
}

TEST(StatFl, StorageIsCountersOnly) {
  runner::ExperimentConfig cfg = runner::paper_config(
      ProtocolKind::kStatisticalFl, 5000, 14);
  cfg.params.send_rate_pps = 1000.0;
  cfg.storage_sample_period = sim::milliseconds(5.0);
  const auto result = runner::run_experiment(cfg);
  double peak = 0.0;
  for (const auto& pt : result.storage[1].points()) {
    peak = std::max(peak, pt.value);
  }
  EXPECT_EQ(peak, 0.0);  // no per-packet state at relays at all
}

}  // namespace
}  // namespace paai::protocols
