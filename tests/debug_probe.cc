// Scratch diagnostic binary (not a registered test).
#include <cstdio>

#include "runner/experiment.h"

using namespace paai;
using namespace paai::runner;

static void show(protocols::ProtocolKind kind, const char* name,
                 std::uint64_t packets) {
  ExperimentConfig cfg = paper_config(kind, packets, 42);
  const ExperimentResult r = run_experiment(cfg);
  std::printf("%-12s sent=%llu obs=%llu e2e=%.4f overheadB=%.3f thetas:",
              name, (unsigned long long)r.packets_sent,
              (unsigned long long)r.observations, r.observed_e2e_rate,
              r.overhead_bytes_ratio);
  for (double t : r.final_thetas) std::printf(" %.4f", t);
  std::printf("  convicted:");
  for (auto c : r.final_convicted) std::printf(" %zu", c);
  std::printf("\n");
}

int main() {
  show(protocols::ProtocolKind::kFullAck, "fullack", 4000);
  show(protocols::ProtocolKind::kPaai1, "paai1", 80000);
  show(protocols::ProtocolKind::kPaai2, "paai2", 400000);
  show(protocols::ProtocolKind::kCombination1, "comb1", 120000);
  show(protocols::ProtocolKind::kCombination2, "comb2", 1000000);
  show(protocols::ProtocolKind::kStatisticalFl, "statfl", 1000000);
  return 0;
}
