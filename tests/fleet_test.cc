// Fleet-runner tests (Corollary 2 infrastructure): baseline measurement,
// per-path outcome classification, and damage aggregation. run_fleet is
// now the degenerate (link-disjoint) case of the mesh runner, so the last
// test replays the historical serial implementation inline and demands
// bit-identical numbers.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runner/fleet.h"

namespace paai::runner {
namespace {

FleetConfig base_fleet() {
  FleetConfig cfg;
  cfg.base = paper_config(protocols::ProtocolKind::kPaai1, 40000, 0);
  cfg.base.link_faults.clear();
  cfg.base.params.probe_probability = 1.0 / 9.0;
  cfg.base.params.send_rate_pps = 1000.0;
  return cfg;
}

TEST(Fleet, CleanPathsReportNoDamageOrConvictions) {
  FleetConfig cfg = base_fleet();
  cfg.paths = {{}, {}};
  const FleetResult r = run_fleet(cfg);
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_GT(r.baseline_delivery, 0.9);
  EXPECT_LT(r.total_damage, 0.01);
  for (const auto& p : r.paths) {
    EXPECT_TRUE(p.convicted.empty());
    EXPECT_TRUE(p.malicious.empty());
    EXPECT_TRUE(p.all_malicious_convicted);  // vacuously
    EXPECT_FALSE(p.any_honest_convicted);
  }
}

TEST(Fleet, ClassifiesConvictionsAgainstGroundTruth) {
  FleetConfig cfg = base_fleet();
  cfg.paths = {{LinkFault{4, 0.05}}, {}};
  const FleetResult r = run_fleet(cfg);
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_TRUE(r.paths[0].all_malicious_convicted);
  EXPECT_FALSE(r.paths[0].any_honest_convicted);
  EXPECT_EQ(r.paths[0].malicious, std::vector<std::size_t>{4});
  EXPECT_TRUE(r.paths[1].convicted.empty());
  // Damage ~ one path losing ~5% of its traffic.
  EXPECT_NEAR(r.total_damage, 0.05, 0.02);
}

TEST(Fleet, DamageAddsAcrossPaths) {
  FleetConfig one = base_fleet();
  one.paths = {{LinkFault{3, 0.05}}};
  FleetConfig three = base_fleet();
  three.paths = {{LinkFault{3, 0.05}},
                 {LinkFault{3, 0.05}},
                 {LinkFault{3, 0.05}}};
  const double d1 = run_fleet(one).total_damage;
  const double d3 = run_fleet(three).total_damage;
  EXPECT_NEAR(d3, 3.0 * d1, 0.03);
}

/// The pre-mesh run_fleet, verbatim but serial: clean baseline seeded
/// seed0, path i seeded seed0 + 1 + i, damage folded in path order.
FleetResult legacy_run_fleet(const FleetConfig& config) {
  FleetResult result;
  {
    ExperimentConfig clean = config.base;
    clean.link_faults.clear();
    clean.adversaries.clear();
    clean.path.seed = config.seed0;
    result.baseline_delivery = run_experiment(clean).ground_truth_delivery;
  }
  for (std::size_t i = 0; i < config.paths.size(); ++i) {
    ExperimentConfig cfg = config.base;
    cfg.link_faults = config.paths[i];
    cfg.path.seed = config.seed0 + 1 + i;
    const ExperimentResult run = run_experiment(cfg);

    FleetResult::PathOutcome outcome;
    outcome.ground_truth_delivery = run.ground_truth_delivery;
    outcome.observed_e2e_rate = run.observed_e2e_rate;
    outcome.convicted = run.final_convicted;
    for (const auto& fault : config.paths[i]) {
      outcome.malicious.push_back(fault.link);
    }
    std::sort(outcome.malicious.begin(), outcome.malicious.end());
    outcome.all_malicious_convicted = true;
    for (const std::size_t link : outcome.malicious) {
      if (std::find(outcome.convicted.begin(), outcome.convicted.end(),
                    link) == outcome.convicted.end()) {
        outcome.all_malicious_convicted = false;
      }
    }
    for (const std::size_t link : outcome.convicted) {
      if (std::find(outcome.malicious.begin(), outcome.malicious.end(),
                    link) == outcome.malicious.end()) {
        outcome.any_honest_convicted = true;
      }
    }
    result.total_damage += std::max(
        0.0, result.baseline_delivery - outcome.ground_truth_delivery);
    result.paths.push_back(std::move(outcome));
  }
  return result;
}

TEST(Fleet, MeshBackedFleetReproducesLegacyNumbersBitForBit) {
  FleetConfig cfg;
  cfg.base = paper_config(protocols::ProtocolKind::kPaai1, 15000, 0);
  cfg.base.link_faults.clear();
  cfg.base.params.probe_probability = 1.0 / 9.0;
  cfg.base.params.send_rate_pps = 1000.0;
  cfg.paths = {{LinkFault{4, 0.05}},
               {},
               {LinkFault{2, 0.04}, LinkFault{4, 0.05}}};
  cfg.seed0 = 9000;

  const FleetResult want = legacy_run_fleet(cfg);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    cfg.jobs = jobs;
    const FleetResult got = run_fleet(cfg);
    EXPECT_EQ(got.baseline_delivery, want.baseline_delivery);  // bit-exact
    EXPECT_EQ(got.total_damage, want.total_damage);
    ASSERT_EQ(got.paths.size(), want.paths.size());
    for (std::size_t i = 0; i < want.paths.size(); ++i) {
      EXPECT_EQ(got.paths[i].ground_truth_delivery,
                want.paths[i].ground_truth_delivery);
      EXPECT_EQ(got.paths[i].observed_e2e_rate,
                want.paths[i].observed_e2e_rate);
      EXPECT_EQ(got.paths[i].convicted, want.paths[i].convicted);
      EXPECT_EQ(got.paths[i].malicious, want.paths[i].malicious);
      EXPECT_EQ(got.paths[i].all_malicious_convicted,
                want.paths[i].all_malicious_convicted);
      EXPECT_EQ(got.paths[i].any_honest_convicted,
                want.paths[i].any_honest_convicted);
    }
  }
}

}  // namespace
}  // namespace paai::runner
