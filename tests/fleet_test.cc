// Fleet-runner tests (Corollary 2 infrastructure): baseline measurement,
// per-path outcome classification, and damage aggregation.
#include <gtest/gtest.h>

#include "runner/fleet.h"

namespace paai::runner {
namespace {

FleetConfig base_fleet() {
  FleetConfig cfg;
  cfg.base = paper_config(protocols::ProtocolKind::kPaai1, 40000, 0);
  cfg.base.link_faults.clear();
  cfg.base.params.probe_probability = 1.0 / 9.0;
  cfg.base.params.send_rate_pps = 1000.0;
  return cfg;
}

TEST(Fleet, CleanPathsReportNoDamageOrConvictions) {
  FleetConfig cfg = base_fleet();
  cfg.paths = {{}, {}};
  const FleetResult r = run_fleet(cfg);
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_GT(r.baseline_delivery, 0.9);
  EXPECT_LT(r.total_damage, 0.01);
  for (const auto& p : r.paths) {
    EXPECT_TRUE(p.convicted.empty());
    EXPECT_TRUE(p.malicious.empty());
    EXPECT_TRUE(p.all_malicious_convicted);  // vacuously
    EXPECT_FALSE(p.any_honest_convicted);
  }
}

TEST(Fleet, ClassifiesConvictionsAgainstGroundTruth) {
  FleetConfig cfg = base_fleet();
  cfg.paths = {{LinkFault{4, 0.05}}, {}};
  const FleetResult r = run_fleet(cfg);
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_TRUE(r.paths[0].all_malicious_convicted);
  EXPECT_FALSE(r.paths[0].any_honest_convicted);
  EXPECT_EQ(r.paths[0].malicious, std::vector<std::size_t>{4});
  EXPECT_TRUE(r.paths[1].convicted.empty());
  // Damage ~ one path losing ~5% of its traffic.
  EXPECT_NEAR(r.total_damage, 0.05, 0.02);
}

TEST(Fleet, DamageAddsAcrossPaths) {
  FleetConfig one = base_fleet();
  one.paths = {{LinkFault{3, 0.05}}};
  FleetConfig three = base_fleet();
  three.paths = {{LinkFault{3, 0.05}},
                 {LinkFault{3, 0.05}},
                 {LinkFault{3, 0.05}}};
  const double d1 = run_fleet(one).total_damage;
  const double d3 = run_fleet(three).total_damage;
  EXPECT_NEAR(d3, 3.0 * d1, 0.03);
}

}  // namespace
}  // namespace paai::runner
