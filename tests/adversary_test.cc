// Adversary-strategy unit tests: each strategy's decision behaviour in
// isolation (rates, type selectivity, withhold bookkeeping, activation).
#include <gtest/gtest.h>

#include "adversary/strategy.h"

namespace paai::adversary {
namespace {

Context ctx_of(net::PacketType type,
               sim::Direction dir = sim::Direction::kToDest) {
  Context c;
  c.type = type;
  c.dir = dir;
  c.node_index = 3;
  return c;
}

double drop_rate(Strategy& s, net::PacketType type, int trials = 20000,
                 sim::Direction dir = sim::Direction::kToDest) {
  int drops = 0;
  for (int i = 0; i < trials; ++i) {
    const Action a = s.on_packet(ctx_of(type, dir));
    if (a == Action::kDrop || a == Action::kWithhold ||
        a == Action::kCorrupt) {
      ++drops;
    }
  }
  return static_cast<double>(drops) / trials;
}

TEST(UniformDropper, DropsAllTypesAtRate) {
  auto s = make_uniform_dropper(0.2, Rng(1));
  EXPECT_NEAR(drop_rate(*s, net::PacketType::kData), 0.2, 0.02);
  EXPECT_NEAR(drop_rate(*s, net::PacketType::kDestAck), 0.2, 0.02);
  EXPECT_NEAR(drop_rate(*s, net::PacketType::kProbe), 0.2, 0.02);
}

TEST(UniformDropper, InactiveForwardsEverything) {
  auto s = make_uniform_dropper(1.0, Rng(1));
  s->set_active(false);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kData, 100), 0.0);
  s->set_active(true);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kData, 100), 1.0);
}

TEST(TypeRateDropper, SplitsByType) {
  TypeRates rates;
  rates.data = 0.5;
  rates.probe = 0.1;
  rates.ack = 0.0;
  auto s = make_type_rate_dropper(rates, Rng(2));
  EXPECT_NEAR(drop_rate(*s, net::PacketType::kData), 0.5, 0.02);
  EXPECT_NEAR(drop_rate(*s, net::PacketType::kProbe), 0.1, 0.02);
  EXPECT_NEAR(drop_rate(*s, net::PacketType::kFlRequest), 0.1, 0.02);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kDestAck, 1000), 0.0);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kReportAck, 1000), 0.0);
}

TEST(AckDropper, OnlyAcksAffected) {
  auto s = make_ack_dropper(1.0, Rng(3));
  EXPECT_EQ(drop_rate(*s, net::PacketType::kData, 500), 0.0);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kProbe, 500), 0.0);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kDestAck, 500), 1.0);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kReportAck, 500), 1.0);
  EXPECT_EQ(drop_rate(*s, net::PacketType::kFlReport, 500), 1.0);
}

TEST(Corrupter, EmitsCorruptAction) {
  auto s = make_corrupter(1.0, Rng(4));
  EXPECT_EQ(s->on_packet(ctx_of(net::PacketType::kData)), Action::kCorrupt);
  auto s2 = make_corrupter(0.0, Rng(4));
  EXPECT_EQ(s2->on_packet(ctx_of(net::PacketType::kData)), Action::kForward);
}

TEST(Withholder, WithholdsOnlyForwardPathData) {
  auto s = make_withholder(1.0, /*release=*/true, Rng(5));
  EXPECT_EQ(s->on_packet(ctx_of(net::PacketType::kData)), Action::kWithhold);
  EXPECT_EQ(s->on_packet(ctx_of(net::PacketType::kProbe)), Action::kForward);
  EXPECT_EQ(s->on_packet(
                ctx_of(net::PacketType::kData, sim::Direction::kToSource)),
            Action::kForward);
  EXPECT_EQ(s->on_withheld_probe(ctx_of(net::PacketType::kProbe)),
            Action::kForward);

  auto dropper = make_withholder(1.0, /*release=*/false, Rng(5));
  EXPECT_EQ(dropper->on_withheld_probe(ctx_of(net::PacketType::kProbe)),
            Action::kDrop);
}

TEST(AllStrategies, DefaultPretendHonestInAcks) {
  auto a = make_uniform_dropper(0.5, Rng(6));
  auto b = make_ack_dropper(0.5, Rng(6));
  auto c = make_withholder(0.5, true, Rng(6));
  EXPECT_TRUE(a->pretend_honest_in_acks());
  EXPECT_TRUE(b->pretend_honest_in_acks());
  EXPECT_TRUE(c->pretend_honest_in_acks());
}

}  // namespace
}  // namespace paai::adversary
