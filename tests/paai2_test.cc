// PAAI-2 internals: report plaintext structure, layered re-encryption
// round trip, nonce separation, and the obliviousness property (an
// observer — or any relay other than the selected node — cannot tell who
// was selected from the bytes on the wire: reports have constant size and
// every hop's output is a fresh-looking ciphertext).
#include <gtest/gtest.h>

#include <set>

#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "crypto/sampler.h"
#include "net/packet.h"
#include "protocols/paai2.h"

namespace paai::protocols {
namespace {

struct Fixture {
  std::unique_ptr<crypto::CryptoProvider> crypto = crypto::make_real_crypto();
  std::size_t d = 6;
  crypto::KeyStore keys{crypto::test_master_key(5), 6};

  net::PacketId id() const {
    net::DataPacket pkt{1, 2, 3};
    return pkt.id(*crypto);
  }

  Bytes probe_bytes() const {
    net::Probe probe;
    probe.data_id = id();
    probe.challenge = 0x1122334455667788ULL;
    return probe.encode();
  }
};

TEST(Paai2Report, PlaintextLayoutAndSize) {
  Fixture f;
  const Bytes probe = f.probe_bytes();
  const crypto::Mac ad =
      f.crypto->mac(f.keys.node_key(6), ByteView(f.id().data(), 16));

  const Bytes with_ad = paai2_report_plaintext(
      *f.crypto, f.keys.node_key(3), 3, ByteView(probe.data(), probe.size()),
      &ad);
  const Bytes without_ad = paai2_report_plaintext(
      *f.crypto, f.keys.node_key(3), 3, ByteView(probe.data(), probe.size()),
      nullptr);

  ASSERT_EQ(with_ad.size(), kPaai2ReportSize);
  ASSERT_EQ(without_ad.size(), kPaai2ReportSize);
  // The authenticator part is identical regardless of a_d (that's the
  // security fix: an unauthenticated a_d copy cannot poison the MAC).
  EXPECT_TRUE(std::equal(with_ad.begin(), with_ad.begin() + crypto::kMacSize,
                         without_ad.begin()));
  EXPECT_EQ(with_ad[crypto::kMacSize], 1);
  EXPECT_EQ(without_ad[crypto::kMacSize], 0);
  // The flag+tag differ.
  EXPECT_NE(with_ad, without_ad);

  // The MAC part matches the standalone tag helper.
  const crypto::Mac tag = paai2_report_tag(*f.crypto, f.keys.node_key(3), 3,
                                           ByteView(probe.data(), probe.size()));
  EXPECT_TRUE(std::equal(tag.begin(), tag.end(), with_ad.begin()));
}

TEST(Paai2Report, TagBindsIndexAndProbe) {
  Fixture f;
  const Bytes probe = f.probe_bytes();
  const crypto::Mac t3 = paai2_report_tag(*f.crypto, f.keys.node_key(3), 3,
                                          ByteView(probe.data(), probe.size()));
  const crypto::Mac t4 = paai2_report_tag(*f.crypto, f.keys.node_key(3), 4,
                                          ByteView(probe.data(), probe.size()));
  EXPECT_NE(t3, t4);

  Bytes other_probe = probe;
  other_probe.back() ^= 1;
  const crypto::Mac t3b = paai2_report_tag(
      *f.crypto, f.keys.node_key(3), 3,
      ByteView(other_probe.data(), other_probe.size()));
  EXPECT_NE(t3, t3b);
}

TEST(Paai2Report, LayeredEncryptionPeelsInOrder) {
  Fixture f;
  const Bytes probe = f.probe_bytes();
  const net::PacketId id = f.id();
  const std::size_t e = 4;

  // F_4 originates; F_3, F_2, F_1 re-encrypt.
  Bytes report = paai2_report_plaintext(*f.crypto, f.keys.node_key(e), e,
                                        ByteView(probe.data(), probe.size()),
                                        nullptr);
  Bytes cipher = f.crypto->encrypt(f.keys.node_key(e),
                                   paai2_layer_nonce(id, e),
                                   ByteView(report.data(), report.size()));
  for (std::size_t j = e; j-- > 1;) {
    cipher = f.crypto->encrypt(f.keys.node_key(j), paai2_layer_nonce(id, j),
                               ByteView(cipher.data(), cipher.size()));
  }
  EXPECT_EQ(cipher.size(), kPaai2ReportSize);  // constant size at any hop

  // Source peels K_1..K_e.
  Bytes cur = cipher;
  for (std::size_t j = 1; j <= e; ++j) {
    cur = f.crypto->decrypt(f.keys.node_key(j), paai2_layer_nonce(id, j),
                            ByteView(cur.data(), cur.size()));
  }
  EXPECT_EQ(cur, report);

  // Peeling one layer too many or too few yields garbage, not the tag.
  Bytes under = cipher;
  for (std::size_t j = 1; j <= e - 1; ++j) {
    under = f.crypto->decrypt(f.keys.node_key(j), paai2_layer_nonce(id, j),
                              ByteView(under.data(), under.size()));
  }
  EXPECT_NE(under, report);
}

TEST(Paai2Report, NonceSeparatesNodesAndPackets) {
  net::PacketId a{}, b{};
  b[0] = 1;
  std::set<std::uint64_t> nonces;
  for (std::size_t i = 1; i <= 6; ++i) {
    nonces.insert(paai2_layer_nonce(a, i));
    nonces.insert(paai2_layer_nonce(b, i));
  }
  EXPECT_EQ(nonces.size(), 12u);
}

// Obliviousness on the wire: for two different selected nodes, the report
// a given upstream relay forwards is a same-length pseudorandom blob; no
// per-hop length or structure leaks the selection.
TEST(Paai2Obliviousness, ConstantSizeAcrossSelections) {
  Fixture f;
  const net::PacketId id = f.id();
  for (std::size_t e = 1; e <= f.d; ++e) {
    const Bytes probe = f.probe_bytes();
    Bytes report = paai2_report_plaintext(*f.crypto, f.keys.node_key(e), e,
                                          ByteView(probe.data(), probe.size()),
                                          nullptr);
    Bytes cipher = f.crypto->encrypt(f.keys.node_key(e),
                                     paai2_layer_nonce(id, e),
                                     ByteView(report.data(), report.size()));
    for (std::size_t j = e; j-- > 1;) {
      cipher = f.crypto->encrypt(f.keys.node_key(j), paai2_layer_nonce(id, j),
                                 ByteView(cipher.data(), cipher.size()));
    }
    EXPECT_EQ(cipher.size(), kPaai2ReportSize) << "selection " << e;
  }
}

// The selection predicate is deterministic per (key, challenge) — relays
// and source always agree — but varies across challenges.
TEST(Paai2Selection, DeterministicAndChallengeSensitive) {
  Fixture f;
  std::vector<crypto::Key> keys(f.d + 1);
  for (std::size_t i = 1; i <= f.d; ++i) keys[i] = f.keys.node_key(i);

  const Bytes c1 = f.probe_bytes();
  const std::size_t e1 = crypto::selected_node(
      *f.crypto, keys, ByteView(c1.data(), c1.size()), f.d);
  const std::size_t e1_again = crypto::selected_node(
      *f.crypto, keys, ByteView(c1.data(), c1.size()), f.d);
  EXPECT_EQ(e1, e1_again);

  // Across many challenges, every node gets selected at least once.
  std::set<std::size_t> seen;
  for (std::uint64_t z = 0; z < 200; ++z) {
    net::Probe probe;
    probe.data_id = f.id();
    probe.challenge = z * 0x9e3779b97f4a7c15ULL + 1;
    const Bytes pb = probe.encode();
    seen.insert(crypto::selected_node(*f.crypto, keys,
                                      ByteView(pb.data(), pb.size()), f.d));
  }
  EXPECT_EQ(seen.size(), f.d);
}

// Consistency between the per-node predicate and the source-side selected
// node computation (the first firing predicate is the selection).
TEST(Paai2Selection, PredicateMatchesSelectedNode) {
  Fixture f;
  std::vector<crypto::Key> keys(f.d + 1);
  for (std::size_t i = 1; i <= f.d; ++i) keys[i] = f.keys.node_key(i);

  for (std::uint64_t z = 0; z < 100; ++z) {
    net::Probe probe;
    probe.data_id = f.id();
    probe.challenge = z;
    const Bytes pb = probe.encode();
    const ByteView challenge(pb.data(), pb.size());
    const std::size_t e =
        crypto::selected_node(*f.crypto, keys, challenge, f.d);
    for (std::size_t i = 1; i < e; ++i) {
      EXPECT_FALSE(crypto::selection_predicate(*f.crypto, keys[i], challenge,
                                               i, f.d));
    }
    EXPECT_TRUE(crypto::selection_predicate(*f.crypto, keys[e], challenge, e,
                                            f.d));
  }
}

}  // namespace
}  // namespace paai::protocols
