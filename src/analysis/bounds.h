// Closed-form results of §7 (Theorems 1-2, Corollaries 1-3, Table 1).
//
// Pure functions; the bench binaries evaluate them to regenerate the
// paper's analytical rows, and tests cross-check them against the worked
// example of §7.2 (tau_1 ~ 1500, tau_2 ~ 5e4, tau_3 ~ 6e5, statistical FL
// ~ 2e7 for sigma = 0.03, rho = 0.01, alpha = 0.03, d = 6, p = 1/d^2).
#pragma once

#include <cstddef>

namespace paai::analysis {

struct Params {
  std::size_t d = 6;     // path length (hops)
  double rho = 0.01;     // natural per-link loss rate (max)
  double alpha = 0.03;   // per-link drop-rate threshold
  double sigma = 0.03;   // allowed false-positive probability
  double p = 1.0 / 36.0; // probe / sampling frequency
  double psi = 0.077;    // end-to-end loss rate (for overhead formulas)

  /// eps = alpha - rho: the accuracy margin of Theorem 2.
  double eps() const { return alpha - rho; }
};

// --- Theorem 2: detection rate (data packets until convergence) ---------

/// tau_1 = ln(2/sigma) / (8 eps^2 (1-rho)^{2+d})          (full-ack)
double tau_fullack(const Params& p);

/// tau_2 = tau_1 / p                                      (PAAI-1)
double tau_paai1(const Params& p);

/// tau_3 = 2^d ln(2/sigma)/(18 eps^2) * d log2(d)         (PAAI-2)
double tau_paai2(const Params& p);

/// d^2 ln(d/sigma) / (p eps^2)                            (statistical FL)
double tau_statfl(const Params& p);

/// Combination 1 retains PAAI-1's detection rate.
double tau_comb1(const Params& p);

/// Combination 2: tau_3 / p.
double tau_comb2(const Params& p);

/// Converts a packet count to minutes at `rate_pps` packets per second.
double detection_minutes(double packets, double rate_pps);

// --- Theorem 1: maximum undetected malicious end-to-end drop rate --------

/// Full-ack / PAAI-1: zeta = z * alpha for z compromised links.
double zeta_onion(std::size_t z, const Params& p);

/// PAAI-2: zeta = 1 - (1-alpha)^{2d} / (1-rho)^{2(d-z)}.
double zeta_paai2(std::size_t z, const Params& p);

/// PAAI-2's end-to-end threshold psi_th = 1 - (1-alpha)^{2d}.
double psi_threshold(const Params& p);

// --- §7.3: communication overhead (control packets per data packet) ------

double comm_fullack(const Params& p);  // 1 + psi d
double comm_paai1(const Params& p);    // p d
double comm_paai2(const Params& p);    // O(1): dest ack + psi (probe+report)
double comm_statfl(const Params& p);   // 2/interval -> ~0
double comm_comb1(const Params& p);    // p (1 + psi d)
double comm_comb2(const Params& p);    // p O(1)

// --- §7.4: storage bounds, in units of r_0 * nu (packets) ----------------

struct StorageBound {
  double worst = 0.0;
  double ideal = 0.0;
};

StorageBound storage_fullack(const Params& p);  // {2, 1}
StorageBound storage_paai1(const Params& p);    // {0.5+p, 0.5+p}
StorageBound storage_paai2(const Params& p);    // {2, 1}
StorageBound storage_statfl(const Params& p);   // {~p, ~p}
StorageBound storage_comb1(const Params& p);    // {0.5+2p, 0.5+2p}
StorageBound storage_comb2(const Params& p);    // {1+p, 1}

// --- Corollary 2 helper ---------------------------------------------------

/// Total malicious end-to-end drop rate across k paths when z compromised
/// links are spread one-per-path (the adversary's optimal deployment) for
/// an onion-report protocol.
double optimal_spread_total(std::size_t z, const Params& p);

/// Total malicious end-to-end drop rate when all z compromised links are
/// concentrated on ONE path: drops compound multiplicatively, so the
/// damage saturates at 1 - (1-alpha)^z instead of growing linearly —
/// the other side of Corollary 2's spread-vs-concentrate comparison.
double concentrated_total(std::size_t z, const Params& p);

/// Corollary 2's headline gap: how much extra undetected damage spreading
/// buys over concentrating the same z-link budget,
/// optimal_spread_total - concentrated_total (>= 0, 0 at z <= 1, and
/// approximately alpha^2 * z(z-1)/2 for small z * alpha). The mesh tests
/// cross-check measured MeshRunner damage against both closed forms.
double spread_advantage(std::size_t z, const Params& p);

}  // namespace paai::analysis
