#include "analysis/bounds.h"

#include <algorithm>
#include <cmath>

namespace paai::analysis {

double tau_fullack(const Params& p) {
  const double e = p.eps();
  return std::log(2.0 / p.sigma) /
         (8.0 * e * e * std::pow(1.0 - p.rho, 2.0 + static_cast<double>(p.d)));
}

double tau_paai1(const Params& p) { return tau_fullack(p) / p.p; }

double tau_paai2(const Params& p) {
  const double e = p.eps();
  const double d = static_cast<double>(p.d);
  return std::pow(2.0, d) * std::log(2.0 / p.sigma) / (18.0 * e * e) * d *
         std::log2(d);
}

double tau_statfl(const Params& p) {
  const double e = p.eps();
  const double d = static_cast<double>(p.d);
  return d * d * std::log(d / p.sigma) / (p.p * e * e);
}

double tau_comb1(const Params& p) { return tau_paai1(p); }

double tau_comb2(const Params& p) { return tau_paai2(p) / p.p; }

double detection_minutes(double packets, double rate_pps) {
  return packets / rate_pps / 60.0;
}

double zeta_onion(std::size_t z, const Params& p) {
  return static_cast<double>(z) * p.alpha;
}

double zeta_paai2(std::size_t z, const Params& p) {
  const double d = static_cast<double>(p.d);
  const double zz = static_cast<double>(z);
  return 1.0 - std::pow(1.0 - p.alpha, 2.0 * d) /
                   std::pow(1.0 - p.rho, 2.0 * (d - zz));
}

double psi_threshold(const Params& p) {
  return 1.0 - std::pow(1.0 - p.alpha, 2.0 * static_cast<double>(p.d));
}

double comm_fullack(const Params& p) {
  return 1.0 + p.psi * static_cast<double>(p.d);
}

double comm_paai1(const Params& p) {
  return p.p * static_cast<double>(p.d);
}

double comm_paai2(const Params& p) {
  // Destination ack per packet, plus probe + constant-size report on loss.
  return 1.0 + 2.0 * p.psi;
}

double comm_statfl(const Params& p) {
  // One request and one O(d) report per interval; vanishing per packet.
  (void)p;
  return 0.0;
}

double comm_comb1(const Params& p) {
  return p.p * (1.0 + p.psi * static_cast<double>(p.d));
}

double comm_comb2(const Params& p) {
  return p.p * (1.0 + 2.0 * p.psi);
}

StorageBound storage_fullack(const Params&) { return {2.0, 1.0}; }

StorageBound storage_paai1(const Params& p) {
  return {0.5 + p.p, 0.5 + p.p};
}

StorageBound storage_paai2(const Params&) { return {2.0, 1.0}; }

StorageBound storage_statfl(const Params& p) { return {p.p, p.p}; }

StorageBound storage_comb1(const Params& p) {
  return {0.5 + 2.0 * p.p, 0.5 + 2.0 * p.p};
}

StorageBound storage_comb2(const Params& p) { return {1.0 + p.p, 1.0}; }

double optimal_spread_total(std::size_t z, const Params& p) {
  // Corollary 2: one malicious link per path maximizes total damage; the
  // aggregate malicious drop rate grows linearly in z.
  return static_cast<double>(z) * p.alpha;
}

double concentrated_total(std::size_t z, const Params& p) {
  // All z links stacked on one path: each surviving packet faces the next
  // link's alpha, so the end-to-end malicious drop rate compounds to
  // 1 - (1-alpha)^z — bounded by 1 no matter the budget.
  return 1.0 - std::pow(1.0 - p.alpha, static_cast<double>(z));
}

double spread_advantage(std::size_t z, const Params& p) {
  return std::max(0.0, optimal_spread_total(z, p) - concentrated_total(z, p));
}

}  // namespace paai::analysis
