// Incremental scoring engine: the batch protocols' identify phase,
// re-expressed as a consumer of the forensic event stream (obs/events.h).
//
// The batch sources log every score-table mutation as a typed event at the
// moment it happens — kScoreClean/kScoreBlame/kFlCount carry the full
// mutation payload, kDataSend/kSampleSelect/kAckTimeout carry the derived
// counters (packets sent, probe rounds, lost intervals). All of them are
// node-0 events, so the merged JSONL export preserves their exact append
// order. ScoreEngine replays that order through the *same*
// protocols/score.h classes the batch path uses, with the same calibration
// literals, so its estimates, conviction sets, and e2e rates are
// bit-identical to the originating run's — `paai replay` asserts this, and
// tests/stream_test.cc proves it per protocol.
//
// Configuration is in-band: the runner opens every log with a kRunConfig
// event (protocol, path length, blame-mode code, threshold), so a consumer
// needs no out-of-band knowledge of what produced the stream. An engine
// can also be configured explicitly (restored snapshots, headless pipes);
// a later kRunConfig that contradicts the active configuration is a hard
// error rather than a silent re-score.
//
// Event → mutation mapping (exactly mirroring src/protocols):
//
//   full-ack / comb1 / sigack   kDataSend → packets_sent
//     (ScoreTable)              kAckTimeout → note_probe
//                               kScoreClean → add_clean, delivered
//                               kScoreBlame(link) → blame(link)
//   paai1 (ScoreTable)          same, except kAckTimeout does NOT
//                               note_probe (the batch source never calls
//                               it; exposure is the fixed 2.6) and the
//                               timeout is immediately followed by its
//                               kScoreBlame(0)
//   paai2 (Paai2ScoreTable)     kDataSend → add_data_packet (every packet
//                               is monitored in plain mode)
//                               kScoreClean(b=e) → add_probe(e, false)
//                               kScoreBlame(b=e) → add_probe(e, true)
//   comb2 (Paai2ScoreTable)     like paai2, but kSampleSelect →
//                               add_data_packet (only sampled packets are
//                               monitored)
//   statfl (FlScoreTable)       kFlCount(link=j, b=count) → add_count
//                               kScoreClean → interval_reported
//                               kAckTimeout → interval_lost
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"
#include "protocols/context.h"
#include "protocols/score.h"

namespace paai::stream {

struct EngineConfig {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::kPaai1;
  std::size_t num_links = 6;
  double threshold = 0.02;
  protocols::BlameSpec blame;
};

/// A batch conviction record observed in the stream (kConviction events
/// are the producer's own verdicts; replay --verify compares the engine's
/// final conviction set against the final batch records).
struct ConvictionRecord {
  std::size_t link = 0;
  std::uint64_t packets = 0;
  std::uint64_t observations = 0;
  double theta = 0.0;
  /// 1-based stream line the record arrived on (0 = unknown: in-memory
  /// replays and legacy snapshots). Diagnostic only — never compared.
  std::uint64_t line = 0;
};

class ScoreEngine {
 public:
  /// Unconfigured: absorbs nothing until a kRunConfig arrives (or
  /// configure() / state restore runs).
  ScoreEngine() = default;

  explicit ScoreEngine(const EngineConfig& config) { configure(config); }

  /// (Re)configures the engine and resets all scoring state.
  void configure(const EngineConfig& config);

  bool configured() const { return table_ != Table::kNone; }
  const EngineConfig& config() const { return config_; }

  /// Applies one event. Score-irrelevant kinds are counted and skipped.
  /// Throws std::runtime_error on an impossible payload (blame on an
  /// out-of-range link, kRunConfig contradicting the active
  /// configuration, score events before any configuration).
  void apply(const obs::Event& event);

  /// Stream-position bookkeeping for replay diagnostics: the feeder
  /// (serve_stream) sets the 1-based line the next event came from;
  /// kConviction records are stamped with it.
  void set_stream_line(std::uint64_t line) { stream_line_ = line; }

  /// Every event fed through apply().
  std::uint64_t events_seen() const { return events_seen_; }
  /// The subset that mutated scoring state or derived counters.
  std::uint64_t events_applied() const { return events_applied_; }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t delivered() const { return delivered_; }
  bool run_ended() const { return run_ended_; }

  // --- the SourceHandle-shaped read side -------------------------------
  std::uint64_t observations() const;
  std::vector<double> thetas() const;
  std::vector<std::size_t> convicted() const;
  double observed_e2e_rate() const;

  /// Links that entered the convicted set since the previous call (or
  /// since configure/restore, which baseline the set). A link that leaves
  /// and re-enters is reported again — conviction is a monotone event for
  /// honest runs, but adversarial estimates can hover at the threshold.
  std::vector<std::size_t> take_new_convictions();

  /// Batch kConviction records seen in the stream, in order.
  const std::vector<ConvictionRecord>& recorded_convictions() const {
    return recorded_;
  }

  // --- snapshot plumbing (stream/state.h) ------------------------------
  const protocols::ScoreTable* onion_table() const {
    return onion_ ? &*onion_ : nullptr;
  }
  const protocols::Paai2ScoreTable* prefix_table() const {
    return prefix_ ? &*prefix_ : nullptr;
  }
  const protocols::FlScoreTable* fl_table() const {
    return fl_ ? &*fl_ : nullptr;
  }

  /// Overwrites the mutable counters from a snapshot (state.cc only; the
  /// engine must already be configured with the matching shape).
  void restore_counters(std::uint64_t events_seen, std::uint64_t events_applied,
                        std::uint64_t packets_sent, std::uint64_t delivered,
                        bool run_ended, std::vector<ConvictionRecord> recorded);
  protocols::ScoreTable* mutable_onion_table() {
    return onion_ ? &*onion_ : nullptr;
  }
  protocols::Paai2ScoreTable* mutable_prefix_table() {
    return prefix_ ? &*prefix_ : nullptr;
  }
  protocols::FlScoreTable* mutable_fl_table() { return fl_ ? &*fl_ : nullptr; }
  /// Re-baselines conviction-transition tracking at the current state
  /// (called after a restore so already-convicted links are not
  /// re-announced).
  void rebaseline_convictions();

 private:
  enum class Table : std::uint8_t { kNone, kOnion, kPrefix, kFl };

  void apply_score_clean(const obs::Event& event);
  void apply_score_blame(const obs::Event& event);
  void require_configured(const obs::Event& event) const;

  EngineConfig config_{};
  Table table_ = Table::kNone;
  std::optional<protocols::ScoreTable> onion_;
  std::optional<protocols::Paai2ScoreTable> prefix_;
  std::optional<protocols::FlScoreTable> fl_;

  std::uint64_t events_seen_ = 0;
  std::uint64_t events_applied_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t delivered_ = 0;
  bool run_ended_ = false;
  std::uint64_t stream_line_ = 0;

  std::vector<ConvictionRecord> recorded_;
  std::vector<bool> convicted_before_;  // transition baseline

  obs::Counter obs_ingested_;
  obs::Counter obs_applied_;
  obs::Counter obs_convictions_;
};

}  // namespace paai::stream
