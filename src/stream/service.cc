#include "stream/service.h"

#include <chrono>
#include <exception>
#include <fstream>
#include <ostream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "stream/state.h"

namespace paai::stream {

namespace {

bool write_snapshot(const ScoreEngine& engine, const std::string& path,
                    std::string* error) {
  // Write-then-rename would be stronger, but the repo's tooling reads
  // snapshots only after the writer exits; a plain truncate-write keeps
  // the service dependency-free. The trailing newline makes the file a
  // valid JSONL single-document too.
  const obs::ScopedPhase phase(obs::Phase::kSnapshot);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    *error = "cannot open state file '" + path + "' for writing";
    return false;
  }
  write_state(out, engine);
  out << '\n';
  out.flush();
  if (!out) {
    *error = "short write to state file '" + path + "'";
    return false;
  }
  return true;
}

void announce_conviction(std::ostream& log, const ScoreEngine& engine,
                         std::size_t link) {
  const std::vector<double> thetas = engine.thetas();
  obs::JsonWriter w(log);
  w.begin_object();
  w.key("kind").value("conviction");
  w.key("link").value(static_cast<std::int64_t>(link));
  w.key("theta").value(link < thetas.size() ? thetas[link] : 0.0);
  w.key("observations").value(std::to_string(engine.observations()));
  w.key("packets_sent").value(std::to_string(engine.packets_sent()));
  w.key("events").value(std::to_string(engine.events_seen()));
  w.end_object();
  log << '\n';
  log.flush();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ServeReport serve_stream(ScoreEngine& engine, std::istream& in,
                         std::ostream& log, const ServeConfig& config,
                         const volatile std::sig_atomic_t* stop) {
  ServeReport report;
  obs::EventReader reader(in);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::PhaseProfiler& profiler = obs::PhaseProfiler::global();
  obs::Counter snapshots_counter = registry.counter("stream.snapshots");
  obs::Counter events_read_counter = registry.counter("stream.serve.events_read");
  obs::Counter events_applied_counter =
      registry.counter("stream.serve.events_applied");
  obs::Counter parse_errors_counter =
      registry.counter("stream.serve.parse_errors");
  obs::Counter bytes_read_counter = registry.counter("stream.serve.bytes_read");
  obs::Counter parse_stall_counter =
      registry.counter("stream.serve.parse_stall_ns");
  obs::Counter apply_stall_counter =
      registry.counter("stream.serve.apply_stall_ns");
  obs::Gauge backlog_gauge = registry.gauge("stream.serve.backlog_bytes");
  obs::Gauge lag_gauge = registry.gauge("stream.serve.lag_events");
  std::uint64_t next_snapshot =
      config.snapshot_every > 0 ? config.snapshot_every : 0;

  // Stall timers cost two clock reads per event, so only run them when
  // someone can observe the result. The counters themselves are cheap.
  const bool timing = config.telemetry != nullptr || profiler.enabled() ||
                      registry.enabled();
  std::uint64_t prev_bytes = 0;

  const auto probe_backlog = [&] {
    if (!config.backlog_bytes) return;
    const std::int64_t backlog = config.backlog_bytes();
    report.final_backlog_bytes = backlog;
    if (backlog > report.peak_backlog_bytes) {
      report.peak_backlog_bytes = backlog;
    }
    backlog_gauge.set(backlog);
  };

  const auto wall_start = std::chrono::steady_clock::now();
  obs::Event event;
  std::string error;
  for (;;) {
    if (stop != nullptr && *stop != 0) {
      report.interrupted = true;
      break;
    }
    const std::uint64_t parse_start = timing ? now_ns() : 0;
    const obs::EventReader::Status status = reader.next(&event, &error);
    if (timing) {
      const std::uint64_t dt = now_ns() - parse_start;
      report.parse_stall_ns += dt;
      parse_stall_counter.add(dt);
      profiler.add(obs::Phase::kStreamParse, dt);
    }
    {
      const std::uint64_t bytes = reader.bytes();
      if (bytes > prev_bytes) {
        bytes_read_counter.add(bytes - prev_bytes);
        prev_bytes = bytes;
      }
    }
    if (status == obs::EventReader::Status::kEof) break;
    if (status == obs::EventReader::Status::kError) {
      ++report.parse_errors;
      parse_errors_counter.add();
      if (config.fail_fast) {
        report.failed = true;
        report.error = error;
        break;
      }
      continue;
    }

    ++report.events;
    events_read_counter.add();
    const std::uint64_t applied_before = engine.events_applied();
    engine.set_stream_line(reader.line());
    const std::uint64_t apply_start = timing ? now_ns() : 0;
    try {
      engine.apply(event);
    } catch (const std::exception& e) {
      report.failed = true;
      report.error = "line " + std::to_string(reader.line()) + ": " + e.what();
      break;
    }
    if (timing) {
      const std::uint64_t dt = now_ns() - apply_start;
      report.apply_stall_ns += dt;
      apply_stall_counter.add(dt);
      profiler.add(obs::Phase::kStreamApply, dt);
    }
    if (engine.events_applied() == applied_before) continue;
    ++report.applied;
    events_applied_counter.add();
    const std::uint64_t lag = report.events - report.applied;
    if (lag > report.peak_lag_events) report.peak_lag_events = lag;
    lag_gauge.set(static_cast<std::int64_t>(lag));

    // The backlog probe can stat the filesystem, so sample it at a
    // coarse cadence plus at every telemetry tick boundary.
    if ((report.applied & 0xff) == 0) probe_backlog();

    if (config.telemetry != nullptr) {
      config.telemetry->tick(report.applied,
                             static_cast<std::uint64_t>(event.ts_ns));
    }

    for (const std::size_t link : engine.take_new_convictions()) {
      report.new_convictions.push_back(link);
      if (config.announce) announce_conviction(log, engine, link);
    }

    if (next_snapshot != 0 && report.applied >= next_snapshot) {
      next_snapshot += config.snapshot_every;
      if (!config.state_out.empty()) {
        std::string snap_error;
        if (!write_snapshot(engine, config.state_out, &snap_error)) {
          report.failed = true;
          report.error = snap_error;
          break;
        }
        ++report.snapshots;
        snapshots_counter.add();
      }
    }
  }

  report.lines = reader.line();
  probe_backlog();
  {
    const std::uint64_t lag = report.events - report.applied;
    if (lag > report.peak_lag_events) report.peak_lag_events = lag;
    lag_gauge.set(static_cast<std::int64_t>(lag));
  }
  // Exit snapshot on every path — a drained serve must be resumable.
  if (!config.state_out.empty() && engine.configured()) {
    std::string snap_error;
    if (write_snapshot(engine, config.state_out, &snap_error)) {
      ++report.snapshots;
      snapshots_counter.add();
    } else if (!report.failed) {
      report.failed = true;
      report.error = snap_error;
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (config.telemetry != nullptr) {
    config.telemetry->sample_now(report.applied,
                                 static_cast<std::uint64_t>(event.ts_ns));
  }
  return report;
}

}  // namespace paai::stream
