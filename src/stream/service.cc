#include "stream/service.h"

#include <exception>
#include <fstream>
#include <ostream>

#include "obs/json.h"
#include "stream/state.h"

namespace paai::stream {

namespace {

bool write_snapshot(const ScoreEngine& engine, const std::string& path,
                    std::string* error) {
  // Write-then-rename would be stronger, but the repo's tooling reads
  // snapshots only after the writer exits; a plain truncate-write keeps
  // the service dependency-free. The trailing newline makes the file a
  // valid JSONL single-document too.
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    *error = "cannot open state file '" + path + "' for writing";
    return false;
  }
  write_state(out, engine);
  out << '\n';
  out.flush();
  if (!out) {
    *error = "short write to state file '" + path + "'";
    return false;
  }
  return true;
}

void announce_conviction(std::ostream& log, const ScoreEngine& engine,
                         std::size_t link) {
  const std::vector<double> thetas = engine.thetas();
  obs::JsonWriter w(log);
  w.begin_object();
  w.key("kind").value("conviction");
  w.key("link").value(static_cast<std::int64_t>(link));
  w.key("theta").value(link < thetas.size() ? thetas[link] : 0.0);
  w.key("observations").value(std::to_string(engine.observations()));
  w.key("packets_sent").value(std::to_string(engine.packets_sent()));
  w.key("events").value(std::to_string(engine.events_seen()));
  w.end_object();
  log << '\n';
  log.flush();
}

}  // namespace

ServeReport serve_stream(ScoreEngine& engine, std::istream& in,
                         std::ostream& log, const ServeConfig& config,
                         const volatile std::sig_atomic_t* stop) {
  ServeReport report;
  obs::EventReader reader(in);
  obs::Counter snapshots_counter =
      obs::MetricsRegistry::global().counter("stream.snapshots");
  std::uint64_t next_snapshot =
      config.snapshot_every > 0 ? config.snapshot_every : 0;

  obs::Event event;
  std::string error;
  for (;;) {
    if (stop != nullptr && *stop != 0) {
      report.interrupted = true;
      break;
    }
    const obs::EventReader::Status status = reader.next(&event, &error);
    if (status == obs::EventReader::Status::kEof) break;
    if (status == obs::EventReader::Status::kError) {
      ++report.parse_errors;
      if (config.fail_fast) {
        report.failed = true;
        report.error = error;
        break;
      }
      continue;
    }

    ++report.events;
    const std::uint64_t applied_before = engine.events_applied();
    engine.set_stream_line(reader.line());
    try {
      engine.apply(event);
    } catch (const std::exception& e) {
      report.failed = true;
      report.error = "line " + std::to_string(reader.line()) + ": " + e.what();
      break;
    }
    if (engine.events_applied() == applied_before) continue;
    ++report.applied;

    for (const std::size_t link : engine.take_new_convictions()) {
      report.new_convictions.push_back(link);
      if (config.announce) announce_conviction(log, engine, link);
    }

    if (next_snapshot != 0 && report.applied >= next_snapshot) {
      next_snapshot += config.snapshot_every;
      if (!config.state_out.empty()) {
        std::string snap_error;
        if (!write_snapshot(engine, config.state_out, &snap_error)) {
          report.failed = true;
          report.error = snap_error;
          break;
        }
        ++report.snapshots;
        snapshots_counter.add();
      }
    }
  }

  report.lines = reader.line();
  // Exit snapshot on every path — a drained serve must be resumable.
  if (!config.state_out.empty() && engine.configured()) {
    std::string snap_error;
    if (write_snapshot(engine, config.state_out, &snap_error)) {
      ++report.snapshots;
      snapshots_counter.add();
    } else if (!report.failed) {
      report.failed = true;
      report.error = snap_error;
    }
  }
  return report;
}

}  // namespace paai::stream
