// Deterministic snapshot/restore of the streaming scoring state — the
// `paai.state.v1` JSON document.
//
// A snapshot captures everything apply() can mutate: the engine
// configuration, the active score table's counters, the derived counters
// (packets sent, delivered, events seen/applied), and the batch
// conviction records observed so far. Integer counters are emitted as
// decimal strings (like the event stream's a/b fields) so 64-bit values
// survive double-typed JSON parsers; doubles go through json_number's
// %.17g, which round-trips bit-exactly. Consequence: serve → snapshot →
// restore → continue produces the same final state as an uninterrupted
// pass over the same events — tests/stream_test.cc and the check.sh serve
// leg hold the repo to that.
//
// Schema (paai.state.v1):
//   {
//     "schema": "paai.state.v1",
//     "protocol": <ProtocolKind int>, "protocol_name": "<display>",
//     "links": <int>, "threshold": <double>, "persistence": "<u64>",
//     "blame": "<BlameSpec::to_string()>",
//     "events_seen": "<u64>", "events_applied": "<u64>",
//     "packets_sent": "<u64>", "delivered": "<u64>", "run_ended": <bool>,
//     "recorded_convictions": [
//       {"link": <int>, "packets": "<u64>", "observations": "<u64>",
//        "theta": <double>, "line": "<u64>"}, ...],
//     "table":
//       {"kind": "onion", "s": ["<u64>", ...], "n": "<u64>",
//        "probes": "<u64>", "window": {...}}
//     | {"kind": "prefix", "s": [...], "sel_n": [...], "sel_f": [...],
//        "data_packets": "<u64>", "probes": "<u64>", "window": {...}}
//     | {"kind": "fl", "acc": [<double>, ...],
//        "intervals_reported": "<u64>", "intervals_lost": "<u64>",
//        "window": {...}}
//   }
//
// The "window" object is the burst-aware layer's versioned state: the
// current window's bins (table-specific: "bins" u64s for onion,
// "sel_n_bins"/"sel_f_bins" for prefix, "counts" doubles for fl) plus the
// WindowLedger counters ("v": 1, "w", "completed", "cur_streak",
// "max_streak", "flagrant", "max_theta_w", "recent"). Back/forward
// compatibility is fail-closed in one direction only: a snapshot WITHOUT
// a window object is legacy (pre-window) and restores with a clean
// ledger — safe, since such snapshots can only carry margin/persistent
// modes; a snapshot WITH a malformed or shape-mismatched window object is
// rejected outright. "blame" and record "line" are likewise optional for
// legacy documents but rejected when present-but-mistyped.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "stream/engine.h"

namespace paai::stream {

inline constexpr std::string_view kStateSchema = "paai.state.v1";

/// Writes the engine's state as one paai.state.v1 document (no trailing
/// newline). The engine must be configured.
void write_state(std::ostream& os, const ScoreEngine& engine);

std::string state_to_string(const ScoreEngine& engine);

/// Parses a paai.state.v1 document and installs it into `engine`
/// (reconfiguring it from the document). Returns false and a description
/// via `error` on schema violations; the engine is left unusable
/// (unconfigured or partially restored) on failure — discard it.
bool load_state(std::string_view json, ScoreEngine* engine,
                std::string* error = nullptr);

}  // namespace paai::stream
