// The long-running half of `paai serve` / `paai replay`: pump a JSONL
// event stream (file, pipe, FIFO, stdin) through a ScoreEngine.
//
// The loop is deliberately synchronous — one reader, one engine, no
// threads. Liveness comes from the transport: reading a FIFO blocks until
// a producer writes, so the service naturally idles between bursts.
// Interruption is cooperative: the caller owns a `volatile sig_atomic_t`
// flag (typically flipped by a SIGINT handler), and the loop checks it
// between events — a drain stops at an event boundary, never mid-parse,
// and the final snapshot (when --state-out is set) captures a consistent
// engine.
//
// Conviction announcements are emitted as single-line JSON objects the
// moment a link's estimate enters the convicted set, so a supervisor can
// tail the output; a final snapshot is written on every exit path
// (EOF, drain, fail-fast error) — restart with --state-in to continue.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "stream/engine.h"

namespace paai::obs {
class TelemetrySink;
}  // namespace paai::obs

namespace paai::stream {

struct ServeConfig {
  /// Snapshot cadence in *applied* events; 0 disables periodic snapshots
  /// (the exit snapshot still happens when `state_out` is set).
  std::uint64_t snapshot_every = 0;
  /// Snapshot target path; empty = no snapshots.
  std::string state_out;
  /// Stop at the first malformed line (replay semantics). When false,
  /// malformed lines are counted and skipped (lossy-transport serving).
  bool fail_fast = true;
  /// Announce conviction transitions as JSON lines on the log stream.
  bool announce = true;
  /// Optional live telemetry sink (obs/telemetry.h), ticked on applied
  /// events with the event's virtual clock. Purely observational.
  paai::obs::TelemetrySink* telemetry = nullptr;
  /// Optional back-pressure probe: bytes of input the transport has
  /// buffered but the loop has not yet consumed (a slow consumer makes
  /// this grow). The CLI wires file_size - tellg for file inputs; null =
  /// backlog unknown. Sampled every few hundred events, never per event.
  std::function<std::int64_t()> backlog_bytes;
};

struct ServeReport {
  std::uint64_t events = 0;        // parsed events fed to the engine
  std::uint64_t applied = 0;       // engine-applied (score-relevant) events
  std::uint64_t parse_errors = 0;  // malformed lines (skipped or fatal)
  std::uint64_t snapshots = 0;     // state documents written
  std::size_t lines = 0;           // lines consumed from the transport
  bool interrupted = false;        // the stop flag ended the loop
  bool failed = false;             // fail-fast parse error or apply error
  std::string error;               // first failure description
  /// Links whose estimates entered the convicted set during this serve.
  std::vector<std::size_t> new_convictions;
  // --- lag / back-pressure (always populated; stall timers only when an
  // observer — telemetry sink, profiler, or metrics registry — is on).
  double wall_seconds = 0.0;           // loop wall time, reader included
  std::uint64_t parse_stall_ns = 0;    // time blocked reading + parsing
  std::uint64_t apply_stall_ns = 0;    // time inside engine.apply()
  std::uint64_t peak_lag_events = 0;   // high-water of events - applied
  std::int64_t peak_backlog_bytes = 0;   // high-water of backlog probe
  std::int64_t final_backlog_bytes = 0;  // probe value at exit
};

/// Pumps `in` through `engine` until EOF, a fatal error, or `*stop != 0`.
/// Progress and conviction announcements go to `log`.
ServeReport serve_stream(ScoreEngine& engine, std::istream& in,
                         std::ostream& log, const ServeConfig& config,
                         const volatile std::sig_atomic_t* stop = nullptr);

}  // namespace paai::stream
