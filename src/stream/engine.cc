#include "stream/engine.h"

#include <stdexcept>
#include <string>

namespace paai::stream {

namespace {

std::string describe(const obs::Event& e) {
  return std::string(obs::event_kind_name(e.kind)) +
         " (node " + std::to_string(e.node) + ", seq " +
         std::to_string(e.seq) + ")";
}

}  // namespace

void ScoreEngine::configure(const EngineConfig& config) {
  if (config.num_links == 0) {
    throw std::runtime_error("stream: configuration needs at least one link");
  }
  config_ = config;
  onion_.reset();
  prefix_.reset();
  fl_.reset();

  // The same table classes with the same calibration literals as the
  // batch sources construct (fullack.cc / paai1.cc / comb1.cc / sigack.cc
  // / paai2.cc / statfl.cc) — bit-identity depends on this.
  switch (config.protocol) {
    case protocols::ProtocolKind::kFullAck:
    case protocols::ProtocolKind::kCombination1:
    case protocols::ProtocolKind::kSigAck:
      onion_.emplace(config.num_links, /*traversals=*/1.0,
                     /*probe_extra=*/2.0);
      table_ = Table::kOnion;
      break;
    case protocols::ProtocolKind::kPaai1:
      onion_.emplace(config.num_links, /*traversals=*/2.6);
      table_ = Table::kOnion;
      break;
    case protocols::ProtocolKind::kPaai2:
    case protocols::ProtocolKind::kCombination2:
      prefix_.emplace(config.num_links);
      table_ = Table::kPrefix;
      break;
    case protocols::ProtocolKind::kStatisticalFl:
      fl_.emplace(config.num_links);
      table_ = Table::kFl;
      break;
  }
  if (onion_) onion_->set_blame(config.blame);
  if (prefix_) prefix_->set_blame(config.blame);
  if (fl_) fl_->set_blame(config.blame);

  packets_sent_ = 0;
  delivered_ = 0;
  run_ended_ = false;
  recorded_.clear();
  convicted_before_.assign(config.num_links, false);

  auto& reg = obs::MetricsRegistry::global();
  obs_ingested_ = reg.counter("stream.events.ingested");
  obs_applied_ = reg.counter("stream.events.applied");
  obs_convictions_ = reg.counter("stream.convictions");
}

void ScoreEngine::require_configured(const obs::Event& event) const {
  if (table_ == Table::kNone) {
    throw std::runtime_error("stream: " + describe(event) +
                             " before any run-config (configure the engine "
                             "or feed a log with a run-config prologue)");
  }
}

void ScoreEngine::apply(const obs::Event& event) {
  ++events_seen_;
  obs_ingested_.add();

  switch (event.kind) {
    case obs::EventKind::kRunConfig: {
      EngineConfig incoming;
      incoming.protocol = static_cast<protocols::ProtocolKind>(event.a);
      incoming.num_links = static_cast<std::size_t>(event.b);
      incoming.threshold = event.value;
      incoming.blame = event.link > 0
                           ? protocols::BlameSpec::decode32(event.link)
                           : protocols::BlameSpec{};
      if (table_ == Table::kNone) {
        configure(incoming);
      } else if (incoming.protocol != config_.protocol ||
                 incoming.num_links != config_.num_links ||
                 incoming.blame != config_.blame ||
                 incoming.threshold != config_.threshold) {
        throw std::runtime_error(
            "stream: run-config contradicts the active configuration "
            "(mixed logs or wrong --state-in?)");
      }
      break;
    }
    case obs::EventKind::kRunEnd:
      run_ended_ = true;
      break;
    case obs::EventKind::kDataSend:
      require_configured(event);
      ++packets_sent_;
      // Plain PAAI-2 monitors every data packet; sampled monitoring
      // (comb2) announces its trials via kSampleSelect instead.
      if (config_.protocol == protocols::ProtocolKind::kPaai2) {
        prefix_->add_data_packet();
      }
      break;
    case obs::EventKind::kSampleSelect:
      require_configured(event);
      if (config_.protocol == protocols::ProtocolKind::kCombination2) {
        prefix_->add_data_packet();
      } else {
        return;  // paai1/statfl sampling marks are informational
      }
      break;
    case obs::EventKind::kAckTimeout:
      require_configured(event);
      if (table_ == Table::kOnion &&
          config_.protocol != protocols::ProtocolKind::kPaai1) {
        // full-ack / comb1 / sigack: this round ran a probe (dynamic
        // probe_extra exposure). PAAI-1's fixed 2.6 has no probe term and
        // its batch source never calls note_probe.
        onion_->note_probe();
      } else if (table_ == Table::kFl) {
        fl_->interval_lost();
      } else {
        return;  // paai1/paai2 timeouts only gate later score events
      }
      break;
    case obs::EventKind::kScoreClean:
      require_configured(event);
      apply_score_clean(event);
      break;
    case obs::EventKind::kScoreBlame:
      require_configured(event);
      apply_score_blame(event);
      break;
    case obs::EventKind::kFlCount:
      require_configured(event);
      if (table_ != Table::kFl) {
        throw std::runtime_error("stream: " + describe(event) +
                                 " in a non-statfl stream");
      }
      if (event.link < 0 ||
          static_cast<std::size_t>(event.link) > config_.num_links) {
        throw std::runtime_error("stream: fl-count node out of range");
      }
      fl_->add_count(static_cast<std::size_t>(event.link), event.b);
      break;
    case obs::EventKind::kConviction: {
      if (event.link < 0) {
        throw std::runtime_error("stream: conviction without a link");
      }
      ConvictionRecord rec;
      rec.link = static_cast<std::size_t>(event.link);
      rec.packets = event.a;
      rec.observations = event.b;
      rec.theta = event.value;
      rec.line = stream_line_;
      recorded_.push_back(rec);
      break;
    }
    default:
      // Wire activity, probe/ack bookkeeping, onion decodes, lifecycle:
      // forensically useful, score-irrelevant.
      return;
  }
  ++events_applied_;
  obs_applied_.add();
}

void ScoreEngine::apply_score_clean(const obs::Event& event) {
  switch (table_) {
    case Table::kOnion:
      onion_->add_clean();
      ++delivered_;
      break;
    case Table::kPrefix:
      // b = the selected node e; a verified report proves the prefix
      // [l_0, l_{e-1}] clean.
      prefix_->add_probe(static_cast<std::size_t>(event.b),
                         /*prefix_failed=*/false);
      break;
    case Table::kFl:
      fl_->interval_reported();
      break;
    case Table::kNone:
      break;
  }
}

void ScoreEngine::apply_score_blame(const obs::Event& event) {
  switch (table_) {
    case Table::kOnion:
      if (event.link < 0 ||
          static_cast<std::size_t>(event.link) >= config_.num_links) {
        throw std::runtime_error("stream: " + describe(event) +
                                 " names an out-of-range link");
      }
      onion_->blame(static_cast<std::size_t>(event.link));
      break;
    case Table::kPrefix:
      prefix_->add_probe(static_cast<std::size_t>(event.b),
                         /*prefix_failed=*/true);
      break;
    case Table::kFl:
      throw std::runtime_error("stream: " + describe(event) +
                               " is impossible for statfl (counts, not "
                               "blames, drive its estimator)");
    case Table::kNone:
      break;
  }
}

std::uint64_t ScoreEngine::observations() const {
  switch (table_) {
    case Table::kOnion:
      return onion_->observations();
    case Table::kPrefix:
      return prefix_->probes();
    case Table::kFl:
      return fl_->intervals_reported();
    case Table::kNone:
      return 0;
  }
  return 0;
}

std::vector<double> ScoreEngine::thetas() const {
  switch (table_) {
    case Table::kOnion:
      return onion_->thetas();
    case Table::kPrefix:
      return prefix_->thetas();
    case Table::kFl:
      return fl_->thetas();
    case Table::kNone:
      return {};
  }
  return {};
}

std::vector<std::size_t> ScoreEngine::convicted() const {
  switch (table_) {
    case Table::kOnion:
      return onion_->convicted(config_.threshold);
    case Table::kPrefix:
      return prefix_->convicted(config_.threshold);
    case Table::kFl:
      return fl_->convicted(config_.threshold);
    case Table::kNone:
      return {};
  }
  return {};
}

double ScoreEngine::observed_e2e_rate() const {
  switch (table_) {
    case Table::kOnion: {
      // Denominators mirror the batch sources exactly: full-ack and
      // sigack rate against packets sent; paai1 and comb1 against
      // resolved observations.
      const bool per_sent =
          config_.protocol == protocols::ProtocolKind::kFullAck ||
          config_.protocol == protocols::ProtocolKind::kSigAck;
      const std::uint64_t denom =
          per_sent ? packets_sent_ : onion_->observations();
      if (denom == 0) return 0.0;
      return 1.0 -
             static_cast<double>(delivered_) / static_cast<double>(denom);
    }
    case Table::kPrefix:
      return prefix_->observed_e2e_rate();
    case Table::kFl:
      return fl_->observed_e2e_rate();
    case Table::kNone:
      return 0.0;
  }
  return 0.0;
}

std::vector<std::size_t> ScoreEngine::take_new_convictions() {
  std::vector<std::size_t> fresh;
  if (table_ == Table::kNone) return fresh;
  std::vector<bool> now(config_.num_links, false);
  for (const std::size_t link : convicted()) {
    now[link] = true;
    if (!convicted_before_[link]) fresh.push_back(link);
  }
  convicted_before_ = std::move(now);
  if (!fresh.empty()) obs_convictions_.add(fresh.size());
  return fresh;
}

void ScoreEngine::restore_counters(std::uint64_t events_seen,
                                   std::uint64_t events_applied,
                                   std::uint64_t packets_sent,
                                   std::uint64_t delivered, bool run_ended,
                                   std::vector<ConvictionRecord> recorded) {
  events_seen_ = events_seen;
  events_applied_ = events_applied;
  packets_sent_ = packets_sent;
  delivered_ = delivered;
  run_ended_ = run_ended;
  recorded_ = std::move(recorded);
}

void ScoreEngine::rebaseline_convictions() {
  convicted_before_.assign(config_.num_links, false);
  for (const std::size_t link : convicted()) convicted_before_[link] = true;
}

}  // namespace paai::stream
