#include "stream/state.h"

#include <cerrno>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace paai::stream {

namespace {

void write_u64(obs::JsonWriter& w, std::uint64_t v) {
  w.value(std::to_string(v));
}

bool parse_u64(const obs::JsonValue* v, std::uint64_t* out) {
  if (v == nullptr || !v->is_string() || v->string.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->string.c_str(), &end, 10);
  if (errno != 0 || end != v->string.c_str() + v->string.size()) return false;
  *out = parsed;
  return true;
}

bool parse_u64_array(const obs::JsonValue* v, std::vector<std::uint64_t>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->array.size());
  for (const obs::JsonValue& item : v->array) {
    std::uint64_t x = 0;
    if (!parse_u64(&item, &x)) return false;
    out->push_back(x);
  }
  return true;
}

bool parse_double_array(const obs::JsonValue* v, std::vector<double>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->array.size());
  for (const obs::JsonValue& item : v->array) {
    if (!item.is_number()) return false;
    out->push_back(item.number);
  }
  return true;
}

bool fail(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string("paai.state.v1: ") + what;
  return false;
}

/// Emits the WindowLedger counters into the already-open "window" object
/// (the caller writes the table-specific current-window bins first).
void write_ledger(obs::JsonWriter& w, const protocols::WindowLedger& led) {
  w.key("v").value(std::int64_t{1});
  w.key("w");
  write_u64(w, led.width());
  w.key("completed");
  write_u64(w, led.completed());
  w.key("cur_streak").begin_array();
  for (std::size_t i = 0; i < led.num_links(); ++i) {
    write_u64(w, led.cur_streak(i));
  }
  w.end_array();
  w.key("max_streak").begin_array();
  for (std::size_t i = 0; i < led.num_links(); ++i) {
    write_u64(w, led.max_streak(i));
  }
  w.end_array();
  w.key("flagrant").begin_array();
  for (std::size_t i = 0; i < led.num_links(); ++i) {
    write_u64(w, led.flagrant_windows(i));
  }
  w.end_array();
  w.key("max_theta_w").begin_array();
  for (std::size_t i = 0; i < led.num_links(); ++i) {
    w.value(led.max_theta_w(i));
  }
  w.end_array();
  w.key("recent").begin_array();
  for (std::size_t i = 0; i < led.num_links(); ++i) {
    w.begin_array();
    for (const double tw : led.recent(i)) w.value(tw);
    w.end_array();
  }
  w.end_array();
}

/// Parsed WindowLedger counters from a snapshot's "window" object.
struct LedgerDoc {
  std::uint64_t width = 0;
  std::uint64_t completed = 0;
  std::vector<std::uint64_t> cur_streak, max_streak, flagrant;
  std::vector<double> max_theta_w;
  std::vector<std::vector<double>> recent;
};

/// Fail-closed parse of the ledger half of a "window" object: every
/// field must be present, well-typed, and num_links-shaped.
bool parse_ledger(const obs::JsonValue* win, std::size_t num_links,
                  std::uint64_t expect_width, LedgerDoc* out,
                  std::string* error) {
  const obs::JsonValue* v = win->find("v");
  if (v == nullptr || !v->is_number() ||
      static_cast<std::int64_t>(v->number) != 1) {
    return fail(error, "unsupported window state version");
  }
  if (!parse_u64(win->find("w"), &out->width) ||
      !parse_u64(win->find("completed"), &out->completed)) {
    return fail(error, "mistyped window counters");
  }
  if (out->width != expect_width) {
    return fail(error, "window width contradicts the blame spec");
  }
  if (!parse_u64_array(win->find("cur_streak"), &out->cur_streak) ||
      !parse_u64_array(win->find("max_streak"), &out->max_streak) ||
      !parse_u64_array(win->find("flagrant"), &out->flagrant) ||
      !parse_double_array(win->find("max_theta_w"), &out->max_theta_w)) {
    return fail(error, "mistyped window counters");
  }
  const obs::JsonValue* recent = win->find("recent");
  if (recent == nullptr || !recent->is_array()) {
    return fail(error, "mistyped window counters");
  }
  out->recent.clear();
  out->recent.reserve(recent->array.size());
  for (const obs::JsonValue& ring : recent->array) {
    std::vector<double> values;
    if (!parse_double_array(&ring, &values) ||
        values.size() > protocols::kWindowRingCap) {
      return fail(error, "mistyped window counters");
    }
    out->recent.push_back(std::move(values));
  }
  if (out->cur_streak.size() != num_links ||
      out->max_streak.size() != num_links ||
      out->flagrant.size() != num_links ||
      out->max_theta_w.size() != num_links ||
      out->recent.size() != num_links) {
    return fail(error, "window state shape");
  }
  return true;
}

}  // namespace

void write_state(std::ostream& os, const ScoreEngine& engine) {
  const EngineConfig& cfg = engine.config();
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kStateSchema);
  w.key("protocol").value(static_cast<std::int64_t>(cfg.protocol));
  w.key("protocol_name").value(protocols::protocol_name(cfg.protocol));
  w.key("links").value(static_cast<std::int64_t>(cfg.num_links));
  w.key("threshold").value(cfg.threshold);
  // "persistence" is the legacy field (pre-window readers); "blame" is
  // the full spec. They agree by construction for margin/persistent.
  w.key("persistence");
  write_u64(w, cfg.blame.mode == protocols::BlameSpec::Mode::kPersistent
                   ? cfg.blame.k
                   : 0);
  w.key("blame").value(cfg.blame.to_string());
  w.key("events_seen");
  write_u64(w, engine.events_seen());
  w.key("events_applied");
  write_u64(w, engine.events_applied());
  w.key("packets_sent");
  write_u64(w, engine.packets_sent());
  w.key("delivered");
  write_u64(w, engine.delivered());
  w.key("run_ended").value(engine.run_ended());

  w.key("recorded_convictions").begin_array();
  for (const ConvictionRecord& rec : engine.recorded_convictions()) {
    w.begin_object();
    w.key("link").value(static_cast<std::int64_t>(rec.link));
    w.key("packets");
    write_u64(w, rec.packets);
    w.key("observations");
    write_u64(w, rec.observations);
    w.key("theta").value(rec.theta);
    w.key("line");
    write_u64(w, rec.line);
    w.end_object();
  }
  w.end_array();

  w.key("table").begin_object();
  if (const protocols::ScoreTable* t = engine.onion_table()) {
    w.key("kind").value("onion");
    w.key("s").begin_array();
    for (std::size_t i = 0; i < t->num_links(); ++i) write_u64(w, t->score(i));
    w.end_array();
    w.key("n");
    write_u64(w, t->observations());
    w.key("probes");
    write_u64(w, t->probes());
    w.key("window").begin_object();
    w.key("bins").begin_array();
    for (const std::uint64_t b : t->window_bins()) write_u64(w, b);
    w.end_array();
    write_ledger(w, t->windows());
    w.end_object();
  } else if (const protocols::Paai2ScoreTable* t2 = engine.prefix_table()) {
    w.key("kind").value("prefix");
    w.key("s").begin_array();
    for (std::size_t i = 0; i < t2->num_links(); ++i) {
      write_u64(w, t2->interval_score(i));
    }
    w.end_array();
    w.key("sel_n").begin_array();
    for (std::size_t e = 0; e <= t2->num_links(); ++e) {
      write_u64(w, t2->selections(e));
    }
    w.end_array();
    w.key("sel_f").begin_array();
    for (std::size_t e = 0; e <= t2->num_links(); ++e) {
      write_u64(w, t2->selection_failures(e));
    }
    w.end_array();
    w.key("data_packets");
    write_u64(w, t2->data_packets());
    w.key("probes");
    write_u64(w, t2->probes());
    w.key("window").begin_object();
    w.key("sel_n_bins").begin_array();
    for (const std::uint64_t b : t2->window_sel_n()) write_u64(w, b);
    w.end_array();
    w.key("sel_f_bins").begin_array();
    for (const std::uint64_t b : t2->window_sel_f()) write_u64(w, b);
    w.end_array();
    write_ledger(w, t2->windows());
    w.end_object();
  } else if (const protocols::FlScoreTable* tf = engine.fl_table()) {
    w.key("kind").value("fl");
    w.key("acc").begin_array();
    for (std::size_t i = 0; i <= tf->num_links(); ++i) {
      w.value(tf->accumulated(i));
    }
    w.end_array();
    w.key("intervals_reported");
    write_u64(w, tf->intervals_reported());
    w.key("intervals_lost");
    write_u64(w, tf->intervals_lost());
    w.key("window").begin_object();
    w.key("counts").begin_array();
    for (const double c : tf->window_counts()) w.value(c);
    w.end_array();
    write_ledger(w, tf->windows());
    w.end_object();
  } else {
    w.key("kind").value("none");
  }
  w.end_object();
  w.end_object();
}

std::string state_to_string(const ScoreEngine& engine) {
  std::ostringstream os;
  write_state(os, engine);
  return os.str();
}

bool load_state(std::string_view json, ScoreEngine* engine,
                std::string* error) {
  std::string parse_error;
  const auto doc = obs::json_parse(json, &parse_error);
  if (!doc.has_value()) return fail(error, parse_error.c_str());
  if (!doc->is_object()) return fail(error, "not a JSON object");

  const obs::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kStateSchema) {
    return fail(error, "missing or unsupported schema (want paai.state.v1)");
  }

  const obs::JsonValue* protocol = doc->find("protocol");
  const obs::JsonValue* links = doc->find("links");
  const obs::JsonValue* threshold = doc->find("threshold");
  if (protocol == nullptr || !protocol->is_number() || links == nullptr ||
      !links->is_number() || threshold == nullptr || !threshold->is_number()) {
    return fail(error, "missing or mistyped protocol/links/threshold");
  }
  const auto kind_value = static_cast<std::int64_t>(protocol->number);
  if (kind_value < 0 ||
      kind_value > static_cast<std::int64_t>(protocols::ProtocolKind::kSigAck)) {
    return fail(error, "unknown protocol id");
  }

  EngineConfig cfg;
  cfg.protocol = static_cast<protocols::ProtocolKind>(kind_value);
  cfg.num_links = static_cast<std::size_t>(links->number);
  cfg.threshold = threshold->number;
  std::uint64_t persistence = 0;
  if (!parse_u64(doc->find("persistence"), &persistence)) {
    return fail(error, "missing or mistyped persistence");
  }
  const obs::JsonValue* blame = doc->find("blame");
  if (blame != nullptr) {
    if (!blame->is_string()) return fail(error, "mistyped blame spec");
    try {
      cfg.blame = protocols::BlameSpec::parse(blame->string);
    } catch (const std::invalid_argument&) {
      return fail(error, "malformed blame spec");
    }
  } else if (persistence > 0) {
    // Legacy (pre-window) snapshot: the persistence field IS the spec.
    cfg.blame.mode = protocols::BlameSpec::Mode::kPersistent;
    cfg.blame.k = persistence;
  }
  if (cfg.num_links == 0) return fail(error, "links must be positive");
  engine->configure(cfg);

  std::uint64_t events_seen = 0, events_applied = 0;
  std::uint64_t packets_sent = 0, delivered = 0;
  if (!parse_u64(doc->find("events_seen"), &events_seen) ||
      !parse_u64(doc->find("events_applied"), &events_applied) ||
      !parse_u64(doc->find("packets_sent"), &packets_sent) ||
      !parse_u64(doc->find("delivered"), &delivered)) {
    return fail(error, "missing or mistyped counters");
  }
  const obs::JsonValue* run_ended = doc->find("run_ended");
  if (run_ended == nullptr || run_ended->kind != obs::JsonValue::Kind::kBool) {
    return fail(error, "missing or mistyped run_ended");
  }

  std::vector<ConvictionRecord> recorded;
  const obs::JsonValue* recs = doc->find("recorded_convictions");
  if (recs == nullptr || !recs->is_array()) {
    return fail(error, "missing recorded_convictions");
  }
  for (const obs::JsonValue& item : recs->array) {
    const obs::JsonValue* link = item.find("link");
    const obs::JsonValue* theta = item.find("theta");
    ConvictionRecord rec;
    if (link == nullptr || !link->is_number() || theta == nullptr ||
        !theta->is_number() || !parse_u64(item.find("packets"), &rec.packets) ||
        !parse_u64(item.find("observations"), &rec.observations)) {
      return fail(error, "mistyped conviction record");
    }
    rec.link = static_cast<std::size_t>(link->number);
    rec.theta = theta->number;
    // Optional in legacy documents; rejected when present-but-mistyped.
    const obs::JsonValue* line = item.find("line");
    if (line != nullptr && !parse_u64(line, &rec.line)) {
      return fail(error, "mistyped conviction record");
    }
    recorded.push_back(rec);
  }

  const obs::JsonValue* table = doc->find("table");
  if (table == nullptr || !table->is_object()) {
    return fail(error, "missing table");
  }
  const obs::JsonValue* table_kind = table->find("kind");
  if (table_kind == nullptr || !table_kind->is_string()) {
    return fail(error, "missing table.kind");
  }

  if (protocols::ScoreTable* t = engine->mutable_onion_table()) {
    if (table_kind->string != "onion") {
      return fail(error, "table.kind does not match the protocol");
    }
    std::vector<std::uint64_t> s;
    std::uint64_t n = 0, probes = 0;
    if (!parse_u64_array(table->find("s"), &s) ||
        !parse_u64(table->find("n"), &n) ||
        !parse_u64(table->find("probes"), &probes)) {
      return fail(error, "mistyped onion table");
    }
    if (s.size() != cfg.num_links) return fail(error, "onion table shape");
    t->restore(s, n, probes);
    if (const obs::JsonValue* win = table->find("window")) {
      if (!win->is_object()) return fail(error, "mistyped window state");
      std::vector<std::uint64_t> bins;
      LedgerDoc led;
      if (!parse_u64_array(win->find("bins"), &bins)) {
        return fail(error, "mistyped window counters");
      }
      if (bins.size() != cfg.num_links) {
        return fail(error, "window state shape");
      }
      if (!parse_ledger(win, cfg.num_links, cfg.blame.w, &led, error)) {
        return false;
      }
      t->restore_window(bins, led.completed, led.cur_streak, led.max_streak,
                        led.flagrant, led.max_theta_w, led.recent);
    }
  } else if (protocols::Paai2ScoreTable* t2 = engine->mutable_prefix_table()) {
    if (table_kind->string != "prefix") {
      return fail(error, "table.kind does not match the protocol");
    }
    std::vector<std::uint64_t> s, sel_n, sel_f;
    std::uint64_t data_packets = 0, probes = 0;
    if (!parse_u64_array(table->find("s"), &s) ||
        !parse_u64_array(table->find("sel_n"), &sel_n) ||
        !parse_u64_array(table->find("sel_f"), &sel_f) ||
        !parse_u64(table->find("data_packets"), &data_packets) ||
        !parse_u64(table->find("probes"), &probes)) {
      return fail(error, "mistyped prefix table");
    }
    if (s.size() != cfg.num_links || sel_n.size() != cfg.num_links + 1 ||
        sel_f.size() != cfg.num_links + 1) {
      return fail(error, "prefix table shape");
    }
    t2->restore(s, sel_n, sel_f, data_packets, probes);
    if (const obs::JsonValue* win = table->find("window")) {
      if (!win->is_object()) return fail(error, "mistyped window state");
      std::vector<std::uint64_t> sel_n_bins, sel_f_bins;
      LedgerDoc led;
      if (!parse_u64_array(win->find("sel_n_bins"), &sel_n_bins) ||
          !parse_u64_array(win->find("sel_f_bins"), &sel_f_bins)) {
        return fail(error, "mistyped window counters");
      }
      if (sel_n_bins.size() != cfg.num_links + 1 ||
          sel_f_bins.size() != cfg.num_links + 1) {
        return fail(error, "window state shape");
      }
      if (!parse_ledger(win, cfg.num_links, cfg.blame.w, &led, error)) {
        return false;
      }
      t2->restore_window(sel_n_bins, sel_f_bins, led.completed,
                         led.cur_streak, led.max_streak, led.flagrant,
                         led.max_theta_w, led.recent);
    }
  } else if (protocols::FlScoreTable* tf = engine->mutable_fl_table()) {
    if (table_kind->string != "fl") {
      return fail(error, "table.kind does not match the protocol");
    }
    const obs::JsonValue* acc_value = table->find("acc");
    if (acc_value == nullptr || !acc_value->is_array()) {
      return fail(error, "mistyped fl table");
    }
    std::vector<double> acc;
    acc.reserve(acc_value->array.size());
    for (const obs::JsonValue& item : acc_value->array) {
      if (!item.is_number()) return fail(error, "mistyped fl table");
      acc.push_back(item.number);
    }
    std::uint64_t reported = 0, lost = 0;
    if (!parse_u64(table->find("intervals_reported"), &reported) ||
        !parse_u64(table->find("intervals_lost"), &lost)) {
      return fail(error, "mistyped fl table");
    }
    if (acc.size() != cfg.num_links + 1) return fail(error, "fl table shape");
    tf->restore(acc, reported, lost);
    if (const obs::JsonValue* win = table->find("window")) {
      if (!win->is_object()) return fail(error, "mistyped window state");
      std::vector<double> counts;
      LedgerDoc led;
      if (!parse_double_array(win->find("counts"), &counts)) {
        return fail(error, "mistyped window counters");
      }
      if (counts.size() != cfg.num_links + 1) {
        return fail(error, "window state shape");
      }
      if (!parse_ledger(win, cfg.num_links, cfg.blame.w, &led, error)) {
        return false;
      }
      tf->restore_window(counts, led.completed, led.cur_streak,
                         led.max_streak, led.flagrant, led.max_theta_w,
                         led.recent);
    }
  } else {
    return fail(error, "engine has no table after configure");
  }

  engine->restore_counters(events_seen, events_applied, packets_sent,
                           delivered, run_ended->boolean,
                           std::move(recorded));
  engine->rebaseline_convictions();
  return true;
}

}  // namespace paai::stream
