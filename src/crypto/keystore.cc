#include "crypto/keystore.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace paai::crypto {

Key derive_key(const Key& master, ByteView label, std::uint32_t index) {
  Bytes input(label.begin(), label.end());
  for (int i = 0; i < 4; ++i) {
    input.push_back(static_cast<std::uint8_t>(index >> (24 - 8 * i)));
  }
  const Digest32 d = hmac_sha256(ByteView(master.data(), master.size()),
                                 ByteView(input.data(), input.size()));
  Key out;
  std::copy(d.begin(), d.end(), out.begin());
  return out;
}

KeyStore::KeyStore(const Key& master, std::size_t path_length)
    : d_(path_length) {
  if (path_length < 2) {
    throw std::invalid_argument("KeyStore: path length must be >= 2 hops");
  }
  node_keys_.resize(path_length + 1);
  const Bytes label = bytes_of("paai-node-key");
  for (std::size_t i = 1; i <= path_length; ++i) {
    node_keys_[i] =
        derive_key(master, ByteView(label.data(), label.size()),
                   static_cast<std::uint32_t>(i));
  }
  const Bytes flabel = bytes_of("paai-fl-sampling-key");
  fl_keys_.resize(path_length + 1);
  for (std::size_t i = 1; i <= path_length; ++i) {
    fl_keys_[i] = derive_key(master, ByteView(flabel.data(), flabel.size()),
                             static_cast<std::uint32_t>(i));
  }
  const Bytes slabel = bytes_of("paai-sampling-key");
  sampling_key_ =
      derive_key(master, ByteView(slabel.data(), slabel.size()), 0);
}

const Key& KeyStore::fl_sampling_key(std::size_t i) const {
  if (i < 1 || i > d_) {
    throw std::out_of_range("KeyStore::fl_sampling_key: index outside [1, d]");
  }
  return fl_keys_[i];
}

const Key& KeyStore::node_key(std::size_t i) const {
  if (i < 1 || i > d_) {
    throw std::out_of_range("KeyStore::node_key: index outside [1, d]");
  }
  return node_keys_[i];
}

Key test_master_key(std::uint64_t seed) {
  Key k{};
  for (int i = 0; i < 8; ++i) {
    k[i] = static_cast<std::uint8_t>(seed >> (56 - 8 * i));
    k[8 + i] = static_cast<std::uint8_t>(~seed >> (56 - 8 * i));
  }
  k[31] = 0x42;
  return k;
}

}  // namespace paai::crypto
