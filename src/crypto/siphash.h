// SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.
//
// Backs the `FastCrypto` provider: a keyed 64-bit PRF that is ~20x faster
// than HMAC-SHA256. The Monte-Carlo benches that push millions of packets
// through PAAI-2 use it so the statistical experiments stay laptop-scale;
// the security-relevant tests always run against the real HMAC/ChaCha20
// provider (see crypto/provider.h).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace paai::crypto {

using Key128 = std::array<std::uint8_t, 16>;

/// SipHash-2-4 64-bit tag.
std::uint64_t siphash24(const Key128& key, ByteView data);

}  // namespace paai::crypto
