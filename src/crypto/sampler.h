// Keyed sampling primitives for the probabilistic protocols.
//
// SecureSampler — PAAI-1 §6.1 phase 1: "S uses a secure sampling (SS)
// algorithm to determine whether it must send out a probe for m. When given
// any input m, the SS algorithm must output Yes with a fixed probability p."
// Implemented as PRF_k(H(m)) < p * 2^64 with k known only to S, so an
// adversary observing m cannot predict whether it is sampled.
//
// SelectionPredicate — PAAI-2 §6.2 phase 2: node F_i computes a
// PRF_{K_i}-based predicate T_i over the probe challenge Z that returns
// true with probability 1/(d - i + 1). The *selected* node is the first
// sampled one; the telescoping product makes the selected index uniform on
// {1..d} (property-tested via chi-square in tests/sampler_test.cc).
#pragma once

#include <cstdint>

#include "crypto/provider.h"
#include "util/bytes.h"

namespace paai::crypto {

class SecureSampler {
 public:
  /// p is clamped to [0, 1].
  SecureSampler(const CryptoProvider& crypto, const Key& key, double p);

  /// Deterministic, keyed Bernoulli(p) decision for this identifier.
  bool sampled(ByteView packet_id) const;

  double probability() const { return p_; }

 private:
  const CryptoProvider& crypto_;
  Key key_;
  double p_;
  std::uint64_t threshold_;
};

/// Evaluates T_i for node index i (1-based) on a path of d hops, keyed with
/// the node's pairwise key. Returns true with probability 1/(d - i + 1).
bool selection_predicate(const CryptoProvider& crypto, const Key& node_key,
                         ByteView challenge, std::size_t node_index,
                         std::size_t path_length);

/// Source-side helper: index of the node *selected* for this challenge
/// (the first i in [1, d] whose predicate fires). Because T_d fires with
/// probability 1, a selected node always exists.
std::size_t selected_node(const CryptoProvider& crypto,
                          const std::vector<Key>& node_keys,  // [1..d] used
                          ByteView challenge, std::size_t path_length);

}  // namespace paai::crypto
