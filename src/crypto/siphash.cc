#include "crypto/siphash.h"

namespace paai::crypto {

namespace {

inline std::uint64_t rotl64(std::uint64_t x, int n) {
  return (x << n) | (x >> (64 - n));
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void sip_round(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                      std::uint64_t& v3) {
  v0 += v1; v1 = rotl64(v1, 13); v1 ^= v0; v0 = rotl64(v0, 32);
  v2 += v3; v3 = rotl64(v3, 16); v3 ^= v2;
  v0 += v3; v3 = rotl64(v3, 21); v3 ^= v0;
  v2 += v1; v1 = rotl64(v1, 17); v1 ^= v2; v2 = rotl64(v2, 32);
}

}  // namespace

std::uint64_t siphash24(const Key128& key, ByteView data) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);

  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t len = data.size();
  const std::size_t end = len - (len % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    const std::uint64_t m = load_le64(data.data() + i);
    v3 ^= m;
    sip_round(v0, v1, v2, v3);
    sip_round(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = 0; i < (len % 8); ++i) {
    last |= static_cast<std::uint64_t>(data[end + i]) << (8 * i);
  }
  v3 ^= last;
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);

  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace paai::crypto
