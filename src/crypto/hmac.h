// HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on our SHA-256.
//
// This is both the MAC ([m]_K in the paper) and — truncated — the keyed PRF
// used for secure sampling and the PAAI-2 selection predicate.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace paai::crypto {

/// Full 32-byte HMAC-SHA256 tag.
Digest32 hmac_sha256(ByteView key, ByteView message);

/// First 8 bytes of the tag as a big-endian u64 — a PRF output usable for
/// sampling decisions.
std::uint64_t hmac_prf_u64(ByteView key, ByteView message);

}  // namespace paai::crypto
