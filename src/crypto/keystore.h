// Key management for one monitored path.
//
// §3.2: "the source shares a pairwise symmetric key with each intermediate
// node on the path". We model that with a KeyStore: the source derives
// per-node keys K_1..K_d from a master secret (HKDF-style expansion via
// HMAC), and each node holds only its own K_i. The source additionally
// holds a private sampling key (PAAI-1's SS algorithm is keyed with "a
// secret key known only to S") and a probe key shared with the destination
// (used by the §10 combinations).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/provider.h"
#include "util/bytes.h"

namespace paai::crypto {

/// Derives a subkey = HMAC(master, label || index). Deterministic, so the
/// source and node F_i agree on K_i after a (not modeled) key exchange.
Key derive_key(const Key& master, ByteView label, std::uint32_t index);

class KeyStore {
 public:
  /// d = path length in hops; nodes are F_0 = S .. F_d = D, so per-node
  /// keys exist for indices 1..d.
  KeyStore(const Key& master, std::size_t path_length);

  /// Pairwise key K_i shared between S and F_i, i in [1, d].
  const Key& node_key(std::size_t i) const;

  /// Sampling key known only to S (PAAI-1 secure sampling).
  const Key& source_sampling_key() const { return sampling_key_; }

  /// Statistical-FL per-node sampling key for F_i: shared between S and
  /// F_i only, so no node (compromised or not) can predict which packets
  /// another node counts. Derived independently of node_key(i).
  const Key& fl_sampling_key(std::size_t i) const;

  /// Key shared between S and D only (== node_key(d)); the §10 combinations
  /// key their probe function with it.
  const Key& destination_key() const { return node_key(d_); }

  std::size_t path_length() const { return d_; }

 private:
  std::size_t d_;
  std::vector<Key> node_keys_;  // index 0 unused
  std::vector<Key> fl_keys_;    // index 0 unused
  Key sampling_key_;
};

/// Test/simulation helper: a master key with a recognizable pattern.
Key test_master_key(std::uint64_t seed);

}  // namespace paai::crypto
