#include "crypto/provider.h"

#include <cstring>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/siphash.h"
#include "obs/profile.h"

namespace paai::crypto {

bool CryptoProvider::verify_mac(const Key& key, ByteView message,
                                const Mac& tag) const {
  const Mac expected = mac(key, message);
  return ct_equal(ByteView(expected.data(), expected.size()),
                  ByteView(tag.data(), tag.size()));
}

namespace {

Nonce96 make_nonce(std::uint64_t nonce) {
  Nonce96 n{};
  for (int i = 0; i < 8; ++i) {
    n[4 + i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  return n;
}

// Every provider method opens a kCrypto profiler scope (two branches
// while profiling is off): the crypto loops dominate PAAI-2 and sig-ack
// per bench_micro, and the phase self-profiler measures them in situ.
class RealCrypto final : public CryptoProvider {
 public:
  std::array<std::uint8_t, 32> hash(ByteView message) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    return Sha256::digest(message);
  }

  Mac mac(const Key& key, ByteView message) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    const Digest32 full =
        hmac_sha256(ByteView(key.data(), key.size()), message);
    Mac out;
    std::memcpy(out.data(), full.data(), out.size());
    return out;
  }

  std::uint64_t prf(const Key& key, ByteView message) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    return hmac_prf_u64(ByteView(key.data(), key.size()), message);
  }

  Bytes encrypt(const Key& key, std::uint64_t nonce,
                ByteView plaintext) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    return chacha20_xor(key, make_nonce(nonce), 0, plaintext);
  }

  Bytes decrypt(const Key& key, std::uint64_t nonce,
                ByteView ciphertext) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    return chacha20_xor(key, make_nonce(nonce), 0, ciphertext);
  }
};

class FastCrypto final : public CryptoProvider {
 public:
  std::array<std::uint8_t, 32> hash(ByteView message) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    // Four SipHash lanes under fixed public keys. Wide enough that
    // accidental collisions never perturb a simulation; documented as
    // non-cryptographic in provider.h.
    std::array<std::uint8_t, 32> out;
    for (std::uint8_t lane = 0; lane < 4; ++lane) {
      Key128 k{};
      k[0] = lane;
      k[15] = 0xa5;
      const std::uint64_t h = siphash24(k, message);
      for (int i = 0; i < 8; ++i) {
        out[lane * 8 + i] = static_cast<std::uint8_t>(h >> (56 - 8 * i));
      }
    }
    return out;
  }

  Mac mac(const Key& key, ByteView message) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    const std::uint64_t t = sip(key, 0x01, message);
    Mac out;
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(t >> (56 - 8 * i));
    }
    return out;
  }

  std::uint64_t prf(const Key& key, ByteView message) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    return sip(key, 0x02, message);
  }

  Bytes encrypt(const Key& key, std::uint64_t nonce,
                ByteView plaintext) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    return stream_xor(key, nonce, plaintext);
  }

  Bytes decrypt(const Key& key, std::uint64_t nonce,
                ByteView ciphertext) const override {
    const obs::ScopedPhase phase(obs::Phase::kCrypto);
    return stream_xor(key, nonce, ciphertext);
  }

 private:
  static std::uint64_t sip(const Key& key, std::uint8_t domain,
                           ByteView message) {
    Key128 k;
    std::memcpy(k.data(), key.data(), k.size());
    k[0] ^= domain;
    return siphash24(k, message);
  }

  static Bytes stream_xor(const Key& key, std::uint64_t nonce,
                          ByteView data) {
    // SipHash-CTR keystream: block i = SipHash(key', nonce || i).
    Bytes out(data.begin(), data.end());
    std::uint8_t block_input[16];
    for (int i = 0; i < 8; ++i) {
      block_input[i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
    }
    std::uint64_t counter = 0;
    std::size_t offset = 0;
    while (offset < out.size()) {
      for (int i = 0; i < 8; ++i) {
        block_input[8 + i] = static_cast<std::uint8_t>(counter >> (56 - 8 * i));
      }
      const std::uint64_t ks =
          sip(key, 0x03, ByteView(block_input, sizeof(block_input)));
      const std::size_t n = std::min<std::size_t>(8, out.size() - offset);
      for (std::size_t i = 0; i < n; ++i) {
        out[offset + i] ^= static_cast<std::uint8_t>(ks >> (56 - 8 * i));
      }
      offset += n;
      ++counter;
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<CryptoProvider> make_real_crypto() {
  return std::make_unique<RealCrypto>();
}

std::unique_ptr<CryptoProvider> make_fast_crypto() {
  return std::make_unique<FastCrypto>();
}

std::unique_ptr<CryptoProvider> make_crypto(CryptoKind kind) {
  return kind == CryptoKind::kReal ? make_real_crypto() : make_fast_crypto();
}

}  // namespace paai::crypto
