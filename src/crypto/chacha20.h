// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// PAAI-2 intermediate nodes re-encrypt the ack report at every hop
// (E_K(...)) so that the identity of the selected node is hidden from
// traffic analysis. ChaCha20 gives us fast, nonce-based symmetric
// encryption without needing padding (report sizes stay constant, which is
// itself part of the obliviousness property).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace paai::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

/// XORs `data` with the ChaCha20 keystream for (key, nonce, counter).
/// Encryption and decryption are the same operation.
Bytes chacha20_xor(const Key256& key, const Nonce96& nonce,
                   std::uint32_t counter, ByteView data);

/// Generates a single 64-byte keystream block (exposed for test vectors).
std::array<std::uint8_t, 64> chacha20_block(const Key256& key,
                                            const Nonce96& nonce,
                                            std::uint32_t counter);

}  // namespace paai::crypto
