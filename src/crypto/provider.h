// CryptoProvider: the seam between the protocol logic and the primitives.
//
// The paper's protocols need four operations: a collision-resistant hash h
// (packet identifiers), a MAC [m]_K (onion reports), a keyed PRF (secure
// sampling / selection predicates / challenges), and symmetric encryption
// E_K (PAAI-2's layered report re-encryption).
//
// Two implementations:
//   * RealCrypto — SHA-256 / HMAC-SHA256 / ChaCha20. Used by default, by all
//     examples, and by every security test.
//   * FastCrypto — SipHash-2-4 based. Identical interface and statistical
//     behaviour (it is still a keyed PRF family), ~20x faster; selected by
//     the multi-million-packet Monte-Carlo benches. NOT cryptographically
//     collision resistant — never use it outside simulation studies.
//
// MAC tags are truncated to 8 bytes, matching what an actual deployment on
// resource-constrained networks (the paper's motivating setting) would use.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "util/bytes.h"

namespace paai::crypto {

/// Symmetric key shared between the source and one node.
using Key = std::array<std::uint8_t, 32>;

/// Truncated MAC tag. 64-bit tags are standard for in-network
/// authentication (e.g. TESLA, SPINS) and keep onion reports compact.
using Mac = std::array<std::uint8_t, 8>;

constexpr std::size_t kMacSize = 8;

class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  /// Collision-resistant hash h(.) — 32-byte digest.
  virtual std::array<std::uint8_t, 32> hash(ByteView message) const = 0;

  /// MAC [message]_key, truncated to kMacSize bytes.
  virtual Mac mac(const Key& key, ByteView message) const = 0;

  /// Keyed PRF mapping message -> uniform u64.
  virtual std::uint64_t prf(const Key& key, ByteView message) const = 0;

  /// Symmetric encryption E_K. `nonce` must be unique per (key, plaintext);
  /// protocols derive it from the packet identifier. Ciphertext length ==
  /// plaintext length (constant-size acks are part of PAAI-2's design).
  virtual Bytes encrypt(const Key& key, std::uint64_t nonce,
                        ByteView plaintext) const = 0;
  virtual Bytes decrypt(const Key& key, std::uint64_t nonce,
                        ByteView ciphertext) const = 0;

  /// Verifies a truncated MAC in constant time.
  bool verify_mac(const Key& key, ByteView message, const Mac& tag) const;
};

/// SHA-256 / HMAC-SHA256 / ChaCha20 provider.
std::unique_ptr<CryptoProvider> make_real_crypto();

/// SipHash-2-4-based provider for large-scale simulation only.
std::unique_ptr<CryptoProvider> make_fast_crypto();

enum class CryptoKind { kReal, kFast };

std::unique_ptr<CryptoProvider> make_crypto(CryptoKind kind);

}  // namespace paai::crypto
