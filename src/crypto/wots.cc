#include "crypto/wots.h"

#include <cstring>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace paai::crypto {

namespace {

/// Base-16 digits of H(message) plus the 3-digit checksum.
std::array<std::uint8_t, kWotsChains> digits_of(ByteView message) {
  const Digest32 digest = Sha256::digest(message);
  std::array<std::uint8_t, kWotsChains> digits{};
  for (std::size_t i = 0; i < 32; ++i) {
    digits[2 * i] = digest[i] >> 4;
    digits[2 * i + 1] = digest[i] & 0x0f;
  }
  std::uint32_t checksum = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    checksum += kWotsDepth - digits[i];
  }
  digits[64] = static_cast<std::uint8_t>((checksum >> 8) & 0x0f);
  digits[65] = static_cast<std::uint8_t>((checksum >> 4) & 0x0f);
  digits[66] = static_cast<std::uint8_t>(checksum & 0x0f);
  return digits;
}

/// Secret chain head for (seed, key index, chain).
Digest32 chain_head(const Key& seed, std::uint64_t index, std::size_t chain) {
  Bytes input;
  input.reserve(16);
  for (int i = 0; i < 8; ++i) {
    input.push_back(static_cast<std::uint8_t>(index >> (56 - 8 * i)));
  }
  input.push_back(static_cast<std::uint8_t>(chain));
  return hmac_sha256(ByteView(seed.data(), seed.size()),
                     ByteView(input.data(), input.size()));
}

/// Applies the chaining function `steps` times.
Digest32 advance(Digest32 value, std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) {
    value = Sha256::digest(ByteView(value.data(), value.size()));
  }
  return value;
}

}  // namespace

WotsPublicKey wots_public_key(const Key& seed, std::uint64_t index) {
  Sha256 acc;
  for (std::size_t c = 0; c < kWotsChains; ++c) {
    const Digest32 end = advance(chain_head(seed, index, c), kWotsDepth);
    acc.update(ByteView(end.data(), end.size()));
  }
  return acc.finish();
}

Bytes wots_sign(const Key& seed, std::uint64_t index, ByteView message) {
  const auto digits = digits_of(message);
  Bytes signature;
  signature.reserve(kWotsSignatureSize);
  for (std::size_t c = 0; c < kWotsChains; ++c) {
    const Digest32 v = advance(chain_head(seed, index, c), digits[c]);
    signature.insert(signature.end(), v.begin(), v.end());
  }
  return signature;
}

bool wots_verify(const WotsPublicKey& pk, ByteView message,
                 ByteView signature) {
  if (signature.size() != kWotsSignatureSize) return false;
  const auto digits = digits_of(message);
  Sha256 acc;
  for (std::size_t c = 0; c < kWotsChains; ++c) {
    Digest32 v;
    std::memcpy(v.data(), signature.data() + 32 * c, 32);
    v = advance(v, kWotsDepth - digits[c]);
    acc.update(ByteView(v.data(), v.size()));
  }
  const WotsPublicKey computed = acc.finish();
  return ct_equal(ByteView(computed.data(), computed.size()),
                  ByteView(pk.data(), pk.size()));
}

}  // namespace paai::crypto
