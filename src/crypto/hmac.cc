#include "crypto/hmac.h"

#include <cstring>

namespace paai::crypto {

Digest32 hmac_sha256(ByteView key, ByteView message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const Digest32 kd = Sha256::digest(key);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> ipad, opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ByteView(ipad.data(), kBlock));
  inner.update(message);
  const Digest32 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteView(opad.data(), kBlock));
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

std::uint64_t hmac_prf_u64(ByteView key, ByteView message) {
  const Digest32 t = hmac_sha256(key, message);
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | t[i];
  return out;
}

}  // namespace paai::crypto
