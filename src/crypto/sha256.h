// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the collision-resistant hash h of the paper: packet identifiers
// H(m) are (truncated) SHA-256 digests, and HMAC-SHA256 provides the MAC and
// PRF the protocols rely on. Verified against NIST test vectors in
// tests/crypto_test.cc.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace paai::crypto {

using Digest32 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  /// Absorbs more input; may be called repeatedly.
  void update(ByteView data);

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without calling reset().
  Digest32 finish();

  void reset();

  /// One-shot convenience.
  static Digest32 digest(ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace paai::crypto
