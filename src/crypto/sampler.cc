#include "crypto/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paai::crypto {

SecureSampler::SecureSampler(const CryptoProvider& crypto, const Key& key,
                             double p)
    : crypto_(crypto), key_(key), p_(std::clamp(p, 0.0, 1.0)) {
  // Threshold such that P[u64 < threshold] == p (up to 2^-64).
  threshold_ = p_ >= 1.0 ? ~0ULL
                         : static_cast<std::uint64_t>(
                               std::ldexp(p_, 64));
}

bool SecureSampler::sampled(ByteView packet_id) const {
  if (p_ >= 1.0) return true;
  if (p_ <= 0.0) return false;
  return crypto_.prf(key_, packet_id) < threshold_;
}

bool selection_predicate(const CryptoProvider& crypto, const Key& node_key,
                         ByteView challenge, std::size_t node_index,
                         std::size_t path_length) {
  if (node_index < 1 || node_index > path_length) {
    throw std::out_of_range("selection_predicate: node index outside [1, d]");
  }
  const std::uint64_t denom =
      static_cast<std::uint64_t>(path_length - node_index + 1);
  if (denom == 1) return true;  // F_d always fires.
  // PRF output reduced mod denom: bias is ~denom/2^64, i.e. negligible.
  return crypto.prf(node_key, challenge) % denom == 0;
}

std::size_t selected_node(const CryptoProvider& crypto,
                          const std::vector<Key>& node_keys,
                          ByteView challenge, std::size_t path_length) {
  for (std::size_t i = 1; i <= path_length; ++i) {
    if (selection_predicate(crypto, node_keys[i], challenge, i,
                            path_length)) {
      return i;
    }
  }
  return path_length;  // unreachable: T_d always true
}

}  // namespace paai::crypto
