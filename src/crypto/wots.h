// Winternitz one-time signatures (W-OTS) over SHA-256, from scratch.
//
// The paper's footnote 1 mentions "a fairly simple AAI protocol that
// employs asymmetric key cryptography" and dismisses it for its "high
// per-packet computation and communication overhead". We implement the
// cheapest practical hash-based signature so the signature-ack protocol
// (src/protocols/sigack.h) can *measure* that overhead instead of taking
// it on faith: with w = 16, one signature is 67 hash chains x 32 B =
// 2144 B — two orders of magnitude above an 8-byte MAC tag — and
// signing/verification cost hundreds of compression calls.
//
// Parameters: message digest 32 B -> 64 base-16 digits, plus a 3-digit
// checksum (sum of 15-digit complements <= 960 < 16^3). Keys are derived
// deterministically from a seed, so a node can use key index = packet
// sequence number and the verifier can reconstruct the expected public
// key (standing in for the Merkle-tree key registration a deployment
// would use — which would only add more overhead).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/provider.h"
#include "util/bytes.h"

namespace paai::crypto {

constexpr std::size_t kWotsChains = 67;   // 64 message + 3 checksum digits
constexpr std::size_t kWotsDepth = 15;    // w - 1 with w = 16
constexpr std::size_t kWotsSignatureSize = kWotsChains * 32;

using WotsPublicKey = std::array<std::uint8_t, 32>;

/// Derives the one-time public key for (seed, index).
WotsPublicKey wots_public_key(const Key& seed, std::uint64_t index);

/// Signs `message` with the one-time key (seed, index). Returns
/// kWotsSignatureSize bytes. Reusing an index breaks one-timeness —
/// callers bind index to the packet sequence number.
Bytes wots_sign(const Key& seed, std::uint64_t index, ByteView message);

/// Verifies a signature against the public key.
bool wots_verify(const WotsPublicKey& pk, ByteView message,
                 ByteView signature);

}  // namespace paai::crypto
