#include "obs/tracer.h"

#include <algorithm>

#include "obs/json.h"

namespace paai::obs {

TraceRing::TraceRing(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

std::uint64_t TraceRing::retained() const {
  return std::min<std::uint64_t>(recorded(), slots_.size());
}

void TraceRing::record(const char* name, const char* cat, std::int64_t ts_us,
                       std::int64_t dur_us, std::uint32_t track,
                       std::int64_t arg, std::uint32_t pid) {
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[idx % slots_.size()];
  s.name.store(name, std::memory_order_relaxed);
  s.cat.store(cat, std::memory_order_relaxed);
  s.ts_us.store(ts_us, std::memory_order_relaxed);
  s.dur_us.store(dur_us, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.track.store(track, std::memory_order_relaxed);
  s.pid.store(pid, std::memory_order_relaxed);
}

void TraceRing::write_chrome_json(std::ostream& os) const {
  const std::uint64_t head = recorded();
  const std::uint64_t count = std::min<std::uint64_t>(head, slots_.size());
  const std::uint64_t start = head - count;

  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.key("recorded").value(head);
  w.key("dropped").value(dropped());
  w.end_object();
  w.key("traceEvents").begin_array();
  for (std::uint64_t i = start; i < head; ++i) {
    const Slot& s = slots_[i % slots_.size()];
    const char* name = s.name.load(std::memory_order_relaxed);
    if (name == nullptr) continue;
    const std::int64_t dur = s.dur_us.load(std::memory_order_relaxed);
    const std::int64_t arg = s.arg.load(std::memory_order_relaxed);
    w.begin_object();
    w.key("name").value(name);
    const char* cat = s.cat.load(std::memory_order_relaxed);
    w.key("cat").value(cat != nullptr ? cat : "");
    if (dur >= 0) {
      w.key("ph").value("X");
      w.key("dur").value(dur);
    } else {
      w.key("ph").value("i");
      w.key("s").value("t");
    }
    w.key("ts").value(s.ts_us.load(std::memory_order_relaxed));
    w.key("pid").value(
        static_cast<std::int64_t>(s.pid.load(std::memory_order_relaxed)));
    w.key("tid").value(
        static_cast<std::int64_t>(s.track.load(std::memory_order_relaxed)));
    if (arg != kTraceNoArg) {
      w.key("args").begin_object();
      w.key("v").value(arg);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace paai::obs
