#include "obs/metrics.h"

#include <algorithm>

namespace paai::obs {

namespace detail {

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

std::uint64_t CounterCells::total() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.value.load(std::memory_order_relaxed);
  return n;
}

void CounterCells::reset() {
  for (auto& s : shards) s.value.store(0, std::memory_order_relaxed);
}

void GaugeCell::reset() {
  value.store(0, std::memory_order_relaxed);
  high.store(std::numeric_limits<std::int64_t>::min(),
             std::memory_order_relaxed);
}

void HistogramCells::reset() {
  for (auto& s : shards) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
  min.store(std::numeric_limits<std::uint64_t>::max(),
            std::memory_order_relaxed);
  max.store(0, std::memory_order_relaxed);
}

}  // namespace detail

std::uint64_t HistogramSnapshot::quantile_bound(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target) {
      if (b == 0) return 0;
      if (b >= 64) return std::numeric_limits<std::uint64_t>::max();
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return max;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<detail::CounterCells>())
             .first;
  }
  return Counter(it->second.get(), &enabled_);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::make_unique<detail::GaugeCell>())
             .first;
  }
  return Gauge(it->second.get(), &enabled_);
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramCells>())
             .first;
  }
  return Histogram(it->second.get(), &enabled_);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cells] : counters_) {
    snap.counters.push_back(CounterSnapshot{name, cells->total()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    GaugeSnapshot g;
    g.name = name;
    g.value = cell->value.load(std::memory_order_relaxed);
    const std::int64_t high = cell->high.load(std::memory_order_relaxed);
    g.high = high == std::numeric_limits<std::int64_t>::min() ? g.value : high;
    snap.gauges.push_back(std::move(g));
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cells] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    for (const auto& shard : cells->shards) {
      h.count += shard.count.load(std::memory_order_relaxed);
      h.sum += shard.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
    const std::uint64_t lo = cells->min.load(std::memory_order_relaxed);
    h.min = h.count == 0 ? 0 : lo;
    h.max = cells->max.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, cells] : counters_) cells->reset();
  for (auto& [name, cell] : gauges_) cell->reset();
  for (auto& [name, cells] : histograms_) cells->reset();
}

}  // namespace paai::obs
