#include "obs/report.h"

#include <ctime>

#include "obs/json.h"

#ifndef PAAI_GIT_COMMIT
#define PAAI_GIT_COMMIT "unknown"
#endif
#ifndef PAAI_BUILD_TYPE
#define PAAI_BUILD_TYPE "unknown"
#endif
#ifndef PAAI_COMPILER
#define PAAI_COMPILER "unknown"
#endif
#ifndef PAAI_SANITIZE_NAME
#define PAAI_SANITIZE_NAME ""
#endif

namespace paai::obs {

BuildInfo build_info() {
  BuildInfo info;
  info.git_commit = PAAI_GIT_COMMIT;
  info.build_type = PAAI_BUILD_TYPE;
  info.compiler = PAAI_COMPILER;
  info.sanitizer = PAAI_SANITIZE_NAME;
  return info;
}

void BenchReport::set_arg(std::string name, long long value) {
  Scalar s;
  s.is_number = true;
  s.number = static_cast<double>(value);
  args_.emplace_back(std::move(name), std::move(s));
}

void BenchReport::set_arg(std::string name, std::string value) {
  Scalar s;
  s.text = std::move(value);
  args_.emplace_back(std::move(name), std::move(s));
}

void BenchReport::set_metric(std::string name, double value) {
  results_.emplace_back(std::move(name), value);
}

void BenchReport::set_info(std::string name, std::string value) {
  info_.emplace_back(std::move(name), std::move(value));
}

void BenchReport::set_exec(std::size_t jobs, double wall_seconds,
                           std::size_t tasks, double task_mean_seconds,
                           double queue_wait_mean_seconds,
                           double utilization) {
  ExecInfo e;
  e.jobs = jobs;
  e.wall_seconds = wall_seconds;
  e.tasks = tasks;
  e.task_mean_seconds = task_mean_seconds;
  e.queue_wait_mean_seconds = queue_wait_mean_seconds;
  e.utilization = utilization;
  exec_ = e;
}

void BenchReport::write(std::ostream& os,
                        const MetricsSnapshot& metrics) const {
  const BuildInfo build = build_info();
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kBenchSchema);
  w.key("bench").value(bench_name_);
  w.key("created_unix")
      .value(static_cast<std::int64_t>(std::time(nullptr)));

  w.key("provenance").begin_object();
  w.key("git_commit").value(build.git_commit);
  w.key("build_type").value(build.build_type);
  w.key("compiler").value(build.compiler);
  w.key("sanitizer").value(build.sanitizer);
  w.end_object();

  w.key("args").begin_object();
  for (const auto& [name, scalar] : args_) {
    w.key(name);
    if (scalar.is_number) {
      w.value(scalar.number);
    } else {
      w.value(scalar.text);
    }
  }
  w.end_object();

  w.key("info").begin_object();
  for (const auto& [name, value] : info_) w.key(name).value(value);
  w.end_object();

  w.key("results").begin_object();
  for (const auto& [name, value] : results_) w.key(name).value(value);
  w.end_object();

  w.key("wall_seconds").value(wall_seconds_);

  w.key("exec");
  if (exec_) {
    w.begin_object();
    w.key("jobs").value(static_cast<std::uint64_t>(exec_->jobs));
    w.key("wall_seconds").value(exec_->wall_seconds);
    w.key("tasks").value(static_cast<std::uint64_t>(exec_->tasks));
    w.key("task_mean_seconds").value(exec_->task_mean_seconds);
    w.key("queue_wait_mean_seconds").value(exec_->queue_wait_mean_seconds);
    w.key("utilization").value(exec_->utilization);
    w.end_object();
  } else {
    w.null();
  }

  w.key("observability").begin_object();
  w.key("counters").begin_object();
  for (const auto& c : metrics.counters) w.key(c.name).value(c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : metrics.gauges) {
    w.key(g.name).begin_object();
    w.key("value").value(g.value);
    w.key("high").value(g.high);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : metrics.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("mean").value(h.mean());
    w.key("p50").value(h.quantile_bound(0.50));
    w.key("p99").value(h.quantile_bound(0.99));
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      const std::uint64_t lower =
          b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
      w.begin_array();
      w.value(lower);
      w.value(h.buckets[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();

  w.end_object();
  os << '\n';
}

}  // namespace paai::obs
