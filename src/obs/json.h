// Minimal JSON emit + strict parse, for the machine-readable bench
// results (BENCH_*.json) and the Chrome trace export.
//
// The writer is a streaming emitter with automatic comma/nesting
// management; it escapes everything RFC 8259 requires (quotes,
// backslashes, control characters) and maps non-finite doubles to null —
// NaN/Inf must never leak into a document a strict downstream parser will
// read. The parser is deliberately strict: it rejects trailing garbage,
// bad escapes, lone surrogates, unescaped control characters, leading
// zeros, and over-deep nesting, so tests can assert that every emitted
// document round-trips.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paai::obs {

/// Returns `s` as a quoted JSON string literal (with escapes).
std::string json_quote(std::string_view s);

/// Formats a double as a JSON number token; NaN / +-Inf become "null".
std::string json_number(double v);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or
  /// begin_object/begin_array.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

 private:
  void before_item();

  std::ostream& os_;
  std::vector<bool> first_;      // per open scope: no item emitted yet
  bool after_key_ = false;
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup (nullptr when absent or not an object).
  const JsonValue* find(std::string_view key) const;
};

/// Strict parse of a complete JSON document. On failure returns nullopt
/// and, when `error` is non-null, a short description with the byte
/// offset.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace paai::obs
