// Conviction forensics: replay an event log into a causal audit trail.
//
// forensics_analyze() folds a (merged, time-ordered) event stream into a
// ForensicsReport: per-kind totals, per-link evidence (blame counts,
// sample packet ids, the theta trajectory and its threshold crossing),
// and the conviction records the runner stamped at checkpoints and at
// run end. write_audit_trail() renders the report as the human-readable
// output of `paai explain` — "which acks/reports led PAAI-1 to convict
// l_3, and when" without a debugger.
//
// The analysis is pure: it never touches the simulator or the registry,
// so a log exported from one machine can be explained on another.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/events.h"

namespace paai::obs {

/// One point of a link's drop-score trajectory (recorded at each blame).
struct ScorePoint {
  std::int64_t ts_ns = 0;
  std::uint64_t observations = 0;
  double theta = 0.0;
};

/// Evidence accumulated against one link.
struct LinkForensics {
  std::size_t link = 0;
  std::uint64_t blames = 0;           // score-blame events naming this link
  std::uint64_t sample_ids_total = 0; // distinct blamed packet ids seen
  std::vector<std::uint64_t> sample_ids;  // first few blamed ids (capped)
  std::vector<ScorePoint> trajectory;     // theta after each blame
  std::int64_t first_blame_ts_ns = -1;    // -1 = never blamed
  std::int64_t crossing_ts_ns = -1;   // first theta > threshold, -1 = never
};

/// One conviction event as the runner recorded it.
struct ConvictionRecord {
  std::size_t link = 0;
  std::int64_t ts_ns = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t observations = 0;
  double theta = 0.0;
  bool final_verdict = false;  // last conviction of this link in the log
};

struct ForensicsReport {
  std::uint64_t total_events = 0;
  std::size_t node_count = 0;  // max node index seen + 1
  std::array<std::uint64_t, kEventKindCount> kind_counts{};

  // From run-start / run-end (zero / -1 when those events were dropped
  // by ring overflow).
  double threshold = -1.0;
  std::uint64_t planned_packets = 0;
  std::uint64_t seed = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t observations = 0;

  std::uint64_t prefix_blames = 0;  // score-blame with link = -1 (PAAI-2)

  std::vector<LinkForensics> links;          // indexed by link id
  std::vector<ConvictionRecord> convictions; // in log order

  std::uint64_t count(EventKind kind) const {
    return kind_counts[static_cast<std::size_t>(kind)];
  }
};

/// Folds a time-ordered event stream (EventLog::merged() or read_jsonl())
/// into a report. `max_sample_ids` caps the per-link blamed-id exhibit.
ForensicsReport forensics_analyze(const std::vector<Event>& events,
                                  std::size_t max_sample_ids = 8);

/// Renders the audit trail `paai explain` prints. Convicted links get a
/// "CONVICTED l_<k>" block with evidence counts, score trajectory
/// summary, and the convicting event; exonerated links one summary line.
void write_audit_trail(std::ostream& os, const ForensicsReport& report);

}  // namespace paai::obs
