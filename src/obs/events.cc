#include "obs/events.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace paai::obs {
namespace {

constexpr const char* kKindNames[kEventKindCount] = {
    "run-start",    "run-end",      "data-send",     "sample-select",
    "probe-send",   "ack-recv",     "ack-timeout",   "onion-decode",
    "score-clean",  "score-blame",  "conviction",    "packet-send",
    "packet-recv",  "packet-fwd",   "node-crash",    "node-restart",
    "run-config",   "fl-count",
};

// Exact total order for the merged export; seq breaks ties within a node
// (two nodes never share a seq collision at the same ts because node is
// compared first).
bool event_before(const Event& x, const Event& y) {
  if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
  if (x.node != y.node) return x.node < y.node;
  return x.seq < y.seq;
}

bool parse_u64_field(const JsonValue& v, std::uint64_t* out) {
  if (!v.is_string()) return false;
  if (v.string.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.string.c_str(), &end, 10);
  if (errno != 0 || end != v.string.c_str() + v.string.size()) return false;
  *out = parsed;
  return true;
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

std::optional<EventKind> event_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

EventLog::EventLog(std::size_t per_node_capacity)
    : capacity_(per_node_capacity == 0 ? 1 : per_node_capacity) {}

void EventLog::append(std::size_t node, EventKind kind, std::int64_t ts_ns,
                      std::int32_t link, std::uint64_t a, std::uint64_t b,
                      double value) {
  if (node >= rings_.size()) rings_.resize(node + 1);
  NodeRing& ring = rings_[node];
  if (ring.slots.empty()) ring.slots.reserve(std::min<std::size_t>(capacity_, 64));

  Event e;
  e.ts_ns = ts_ns;
  e.seq = ring.next_seq++;
  e.a = a;
  e.b = b;
  e.value = value;
  e.link = link;
  e.node = static_cast<std::uint16_t>(node);
  e.kind = kind;

  ++recorded_;
  if (ring.slots.size() < capacity_) {
    ring.slots.push_back(e);
  } else {
    ring.slots[static_cast<std::size_t>(e.seq % capacity_)] = e;
    ++dropped_;
  }
}

void EventLog::clear() {
  rings_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

std::vector<Event> EventLog::merged() const {
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(retained()));
  for (const NodeRing& ring : rings_) {
    out.insert(out.end(), ring.slots.begin(), ring.slots.end());
  }
  std::sort(out.begin(), out.end(), event_before);
  return out;
}

void EventLog::write_jsonl(std::ostream& os) const {
  for (const Event& e : merged()) {
    JsonWriter w(os);
    w.begin_object();
    w.key("ts_ns").value(e.ts_ns);
    w.key("node").value(static_cast<std::int64_t>(e.node));
    w.key("seq").value(e.seq);
    w.key("kind").value(event_kind_name(e.kind));
    if (e.link >= 0) w.key("link").value(static_cast<std::int64_t>(e.link));
    w.key("a").value(std::to_string(e.a));
    w.key("b").value(std::to_string(e.b));
    w.key("v").value(e.value);
    w.end_object();
    os << '\n';
  }
}

namespace {

/// Parses one JSONL line into an event. Returns false with a description
/// (no line prefix) on any malformed input.
bool parse_event_line(const std::string& line, Event* out,
                      std::string* what) {
  std::string parse_error;
  const auto doc = json_parse(line, &parse_error);
  if (!doc.has_value()) {
    *what = parse_error;
    return false;
  }
  if (!doc->is_object()) {
    *what = "not a JSON object";
    return false;
  }

  Event e;
  const JsonValue* ts = doc->find("ts_ns");
  const JsonValue* node = doc->find("node");
  const JsonValue* seq = doc->find("seq");
  const JsonValue* kind = doc->find("kind");
  if (ts == nullptr || !ts->is_number() || node == nullptr ||
      !node->is_number() || seq == nullptr || !seq->is_number() ||
      kind == nullptr || !kind->is_string()) {
    *what = "missing or mistyped ts_ns/node/seq/kind";
    return false;
  }
  e.ts_ns = static_cast<std::int64_t>(ts->number);
  e.node = static_cast<std::uint16_t>(node->number);
  e.seq = static_cast<std::uint64_t>(seq->number);
  const auto k = event_kind_from_name(kind->string);
  if (!k.has_value()) {
    *what = "unknown kind \"" + kind->string + "\"";
    return false;
  }
  e.kind = *k;

  if (const JsonValue* link = doc->find("link")) {
    if (!link->is_number()) {
      *what = "mistyped link";
      return false;
    }
    e.link = static_cast<std::int32_t>(link->number);
  }
  if (const JsonValue* a = doc->find("a")) {
    if (!parse_u64_field(*a, &e.a)) {
      *what = "mistyped a";
      return false;
    }
  }
  if (const JsonValue* b = doc->find("b")) {
    if (!parse_u64_field(*b, &e.b)) {
      *what = "mistyped b";
      return false;
    }
  }
  if (const JsonValue* v = doc->find("v")) {
    // Non-finite doubles are emitted as null; map them back to 0.
    if (!v->is_number() && !v->is_null()) {
      *what = "mistyped v";
      return false;
    }
    e.value = v->is_number() ? v->number : 0.0;
  }
  *out = e;
  return true;
}

}  // namespace

EventReader::Status EventReader::next(Event* out, std::string* error) {
  const auto report = [&](const std::string& what) {
    ++errors_;
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no_) + ": " + what;
    }
    return Status::kError;
  };

  for (;;) {
    // Bounded read: never store more than kMaxLineBytes of one line, so a
    // newline-free garbage stream cannot balloon the buffer.
    buf_.clear();
    bool terminated = false;
    bool oversized = false;
    std::streambuf* const sb = is_->rdbuf();
    std::streambuf::int_type ch;
    while ((ch = sb->sbumpc()) != std::streambuf::traits_type::eof()) {
      ++bytes_;
      if (ch == '\n') {
        terminated = true;
        break;
      }
      if (buf_.size() >= kMaxLineBytes) {
        oversized = true;
        // Skip (unstored) to the end of the offending line so the reader
        // stays usable for count-and-continue callers.
        while ((ch = sb->sbumpc()) != std::streambuf::traits_type::eof()) {
          ++bytes_;
          if (ch == '\n') break;
        }
        break;
      }
      buf_.push_back(static_cast<char>(ch));
    }
    if (!terminated && !oversized && buf_.empty()) {
      return Status::kEof;  // clean EOF: the last line had its newline
    }
    ++line_no_;
    if (oversized) {
      return report("exceeds maximum line length (" +
                    std::to_string(kMaxLineBytes) + " bytes)");
    }
    if (!terminated) {
      // The stream died mid-line (pipe truncation, torn tail). The
      // fragment may even parse as JSON; fail instead of trusting it.
      return report("unterminated line (truncated stream?)");
    }
    if (buf_.empty()) continue;
    std::string what;
    if (!parse_event_line(buf_, out, &what)) return report(what);
    ++events_;
    return Status::kEvent;
  }
}

std::vector<Event> EventLog::read_jsonl(std::istream& is, std::string* error) {
  std::vector<Event> out;
  EventReader reader(is);
  Event e;
  for (;;) {
    switch (reader.next(&e, error)) {
      case EventReader::Status::kEvent:
        out.push_back(e);
        break;
      case EventReader::Status::kEof:
        return out;
      case EventReader::Status::kError:
        out.clear();
        return out;
    }
  }
}

}  // namespace paai::obs
