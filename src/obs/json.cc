#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace paai::obs {

// ---------------------------------------------------------------- emit

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::before_item() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_item();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_item();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  before_item();
  os_ << json_quote(name) << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_item();
  os_ << json_quote(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_item();
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_item();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_item();
  os_ << "null";
  return *this;
}

// --------------------------------------------------------------- parse

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      emit_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      emit_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void emit_error(std::string* error) const {
    if (error != nullptr) {
      *error = message_.empty() ? "parse error" : message_;
      *error += " at byte " + std::to_string(err_pos_);
    }
  }

  bool fail(const char* msg) {
    if (message_.empty()) {
      message_ = msg;
      err_pos_ = pos_;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_];
      const auto u = static_cast<unsigned char>(c);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (u < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_];
      ++pos_;
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require a low surrogate right behind it.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size()) return fail("truncated number");
    // Integer part: no leading zeros (RFC 8259).
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        return fail("leading zero in number");
      }
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("truncated fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("truncated exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    out.kind = JsonValue::Kind::kNumber;
    const std::string token(text_.substr(start, pos_ - start));
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
  std::size_t err_pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace paai::obs
