// Live telemetry plane: periodic `paai.telemetry.v1` JSONL snapshots.
//
// Everything src/obs produced before this file is post-mortem — the
// paai.bench.v1 report and the Chrome trace are written when the process
// exits. The telemetry plane makes the same numbers visible *while the
// process runs*: a TelemetrySink periodically samples the global
// MetricsRegistry and PhaseProfiler and appends one delta-encoded JSON
// line per sample to a file a consumer (`paai top`, tools/telemetry_report)
// can tail.
//
// Line schema (one strict-JSON object per line, fixed key order, sorted
// metric names — byte-identical across write/parse/rewrite):
//
//   {"schema":"paai.telemetry.v1","sample":0,
//    "wall_ns":"123","virt_ns":"456","units":"789",
//    "counters":{"name":"delta",...},       // u64 deltas, omitted when 0
//    "gauges":{"name":[value,high],...},    // absolute int64 pairs
//    "phases":{"name":["ns","calls","alloc"],...},  // u64 deltas
//    "queues":{"name":"high",...}}          // absolute u64 high-waters
//
// Conventions shared with the forensic event log: u64 payloads travel as
// decimal strings so full 64-bit values survive double-typed JSON
// parsers; gauges are int64 and stay JSON numbers, but the parser
// fail-closes on non-integral values or magnitudes above 2^53 so a
// parsed document always rewrites byte-identically. `sample` is a
// monotonic 0-based index; `wall_ns` counts from sink construction;
// `virt_ns` and `units` are caller-supplied progress clocks (simulated
// time and applied events / packets / runs respectively).
//
// Delta encoding: counters and phases carry the change since the previous
// sample. Across a registry reset (current total < previous total) the
// delta restarts from the current value — restart semantics, asserted by
// tests/telemetry_test.cc. Gauges and queue high-waters are absolute.
//
// The parser is fail-closed like every schema in this repo: unknown
// top-level keys, missing required members, or mistyped values are hard
// errors, never silently ignored.
//
// Thread-safety: tick() is a relaxed load + branch until a sample is due,
// then a mutex serializes the sample; the registry/profiler snapshots are
// relaxed reads that tolerate live writers (the TSan leg races a sampler
// thread against pool writers).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace paai::obs {

struct PhaseDelta {
  std::uint64_t ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t alloc_bytes = 0;
};

struct TelemetrySample {
  std::uint64_t sample = 0;   // monotonic 0-based index
  std::uint64_t wall_ns = 0;  // wall clock since sink construction
  std::uint64_t virt_ns = 0;  // caller's virtual clock (0 = none)
  std::uint64_t units = 0;    // caller's progress units
  /// Counter deltas since the previous sample, sorted by name, zero
  /// deltas omitted.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Absolute gauge (value, high-water) pairs, sorted by name.
  std::vector<GaugeSnapshot> gauges;
  /// Phase deltas since the previous sample, in Phase enum order, phases
  /// with an all-zero delta omitted.
  std::vector<std::pair<std::string, PhaseDelta>> phases;
  /// Queue-depth high-waters (absolute), in QueueId order, zeros omitted.
  std::vector<std::pair<std::string, std::uint64_t>> queues;
};

/// Writes one telemetry line (object + '\n'). Deterministic for a given
/// sample value — the round-trip tests rely on it.
void write_telemetry_line(std::ostream& os, const TelemetrySample& sample);

/// Strict fail-closed parse of one line (no trailing newline required).
/// On failure returns false and, when `error` is non-null, a description.
bool parse_telemetry_line(std::string_view line, TelemetrySample* out,
                          std::string* error = nullptr);

/// Periodic sampler over the global MetricsRegistry + PhaseProfiler.
class TelemetrySink {
 public:
  /// Appends samples to `path` (truncated on open); every_units <= 0 is
  /// clamped to 1. Check ok() before relying on output.
  TelemetrySink(const std::string& path, std::uint64_t every_units);

  /// Test/embedding constructor: samples go to `os`, which must outlive
  /// the sink.
  TelemetrySink(std::ostream& os, std::uint64_t every_units);

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// False when the file constructor could not open its path.
  bool ok() const { return out_ != nullptr && out_->good(); }

  std::uint64_t every() const { return every_; }
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Samples when `units` has crossed the next cadence threshold; cheap
  /// (one relaxed load) otherwise. Safe to call from any thread.
  void tick(std::uint64_t units, std::uint64_t virt_ns = 0);

  /// Unconditional sample — the final flush every producer emits on exit.
  void sample_now(std::uint64_t units, std::uint64_t virt_ns = 0);

  /// sample_now() at the largest (units, virt_ns) ever seen; used by
  /// owners (BenchSession) that do not know the producer's unit count.
  void final_sample();

 private:
  void do_sample(std::uint64_t units, std::uint64_t virt_ns);

  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::uint64_t every_ = 1;
  std::atomic<std::uint64_t> next_;
  std::atomic<std::uint64_t> samples_{0};
  std::mutex mutex_;
  std::map<std::string, std::uint64_t> prev_counters_;
  std::array<PhaseTotals, kPhaseCount> prev_phases_{};
  std::uint64_t last_units_ = 0;
  std::uint64_t last_virt_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace paai::obs
