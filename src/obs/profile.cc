#include "obs/profile.h"

#include "obs/metrics.h"

namespace paai::obs {

// profile.h sizes the cell array without including metrics.h; the two
// sharding factors must stay in lockstep.
static_assert(kShards == 8, "PhaseProfiler cell array assumes 8 shards");

namespace {

constexpr const char* kPhaseNames[kPhaseCount] = {
    "sim-loop",     "crypto",       "exec-task", "mesh-stat",
    "mesh-packet",  "stream-parse", "stream-apply", "snapshot",
};

constexpr const char* kQueueNames[kQueueIdCount] = {
    "sim-queue",
    "exec-queue",
};

}  // namespace

const char* phase_name(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

const char* queue_name(QueueId queue) {
  return kQueueNames[static_cast<std::size_t>(queue)];
}

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler instance;
  return instance;
}

PhaseProfiler::Cell& PhaseProfiler::cell_for(Phase phase) {
  // Same per-thread shard assignment as the metrics registry, so the two
  // instrumentation layers contend on the same (cold) line pattern.
  return cells_[static_cast<std::size_t>(phase) * kShards +
                detail::this_thread_shard()];
}

PhaseTotals PhaseProfiler::totals(Phase phase) const {
  PhaseTotals out;
  const std::size_t base = static_cast<std::size_t>(phase) * kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    const Cell& cell = cells_[base + s];
    out.ns += cell.ns.load(std::memory_order_relaxed);
    out.calls += cell.calls.load(std::memory_order_relaxed);
    out.alloc_bytes += cell.alloc_bytes.load(std::memory_order_relaxed);
  }
  return out;
}

void PhaseProfiler::reset() {
  for (Cell& cell : cells_) {
    cell.ns.store(0, std::memory_order_relaxed);
    cell.calls.store(0, std::memory_order_relaxed);
    cell.alloc_bytes.store(0, std::memory_order_relaxed);
  }
  for (auto& q : queue_high_) q.store(0, std::memory_order_relaxed);
}

}  // namespace paai::obs
