// PhaseProfiler: a process-wide self-profiler that attributes wall time,
// call counts, and allocation bytes to a small fixed set of phases — the
// measurement substrate the ROADMAP's hot-path rewrite is gated on.
//
// Where the metrics registry counts *what* happened, the profiler says
// *where the time went*: the simulator event loop, the crypto hot loops
// every protocol leans on, the exec pool's task bodies, the mesh engines'
// tile work, and the stream service's parse/apply halves each get a
// phase. A ScopedPhase on a hot path costs one relaxed load and a
// predicted-not-taken branch while disabled — no clock syscalls — so the
// instrumentation is safe to leave compiled in everywhere.
//
// The profiler follows the same observational contract as the metrics
// registry (see the carve-out in runner/experiment.h): cells are relaxed
// atomics sharded per thread, registration is static (the Phase enum), it
// is strictly write-only from inside a run, and no simulation result ever
// reads it — `Profiler.NeverAffectsResults` in tests/telemetry_test.cc
// asserts bit-identical results with profiling on and off for all seven
// protocols.
//
// Queue-depth high-waters ride along: the simulator's pending-event heap
// and the exec pool's work queue record their depth on every push via a
// CAS-max cell, so a telemetry snapshot can report how deep the backlogs
// ever got without any per-pop bookkeeping.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace paai::obs {

enum class Phase : std::uint8_t {
  kSimLoop,      // sim::Simulator::step handler dispatch
  kCrypto,       // CryptoProvider hash/mac/prf/encrypt/decrypt
  kExecTask,     // exec::ThreadPool task bodies
  kMeshStat,     // mesh statistical engine tile bodies
  kMeshPacket,   // mesh packet engine per-path experiments
  kStreamParse,  // stream service: EventReader::next
  kStreamApply,  // stream service: ScoreEngine::apply
  kSnapshot,     // state snapshots + telemetry sampling itself
};

inline constexpr std::size_t kPhaseCount = 8;

/// Stable kebab-case name ("sim-loop", "crypto", ...); a string literal,
/// so it may be handed to TraceRing slots directly.
const char* phase_name(Phase phase);

enum class QueueId : std::uint8_t {
  kSimQueue,   // sim::Simulator pending-event heap
  kExecQueue,  // exec::ThreadPool work queue
};

inline constexpr std::size_t kQueueIdCount = 2;

/// Stable name ("sim-queue", "exec-queue").
const char* queue_name(QueueId queue);

struct PhaseTotals {
  std::uint64_t ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t alloc_bytes = 0;
};

class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// The process-wide profiler. Disabled until someone (a BenchSession
  /// given --telemetry-out, a test) turns it on.
  static PhaseProfiler& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Folds one timed call into the phase (no-op while disabled).
  void add(Phase phase, std::uint64_t ns) {
    if (!enabled()) return;
    Cell& cell = cell_for(phase);
    cell.ns.fetch_add(ns, std::memory_order_relaxed);
    cell.calls.fetch_add(1, std::memory_order_relaxed);
  }

  /// Attributes allocated bytes to the phase (no-op while disabled).
  void add_alloc(Phase phase, std::uint64_t bytes) {
    if (!enabled()) return;
    cell_for(phase).alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// CAS-max fold of a queue's current depth into its high-water mark.
  void record_queue_depth(QueueId queue, std::uint64_t depth) {
    if (!enabled()) return;
    auto& cell = queue_high_[static_cast<std::size_t>(queue)];
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (depth > cur && !cell.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }

  /// Relaxed-read aggregate across shards; exact once writers quiesce.
  PhaseTotals totals(Phase phase) const;

  std::uint64_t queue_high(QueueId queue) const {
    return queue_high_[static_cast<std::size_t>(queue)].load(
        std::memory_order_relaxed);
  }

  /// Zeroes every cell; the enabled flag is left as-is.
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> alloc_bytes{0};
  };

  Cell& cell_for(Phase phase);

  // [phase][shard], shard assignment shared with the metrics registry.
  std::array<Cell, kPhaseCount * 8> cells_{};
  std::array<std::atomic<std::uint64_t>, kQueueIdCount> queue_high_{};
  std::atomic<bool> enabled_{false};
};

/// RAII phase timer. The clock is read only while the profiler is
/// enabled, so a disabled profiler pays two branches per scope.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase)
      : phase_(phase), active_(PhaseProfiler::global().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    PhaseProfiler::global().add(phase_,
                                ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

 private:
  Phase phase_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace paai::obs
