// Typed, virtual-clock-stamped, bounded per-node structured event log.
//
// Where the metrics registry answers "how many", the event log answers
// "which packet, at which node, in what order": every protocol decision
// that feeds a conviction (data send, sample selection, ack receipt or
// timeout, onion-layer decode, score update, the conviction itself) is
// recorded as a typed event stamped with the simulated clock. The log is
// strictly observational — a null `EventLog*` costs one branch on the hot
// path, and enabling it never changes simulation results (asserted by
// `Integration.EventsNeverAffectResults` in tests/obs_test.cc).
//
// Storage is a bounded ring per node (oldest events overwritten on
// overflow; `dropped()` counts the loss) so a runaway run cannot exhaust
// memory. The log is single-writer by design: it has no internal
// synchronization, and the Monte-Carlo driver attaches it to run 0 only
// so the recorded stream is bit-identical for any `--jobs` value.
//
// Export is deterministic JSONL (one strict-JSON object per line, merged
// across nodes and sorted by (ts_ns, node, seq)); `paai explain` replays
// an exported log into a conviction audit trail (obs/forensics.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace paai::obs {

enum class EventKind : std::uint8_t {
  // Run lifecycle (logged by the runner; node = source).
  kRunStart,      // a = total packets planned, b = path seed, v = threshold
  kRunEnd,        // a = packets sent, b = score observations
  // Protocol decisions (logged through ProtocolContext; node = source).
  kDataSend,      // a = packet id64, b = sequence number
  kSampleSelect,  // a = packet id64 (or interval for stat-FL)
  kProbeSend,     // a = packet id64
  kAckRecv,       // a = packet id64, b = 0 dest-ack / 1 report / 2 fl-report
  kAckTimeout,    // a = packet id64 (or interval for stat-FL)
  kOnionDecode,   // a = packet id64, b = valid layers (prefix length)
  kScoreClean,    // a = packet id64, b = observations after update
  kScoreBlame,    // link = blamed link (-1 = prefix evidence),
                  // a = packet id64, b = observations, v = theta after
  kConviction,    // link, a = packets sent, b = observations, v = theta
  // Node-level wire activity (logged by sim::Node; node = that node).
  kPacketSend,    // a = first wire byte (packet type), b = wire size
  kPacketRecv,    // a = first wire byte (packet type), b = wire size
  kPacketForward, // a = first wire byte (packet type), b = wire size
  kNodeCrash,
  kNodeRestart,
  // Stream self-description (logged by the runner right after kRunStart;
  // node = source). Carries everything src/stream needs to reconstruct
  // the scoring state without out-of-band configuration.
  kRunConfig,     // a = ProtocolKind, b = path length d,
                  // link = blame-mode code (BlameSpec::encode32; 0 =
                  // margin, bare K = persistent — the PR 7 wire format),
                  // v = decision threshold
  // Statistical FL: one event per node when a reporting interval folds
  // into the accumulated counts (node = source, logged before the
  // interval's kScoreClean).
  kFlCount,       // link = counted node index (0..d), a = interval,
                  // b = that node's sampled count for the interval
};

inline constexpr std::size_t kEventKindCount = 18;

/// Stable kebab-case name ("data-send", "score-blame", ...) used in the
/// JSONL export; round-trips through event_kind_from_name().
const char* event_kind_name(EventKind kind);

/// Inverse of event_kind_name(); nullopt for unknown names.
std::optional<EventKind> event_kind_from_name(std::string_view name);

struct Event {
  std::int64_t ts_ns = 0;   // simulated clock (sim::SimTime)
  std::uint64_t seq = 0;    // per-node monotonic append index
  std::uint64_t a = 0;      // kind-specific (usually packet id64)
  std::uint64_t b = 0;      // kind-specific (seq / layers / observations)
  double value = 0.0;       // kind-specific (theta / threshold)
  std::int32_t link = -1;   // link index, -1 = not link-scoped
  std::uint16_t node = 0;   // path position F_i of the logging node
  EventKind kind = EventKind::kRunStart;

  friend bool operator==(const Event& x, const Event& y) {
    return x.ts_ns == y.ts_ns && x.seq == y.seq && x.a == y.a &&
           x.b == y.b && x.value == y.value && x.link == y.link &&
           x.node == y.node && x.kind == y.kind;
  }
};

/// First 8 bytes of a 16-byte net::PacketId as a correlation handle. Two
/// ids sharing a prefix is a 2^-64 event per pair — fine for forensics.
inline std::uint64_t event_id64(const std::uint8_t* id_bytes) {
  std::uint64_t v = 0;
  std::memcpy(&v, id_bytes, sizeof v);
  return v;
}

class EventLog {
 public:
  /// `per_node_capacity` bounds each node's ring (rounded up to 1).
  explicit EventLog(std::size_t per_node_capacity = 1 << 14);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event attributed to path position `node`. Single-writer:
  /// callers must not append from two threads concurrently (the
  /// Monte-Carlo driver guarantees this by attaching the log to run 0
  /// only).
  void append(std::size_t node, EventKind kind, std::int64_t ts_ns,
              std::int32_t link = -1, std::uint64_t a = 0,
              std::uint64_t b = 0, double value = 0.0);

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t retained() const { return recorded_ - dropped_; }
  std::size_t per_node_capacity() const { return capacity_; }
  /// Highest node index appended to + 1 (0 when empty).
  std::size_t nodes() const { return rings_.size(); }

  void clear();

  /// All retained events merged across nodes, sorted by (ts_ns, node,
  /// seq) — a deterministic total order.
  std::vector<Event> merged() const;

  /// Writes merged() as JSONL: one strict-JSON object per line. `a` and
  /// `b` are emitted as decimal strings so full 64-bit ids survive
  /// double-typed JSON parsers; `link` is omitted when -1.
  void write_jsonl(std::ostream& os) const;

  /// Parses a JSONL stream produced by write_jsonl(). On failure returns
  /// an empty vector and, when `error` is non-null, a description with
  /// the offending line number. (Convenience wrapper over EventReader.)
  static std::vector<Event> read_jsonl(std::istream& is,
                                       std::string* error = nullptr);

 private:
  struct NodeRing {
    std::vector<Event> slots;  // allocated lazily on first append
    std::uint64_t next_seq = 0;
  };

  std::vector<NodeRing> rings_;
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Incremental line-oriented reader for the JSONL event stream — the
/// reusable parsing half of EventLog::read_jsonl(), shaped for consumers
/// that cannot (or must not) buffer the whole log: `paai serve` tails a
/// pipe with it, `paai replay` walks multi-hundred-MB logs in O(1)
/// memory, and tests drive it line by line.
///
/// Strictness contract: a truncated, non-JSON, or mistyped line is a hard
/// error carrying the 1-based line number — never a silent stop and never
/// a partially-parsed event. Blank lines are skipped (they separate
/// concatenated logs harmlessly). After kError the reader stays usable:
/// next() moves past the offending line, so callers choose between
/// fail-fast (serve's default) and count-and-continue.
///
/// Bounded buffering: lines are read character-by-character into a buffer
/// capped at kMaxLineBytes (a well-formed event line is < 300 bytes, so
/// 1 MiB is three orders of magnitude of headroom). An oversized line is
/// a kError ("line N: exceeds maximum line length") and the rest of the
/// line is discarded unstored — a newline-free garbage stream can no
/// longer balloon the buffer to the stream's size. A stream that ends
/// mid-line (pipe truncation, torn tail) is also a kError ("unterminated
/// line") instead of being silently parsed as if complete.
class EventReader {
 public:
  /// Hard cap on one line's length; beyond it the line is malformed.
  static constexpr std::size_t kMaxLineBytes = 1 << 20;
  enum class Status : std::uint8_t {
    kEvent,  // *out holds the next event
    kEof,    // clean end of stream
    kError,  // malformed line; *error = "line N: <what>"
  };

  explicit EventReader(std::istream& is) : is_(&is) {}

  EventReader(const EventReader&) = delete;
  EventReader& operator=(const EventReader&) = delete;

  /// Reads the next event. `out` must be non-null; `error` may be null.
  Status next(Event* out, std::string* error = nullptr);

  /// 1-based number of the last line consumed (0 before the first read).
  std::size_t line() const { return line_no_; }

  /// Events successfully parsed so far.
  std::uint64_t events() const { return events_; }

  /// Malformed lines encountered so far.
  std::uint64_t errors() const { return errors_; }

  /// Bytes consumed from the transport so far (newlines included) — the
  /// numerator of serve's ingest-rate and back-pressure gauges.
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::istream* is_;
  std::string buf_;
  std::size_t line_no_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace paai::obs
