#include "obs/forensics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace paai::obs {
namespace {

LinkForensics& link_slot(ForensicsReport& report, std::size_t link) {
  if (link >= report.links.size()) {
    const std::size_t old = report.links.size();
    report.links.resize(link + 1);
    for (std::size_t i = old; i < report.links.size(); ++i) {
      report.links[i].link = i;
    }
  }
  return report.links[link];
}

std::string format_ms(std::int64_t ts_ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.3f ms",
                static_cast<double>(ts_ns) / 1e6);
  return buf;
}

}  // namespace

ForensicsReport forensics_analyze(const std::vector<Event>& events,
                                  std::size_t max_sample_ids) {
  ForensicsReport report;
  report.total_events = events.size();

  for (const Event& e : events) {
    report.node_count =
        std::max<std::size_t>(report.node_count, std::size_t{e.node} + 1);
    ++report.kind_counts[static_cast<std::size_t>(e.kind)];

    switch (e.kind) {
      case EventKind::kRunStart:
        report.threshold = e.value;
        report.planned_packets = e.a;
        report.seed = e.b;
        break;
      case EventKind::kRunEnd:
        report.packets_sent = e.a;
        report.observations = e.b;
        break;
      case EventKind::kScoreBlame: {
        if (e.link < 0) {
          ++report.prefix_blames;
          break;
        }
        LinkForensics& lf = link_slot(report, static_cast<std::size_t>(e.link));
        ++lf.blames;
        ++lf.sample_ids_total;
        if (lf.sample_ids.size() < max_sample_ids) lf.sample_ids.push_back(e.a);
        if (lf.first_blame_ts_ns < 0) lf.first_blame_ts_ns = e.ts_ns;
        lf.trajectory.push_back(ScorePoint{e.ts_ns, e.b, e.value});
        if (lf.crossing_ts_ns < 0 && report.threshold >= 0.0 &&
            e.value > report.threshold) {
          lf.crossing_ts_ns = e.ts_ns;
        }
        break;
      }
      case EventKind::kConviction: {
        if (e.link < 0) break;
        link_slot(report, static_cast<std::size_t>(e.link));
        ConvictionRecord rec;
        rec.link = static_cast<std::size_t>(e.link);
        rec.ts_ns = e.ts_ns;
        rec.packets_sent = e.a;
        rec.observations = e.b;
        rec.theta = e.value;
        report.convictions.push_back(rec);
        break;
      }
      default:
        break;
    }
  }

  // The last conviction of each link is the run's verdict for it.
  for (auto it = report.convictions.rbegin(); it != report.convictions.rend();
       ++it) {
    bool later = false;
    for (auto jt = report.convictions.rbegin(); jt != it; ++jt) {
      if (jt->link == it->link) later = true;
    }
    it->final_verdict = !later;
  }
  return report;
}

void write_audit_trail(std::ostream& os, const ForensicsReport& report) {
  char buf[256];

  os << "forensics: " << report.total_events << " events across "
     << report.node_count << " nodes\n";
  if (report.threshold >= 0.0) {
    std::snprintf(buf, sizeof buf,
                  "run: %" PRIu64 " packets planned, seed %" PRIu64
                  ", decision threshold %.6g\n",
                  report.planned_packets, report.seed, report.threshold);
    os << buf;
  } else {
    os << "run: run-start event not retained (ring overflow?) — "
          "threshold unknown\n";
  }
  if (report.count(EventKind::kRunEnd) > 0) {
    std::snprintf(buf, sizeof buf,
                  "end: %" PRIu64 " packets sent, %" PRIu64
                  " score observations\n",
                  report.packets_sent, report.observations);
    os << buf;
  }

  std::snprintf(
      buf, sizeof buf,
      "evidence: %" PRIu64 " data sends, %" PRIu64 " samples, %" PRIu64
      " probes, %" PRIu64 " acks, %" PRIu64 " ack timeouts, %" PRIu64
      " onion decodes, %" PRIu64 " clean / %" PRIu64 " blame score updates\n",
      report.count(EventKind::kDataSend), report.count(EventKind::kSampleSelect),
      report.count(EventKind::kProbeSend), report.count(EventKind::kAckRecv),
      report.count(EventKind::kAckTimeout),
      report.count(EventKind::kOnionDecode),
      report.count(EventKind::kScoreClean),
      report.count(EventKind::kScoreBlame));
  os << buf;
  if (report.prefix_blames > 0) {
    os << "  (" << report.prefix_blames
       << " blames are prefix evidence without a single named link)\n";
  }

  // Which links the run ultimately convicted.
  std::vector<const ConvictionRecord*> verdicts;
  for (const ConvictionRecord& rec : report.convictions) {
    if (rec.final_verdict) verdicts.push_back(&rec);
  }
  std::sort(verdicts.begin(), verdicts.end(),
            [](const ConvictionRecord* x, const ConvictionRecord* y) {
              return x->link < y->link;
            });

  if (verdicts.empty()) {
    os << "verdict: no link convicted\n";
  }
  for (const ConvictionRecord* rec : verdicts) {
    std::snprintf(buf, sizeof buf,
                  "\nCONVICTED l_%zu  theta %.6g  (%s, after %" PRIu64
                  " packets, %" PRIu64 " observations)\n",
                  rec->link, rec->theta, format_ms(rec->ts_ns).c_str(),
                  rec->packets_sent, rec->observations);
    os << buf;

    if (rec->link < report.links.size()) {
      const LinkForensics& lf = report.links[rec->link];
      std::snprintf(buf, sizeof buf, "  blames: %" PRIu64, lf.blames);
      os << buf;
      if (lf.first_blame_ts_ns >= 0) {
        os << "  first at " << format_ms(lf.first_blame_ts_ns);
      }
      if (lf.crossing_ts_ns >= 0) {
        os << "  threshold crossed at " << format_ms(lf.crossing_ts_ns);
      }
      os << '\n';
      if (!lf.sample_ids.empty()) {
        os << "  blamed packet ids:";
        for (const std::uint64_t id : lf.sample_ids) {
          std::snprintf(buf, sizeof buf, " %016" PRIx64, id);
          os << buf;
        }
        if (lf.sample_ids_total > lf.sample_ids.size()) {
          os << " (+" << (lf.sample_ids_total - lf.sample_ids.size())
             << " more)";
        }
        os << '\n';
      }
      if (!lf.trajectory.empty()) {
        // A compressed score trajectory: first, a few middles, last.
        os << "  score trajectory (theta):";
        const std::size_t n = lf.trajectory.size();
        const std::size_t step = n <= 6 ? 1 : (n - 1) / 5;
        for (std::size_t i = 0; i < n; i += step) {
          std::snprintf(buf, sizeof buf, " %.4g", lf.trajectory[i].theta);
          os << buf;
        }
        if (step > 1) {
          std::snprintf(buf, sizeof buf, " ... %.4g",
                        lf.trajectory[n - 1].theta);
          os << buf;
        }
        os << '\n';
      }
    }
  }

  // Exonerated links that nonetheless accumulated evidence.
  for (const LinkForensics& lf : report.links) {
    const bool convicted =
        std::any_of(verdicts.begin(), verdicts.end(),
                    [&](const ConvictionRecord* r) { return r->link == lf.link; });
    if (convicted || lf.blames == 0) continue;
    double last_theta = lf.trajectory.empty() ? 0.0 : lf.trajectory.back().theta;
    std::snprintf(buf, sizeof buf,
                  "l_%zu: %" PRIu64 " blames, final theta %.6g — not convicted\n",
                  lf.link, lf.blames, last_theta);
    os << buf;
  }
}

}  // namespace paai::obs
