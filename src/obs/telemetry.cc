#include "obs/telemetry.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "obs/json.h"

namespace paai::obs {

namespace {

constexpr const char* kSchema = "paai.telemetry.v1";

/// Largest integer a double round-trips exactly (2^53); gauge values and
/// the sample index stay JSON numbers, so the parser fail-closes beyond
/// it to keep write -> parse -> rewrite byte-identical.
constexpr double kMaxExactInt = 9007199254740992.0;

bool parse_u64_string(const JsonValue& v, std::uint64_t* out) {
  if (!v.is_string() || v.string.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.string.c_str(), &end, 10);
  if (errno != 0 || end != v.string.c_str() + v.string.size()) return false;
  // strtoull accepts "-1" by wrapping; a telemetry payload never does.
  if (v.string.front() == '-' || v.string.front() == '+') return false;
  *out = parsed;
  return true;
}

bool parse_exact_i64(const JsonValue& v, std::int64_t* out) {
  if (!v.is_number()) return false;
  const double d = v.number;
  // >= because at exactly 2^53 the double is already ambiguous: an input
  // of 2^53 + 1 parses to the same bit pattern, so accepting it would
  // break the byte-identical rewrite guarantee.
  if (d != std::floor(d) || std::fabs(d) >= kMaxExactInt) return false;
  *out = static_cast<std::int64_t>(d);
  return true;
}

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

void write_telemetry_line(std::ostream& os, const TelemetrySample& sample) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("sample").value(static_cast<std::int64_t>(sample.sample));
  w.key("wall_ns").value(std::to_string(sample.wall_ns));
  w.key("virt_ns").value(std::to_string(sample.virt_ns));
  w.key("units").value(std::to_string(sample.units));
  w.key("counters");
  w.begin_object();
  for (const auto& [name, delta] : sample.counters) {
    w.key(name).value(std::to_string(delta));
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const GaugeSnapshot& g : sample.gauges) {
    w.key(g.name);
    w.begin_array();
    w.value(g.value);
    w.value(g.high);
    w.end_array();
  }
  w.end_object();
  w.key("phases");
  w.begin_object();
  for (const auto& [name, d] : sample.phases) {
    w.key(name);
    w.begin_array();
    w.value(std::to_string(d.ns));
    w.value(std::to_string(d.calls));
    w.value(std::to_string(d.alloc_bytes));
    w.end_array();
  }
  w.end_object();
  w.key("queues");
  w.begin_object();
  for (const auto& [name, high] : sample.queues) {
    w.key(name).value(std::to_string(high));
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

bool parse_telemetry_line(std::string_view line, TelemetrySample* out,
                          std::string* error) {
  *out = TelemetrySample{};
  std::string parse_error;
  const auto doc = json_parse(line, &parse_error);
  if (!doc) return fail(error, "not valid JSON: " + parse_error);
  if (!doc->is_object()) return fail(error, "line is not a JSON object");

  bool have_schema = false, have_sample = false, have_wall = false,
       have_virt = false, have_units = false;
  for (const auto& [key, value] : doc->object) {
    if (key == "schema") {
      if (!value.is_string() || value.string != kSchema) {
        return fail(error, "schema is not \"" + std::string(kSchema) + "\"");
      }
      have_schema = true;
    } else if (key == "sample") {
      std::int64_t idx = 0;
      if (!parse_exact_i64(value, &idx) || idx < 0) {
        return fail(error, "\"sample\" is not a non-negative exact integer");
      }
      out->sample = static_cast<std::uint64_t>(idx);
      have_sample = true;
    } else if (key == "wall_ns" || key == "virt_ns" || key == "units") {
      std::uint64_t v = 0;
      if (!parse_u64_string(value, &v)) {
        return fail(error, "\"" + key + "\" is not a u64 decimal string");
      }
      if (key == "wall_ns") {
        out->wall_ns = v;
        have_wall = true;
      } else if (key == "virt_ns") {
        out->virt_ns = v;
        have_virt = true;
      } else {
        out->units = v;
        have_units = true;
      }
    } else if (key == "counters" || key == "queues") {
      if (!value.is_object()) {
        return fail(error, "\"" + key + "\" is not an object");
      }
      auto& dst = key == "counters" ? out->counters : out->queues;
      for (const auto& [name, v] : value.object) {
        std::uint64_t u = 0;
        if (!parse_u64_string(v, &u)) {
          return fail(error, "\"" + key + "\" member \"" + name +
                                 "\" is not a u64 decimal string");
        }
        dst.emplace_back(name, u);
      }
    } else if (key == "gauges") {
      if (!value.is_object()) return fail(error, "\"gauges\" is not an object");
      for (const auto& [name, v] : value.object) {
        GaugeSnapshot g;
        g.name = name;
        if (!v.is_array() || v.array.size() != 2 ||
            !parse_exact_i64(v.array[0], &g.value) ||
            !parse_exact_i64(v.array[1], &g.high)) {
          return fail(error, "gauge \"" + name +
                                 "\" is not a [value, high] exact-int pair");
        }
        out->gauges.push_back(std::move(g));
      }
    } else if (key == "phases") {
      if (!value.is_object()) return fail(error, "\"phases\" is not an object");
      for (const auto& [name, v] : value.object) {
        PhaseDelta d;
        if (!v.is_array() || v.array.size() != 3 ||
            !parse_u64_string(v.array[0], &d.ns) ||
            !parse_u64_string(v.array[1], &d.calls) ||
            !parse_u64_string(v.array[2], &d.alloc_bytes)) {
          return fail(error, "phase \"" + name +
                                 "\" is not a [ns, calls, alloc] string "
                                 "triple");
        }
        out->phases.emplace_back(name, d);
      }
    } else {
      // Fail-closed: an unknown member means a newer (or corrupt) writer;
      // silently dropping it would defeat the versioned schema.
      return fail(error, "unknown member \"" + key + "\"");
    }
  }
  if (!have_schema) return fail(error, "missing \"schema\"");
  if (!have_sample) return fail(error, "missing \"sample\"");
  if (!have_wall) return fail(error, "missing \"wall_ns\"");
  if (!have_virt) return fail(error, "missing \"virt_ns\"");
  if (!have_units) return fail(error, "missing \"units\"");
  return true;
}

TelemetrySink::TelemetrySink(const std::string& path,
                             std::uint64_t every_units)
    : file_(path, std::ios::trunc),
      every_(every_units == 0 ? 1 : every_units),
      next_(every_),
      start_(std::chrono::steady_clock::now()) {
  if (file_) out_ = &file_;
}

TelemetrySink::TelemetrySink(std::ostream& os, std::uint64_t every_units)
    : out_(&os),
      every_(every_units == 0 ? 1 : every_units),
      next_(every_),
      start_(std::chrono::steady_clock::now()) {}

void TelemetrySink::tick(std::uint64_t units, std::uint64_t virt_ns) {
  if (units < next_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t next = next_.load(std::memory_order_relaxed);
  if (units < next) return;  // another ticker sampled this threshold
  while (next <= units) next += every_;
  next_.store(next, std::memory_order_relaxed);
  do_sample(units, virt_ns);
}

void TelemetrySink::sample_now(std::uint64_t units, std::uint64_t virt_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  do_sample(units, virt_ns);
}

void TelemetrySink::final_sample() {
  std::lock_guard<std::mutex> lock(mutex_);
  do_sample(last_units_, last_virt_ns_);
}

void TelemetrySink::do_sample(std::uint64_t units, std::uint64_t virt_ns) {
  if (out_ == nullptr) return;
  const ScopedPhase scope(Phase::kSnapshot);
  last_units_ = units;
  last_virt_ns_ = virt_ns;

  TelemetrySample s;
  s.sample = samples_.load(std::memory_order_relaxed);
  s.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  s.virt_ns = virt_ns;
  s.units = units;

  // Counter deltas. A counter whose total shrank was reset since the
  // previous sample; its delta restarts from the current value.
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  for (const CounterSnapshot& c : snap.counters) {
    const auto it = prev_counters_.find(c.name);
    const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
    const std::uint64_t delta = c.value >= prev ? c.value - prev : c.value;
    prev_counters_[c.name] = c.value;
    if (delta != 0) s.counters.emplace_back(c.name, delta);
  }
  s.gauges = snap.gauges;

  PhaseProfiler& prof = PhaseProfiler::global();
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    const PhaseTotals cur = prof.totals(phase);
    PhaseTotals& prev = prev_phases_[p];
    PhaseDelta d;
    d.ns = cur.ns >= prev.ns ? cur.ns - prev.ns : cur.ns;
    d.calls = cur.calls >= prev.calls ? cur.calls - prev.calls : cur.calls;
    d.alloc_bytes = cur.alloc_bytes >= prev.alloc_bytes
                        ? cur.alloc_bytes - prev.alloc_bytes
                        : cur.alloc_bytes;
    prev = cur;
    if (d.ns != 0 || d.calls != 0 || d.alloc_bytes != 0) {
      s.phases.emplace_back(phase_name(phase), d);
    }
  }
  for (std::size_t q = 0; q < kQueueIdCount; ++q) {
    const std::uint64_t high = prof.queue_high(static_cast<QueueId>(q));
    if (high != 0) {
      s.queues.emplace_back(queue_name(static_cast<QueueId>(q)), high);
    }
  }

  write_telemetry_line(*out_, s);
  out_->flush();  // consumers tail the file while we run
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace paai::obs
