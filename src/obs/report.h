// Machine-readable bench result documents (the BENCH_*.json trajectory).
//
// Every bench binary assembles one BenchReport and writes it via
// --metrics-out FILE. The document layout ("paai.bench.v1") is stable so
// PRs can diff metric values across commits:
//
//   {
//     "schema": "paai.bench.v1",
//     "bench": "<binary name>",
//     "created_unix": <seconds>,
//     "provenance": { "git_commit", "build_type", "compiler",
//                     "sanitizer" },
//     "args":    { "<flag>": <number|string>, ... },   // resolved knobs
//     "info":    { "<key>": "<string>", ... },         // free-form labels
//     "results": { "<metric>": <number>, ... },        // paper metrics
//     "wall_seconds": <number>,
//     "exec": { "jobs", "wall_seconds", "tasks", "task_mean_seconds",
//               "queue_wait_mean_seconds", "utilization" } | null,
//     "observability": {
//       "counters":   { "<name>": <uint>, ... },
//       "gauges":     { "<name>": {"value": <int>, "high": <int>}, ... },
//       "histograms": { "<name>": {"count","sum","min","max","mean",
//                                  "p50","p99",
//                                  "buckets": [[<lower_bound>,<count>]...]},
//                       ... }
//     }
//   }
//
// Non-finite result values are emitted as null (never NaN / Inf), and all
// strings pass through the strict escaper in obs/json.h, so the document
// always survives a strict parser — tests/obs_test.cc enforces the
// round-trip. See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace paai::obs {

inline constexpr const char* kBenchSchema = "paai.bench.v1";

/// Configure-time build provenance (git commit, build type, compiler,
/// sanitizer), baked in by src/obs/CMakeLists.txt.
struct BuildInfo {
  std::string git_commit;
  std::string build_type;
  std::string compiler;
  std::string sanitizer;
};

BuildInfo build_info();

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Resolved run knobs ("runs", "jobs", ...), echoed under "args".
  void set_arg(std::string name, long long value);
  void set_arg(std::string name, std::string value);

  /// A paper metric value, emitted under "results".
  void set_metric(std::string name, double value);

  /// A free-form label ("protocol": "PAAI-1"), emitted under "info".
  void set_info(std::string name, std::string value);

  /// Execution-engine telemetry of the dominant parallel section.
  void set_exec(std::size_t jobs, double wall_seconds, std::size_t tasks,
                double task_mean_seconds, double queue_wait_mean_seconds,
                double utilization);

  void set_wall_seconds(double s) { wall_seconds_ = s; }

  /// Writes the complete document. `metrics` is typically
  /// MetricsRegistry::global().snapshot().
  void write(std::ostream& os, const MetricsSnapshot& metrics) const;

 private:
  struct Scalar {
    bool is_number = false;
    double number = 0.0;
    std::string text;
  };

  std::string bench_name_;
  std::vector<std::pair<std::string, Scalar>> args_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<std::pair<std::string, std::string>> info_;
  double wall_seconds_ = 0.0;

  struct ExecInfo {
    std::size_t jobs = 0;
    double wall_seconds = 0.0;
    std::size_t tasks = 0;
    double task_mean_seconds = 0.0;
    double queue_wait_mean_seconds = 0.0;
    double utilization = 0.0;
  };
  std::optional<ExecInfo> exec_;
};

}  // namespace paai::obs
