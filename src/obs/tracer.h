// Bounded ring-buffer event tracer with Chrome trace_event export.
//
// A TraceRing records fixed-size events into a preallocated ring: writers
// claim a slot with one relaxed fetch_add and store the fields with
// relaxed atomic stores, so tracing is lock-free, TSan-clean under the
// src/exec pool, and safe to leave compiled into hot paths (a null
// TraceRing* check is the only disabled cost). When the ring wraps, the
// oldest events are overwritten — `dropped()` says how many.
//
// Timestamps are caller-provided microseconds. The simulator
// instrumentation records *simulated* time, so a run's probe/ack/drop
// timeline lays out on the sim clock; each Monte-Carlo run writes to its
// own track (tid), one swimlane per run in the viewer. Load the exported
// file in chrome://tracing or https://ui.perfetto.dev.
//
// Event names and categories must be string literals (or otherwise
// outlive the ring): slots store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <ostream>
#include <vector>

namespace paai::obs {

inline constexpr std::int64_t kTraceNoArg =
    std::numeric_limits<std::int64_t>::min();

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1 << 15);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records an instant event (Chrome ph "i"). `arg`, when not kTraceNoArg,
  /// is exported as args.v. `pid` is the Chrome process id — the sim uses
  /// it for per-node attribution (pid = path position F_i).
  void instant(const char* name, const char* cat, std::int64_t ts_us,
               std::uint32_t track, std::int64_t arg = kTraceNoArg,
               std::uint32_t pid = 1) {
    record(name, cat, ts_us, /*dur_us=*/-1, track, arg, pid);
  }

  /// Records a complete event (Chrome ph "X") spanning [ts, ts + dur].
  void complete(const char* name, const char* cat, std::int64_t ts_us,
                std::int64_t dur_us, std::uint32_t track,
                std::int64_t arg = kTraceNoArg, std::uint32_t pid = 1) {
    record(name, cat, ts_us, dur_us >= 0 ? dur_us : 0, track, arg, pid);
  }

  /// Events ever recorded (monotonic; may exceed capacity).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events still in the ring.
  std::uint64_t retained() const;
  /// Events lost to wraparound.
  std::uint64_t dropped() const { return recorded() - retained(); }
  std::size_t capacity() const { return slots_.size(); }

  void clear() { head_.store(0, std::memory_order_relaxed); }

  /// Writes the Chrome trace_event JSON document (oldest event first).
  /// Call only when writers have quiesced; a slot being overwritten
  /// concurrently with export can surface as a mixed event, never as a
  /// data race.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> cat{nullptr};
    std::atomic<std::int64_t> ts_us{0};
    std::atomic<std::int64_t> dur_us{-1};
    std::atomic<std::int64_t> arg{kTraceNoArg};
    std::atomic<std::uint32_t> track{0};
    std::atomic<std::uint32_t> pid{1};
  };

  void record(const char* name, const char* cat, std::int64_t ts_us,
              std::int64_t dur_us, std::uint32_t track, std::int64_t arg,
              std::uint32_t pid);

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// A tracing destination handed down into instrumented components: the
/// ring (nullptr = tracing off) plus the track (Chrome tid) the component
/// should write under — the Monte-Carlo driver assigns one track per run.
/// `pid` groups events by process row in the viewer; the sim sets it to
/// the owning node's path position so each node gets its own row.
struct TraceCtx {
  TraceRing* ring = nullptr;
  std::uint32_t track = 0;
  std::uint32_t pid = 1;

  explicit operator bool() const { return ring != nullptr; }
};

}  // namespace paai::obs
