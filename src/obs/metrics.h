// Low-overhead process-wide metrics.
//
// A MetricsRegistry names three metric kinds:
//   * Counter    — monotonically increasing uint64 (packets, probes, ...);
//   * Gauge      — last-written int64 plus its high-water mark (storage
//                  entries held, queue depth, ...);
//   * Histogram  — log2-bucketed uint64 distribution with count / sum /
//                  min / max (latencies in ns, sizes in bytes, ...).
//
// Design constraints, in order:
//   1. Near-zero cost when disabled. Handles are 16-byte value types; a
//      disabled registry turns every write into one relaxed atomic load
//      and a predicted-not-taken branch, so instrumentation can live on
//      the simulator's per-packet hot path.
//   2. TSan-clean under the src/exec pool. Every cell is a relaxed
//      std::atomic; counters and histograms are sharded per thread
//      (each thread is assigned one of kShards cache-line-padded shards
//      on first use), so concurrent Monte-Carlo runs aggregate lock-free
//      with no shared-line ping-pong on the common path.
//   3. Deterministic totals. Aggregated counter totals and histogram
//      multisets depend only on the set of operations performed, never on
//      thread interleaving — run_experiment()'s results never read the
//      registry, so the bit-identity contract of runner/experiment.h is
//      preserved (see the carve-out documented there).
//
// Registration (name -> cells) takes a mutex and is expected once per
// constructed object (per simulation run at most), never per event.
// Snapshots are relaxed reads and may be taken while writers are live;
// they are exact once the writers have quiesced.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace paai::obs {

/// Number of per-thread shards per counter/histogram (power of two).
inline constexpr std::size_t kShards = 8;

/// Histogram bucket b holds values whose bit_width() == b, i.e. bucket 0
/// is exactly {0} and bucket b >= 1 covers [2^(b-1), 2^b - 1].
inline constexpr std::size_t kHistogramBuckets = 65;

namespace detail {

/// Stable shard index for the calling thread, in [0, kShards).
std::size_t this_thread_shard();

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

struct CounterCells {
  std::array<CounterShard, kShards> shards{};
  std::uint64_t total() const;
  void reset();
};

struct GaugeCell {
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> high{std::numeric_limits<std::int64_t>::min()};
  void reset();
};

struct alignas(64) HistogramShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
};

struct HistogramCells {
  std::array<HistogramShard, kShards> shards{};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};
  void reset();
};

}  // namespace detail

/// Handle to a registered counter. Default-constructed handles are inert
/// (every operation is a no-op), so instrumentation points may be wired
/// unconditionally.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) const {
    if (cells_ == nullptr || !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    cells_->shards[detail::this_thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() const { add(1); }

  /// True when writes will actually be recorded right now.
  bool live() const {
    return cells_ != nullptr && enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter(detail::CounterCells* cells, const std::atomic<bool>* enabled)
      : cells_(cells), enabled_(enabled) {}

  detail::CounterCells* cells_ = nullptr;
  const std::atomic<bool>* enabled_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;

  /// Stores `v` and folds it into the high-water mark.
  void set(std::int64_t v) const {
    if (cell_ == nullptr || !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    cell_->value.store(v, std::memory_order_relaxed);
    record_high(v);
  }

  /// Folds `v` into the high-water mark without touching the value.
  void record_high(std::int64_t v) const {
    if (cell_ == nullptr || !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    std::int64_t cur = cell_->high.load(std::memory_order_relaxed);
    while (v > cur && !cell_->high.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  bool live() const {
    return cell_ != nullptr && enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge(detail::GaugeCell* cell, const std::atomic<bool>* enabled)
      : cell_(cell), enabled_(enabled) {}

  detail::GaugeCell* cell_ = nullptr;
  const std::atomic<bool>* enabled_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;

  void observe(std::uint64_t v) const {
    if (cells_ == nullptr || !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    auto& shard = cells_->shards[detail::this_thread_shard()];
    shard.buckets[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = cells_->min.load(std::memory_order_relaxed);
    while (v < cur && !cells_->min.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
    cur = cells_->max.load(std::memory_order_relaxed);
    while (v > cur && !cells_->max.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  bool live() const {
    return cells_ != nullptr && enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Histogram(detail::HistogramCells* cells, const std::atomic<bool>* enabled)
      : cells_(cells), enabled_(enabled) {}

  detail::HistogramCells* cells_ = nullptr;
  const std::atomic<bool>* enabled_ = nullptr;
};

/// Records the scope's wall time into a histogram, in nanoseconds. The
/// clock is only read when the histogram is live, so a disabled registry
/// pays two branches and no clock syscalls.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram& hist)
      : hist_(hist), active_(hist.live()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_.observe(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

 private:
  Histogram hist_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
  std::int64_t high = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket containing quantile q (q in [0, 1]).
  std::uint64_t quantile_bound(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the built-in sim / protocols /
  /// runner instrumentation. Disabled until someone (a BenchSession, a
  /// test) turns it on.
  static MetricsRegistry& global();

  /// Returns a handle, registering the metric on first use. Names are
  /// dot-separated lowercase with a unit suffix (see
  /// docs/OBSERVABILITY.md); one name must keep one kind.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Relaxed-read snapshot of every registered metric, sorted by name.
  MetricsSnapshot snapshot() const;

  /// Zeroes all values; registrations and outstanding handles stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<detail::CounterCells>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>, std::less<>>
      gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCells>, std::less<>>
      histograms_;
};

}  // namespace paai::obs
