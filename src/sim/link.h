// A bidirectional point-to-point link with independent natural loss.
//
// §3.2: "links in the network independently exhibit some natural packet
// loss due to congestion and/or channel errors" and §8.1: "each packet
// traversing a link has an independent probability of being dropped
// bi-directionally", "per-link bi-directional latency distributed within 0
// to 5 ms uniformly at random" — the latency is drawn once per link; the
// loss coin is tossed per traversal.
//
// The i.i.d. Bernoulli coin is only the *default* loss model. A link can
// carry a pluggable LossProcess (src/faults ships Gilbert–Elliott bursty
// loss) plus scripted reordering/duplication knobs, so the robustness
// suite can subject the protocols to realistic benign faults. Every fault
// decision draws exclusively from this link's own RNG stream — runs stay
// bit-identical across --jobs values.
#pragma once

#include <cstddef>

#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace paai::sim {

/// Pluggable per-traversal loss decision. Stateful processes (bursty
/// models) advance on every traversal; they must draw randomness only
/// from the link's RNG handed in, never from shared state. When a link
/// has a process attached it fully replaces the Bernoulli coin (and thus
/// any rate set via set_loss_rate) on that link.
class LossProcess {
 public:
  virtual ~LossProcess() = default;

  /// Returns true iff this traversal is dropped.
  virtual bool drop(SimTime now, Rng& rng) = 0;
};

/// Per-link observability handles (sim.link.<i>.* in the registry). All
/// handles are inert until the registry is enabled, so a default
/// LinkObs costs one predicted branch per operation.
struct LinkObs {
  obs::Counter tx_packets;
  obs::Counter tx_bytes;
  obs::Counter drops;
  obs::Counter dup_copies;  // extra deliveries minted by the dup knob
  obs::Histogram latency_ns;
};

class Link {
 public:
  /// Throws std::invalid_argument for a loss rate outside [0, 1] or a
  /// negative latency/jitter (NaN rejected everywhere) — a misconfigured
  /// schedule must fail loudly, never silently produce nonsense.
  Link(Simulator& sim, std::size_t index, double loss_rate,
       SimDuration latency, SimDuration jitter, Rng rng,
       TrafficCounters* counters);

  Link(Simulator& sim, std::size_t index, double loss_rate,
       SimDuration latency, Rng rng, TrafficCounters* counters)
      : Link(sim, index, loss_rate, latency, 0, rng, counters) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void connect(Node* upstream, Node* downstream) {
    upstream_ = upstream;
    downstream_ = downstream;
  }

  /// Wires the metrics handles and the (optional) trace destination;
  /// PathNetwork calls this once at construction.
  void set_obs(LinkObs obs, obs::TraceCtx trace) {
    obs_ = obs;
    trace_ = trace;
  }

  /// Sends the packet across the link: counts it, tosses the natural-loss
  /// coin (or consults the attached LossProcess), and on survival
  /// schedules delivery at the peer after `latency` (+ jitter, + the
  /// reordering delay when that knob fires).
  void transmit(const PacketEnv& env);

  std::size_t index() const { return index_; }
  double loss_rate() const { return loss_rate_; }
  /// Validates like the constructor (throws std::invalid_argument).
  void set_loss_rate(double rate);
  SimDuration latency() const { return latency_; }
  void set_latency(SimDuration latency);
  void set_jitter(SimDuration jitter);

  /// Attaches (or detaches, with nullptr) a per-traversal loss process.
  /// Non-owning: the caller (faults::FaultInjector) keeps it alive for
  /// the simulation's lifetime.
  void set_loss_process(LossProcess* process) { loss_process_ = process; }
  LossProcess* loss_process() const { return loss_process_; }

  /// Reordering knob: with probability `prob`, a surviving traversal is
  /// delayed by an extra U(0, extra_delay) on top of latency + jitter, so
  /// it can overtake or be overtaken by neighbouring packets.
  void set_reordering(double prob, SimDuration extra_delay);

  /// Duplication knob: with probability `prob`, a surviving traversal is
  /// delivered twice (the copy drawn with its own delay). Duplicates show
  /// up in sim.link.<i>.dup_copies but not in the ground-truth traffic
  /// counters — they are echoes of one traversal, not fresh crossings.
  void set_duplication(double prob);

 private:
  SimDuration draw_delay();

  Simulator& sim_;
  std::size_t index_;
  double loss_rate_;
  SimDuration latency_;
  SimDuration jitter_ = 0;
  Rng rng_;
  TrafficCounters* counters_;
  LossProcess* loss_process_ = nullptr;
  double reorder_prob_ = 0.0;
  SimDuration reorder_delay_ = 0;
  double dup_prob_ = 0.0;
  LinkObs obs_{};
  obs::TraceCtx trace_{};
  Node* upstream_ = nullptr;    // the l_i endpoint closer to S (F_i)
  Node* downstream_ = nullptr;  // the endpoint closer to D (F_{i+1})
};

}  // namespace paai::sim
