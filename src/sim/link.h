// A bidirectional point-to-point link with independent natural loss.
//
// §3.2: "links in the network independently exhibit some natural packet
// loss due to congestion and/or channel errors" and §8.1: "each packet
// traversing a link has an independent probability of being dropped
// bi-directionally", "per-link bi-directional latency distributed within 0
// to 5 ms uniformly at random" — the latency is drawn once per link; the
// loss coin is tossed per traversal.
#pragma once

#include <cstddef>

#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace paai::sim {

/// Per-link observability handles (sim.link.<i>.* in the registry). All
/// handles are inert until the registry is enabled, so a default
/// LinkObs costs one predicted branch per operation.
struct LinkObs {
  obs::Counter tx_packets;
  obs::Counter tx_bytes;
  obs::Counter drops;
  obs::Histogram latency_ns;
};

class Link {
 public:
  Link(Simulator& sim, std::size_t index, double loss_rate,
       SimDuration latency, SimDuration jitter, Rng rng,
       TrafficCounters* counters)
      : sim_(sim),
        index_(index),
        loss_rate_(loss_rate),
        latency_(latency),
        jitter_(jitter),
        rng_(rng),
        counters_(counters) {}

  Link(Simulator& sim, std::size_t index, double loss_rate,
       SimDuration latency, Rng rng, TrafficCounters* counters)
      : Link(sim, index, loss_rate, latency, 0, rng, counters) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void connect(Node* upstream, Node* downstream) {
    upstream_ = upstream;
    downstream_ = downstream;
  }

  /// Wires the metrics handles and the (optional) trace destination;
  /// PathNetwork calls this once at construction.
  void set_obs(LinkObs obs, obs::TraceCtx trace) {
    obs_ = obs;
    trace_ = trace;
  }

  /// Sends the packet across the link: counts it, tosses the natural-loss
  /// coin, and on survival schedules delivery at the peer after `latency`.
  void transmit(const PacketEnv& env);

  std::size_t index() const { return index_; }
  double loss_rate() const { return loss_rate_; }
  void set_loss_rate(double rate) { loss_rate_ = rate; }
  SimDuration latency() const { return latency_; }

 private:
  Simulator& sim_;
  std::size_t index_;
  double loss_rate_;
  SimDuration latency_;
  SimDuration jitter_ = 0;
  Rng rng_;
  TrafficCounters* counters_;
  LinkObs obs_{};
  obs::TraceCtx trace_{};
  Node* upstream_ = nullptr;    // the l_i endpoint closer to S (F_i)
  Node* downstream_ = nullptr;  // the endpoint closer to D (F_{i+1})
};

}  // namespace paai::sim
