// Traffic and loss accounting.
//
// TrafficCounters aggregates what crossed the links: packets and bytes per
// packet type (for the communication-overhead results, §7.3) and natural /
// malicious drop counts per link (ground truth for tests and debugging —
// never visible to the protocols).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace paai::sim {

struct TypeCounter {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

class TrafficCounters {
 public:
  explicit TrafficCounters(std::size_t num_links = 0)
      : link_drops_(num_links),
        data_tx_(num_links),
        data_drops_(num_links) {}

  void on_transmit(net::PacketType type, std::size_t bytes,
                   std::size_t link_index);
  void on_link_drop(std::size_t link_index, net::PacketType type);

  const TypeCounter& by_type(net::PacketType type) const;

  /// Bytes of everything that is not application data, divided by data
  /// bytes — the paper's "communication overhead per data packet".
  double overhead_ratio() const;

  /// Control packets (everything except data) per data packet.
  double control_packets_per_data() const;

  std::uint64_t total_packets() const;
  std::uint64_t total_bytes() const;
  std::uint64_t drops_on_link(std::size_t link_index) const;

  /// Ground truth (invisible to the protocols): data packets that entered
  /// / were dropped on a given link. data_tx(d-1) - data_drops(d-1) is the
  /// exact number of data packets delivered to the destination.
  std::uint64_t data_tx(std::size_t link_index) const;
  std::uint64_t data_drops(std::size_t link_index) const;

  /// True per-traversal data loss rate of a link.
  double true_link_loss(std::size_t link_index) const;

  void reset();

 private:
  static constexpr std::size_t kNumTypes = 6;
  static std::size_t slot(net::PacketType type) {
    return static_cast<std::size_t>(type) - 1;
  }

  std::array<TypeCounter, kNumTypes> counters_{};
  std::vector<std::uint64_t> link_drops_;
  std::vector<std::uint64_t> data_tx_;
  std::vector<std::uint64_t> data_drops_;
};

}  // namespace paai::sim
