// Discrete-event simulation core.
//
// A binary-heap event queue with a strict total order: (time, insertion
// sequence). The tie-break makes runs bit-for-bit reproducible for a given
// seed — two events scheduled for the same instant always fire in
// scheduling order, independent of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace paai::sim {

class Simulator {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time t (>= now, else clamped to now).
  void at(SimTime t, Handler fn);

  /// Schedules `fn` after a relative delay (>= 0, else clamped).
  void after(SimDuration delay, Handler fn);

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue empties.
  void run();

  /// Runs every event scheduled strictly before `t`, then sets now() = t.
  void run_until(SimTime t);

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace paai::sim
