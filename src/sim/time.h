// Simulated time: signed 64-bit nanoseconds since simulation start.
//
// A plain integer (not std::chrono) keeps the event queue hot path free of
// template noise, but the helpers below keep call sites unit-explicit.
#pragma once

#include <cstdint>

namespace paai::sim {

using SimTime = std::int64_t;      // absolute, ns
using SimDuration = std::int64_t;  // relative, ns

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration milliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace paai::sim
