// PathNetwork: the monitored forwarding path of Figure 1.
//
// Builds nodes F_0 = S, F_1..F_{d-1}, F_d = D and links l_0..l_{d-1}
// (l_i connects F_i and F_{i+1}), draws each link's latency uniformly from
// the configured range, seeds independent loss streams per link, and
// assigns per-node clock offsets within the loose-synchronization bound.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/events.h"
#include "obs/tracer.h"
#include "sim/link.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace paai::sim {

struct PathConfig {
  /// Path length d in hops; d+1 nodes. Must be >= 2.
  std::size_t length = 6;
  /// Natural per-link, per-traversal drop probability (rho).
  double natural_loss = 0.01;
  /// Per-link latency drawn once from U(min, max) ms (paper: 0..5 ms).
  double min_latency_ms = 0.0;
  double max_latency_ms = 5.0;
  /// Per-traversal latency jitter, U(0, jitter_ms), on top of the link's
  /// base latency. Keep well below the per-hop timer allowance (0.2 ms is
  /// added per hop on top of max latency + jitter in rtt_bound) — the
  /// wait-timer cascade tolerates exactly what the RTT bounds cover.
  double jitter_ms = 0.0;
  /// Loose time synchronization: node clock offsets drawn from
  /// U(-max_clock_error_ms, +max_clock_error_ms).
  double max_clock_error_ms = 0.0;
  /// Extra per-hop allowance folded into the RTT bounds (and nothing
  /// else). The runner sets this from a FaultPlan's worst-case latency
  /// retune / reordering delay, exactly as a deployment would provision
  /// its wait timers from a known SLA envelope — link construction and
  /// all RNG streams are untouched, only the timers widen.
  double extra_rtt_slack_ms = 0.0;
  /// Seed for link loss / latency / clock-offset streams.
  std::uint64_t seed = 1;
  /// Optional event tracer: when set, every link transmit/drop is
  /// recorded (sim-time timestamps) under `trace_track` (one Chrome
  /// swimlane per run; the Monte-Carlo driver assigns run indices).
  /// Purely observational — never read by the simulation.
  obs::TraceRing* trace = nullptr;
  std::uint32_t trace_track = 0;
  /// Optional structured event log (obs/events.h): when set, every node
  /// records packet send/recv/forward and crash/restart events, and the
  /// protocol engines record their forensic trail (sample selections,
  /// ack timeouts, score updates, ...). Single-writer and purely
  /// observational — never read by the simulation; the Monte-Carlo
  /// driver attaches it to run 0 only so the stream is bit-identical
  /// for any --jobs value.
  obs::EventLog* events = nullptr;
};

class PathNetwork {
 public:
  /// Throws std::invalid_argument for a length < 2, an inverted latency
  /// range, or any negative/NaN rate, latency, jitter, clock error, or
  /// slack — bad schedules must fail loudly at construction.
  PathNetwork(Simulator& sim, const PathConfig& config);

  std::size_t length() const { return config_.length; }
  Node& node(std::size_t i) { return *nodes_[i]; }
  const Node& node(std::size_t i) const { return *nodes_[i]; }
  Node& source() { return *nodes_.front(); }
  Node& destination() { return *nodes_.back(); }
  Link& link(std::size_t i) { return *links_[i]; }

  TrafficCounters& counters() { return counters_; }
  const TrafficCounters& counters() const { return counters_; }
  const PathConfig& config() const { return config_; }

  /// Conservative round-trip-time bound r_i between F_i and D: twice the
  /// remaining hops at max latency, plus a per-hop processing allowance.
  /// Protocol wait-timers are derived from these bounds, exactly as a
  /// deployment would provision them from known link SLAs.
  SimDuration rtt_bound(std::size_t i) const;

  /// r_0: RTT bound for the whole path.
  SimDuration path_rtt_bound() const { return rtt_bound(0); }

  /// Calls start() on every attached agent (source last, so all relays are
  /// listening before traffic flows).
  void start_agents();

 private:
  Simulator& sim_;
  PathConfig config_;
  TrafficCounters counters_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace paai::sim
