// Node and Agent: the simulator-side runtime of one path element.
//
// A Node owns the mechanics (links, clock, storage meter); the attached
// Agent owns the protocol logic (full-ack / PAAI-1 / PAAI-2 / ... source,
// relay, or destination behaviour). Adversarial behaviour is injected into
// relay agents, never into Links — matching the paper's model where links
// only exhibit *natural* loss and all malice comes from compromised nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/events.h"
#include "obs/tracer.h"
#include "sim/simulator.h"
#include "sim/storage.h"
#include "util/bytes.h"

namespace paai::sim {

class Link;
class Node;

/// Travel direction of a packet on the path.
enum class Direction : std::uint8_t {
  kToDest,    // S -> D (data, probes, report requests)
  kToSource,  // D -> S (acks, reports)
};

/// A packet in flight. `wire` holds the protocol header bytes (shared so
/// relays can forward without copying); `wire_size` additionally counts the
/// simulated application payload.
struct PacketEnv {
  std::shared_ptr<const Bytes> wire;
  std::size_t wire_size = 0;
  Direction dir = Direction::kToDest;

  ByteView view() const { return ByteView(wire->data(), wire->size()); }
};

class Agent {
 public:
  virtual ~Agent() = default;

  /// Called once when the simulation starts.
  virtual void start() {}

  /// Called for every packet delivered to this node.
  virtual void on_packet(const PacketEnv& env) = 0;

  /// Called when the node crashes (faults::FaultInjector outage
  /// schedule). Pending tables registered via PendingStore::attach are
  /// dropped by the node's crash hooks before this runs; override to
  /// discard any *additional* volatile protocol state (e.g. statistical
  /// FL's interval counters). Wait timers already in the event queue may
  /// still fire — handlers must tolerate their entry having vanished,
  /// which is the same recovery path an expired entry exercises.
  virtual void on_crash() {}

 protected:
  Node& node() const { return *node_; }

 private:
  friend class Node;
  Node* node_ = nullptr;
};

class Node {
 public:
  Node(Simulator& sim, std::size_t index) : sim_(sim), index_(index) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  void attach_agent(std::unique_ptr<Agent> agent);
  Agent* agent() { return agent_.get(); }

  /// Called by a Link when a packet survives the traversal.
  void deliver(const PacketEnv& env);

  /// Puts a new packet on the wire in the given direction. No-op when the
  /// node is the last one in that direction (S upstream / D downstream).
  void originate(Direction dir, std::shared_ptr<const Bytes> wire,
                 std::size_t wire_size);

  /// Forwards a received packet unchanged in its travel direction.
  void forward(const PacketEnv& env);

  Simulator& sim() { return sim_; }
  std::size_t index() const { return index_; }
  StorageMeter& storage() { return storage_; }
  const StorageMeter& storage() const { return storage_; }

  /// Local clock: simulation time plus this node's (loose-sync) offset.
  SimTime local_now() const { return sim_.now() + clock_offset_; }
  void set_clock_offset(SimDuration offset) { clock_offset_ = offset; }

  /// Crash/restart (transient outage). While down the node blackholes
  /// every delivery and cannot originate or forward; crashing first runs
  /// the registered crash hooks (dropping in-flight pending state), then
  /// Agent::on_crash(). Restart is just coming back up — agents rebuild
  /// their state from traffic, exactly like a rebooted router.
  bool up() const { return up_; }
  void set_up(bool up);

  /// Registers a hook run on every crash (see PendingStore::attach).
  void add_crash_hook(std::function<void()> hook) {
    crash_hooks_.push_back(std::move(hook));
  }

  /// Ground truth for tests: packets blackholed while the node was down.
  std::uint64_t crash_drops() const { return crash_drops_; }

  void set_link_toward_source(Link* l) { toward_source_ = l; }
  void set_link_toward_dest(Link* l) { toward_dest_ = l; }
  Link* link_toward_source() { return toward_source_; }
  Link* link_toward_dest() { return toward_dest_; }

  /// Observability destinations (set by PathNetwork at construction).
  /// `events` may be nullptr (logging off — one branch per packet);
  /// `trace.pid` is this node's path position so per-node wire activity
  /// gets its own row in the Chrome viewer. Strictly observational.
  void set_obs(obs::EventLog* events, obs::TraceCtx trace) {
    events_ = events;
    trace_ = trace;
  }
  obs::EventLog* events() { return events_; }

 private:
  /// Records a node-level wire event (a = first wire byte = packet type,
  /// b = simulated wire size) in the structured log and, when tracing,
  /// as an instant under this node's pid.
  void log_wire(obs::EventKind kind, const char* trace_name,
                const PacketEnv& env);

  Simulator& sim_;
  std::size_t index_;
  std::unique_ptr<Agent> agent_;
  StorageMeter storage_;
  SimDuration clock_offset_ = 0;
  bool up_ = true;
  std::uint64_t crash_drops_ = 0;
  std::vector<std::function<void()>> crash_hooks_;
  Link* toward_source_ = nullptr;
  Link* toward_dest_ = nullptr;
  obs::EventLog* events_ = nullptr;
  obs::TraceCtx trace_;
};

}  // namespace paai::sim
