#include "sim/network.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace paai::sim {

namespace {

// One registry lookup set per link per network construction — never on
// the per-packet path. Names follow docs/OBSERVABILITY.md.
LinkObs link_obs(std::size_t i) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = "sim.link." + std::to_string(i);
  LinkObs o;
  o.tx_packets = reg.counter(prefix + ".tx_packets");
  o.tx_bytes = reg.counter(prefix + ".tx_bytes");
  o.drops = reg.counter(prefix + ".drops");
  o.dup_copies = reg.counter(prefix + ".dup_copies");
  o.latency_ns = reg.histogram(prefix + ".latency_ns");
  return o;
}

void check_nonnegative(double value, const char* what) {
  if (!(value >= 0.0)) {  // NaN fails the comparison too
    throw std::invalid_argument(std::string("PathNetwork: ") + what +
                                " must be >= 0 and finite, got " +
                                std::to_string(value));
  }
}

}  // namespace

PathNetwork::PathNetwork(Simulator& sim, const PathConfig& config)
    : sim_(sim), config_(config), counters_(config.length) {
  if (config.length < 2) {
    throw std::invalid_argument("PathNetwork: path length must be >= 2");
  }
  if (!(config.natural_loss >= 0.0 && config.natural_loss <= 1.0)) {
    throw std::invalid_argument(
        "PathNetwork: natural loss must be within [0, 1], got " +
        std::to_string(config.natural_loss));
  }
  check_nonnegative(config.min_latency_ms, "min latency");
  check_nonnegative(config.max_latency_ms, "max latency");
  check_nonnegative(config.jitter_ms, "jitter");
  check_nonnegative(config.max_clock_error_ms, "max clock error");
  check_nonnegative(config.extra_rtt_slack_ms, "extra RTT slack");
  if (config.max_latency_ms < config.min_latency_ms) {
    throw std::invalid_argument("PathNetwork: invalid latency range");
  }

  Rng master(config.seed);
  Rng latency_rng = master.fork(1);
  Rng clock_rng = master.fork(2);
  Rng loss_seed_rng = master.fork(3);

  nodes_.reserve(config.length + 1);
  for (std::size_t i = 0; i <= config.length; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim_, i));
    if (config.max_clock_error_ms > 0.0) {
      nodes_.back()->set_clock_offset(milliseconds(clock_rng.uniform(
          -config.max_clock_error_ms, config.max_clock_error_ms)));
    }
    // Per-node attribution: events carry the node index directly, and the
    // node's trace pid is its path position (one Chrome row per node).
    nodes_.back()->set_obs(
        config.events, obs::TraceCtx{config.trace, config.trace_track,
                                     static_cast<std::uint32_t>(i)});
  }

  links_.reserve(config.length);
  for (std::size_t i = 0; i < config.length; ++i) {
    const SimDuration latency = milliseconds(
        latency_rng.uniform(config.min_latency_ms, config.max_latency_ms));
    links_.push_back(std::make_unique<Link>(
        sim_, i, config.natural_loss, latency,
        milliseconds(config.jitter_ms), loss_seed_rng.fork(i), &counters_));
    links_[i]->set_obs(link_obs(i),
                       obs::TraceCtx{config.trace, config.trace_track});
    links_[i]->connect(nodes_[i].get(), nodes_[i + 1].get());
    nodes_[i]->set_link_toward_dest(links_[i].get());
    nodes_[i + 1]->set_link_toward_source(links_[i].get());
  }
}

SimDuration PathNetwork::rtt_bound(std::size_t i) const {
  if (i > config_.length) {
    throw std::out_of_range("rtt_bound: node index outside [0, d]");
  }
  // Per-hop allowance for processing/queuing on top of the worst latency
  // plus the configured jitter.
  constexpr double kPerHopSlackMs = 0.2;
  const double hops = static_cast<double>(config_.length - i);
  return milliseconds(2.0 * hops *
                      (config_.max_latency_ms + config_.jitter_ms +
                       config_.extra_rtt_slack_ms + kPerHopSlackMs));
}

void PathNetwork::start_agents() {
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    if (Agent* a = nodes_[i]->agent()) a->start();
  }
}

}  // namespace paai::sim
