#include "sim/link.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace paai::sim {

namespace {

// Static strings for the tracer (slots store pointers, not copies).
const char* tx_trace_name(net::PacketType type) {
  switch (type) {
    case net::PacketType::kData:
      return "tx data";
    case net::PacketType::kDestAck:
      return "tx dest-ack";
    case net::PacketType::kProbe:
      return "tx probe";
    case net::PacketType::kReportAck:
      return "tx report-ack";
    case net::PacketType::kFlReport:
      return "tx fl-report";
    case net::PacketType::kFlRequest:
      return "tx fl-request";
  }
  return "tx ?";
}

const char* drop_trace_name(net::PacketType type) {
  switch (type) {
    case net::PacketType::kData:
      return "drop data";
    case net::PacketType::kDestAck:
      return "drop dest-ack";
    case net::PacketType::kProbe:
      return "drop probe";
    case net::PacketType::kReportAck:
      return "drop report-ack";
    case net::PacketType::kFlReport:
      return "drop fl-report";
    case net::PacketType::kFlRequest:
      return "drop fl-request";
  }
  return "drop ?";
}

void check_probability(double value, const char* what) {
  if (!(value >= 0.0 && value <= 1.0)) {  // NaN fails both comparisons
    throw std::invalid_argument(std::string("Link: ") + what +
                                " must be within [0, 1], got " +
                                std::to_string(value));
  }
}

void check_duration(SimDuration value, const char* what) {
  if (value < 0) {
    throw std::invalid_argument(std::string("Link: ") + what +
                                " must be >= 0, got " +
                                std::to_string(value));
  }
}

}  // namespace

Link::Link(Simulator& sim, std::size_t index, double loss_rate,
           SimDuration latency, SimDuration jitter, Rng rng,
           TrafficCounters* counters)
    : sim_(sim),
      index_(index),
      loss_rate_(loss_rate),
      latency_(latency),
      jitter_(jitter),
      rng_(rng),
      counters_(counters) {
  check_probability(loss_rate, "loss rate");
  check_duration(latency, "latency");
  check_duration(jitter, "jitter");
}

void Link::set_loss_rate(double rate) {
  check_probability(rate, "loss rate");
  loss_rate_ = rate;
}

void Link::set_latency(SimDuration latency) {
  check_duration(latency, "latency");
  latency_ = latency;
}

void Link::set_jitter(SimDuration jitter) {
  check_duration(jitter, "jitter");
  jitter_ = jitter;
}

void Link::set_reordering(double prob, SimDuration extra_delay) {
  check_probability(prob, "reordering probability");
  check_duration(extra_delay, "reordering delay");
  reorder_prob_ = prob;
  reorder_delay_ = extra_delay;
}

void Link::set_duplication(double prob) {
  check_probability(prob, "duplication probability");
  dup_prob_ = prob;
}

SimDuration Link::draw_delay() {
  SimDuration delay = latency_;
  if (jitter_ > 0) {
    delay += static_cast<SimDuration>(rng_.next_double() *
                                      static_cast<double>(jitter_));
  }
  if (reorder_prob_ > 0.0 && rng_.bernoulli(reorder_prob_)) {
    delay += static_cast<SimDuration>(rng_.next_double() *
                                      static_cast<double>(reorder_delay_));
  }
  return delay;
}

void Link::transmit(const PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (counters_ != nullptr && type) {
    counters_->on_transmit(*type, env.wire_size, index_);
  }
  obs_.tx_packets.add();
  obs_.tx_bytes.add(env.wire_size);
  // Trace attribution: link events land on the *sending* node's row
  // (l_i connects F_i and F_{i+1}, so kToDest traffic is sent by F_i).
  const std::uint32_t sender_pid = static_cast<std::uint32_t>(
      env.dir == Direction::kToDest ? index_ : index_ + 1);
  const bool dropped = loss_process_ != nullptr
                           ? loss_process_->drop(sim_.now(), rng_)
                           : rng_.bernoulli(loss_rate_);
  if (dropped) {
    if (counters_ != nullptr) {
      counters_->on_link_drop(index_,
                              type.value_or(net::PacketType::kData));
    }
    obs_.drops.add();
    if (trace_.ring != nullptr) {
      trace_.ring->instant(
          drop_trace_name(type.value_or(net::PacketType::kData)), "sim",
          sim_.now() / kMicrosecond, trace_.track,
          static_cast<std::int64_t>(index_), sender_pid);
    }
    return;
  }
  Node* target = env.dir == Direction::kToDest ? downstream_ : upstream_;
  if (target == nullptr) return;
  const std::size_t copies =
      dup_prob_ > 0.0 && rng_.bernoulli(dup_prob_) ? 2 : 1;
  if (copies == 2) obs_.dup_copies.add();
  for (std::size_t c = 0; c < copies; ++c) {
    const SimDuration delay = draw_delay();
    obs_.latency_ns.observe(static_cast<std::uint64_t>(delay));
    if (trace_.ring != nullptr) {
      trace_.ring->complete(
          tx_trace_name(type.value_or(net::PacketType::kData)), "sim",
          sim_.now() / kMicrosecond, delay / kMicrosecond, trace_.track,
          static_cast<std::int64_t>(index_), sender_pid);
    }
    sim_.after(delay, [target, env] { target->deliver(env); });
  }
}

}  // namespace paai::sim
