#include "sim/link.h"

namespace paai::sim {

namespace {

// Static strings for the tracer (slots store pointers, not copies).
const char* tx_trace_name(net::PacketType type) {
  switch (type) {
    case net::PacketType::kData:
      return "tx data";
    case net::PacketType::kDestAck:
      return "tx dest-ack";
    case net::PacketType::kProbe:
      return "tx probe";
    case net::PacketType::kReportAck:
      return "tx report-ack";
    case net::PacketType::kFlReport:
      return "tx fl-report";
    case net::PacketType::kFlRequest:
      return "tx fl-request";
  }
  return "tx ?";
}

const char* drop_trace_name(net::PacketType type) {
  switch (type) {
    case net::PacketType::kData:
      return "drop data";
    case net::PacketType::kDestAck:
      return "drop dest-ack";
    case net::PacketType::kProbe:
      return "drop probe";
    case net::PacketType::kReportAck:
      return "drop report-ack";
    case net::PacketType::kFlReport:
      return "drop fl-report";
    case net::PacketType::kFlRequest:
      return "drop fl-request";
  }
  return "drop ?";
}

}  // namespace

void Link::transmit(const PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (counters_ != nullptr && type) {
    counters_->on_transmit(*type, env.wire_size, index_);
  }
  obs_.tx_packets.add();
  obs_.tx_bytes.add(env.wire_size);
  if (rng_.bernoulli(loss_rate_)) {
    if (counters_ != nullptr) {
      counters_->on_link_drop(index_,
                              type.value_or(net::PacketType::kData));
    }
    obs_.drops.add();
    if (trace_.ring != nullptr) {
      trace_.ring->instant(
          drop_trace_name(type.value_or(net::PacketType::kData)), "sim",
          sim_.now() / kMicrosecond, trace_.track,
          static_cast<std::int64_t>(index_));
    }
    return;
  }
  Node* target = env.dir == Direction::kToDest ? downstream_ : upstream_;
  if (target == nullptr) return;
  SimDuration delay = latency_;
  if (jitter_ > 0) {
    delay += static_cast<SimDuration>(rng_.next_double() *
                                      static_cast<double>(jitter_));
  }
  obs_.latency_ns.observe(static_cast<std::uint64_t>(delay));
  if (trace_.ring != nullptr) {
    trace_.ring->complete(tx_trace_name(type.value_or(net::PacketType::kData)),
                          "sim", sim_.now() / kMicrosecond,
                          delay / kMicrosecond, trace_.track,
                          static_cast<std::int64_t>(index_));
  }
  sim_.after(delay, [target, env] { target->deliver(env); });
}

}  // namespace paai::sim
