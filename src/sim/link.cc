#include "sim/link.h"

namespace paai::sim {

void Link::transmit(const PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (counters_ != nullptr && type) {
    counters_->on_transmit(*type, env.wire_size, index_);
  }
  if (rng_.bernoulli(loss_rate_)) {
    if (counters_ != nullptr) {
      counters_->on_link_drop(index_,
                              type.value_or(net::PacketType::kData));
    }
    return;
  }
  Node* target = env.dir == Direction::kToDest ? downstream_ : upstream_;
  if (target == nullptr) return;
  SimDuration delay = latency_;
  if (jitter_ > 0) {
    delay += static_cast<SimDuration>(rng_.next_double() *
                                      static_cast<double>(jitter_));
  }
  sim_.after(delay, [target, env] { target->deliver(env); });
}

}  // namespace paai::sim
