#include "sim/trace.h"

namespace paai::sim {

void TrafficCounters::on_transmit(net::PacketType type, std::size_t bytes,
                                  std::size_t link_index) {
  auto& c = counters_[slot(type)];
  ++c.packets;
  c.bytes += bytes;
  if (type == net::PacketType::kData && link_index < data_tx_.size()) {
    ++data_tx_[link_index];
  }
}

void TrafficCounters::on_link_drop(std::size_t link_index,
                                   net::PacketType type) {
  if (link_index < link_drops_.size()) ++link_drops_[link_index];
  if (type == net::PacketType::kData && link_index < data_drops_.size()) {
    ++data_drops_[link_index];
  }
}

std::uint64_t TrafficCounters::data_tx(std::size_t link_index) const {
  return link_index < data_tx_.size() ? data_tx_[link_index] : 0;
}

std::uint64_t TrafficCounters::data_drops(std::size_t link_index) const {
  return link_index < data_drops_.size() ? data_drops_[link_index] : 0;
}

double TrafficCounters::true_link_loss(std::size_t link_index) const {
  const std::uint64_t tx = data_tx(link_index);
  if (tx == 0) return 0.0;
  return static_cast<double>(data_drops(link_index)) /
         static_cast<double>(tx);
}

const TypeCounter& TrafficCounters::by_type(net::PacketType type) const {
  return counters_[slot(type)];
}

double TrafficCounters::overhead_ratio() const {
  const auto& data = counters_[slot(net::PacketType::kData)];
  if (data.bytes == 0) return 0.0;
  std::uint64_t control = 0;
  for (std::size_t i = 0; i < kNumTypes; ++i) {
    if (i == slot(net::PacketType::kData)) continue;
    control += counters_[i].bytes;
  }
  return static_cast<double>(control) / static_cast<double>(data.bytes);
}

double TrafficCounters::control_packets_per_data() const {
  const auto& data = counters_[slot(net::PacketType::kData)];
  if (data.packets == 0) return 0.0;
  std::uint64_t control = 0;
  for (std::size_t i = 0; i < kNumTypes; ++i) {
    if (i == slot(net::PacketType::kData)) continue;
    control += counters_[i].packets;
  }
  return static_cast<double>(control) / static_cast<double>(data.packets);
}

std::uint64_t TrafficCounters::total_packets() const {
  std::uint64_t n = 0;
  for (const auto& c : counters_) n += c.packets;
  return n;
}

std::uint64_t TrafficCounters::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& c : counters_) n += c.bytes;
  return n;
}

std::uint64_t TrafficCounters::drops_on_link(std::size_t link_index) const {
  return link_index < link_drops_.size() ? link_drops_[link_index] : 0;
}

void TrafficCounters::reset() {
  counters_ = {};
  for (auto& d : link_drops_) d = 0;
  for (auto& d : data_tx_) d = 0;
  for (auto& d : data_drops_) d = 0;
}

}  // namespace paai::sim
