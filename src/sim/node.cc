#include "sim/node.h"

#include "sim/link.h"

namespace paai::sim {

void Node::attach_agent(std::unique_ptr<Agent> agent) {
  agent_ = std::move(agent);
  agent_->node_ = this;
}

void Node::deliver(const PacketEnv& env) {
  if (agent_) agent_->on_packet(env);
}

void Node::originate(Direction dir, std::shared_ptr<const Bytes> wire,
                     std::size_t wire_size) {
  Link* link = dir == Direction::kToDest ? toward_dest_ : toward_source_;
  if (link == nullptr) return;
  link->transmit(PacketEnv{std::move(wire), wire_size, dir});
}

void Node::forward(const PacketEnv& env) {
  Link* link = env.dir == Direction::kToDest ? toward_dest_ : toward_source_;
  if (link == nullptr) return;
  link->transmit(env);
}

}  // namespace paai::sim
