#include "sim/node.h"

#include "sim/link.h"
#include "sim/time.h"

namespace paai::sim {

void Node::attach_agent(std::unique_ptr<Agent> agent) {
  agent_ = std::move(agent);
  agent_->node_ = this;
}

void Node::log_wire(obs::EventKind kind, const char* trace_name,
                    const PacketEnv& env) {
  const std::uint64_t type =
      (env.wire != nullptr && !env.wire->empty()) ? (*env.wire)[0] : 0;
  if (events_ != nullptr) {
    events_->append(index_, kind, sim_.now(), /*link=*/-1, type,
                    env.wire_size);
  }
  if (trace_.ring != nullptr) {
    trace_.ring->instant(trace_name, "node", sim_.now() / kMicrosecond,
                         trace_.track, static_cast<std::int64_t>(type),
                         trace_.pid);
  }
}

void Node::deliver(const PacketEnv& env) {
  if (!up_) {
    ++crash_drops_;
    return;
  }
  log_wire(obs::EventKind::kPacketRecv, "rx", env);
  if (agent_) agent_->on_packet(env);
}

void Node::originate(Direction dir, std::shared_ptr<const Bytes> wire,
                     std::size_t wire_size) {
  if (!up_) return;
  Link* link = dir == Direction::kToDest ? toward_dest_ : toward_source_;
  if (link == nullptr) return;
  PacketEnv env{std::move(wire), wire_size, dir};
  log_wire(obs::EventKind::kPacketSend, "tx", env);
  link->transmit(env);
}

void Node::forward(const PacketEnv& env) {
  if (!up_) return;
  Link* link = env.dir == Direction::kToDest ? toward_dest_ : toward_source_;
  if (link == nullptr) return;
  log_wire(obs::EventKind::kPacketForward, "fwd", env);
  link->transmit(env);
}

void Node::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (events_ != nullptr) {
    events_->append(
        index_, up_ ? obs::EventKind::kNodeRestart : obs::EventKind::kNodeCrash,
        sim_.now());
  }
  if (trace_.ring != nullptr) {
    trace_.ring->instant(up_ ? "restart" : "crash", "node",
                         sim_.now() / kMicrosecond, trace_.track,
                         obs::kTraceNoArg, trace_.pid);
  }
  if (!up_) {
    for (const auto& hook : crash_hooks_) hook();
    if (agent_) agent_->on_crash();
  }
}

}  // namespace paai::sim
