#include "sim/node.h"

#include "sim/link.h"

namespace paai::sim {

void Node::attach_agent(std::unique_ptr<Agent> agent) {
  agent_ = std::move(agent);
  agent_->node_ = this;
}

void Node::deliver(const PacketEnv& env) {
  if (!up_) {
    ++crash_drops_;
    return;
  }
  if (agent_) agent_->on_packet(env);
}

void Node::originate(Direction dir, std::shared_ptr<const Bytes> wire,
                     std::size_t wire_size) {
  if (!up_) return;
  Link* link = dir == Direction::kToDest ? toward_dest_ : toward_source_;
  if (link == nullptr) return;
  link->transmit(PacketEnv{std::move(wire), wire_size, dir});
}

void Node::forward(const PacketEnv& env) {
  if (!up_) return;
  Link* link = env.dir == Direction::kToDest ? toward_dest_ : toward_source_;
  if (link == nullptr) return;
  link->transmit(env);
}

void Node::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    for (const auto& hook : crash_hooks_) hook();
    if (agent_) agent_->on_crash();
  }
}

}  // namespace paai::sim
