// Per-node storage accounting (§7.4, Figure 3).
//
// Protocol agents report every identifier they hold (and release) through
// this meter. The runner samples `current()` on a fixed grid to build the
// storage-vs-time series of Figure 3; `peak()` feeds the §9 kilobyte
// estimates.
#pragma once

#include <cstdint>

namespace paai::sim {

class StorageMeter {
 public:
  void add(std::uint64_t entries = 1) {
    current_ += entries;
    if (current_ > peak_) peak_ = current_;
  }

  void remove(std::uint64_t entries = 1) {
    current_ = entries >= current_ ? 0 : current_ - entries;
  }

  /// Number of packet-state entries held right now.
  std::uint64_t current() const { return current_; }

  /// High-water mark since construction/reset.
  std::uint64_t peak() const { return peak_; }

  void reset() { current_ = 0; peak_ = 0; }

 private:
  std::uint64_t current_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace paai::sim
