#include "sim/simulator.h"

#include <utility>

#include "obs/profile.h"

namespace paai::sim {

void Simulator::at(SimTime t, Handler fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
  // Profiler bookkeeping (one relaxed load + branch while disabled):
  // pending-heap depth high-water and the allocation the push implies.
  auto& prof = obs::PhaseProfiler::global();
  prof.record_queue_depth(obs::QueueId::kSimQueue, queue_.size());
  prof.add_alloc(obs::Phase::kSimLoop, sizeof(Event));
}

void Simulator::after(SimDuration delay, Handler fn) {
  if (delay < 0) delay = 0;
  at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is moved out via const_cast,
  // which is safe because pop() follows immediately and the heap order
  // does not depend on the handler.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  {
    const obs::ScopedPhase phase(obs::Phase::kSimLoop);
    ev.fn();
  }
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time < t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace paai::sim
