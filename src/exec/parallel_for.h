// parallel_for_each: run fn(0) ... fn(count-1) across a worker pool.
//
//   * jobs = 0 means "hardware concurrency"; jobs <= 1 (or count <= 1)
//     runs inline on the calling thread — no pool, no locking — so the
//     serial path is also the degenerate parallel path and there is one
//     code path to keep deterministic.
//   * Exception propagation: if any fn throws, the first-thrown exception
//     is captured, all not-yet-started items are cancelled (their fn is
//     never invoked), already-running items finish, and the exception is
//     rethrown on the calling thread after the section quiesces.
//   * Telemetry: returns an ExecTelemetry with per-item wall time, queue
//     wait, and overall pool utilization.
//
// fn is invoked concurrently from pool workers: it must not touch shared
// mutable state without its own synchronization. For order-sensitive
// aggregation use OrderedReducer below, which serializes commits and
// replays them strictly in item order — the pattern that makes the
// Monte-Carlo drivers bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "exec/telemetry.h"

namespace paai::exec {

/// Resolves a user-facing jobs knob: 0 -> hardware concurrency, else the
/// value itself (never returns 0).
std::size_t resolve_jobs(std::size_t jobs);

ExecTelemetry parallel_for_each(std::size_t count,
                                const std::function<void(std::size_t)>& fn,
                                std::size_t jobs);

/// Commits per-item results strictly in item order, regardless of the
/// order items complete. Workers call commit(i, value); the reducer folds
/// value i only once values 0..i-1 have been folded, invoking `fold`
/// under an internal mutex (single reducer context). Out-of-order
/// completions are buffered; memory is bounded by the completion skew,
/// not by the item count.
template <typename T>
class OrderedReducer {
 public:
  /// `fold(index, value)` is called in index order; `on_progress(n)` (if
  /// set) is called after each fold with the monotonically increasing
  /// completed count n in [1, count].
  OrderedReducer(std::size_t count,
                 std::function<void(std::size_t, T&&)> fold,
                 std::function<void(std::size_t)> on_progress = nullptr)
      : slots_(count),
        fold_(std::move(fold)),
        on_progress_(std::move(on_progress)) {}

  void commit(std::size_t index, T&& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[index] = std::move(value);
    while (next_ < slots_.size() && slots_[next_].has_value()) {
      fold_(next_, std::move(*slots_[next_]));
      slots_[next_].reset();
      ++next_;
      if (on_progress_) on_progress_(next_);
    }
  }

  /// Items folded so far (== count when the section is complete).
  std::size_t completed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::optional<T>> slots_;
  std::size_t next_ = 0;
  std::function<void(std::size_t, T&&)> fold_;
  std::function<void(std::size_t)> on_progress_;
};

}  // namespace paai::exec
