#include "exec/shard_plan.h"

#include <algorithm>

namespace paai::exec {

ShardPlan::ShardPlan(std::uint64_t seed0, std::size_t count) {
  seeds_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds_.push_back(seed0 + static_cast<std::uint64_t>(i));
  }
}

std::vector<std::pair<std::size_t, std::size_t>> ShardPlan::partition(
    std::size_t shards) const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t n = seeds_.size();
  shards = std::max<std::size_t>(shards, 1);
  shards = std::min(shards, std::max<std::size_t>(n, 1));
  if (n == 0) return out;
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

std::size_t fixed_tile_count(std::size_t items, std::size_t max_tiles) {
  if (items == 0) return 0;
  return std::min(items, std::max<std::size_t>(max_tiles, 1));
}

}  // namespace paai::exec
