#include "exec/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "exec/thread_pool.h"

namespace paai::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs == 0 ? ThreadPool::hardware_jobs() : jobs;
}

ExecTelemetry parallel_for_each(std::size_t count,
                                const std::function<void(std::size_t)>& fn,
                                std::size_t jobs) {
  ExecTelemetry telemetry;
  jobs = std::min(resolve_jobs(jobs), std::max<std::size_t>(count, 1));
  telemetry.jobs = jobs;
  const Clock::time_point section_start = Clock::now();

  if (jobs == 1) {
    // Inline path: the serial loop naturally cancels everything after a
    // throwing item, matching the pool path's semantics.
    for (std::size_t i = 0; i < count; ++i) {
      const Clock::time_point start = Clock::now();
      fn(i);
      telemetry.task_seconds.add(seconds_between(start, Clock::now()));
      telemetry.queue_wait_seconds.add(0.0);
    }
    telemetry.wall_seconds = seconds_between(section_start, Clock::now());
    return telemetry;
  }

  std::mutex state_mutex;  // guards telemetry stats and first_error
  std::exception_ptr first_error;
  std::atomic<bool> cancelled{false};
  {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < count; ++i) {
      const Clock::time_point submitted = Clock::now();
      pool.submit([&, i, submitted] {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const Clock::time_point start = Clock::now();
        try {
          fn(i);
        } catch (...) {
          cancelled.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(state_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
        const Clock::time_point end = Clock::now();
        std::lock_guard<std::mutex> lock(state_mutex);
        telemetry.queue_wait_seconds.add(seconds_between(submitted, start));
        telemetry.task_seconds.add(seconds_between(start, end));
      });
    }
    pool.shutdown();  // drains the queue and joins — the section barrier
  }
  telemetry.wall_seconds = seconds_between(section_start, Clock::now());
  if (first_error) std::rethrow_exception(first_error);
  return telemetry;
}

}  // namespace paai::exec
