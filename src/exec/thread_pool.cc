#include "exec/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/profile.h"

namespace paai::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(threads, 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(task));
    obs::PhaseProfiler::global().record_queue_depth(obs::QueueId::kExecQueue,
                                                    queue_.size());
  }
  work_available_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::hardware_jobs() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const obs::ScopedPhase phase(obs::Phase::kExecTask);
    task();
  }
}

}  // namespace paai::exec
