// Fixed-size worker pool with a condition-variable work queue.
//
// The pool is deliberately minimal: submit() enqueues a closure, workers
// dequeue in FIFO order, and the destructor drains everything already
// queued before joining (clean shutdown — no task that was accepted is
// ever dropped). Determinism of results is NOT the pool's job: callers
// that need run-order-independent output (the Monte-Carlo driver) commit
// results through an ordered reducer; the pool only supplies concurrency.
//
// Thread-safety: submit() may be called from any thread, including from
// inside a running task. Submitting after shutdown() (or during
// destruction) is a programming error and throws.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paai::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Throws std::runtime_error after shutdown().
  void submit(std::function<void()> task);

  /// Stops accepting work, finishes everything queued, joins workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  std::size_t size() const { return workers_.size(); }

  /// Tasks currently queued (not yet picked up by a worker).
  std::size_t queued() const;

  /// The machine's hardware concurrency, never less than 1.
  static std::size_t hardware_jobs();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace paai::exec
