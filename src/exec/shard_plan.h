// ShardPlan: fixes every run's seed before any run executes.
//
// Determinism of a parallel Monte-Carlo fleet has two halves. ShardPlan is
// the first: each run's seed is a pure function of (seed0, run index),
// materialized up front, so no run's randomness depends on scheduling, on
// which worker picks it up, or on how many workers exist. The second half
// is ordered reduction (see parallel_for.h / montecarlo.cc): per-run
// results are folded into the aggregate strictly in run order. Together
// they make `jobs=N` bit-identical to `jobs=1`.
//
// The default policy is additive (seed0 + i) — the historical serial-loop
// seeding — so existing recorded results keep their exact values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace paai::exec {

class ShardPlan {
 public:
  /// Plan for `count` runs seeded seed0, seed0+1, ... seed0+count-1.
  ShardPlan(std::uint64_t seed0, std::size_t count);

  std::size_t count() const { return seeds_.size(); }
  std::uint64_t seed(std::size_t run) const { return seeds_[run]; }
  const std::vector<std::uint64_t>& seeds() const { return seeds_; }

  /// Splits [0, count) into at most `shards` contiguous [begin, end)
  /// ranges of near-equal size (for block-scheduled consumers; the
  /// Monte-Carlo driver schedules per-run and does not need this).
  std::vector<std::pair<std::size_t, std::size_t>> partition(
      std::size_t shards) const;

 private:
  std::vector<std::uint64_t> seeds_;
};

/// Tile count for block-scheduled reductions whose partial results are
/// folded in tile order (the mesh runner's sharded score accumulation).
/// The count is a pure function of the item count — NEVER of the jobs
/// knob — because the fold order over tiles is part of the result's value
/// for floating-point partials: if the tiling changed with the worker
/// count, `--jobs` would change the summation tree and break the
/// bit-identity contract. `max_tiles` well above any plausible pool size
/// keeps all workers busy while bounding in-flight per-tile shard memory.
std::size_t fixed_tile_count(std::size_t items, std::size_t max_tiles = 256);

}  // namespace paai::exec
