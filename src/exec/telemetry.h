// Execution telemetry for the parallel engine.
//
// Every parallel_for_each() section reports where its wall-clock time went:
// how long each item ran, how long it sat in the work queue before a worker
// picked it up, and how well the pool was utilized overall. The Monte-Carlo
// driver surfaces this in MonteCarloResult so perf work on the figure
// reproductions can see whether time goes to the simulation itself, to
// scheduling, or to an under-filled pool.
#pragma once

#include <cstddef>

#include "util/stats.h"

namespace paai::exec {

struct ExecTelemetry {
  /// Resolved worker count the section actually ran with (after the
  /// jobs=0 -> hardware_concurrency default and the clamp to item count).
  std::size_t jobs = 1;

  /// Wall-clock seconds of the whole parallel section (submit of the first
  /// item to completion of the last).
  double wall_seconds = 0.0;

  /// Per-item execution wall time (seconds), over all items that ran.
  RunningStat task_seconds;

  /// Per-item queue wait (seconds): submission to a worker picking it up.
  /// Near-zero means workers were starved for work; large means the queue
  /// was deep relative to the pool.
  RunningStat queue_wait_seconds;

  /// Fraction of the pool's total capacity (jobs x wall_seconds) spent
  /// executing items. 1.0 = perfectly packed; low values mean the tail of
  /// the run left workers idle or items were too coarse.
  double utilization() const {
    const double capacity = static_cast<double>(jobs) * wall_seconds;
    if (capacity <= 0.0) return 0.0;
    const double busy = task_seconds.mean() *
                        static_cast<double>(task_seconds.count());
    return busy / capacity;
  }
};

}  // namespace paai::exec
