// FaultInjector: installs a FaultPlan into a built PathNetwork.
//
// Construction attaches the Gilbert–Elliott processes and reorder/dup
// knobs to their links, then schedules every retune and outage as plain
// simulator events — fault events share the event queue's strict
// (time, seq) total order with the traffic, so a plan perturbs a run
// deterministically and bit-identically across --jobs values.
//
// The injector owns all fault state (loss processes) and must outlive the
// simulation; run_experiment keeps one on the stack next to the network.
//
// Index validation happens here, where the path length is known: link
// indices must be < d, and outages may only target intermediate nodes
// F_1..F_{d-1} — the paper's S and D are trusted infrastructure and, more
// to the point, a dead source/destination makes every identification
// question moot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/loss_process.h"
#include "faults/plan.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace paai::faults {

/// Fault-event observability handles (faults.* in the registry); inert
/// until the global registry is enabled, like every obs handle.
struct FaultObs {
  obs::Counter outages;      // crash events fired
  obs::Counter restarts;     // restart events fired
  obs::Counter retunes;      // link retunes applied
  obs::Counter node_drops;   // deliveries blackholed by down nodes
};

class FaultInjector {
 public:
  /// Throws std::invalid_argument for out-of-range link/node indices or
  /// parameter values the link layer rejects.
  FaultInjector(sim::Simulator& sim, sim::PathNetwork& net,
                const FaultPlan& plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Call after the simulation drained: folds ground-truth fault tallies
  /// (blackholed deliveries) into the registry. No-op while the registry
  /// is disabled; never read back into any result.
  void finish();

  const FaultPlan& plan() const { return plan_; }

  // Window-state queries — the observable side of the plan. These back the
  // adversary observation channel (adversary::FaultObservation): an
  // on-path adversary sees loss bursts and dead neighbours directly, so
  // exposing them as queryable state is modelling, not a leak. All three
  // are O(#processes + #outages) and read-only.

  /// True iff any Gilbert–Elliott process currently sits in its Bad state.
  bool burst_active() const;

  /// True iff `now` falls inside any scheduled node-outage window.
  bool outage_active(sim::SimTime now) const;

  /// burst_active() || outage_active(now): "is there benign loss cover
  /// open right now?".
  bool cover_active(sim::SimTime now) const;

 private:
  sim::Simulator& sim_;
  sim::PathNetwork& net_;
  FaultPlan plan_;
  FaultObs obs_;
  std::vector<std::unique_ptr<GilbertElliott>> processes_;
};

}  // namespace paai::faults
