#include "faults/loss_process.h"

#include <stdexcept>
#include <string>

namespace paai::faults {

namespace {

void check_probability(double value, const char* what) {
  if (!(value >= 0.0 && value <= 1.0)) {  // NaN fails both comparisons
    throw std::invalid_argument(std::string("GilbertElliott: ") + what +
                                " must be within [0, 1], got " +
                                std::to_string(value));
  }
}

}  // namespace

GilbertElliott::GilbertElliott(const Params& params) : params_(params) {
  check_probability(params.loss_good, "loss_good");
  check_probability(params.loss_bad, "loss_bad");
  check_probability(params.good_to_bad, "good_to_bad");
  check_probability(params.bad_to_good, "bad_to_good");
  if (params.good_to_bad + params.bad_to_good <= 0.0) {
    throw std::invalid_argument(
        "GilbertElliott: chain must be able to move "
        "(good_to_bad + bad_to_good > 0)");
  }
}

bool GilbertElliott::drop(sim::SimTime /*now*/, Rng& rng) {
  const double flip = bad_ ? params_.bad_to_good : params_.good_to_bad;
  if (rng.bernoulli(flip)) {
    bad_ = !bad_;
    ++transitions_;
  }
  return rng.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
}

double GilbertElliott::stationary_loss() const {
  const double pi_bad =
      params_.good_to_bad / (params_.good_to_bad + params_.bad_to_good);
  return (1.0 - pi_bad) * params_.loss_good + pi_bad * params_.loss_bad;
}

}  // namespace paai::faults
