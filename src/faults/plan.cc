#include "faults/plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/json.h"
#include "util/specgrammar.h"

namespace paai::faults {

namespace {

const std::string kPrefix = "FaultPlan";

[[noreturn]] void bad(const std::string& message) {
  util::spec_error(kPrefix, message);
}

void check_probability(double value, const std::string& what) {
  util::spec_check_probability(value, what, kPrefix);
}

void check_nonnegative(double value, const std::string& what) {
  util::spec_check_nonnegative(value, what, kPrefix);
}

void apply_clause(FaultPlan& plan, const util::SpecClause& c) {
  const auto require = [&c](std::string_view key) {
    return c.require(key, kPrefix);
  };
  if (c.kind == "ge") {
    c.check_keys({"pg", "pb", "g2b", "b2g"}, kPrefix);
    GilbertElliottFault f;
    f.link = c.index;
    f.params.loss_good = c.get("pg").value_or(0.0);
    f.params.loss_bad = require("pb");
    f.params.good_to_bad = require("g2b");
    f.params.bad_to_good = require("b2g");
    check_probability(f.params.loss_good, "ge pg");
    check_probability(f.params.loss_bad, "ge pb");
    check_probability(f.params.good_to_bad, "ge g2b");
    check_probability(f.params.bad_to_good, "ge b2g");
    plan.gilbert.push_back(f);
  } else if (c.kind == "set") {
    c.check_keys({"t", "loss", "lat", "jitter"}, kPrefix);
    LinkRetune r;
    r.link = c.index;
    r.at_seconds = c.get("t").value_or(0.0);
    r.loss = c.get("loss");
    r.latency_ms = c.get("lat");
    r.jitter_ms = c.get("jitter");
    check_nonnegative(r.at_seconds, "set t");
    if (!r.loss && !r.latency_ms && !r.jitter_ms) {
      bad("set clause needs at least one of loss=, lat=, jitter=");
    }
    if (r.loss) check_probability(*r.loss, "set loss");
    if (r.latency_ms) check_nonnegative(*r.latency_ms, "set lat");
    if (r.jitter_ms) check_nonnegative(*r.jitter_ms, "set jitter");
    plan.retunes.push_back(r);
  } else if (c.kind == "outage") {
    c.check_keys({"t", "dur"}, kPrefix);
    NodeOutage o;
    o.node = c.index;
    o.at_seconds = require("t");
    o.duration_seconds = require("dur");
    check_nonnegative(o.at_seconds, "outage t");
    if (!(o.duration_seconds > 0.0)) {
      bad("outage dur must be > 0, got " +
          std::to_string(o.duration_seconds));
    }
    plan.outages.push_back(o);
  } else if (c.kind == "reorder") {
    c.check_keys({"p", "delay"}, kPrefix);
    ReorderFault r;
    r.link = c.index;
    r.probability = require("p");
    r.extra_delay_ms = require("delay");
    check_probability(r.probability, "reorder p");
    check_nonnegative(r.extra_delay_ms, "reorder delay");
    plan.reorders.push_back(r);
  } else if (c.kind == "dup") {
    c.check_keys({"p"}, kPrefix);
    DuplicateFault d;
    d.link = c.index;
    d.probability = require("p");
    check_probability(d.probability, "dup p");
    plan.duplicates.push_back(d);
  } else {
    bad("unknown clause kind '" + c.kind +
        "' (expected ge, set, outage, reorder, or dup)");
  }
}

FaultPlan parse_json(std::string_view spec) {
  std::string error;
  const auto doc = obs::json_parse(spec, &error);
  if (!doc) bad("JSON parse error: " + error);
  const obs::JsonValue* clauses = &*doc;
  if (doc->is_object()) {
    clauses = doc->find("faults");
    if (clauses == nullptr || !clauses->is_array()) {
      bad("JSON object form needs a \"faults\" array member");
    }
  } else if (!doc->is_array()) {
    bad("JSON form must be an array of clause objects");
  }

  FaultPlan plan;
  for (const auto& entry : clauses->array) {
    if (!entry.is_object()) bad("JSON clause must be an object");
    util::SpecClause c;
    bool have_index = false;
    for (const auto& [key, value] : entry.object) {
      if (key == "kind") {
        if (!value.is_string()) bad("JSON clause \"kind\" must be a string");
        c.kind = value.string;
        continue;
      }
      if (!value.is_number()) {
        bad("JSON clause key '" + key + "' must be a number");
      }
      if (key == "link" || key == "node") {
        if (!(value.number >= 0.0)) bad(key + " must be >= 0");
        c.index = static_cast<std::size_t>(value.number);
        have_index = true;
        continue;
      }
      c.kv.emplace_back(key, value.number);
    }
    if (c.kind.empty()) bad("JSON clause is missing \"kind\"");
    if (!have_index) bad(c.kind + " JSON clause needs \"link\" or \"node\"");
    apply_clause(plan, c);
  }
  return plan;
}

std::string fmt(double value) { return util::fmt_double(value); }

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  const std::string_view trimmed = util::spec_trim(spec);
  if (trimmed.empty()) return FaultPlan{};
  if (trimmed.front() == '[' || trimmed.front() == '{') {
    return parse_json(trimmed);
  }
  FaultPlan plan;
  for (const auto& clause : util::parse_compact_clauses(trimmed, kPrefix)) {
    apply_clause(plan, clause);
  }
  return plan;
}

double FaultPlan::max_latency_ms() const {
  double worst = 0.0;
  for (const auto& r : retunes) {
    if (r.latency_ms) worst = std::max(worst, *r.latency_ms);
  }
  return worst;
}

double FaultPlan::max_extra_delay_ms() const {
  double worst_jitter = 0.0;
  for (const auto& r : retunes) {
    if (r.jitter_ms) worst_jitter = std::max(worst_jitter, *r.jitter_ms);
  }
  double worst_reorder = 0.0;
  for (const auto& r : reorders) {
    worst_reorder = std::max(worst_reorder, r.extra_delay_ms);
  }
  return worst_jitter + worst_reorder;
}

std::string FaultPlan::to_string() const {
  std::string out;
  const auto clause = [&out](const std::string& text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  for (const auto& g : gilbert) {
    clause("ge@" + std::to_string(g.link) + ":pg=" + fmt(g.params.loss_good) +
           ",pb=" + fmt(g.params.loss_bad) +
           ",g2b=" + fmt(g.params.good_to_bad) +
           ",b2g=" + fmt(g.params.bad_to_good));
  }
  for (const auto& r : retunes) {
    std::string text =
        "set@" + std::to_string(r.link) + ":t=" + fmt(r.at_seconds);
    if (r.loss) text += ",loss=" + fmt(*r.loss);
    if (r.latency_ms) text += ",lat=" + fmt(*r.latency_ms);
    if (r.jitter_ms) text += ",jitter=" + fmt(*r.jitter_ms);
    clause(text);
  }
  for (const auto& o : outages) {
    clause("outage@" + std::to_string(o.node) + ":t=" + fmt(o.at_seconds) +
           ",dur=" + fmt(o.duration_seconds));
  }
  for (const auto& r : reorders) {
    clause("reorder@" + std::to_string(r.link) + ":p=" + fmt(r.probability) +
           ",delay=" + fmt(r.extra_delay_ms));
  }
  for (const auto& d : duplicates) {
    clause("dup@" + std::to_string(d.link) + ":p=" + fmt(d.probability));
  }
  return out;
}

const std::vector<NamedPlan>& benign_plans() {
  // Calibration notes (paper path: d = 6, rho = 0.01, threshold 0.018,
  // 100 pps, 60k packets = 600 s):
  //  * ge-burst: stationary loss ~0.0108 on l_2 (mean burst ~6.7
  //    traversals) — bursty but time-averaged right at rho.
  //  * loss-churn: l_1 alternates 0.002/0.02 in 100-150 s segments and
  //    *ends low*, so the time average stays below the threshold at any
  //    horizon.
  //  * latency-churn: l_3's base latency walks inside the configured SLA
  //    ([0, 5] ms) with a jitter retune the provisioning rule absorbs.
  //  * node-outage: two short crashes (~250 packets total); the blame
  //    each adjacent link absorbs is ~0.3% — well under the 0.8% margin.
  //  * reorder-dup: reordering/duplication only; no loss at all beyond
  //    rho, so it isolates the protocols' tolerance of disordered
  //    delivery.
  //  * everything: all of the above at reduced intensity on disjoint
  //    links.
  static const std::vector<NamedPlan> kPlans = {
      {"ge-burst", "ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15"},
      {"loss-churn",
       "set@1:t=0,loss=0.002;set@1:t=150,loss=0.02;set@1:t=300,loss=0.002;"
       "set@1:t=450,loss=0.02;set@1:t=550,loss=0.002"},
      {"latency-churn",
       "set@3:t=60,lat=4.5,jitter=0.5;set@3:t=240,lat=1;"
       "set@3:t=420,lat=4.8,jitter=1"},
      {"node-outage", "outage@3:t=120,dur=1.5;outage@2:t=360,dur=1"},
      {"reorder-dup", "reorder@1:p=0.05,delay=2;dup@4:p=0.01"},
      {"everything",
       "ge@2:pg=0.004,pb=0.2,g2b=0.002,b2g=0.2;"
       "set@1:t=100,loss=0.015;set@1:t=250,loss=0.002;"
       "outage@4:t=180,dur=1;reorder@5:p=0.02,delay=1;dup@0:p=0.005"},
  };
  return kPlans;
}

}  // namespace paai::faults
