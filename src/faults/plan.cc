#include "faults/plan.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>

#include "obs/json.h"

namespace paai::faults {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument("FaultPlan: " + message);
}

double parse_double(std::string_view text, const std::string& what) {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value)) {
    bad("bad number for " + what + ": '" + std::string(text) + "'");
  }
  return value;
}

std::size_t parse_index(std::string_view text, const std::string& what) {
  std::size_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    bad("bad index for " + what + ": '" + std::string(text) + "'");
  }
  return value;
}

void check_probability(double value, const std::string& what) {
  if (!(value >= 0.0 && value <= 1.0)) {
    bad(what + " must be within [0, 1], got " + std::to_string(value));
  }
}

void check_nonnegative(double value, const std::string& what) {
  if (!(value >= 0.0)) {
    bad(what + " must be >= 0, got " + std::to_string(value));
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\n' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// One clause, kind-agnostic: index plus key=value pairs.
struct Clause {
  std::string kind;
  std::size_t index = 0;
  std::vector<std::pair<std::string, double>> kv;

  std::optional<double> get(std::string_view key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return std::nullopt;
  }

  double require(std::string_view key) const {
    const auto v = get(key);
    if (!v) bad(kind + " clause needs " + std::string(key) + "=");
    return *v;
  }

  void check_keys(std::initializer_list<std::string_view> allowed) const {
    for (const auto& [k, v] : kv) {
      (void)v;
      if (std::find(allowed.begin(), allowed.end(), k) == allowed.end()) {
        bad("unknown key '" + k + "' in " + kind + " clause");
      }
    }
  }
};

void apply_clause(FaultPlan& plan, const Clause& c) {
  if (c.kind == "ge") {
    c.check_keys({"pg", "pb", "g2b", "b2g"});
    GilbertElliottFault f;
    f.link = c.index;
    f.params.loss_good = c.get("pg").value_or(0.0);
    f.params.loss_bad = c.require("pb");
    f.params.good_to_bad = c.require("g2b");
    f.params.bad_to_good = c.require("b2g");
    check_probability(f.params.loss_good, "ge pg");
    check_probability(f.params.loss_bad, "ge pb");
    check_probability(f.params.good_to_bad, "ge g2b");
    check_probability(f.params.bad_to_good, "ge b2g");
    plan.gilbert.push_back(f);
  } else if (c.kind == "set") {
    c.check_keys({"t", "loss", "lat", "jitter"});
    LinkRetune r;
    r.link = c.index;
    r.at_seconds = c.get("t").value_or(0.0);
    r.loss = c.get("loss");
    r.latency_ms = c.get("lat");
    r.jitter_ms = c.get("jitter");
    check_nonnegative(r.at_seconds, "set t");
    if (!r.loss && !r.latency_ms && !r.jitter_ms) {
      bad("set clause needs at least one of loss=, lat=, jitter=");
    }
    if (r.loss) check_probability(*r.loss, "set loss");
    if (r.latency_ms) check_nonnegative(*r.latency_ms, "set lat");
    if (r.jitter_ms) check_nonnegative(*r.jitter_ms, "set jitter");
    plan.retunes.push_back(r);
  } else if (c.kind == "outage") {
    c.check_keys({"t", "dur"});
    NodeOutage o;
    o.node = c.index;
    o.at_seconds = c.require("t");
    o.duration_seconds = c.require("dur");
    check_nonnegative(o.at_seconds, "outage t");
    if (!(o.duration_seconds > 0.0)) {
      bad("outage dur must be > 0, got " +
          std::to_string(o.duration_seconds));
    }
    plan.outages.push_back(o);
  } else if (c.kind == "reorder") {
    c.check_keys({"p", "delay"});
    ReorderFault r;
    r.link = c.index;
    r.probability = c.require("p");
    r.extra_delay_ms = c.require("delay");
    check_probability(r.probability, "reorder p");
    check_nonnegative(r.extra_delay_ms, "reorder delay");
    plan.reorders.push_back(r);
  } else if (c.kind == "dup") {
    c.check_keys({"p"});
    DuplicateFault d;
    d.link = c.index;
    d.probability = c.require("p");
    check_probability(d.probability, "dup p");
    plan.duplicates.push_back(d);
  } else {
    bad("unknown clause kind '" + c.kind +
        "' (expected ge, set, outage, reorder, or dup)");
  }
}

FaultPlan parse_compact(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    const std::string_view raw = trim(spec.substr(pos, semi - pos));
    pos = semi + 1;
    if (raw.empty()) continue;

    Clause c;
    const std::size_t at = raw.find('@');
    const std::size_t colon = raw.find(':');
    if (at == std::string_view::npos || colon == std::string_view::npos ||
        colon < at) {
      bad("clause '" + std::string(raw) +
          "' does not match kind@index:key=value[,key=value...]");
    }
    c.kind = std::string(trim(raw.substr(0, at)));
    c.index = parse_index(trim(raw.substr(at + 1, colon - at - 1)),
                          c.kind + " index");
    std::string_view rest = raw.substr(colon + 1);
    std::size_t kpos = 0;
    while (kpos <= rest.size()) {
      const std::size_t comma = std::min(rest.find(',', kpos), rest.size());
      const std::string_view kv = trim(rest.substr(kpos, comma - kpos));
      kpos = comma + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        bad("expected key=value, got '" + std::string(kv) + "' in " +
            c.kind + " clause");
      }
      const std::string key(trim(kv.substr(0, eq)));
      c.kv.emplace_back(key,
                        parse_double(trim(kv.substr(eq + 1)),
                                     c.kind + " " + key));
    }
    if (c.kv.empty()) bad(c.kind + " clause has no key=value pairs");
    apply_clause(plan, c);
  }
  return plan;
}

FaultPlan parse_json(std::string_view spec) {
  std::string error;
  const auto doc = obs::json_parse(spec, &error);
  if (!doc) bad("JSON parse error: " + error);
  const obs::JsonValue* clauses = &*doc;
  if (doc->is_object()) {
    clauses = doc->find("faults");
    if (clauses == nullptr || !clauses->is_array()) {
      bad("JSON object form needs a \"faults\" array member");
    }
  } else if (!doc->is_array()) {
    bad("JSON form must be an array of clause objects");
  }

  FaultPlan plan;
  for (const auto& entry : clauses->array) {
    if (!entry.is_object()) bad("JSON clause must be an object");
    Clause c;
    bool have_index = false;
    for (const auto& [key, value] : entry.object) {
      if (key == "kind") {
        if (!value.is_string()) bad("JSON clause \"kind\" must be a string");
        c.kind = value.string;
        continue;
      }
      if (!value.is_number()) {
        bad("JSON clause key '" + key + "' must be a number");
      }
      if (key == "link" || key == "node") {
        if (!(value.number >= 0.0)) bad(key + " must be >= 0");
        c.index = static_cast<std::size_t>(value.number);
        have_index = true;
        continue;
      }
      c.kv.emplace_back(key, value.number);
    }
    if (c.kind.empty()) bad("JSON clause is missing \"kind\"");
    if (!have_index) bad(c.kind + " JSON clause needs \"link\" or \"node\"");
    apply_clause(plan, c);
  }
  return plan;
}

std::string fmt(double value) {
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc{} ? std::string(buffer, ptr) : "0";
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  const std::string_view trimmed = trim(spec);
  if (trimmed.empty()) return FaultPlan{};
  if (trimmed.front() == '[' || trimmed.front() == '{') {
    return parse_json(trimmed);
  }
  return parse_compact(trimmed);
}

double FaultPlan::max_latency_ms() const {
  double worst = 0.0;
  for (const auto& r : retunes) {
    if (r.latency_ms) worst = std::max(worst, *r.latency_ms);
  }
  return worst;
}

double FaultPlan::max_extra_delay_ms() const {
  double worst_jitter = 0.0;
  for (const auto& r : retunes) {
    if (r.jitter_ms) worst_jitter = std::max(worst_jitter, *r.jitter_ms);
  }
  double worst_reorder = 0.0;
  for (const auto& r : reorders) {
    worst_reorder = std::max(worst_reorder, r.extra_delay_ms);
  }
  return worst_jitter + worst_reorder;
}

std::string FaultPlan::to_string() const {
  std::string out;
  const auto clause = [&out](const std::string& text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  for (const auto& g : gilbert) {
    clause("ge@" + std::to_string(g.link) + ":pg=" + fmt(g.params.loss_good) +
           ",pb=" + fmt(g.params.loss_bad) +
           ",g2b=" + fmt(g.params.good_to_bad) +
           ",b2g=" + fmt(g.params.bad_to_good));
  }
  for (const auto& r : retunes) {
    std::string text =
        "set@" + std::to_string(r.link) + ":t=" + fmt(r.at_seconds);
    if (r.loss) text += ",loss=" + fmt(*r.loss);
    if (r.latency_ms) text += ",lat=" + fmt(*r.latency_ms);
    if (r.jitter_ms) text += ",jitter=" + fmt(*r.jitter_ms);
    clause(text);
  }
  for (const auto& o : outages) {
    clause("outage@" + std::to_string(o.node) + ":t=" + fmt(o.at_seconds) +
           ",dur=" + fmt(o.duration_seconds));
  }
  for (const auto& r : reorders) {
    clause("reorder@" + std::to_string(r.link) + ":p=" + fmt(r.probability) +
           ",delay=" + fmt(r.extra_delay_ms));
  }
  for (const auto& d : duplicates) {
    clause("dup@" + std::to_string(d.link) + ":p=" + fmt(d.probability));
  }
  return out;
}

const std::vector<NamedPlan>& benign_plans() {
  // Calibration notes (paper path: d = 6, rho = 0.01, threshold 0.018,
  // 100 pps, 60k packets = 600 s):
  //  * ge-burst: stationary loss ~0.0108 on l_2 (mean burst ~6.7
  //    traversals) — bursty but time-averaged right at rho.
  //  * loss-churn: l_1 alternates 0.002/0.02 in 100-150 s segments and
  //    *ends low*, so the time average stays below the threshold at any
  //    horizon.
  //  * latency-churn: l_3's base latency walks inside the configured SLA
  //    ([0, 5] ms) with a jitter retune the provisioning rule absorbs.
  //  * node-outage: two short crashes (~250 packets total); the blame
  //    each adjacent link absorbs is ~0.3% — well under the 0.8% margin.
  //  * reorder-dup: reordering/duplication only; no loss at all beyond
  //    rho, so it isolates the protocols' tolerance of disordered
  //    delivery.
  //  * everything: all of the above at reduced intensity on disjoint
  //    links.
  static const std::vector<NamedPlan> kPlans = {
      {"ge-burst", "ge@2:pg=0.005,pb=0.3,g2b=0.003,b2g=0.15"},
      {"loss-churn",
       "set@1:t=0,loss=0.002;set@1:t=150,loss=0.02;set@1:t=300,loss=0.002;"
       "set@1:t=450,loss=0.02;set@1:t=550,loss=0.002"},
      {"latency-churn",
       "set@3:t=60,lat=4.5,jitter=0.5;set@3:t=240,lat=1;"
       "set@3:t=420,lat=4.8,jitter=1"},
      {"node-outage", "outage@3:t=120,dur=1.5;outage@2:t=360,dur=1"},
      {"reorder-dup", "reorder@1:p=0.05,delay=2;dup@4:p=0.01"},
      {"everything",
       "ge@2:pg=0.004,pb=0.2,g2b=0.002,b2g=0.2;"
       "set@1:t=100,loss=0.015;set@1:t=250,loss=0.002;"
       "outage@4:t=180,dur=1;reorder@5:p=0.02,delay=1;dup@0:p=0.005"},
  };
  return kPlans;
}

}  // namespace paai::faults
