// FaultPlan: a declarative, schedule-driven description of benign faults.
//
// A plan is a list of clauses, parseable from a compact string (CLI/bench
// friendly) or a JSON array (config friendly). The compact grammar — see
// docs/FAULTS.md for the full reference:
//
//   plan    := clause (';' clause)*
//   clause  := kind '@' index ':' key '=' value (',' key '=' value)*
//
//   ge@L      : pg=, pb=, g2b=, b2g=          Gilbert–Elliott on link L
//   set@L     : t=, loss=, lat=, jitter=      retune link L at t seconds
//   outage@N  : t=, dur=                      crash node N at t for dur s
//   reorder@L : p=, delay=                    reordering knob on link L
//   dup@L     : p=                            duplication knob on link L
//
// Times/durations are seconds, latencies/delays milliseconds, everything
// else per-traversal probabilities. The JSON form is an array of objects
// with a "kind" member plus the same keys (and "link"/"node" for the
// index): [{"kind":"outage","node":3,"t":120,"dur":2}, ...].
//
// Plans carry no RNG state of their own: all randomness is drawn from the
// per-link streams at simulation time, so a plan is bit-identical across
// --jobs values and repeated runs — the same property everything in
// src/exec relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/loss_process.h"

namespace paai::faults {

struct GilbertElliottFault {
  std::size_t link = 0;
  GilbertElliott::Params params;
};

/// Piecewise link schedule point: at `at_seconds`, set the given knobs on
/// the link (absent knobs keep their current value). Several clauses for
/// the same link form a loss/latency churn schedule.
struct LinkRetune {
  std::size_t link = 0;
  double at_seconds = 0.0;
  std::optional<double> loss;        // per-traversal drop probability
  std::optional<double> latency_ms;  // new base latency
  std::optional<double> jitter_ms;   // new per-traversal jitter bound
};

/// Crash node `node` at `at_seconds` for `duration_seconds`: every
/// delivery in the window is blackholed and the node's in-flight protocol
/// state (pending tables, interval counters) is dropped.
struct NodeOutage {
  std::size_t node = 0;
  double at_seconds = 0.0;
  double duration_seconds = 0.0;
};

struct ReorderFault {
  std::size_t link = 0;
  double probability = 0.0;
  double extra_delay_ms = 0.0;
};

struct DuplicateFault {
  std::size_t link = 0;
  double probability = 0.0;
};

struct FaultPlan {
  std::vector<GilbertElliottFault> gilbert;
  std::vector<LinkRetune> retunes;
  std::vector<NodeOutage> outages;
  std::vector<ReorderFault> reorders;
  std::vector<DuplicateFault> duplicates;

  bool empty() const {
    return gilbert.empty() && retunes.empty() && outages.empty() &&
           reorders.empty() && duplicates.empty();
  }

  /// Worst base latency any retune can impose (0 when none retunes
  /// latency). The runner folds the excess over the path's configured
  /// maximum into the RTT bounds, so wait timers are provisioned for the
  /// schedule the way a deployment provisions for its SLA envelope.
  double max_latency_ms() const;

  /// Worst per-traversal extra delay (reordering, jitter retunes) —
  /// likewise folded into timer provisioning.
  double max_extra_delay_ms() const;

  /// Canonical compact-grammar rendering (parse(to_string()) round-trips).
  std::string to_string() const;

  /// Parses the compact grammar, or — when the spec starts with '[' or
  /// '{' — the JSON form. Throws std::invalid_argument with a pointed
  /// message on any malformed clause, unknown key, or out-of-range value.
  static FaultPlan parse(std::string_view spec);
};

/// A shipped, named benign fault plan (calibrated for the paper's
/// reference path: d = 6, rho = 0.01, threshold 0.018, 100 pps).
struct NamedPlan {
  const char* name;
  const char* spec;
};

/// The benign plans the chaos suite and bench_robustness sweep. Each is
/// calibrated so that an honest path's time-averaged per-link loss stays
/// clearly below the accusation threshold — the protocols must ride them
/// out without convicting anyone.
const std::vector<NamedPlan>& benign_plans();

}  // namespace paai::faults
