// Benign-fault loss models beyond the paper's i.i.d. Bernoulli coin.
//
// The paper's §3.2/§8.1 loss model is memoryless; real links exhibit
// bursty, correlated loss. The classic two-state Gilbert–Elliott chain
// captures that regime: a link is in a Good or Bad state, each with its
// own per-traversal drop probability, and flips state with fixed
// per-traversal transition probabilities. Mean burst length is
// 1 / bad_to_good traversals; the long-run loss rate is the stationary
// mixture — benign plans are calibrated so that it stays near the natural
// rate rho even though losses arrive in clumps.
//
// Determinism: a process draws only from the RNG the owning link passes
// in (each link has a private stream forked from the path seed), so runs
// are bit-identical across --jobs values and across repetitions.
#pragma once

#include <cstdint>

#include "sim/link.h"
#include "sim/time.h"
#include "util/rng.h"

namespace paai::faults {

/// Gilbert–Elliott two-state bursty loss. Parameters are per-traversal
/// probabilities; construction validates them (throws
/// std::invalid_argument on NaN or out-of-range).
class GilbertElliott final : public sim::LossProcess {
 public:
  struct Params {
    double loss_good = 0.0;     // drop probability in the Good state
    double loss_bad = 0.0;      // drop probability in the Bad state
    double good_to_bad = 0.0;   // per-traversal P[Good -> Bad]
    double bad_to_good = 1.0;   // per-traversal P[Bad -> Good]
  };

  explicit GilbertElliott(const Params& params);

  bool drop(sim::SimTime now, Rng& rng) override;

  /// Long-run loss rate: the stationary Good/Bad mixture of the chain.
  double stationary_loss() const;

  bool in_bad_state() const { return bad_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  Params params_;
  bool bad_ = false;
  std::uint64_t transitions_ = 0;
};

}  // namespace paai::faults
