#include "faults/injector.h"

#include <stdexcept>
#include <string>

#include "obs/tracer.h"
#include "sim/time.h"

namespace paai::faults {

namespace {

void check_link(std::size_t link, std::size_t d, const char* what) {
  if (link >= d) {
    throw std::invalid_argument(
        std::string("FaultInjector: ") + what + " link " +
        std::to_string(link) + " outside path (d = " + std::to_string(d) +
        ")");
  }
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, sim::PathNetwork& net,
                             const FaultPlan& plan)
    : sim_(sim), net_(net), plan_(plan) {
  const std::size_t d = net.length();
  auto& reg = obs::MetricsRegistry::global();
  obs_.outages = reg.counter("faults.outages");
  obs_.restarts = reg.counter("faults.restarts");
  obs_.retunes = reg.counter("faults.retunes");
  obs_.node_drops = reg.counter("faults.node_drops");
  obs::TraceRing* trace = net.config().trace;
  const std::uint32_t track = net.config().trace_track;

  for (const auto& g : plan_.gilbert) {
    check_link(g.link, d, "Gilbert-Elliott");
    processes_.push_back(std::make_unique<GilbertElliott>(g.params));
    net.link(g.link).set_loss_process(processes_.back().get());
  }
  for (const auto& r : plan_.reorders) {
    check_link(r.link, d, "reorder");
    net.link(r.link).set_reordering(r.probability,
                                    sim::milliseconds(r.extra_delay_ms));
  }
  for (const auto& dup : plan_.duplicates) {
    check_link(dup.link, d, "dup");
    net.link(dup.link).set_duplication(dup.probability);
  }

  for (const auto& r : plan_.retunes) {
    check_link(r.link, d, "retune");
    sim::Link* link = &net.link(r.link);
    const auto retunes = obs_.retunes;
    sim_.at(sim::seconds(r.at_seconds),
            [link, r, retunes, trace, track, this] {
              if (r.loss) link->set_loss_rate(*r.loss);
              if (r.latency_ms) {
                link->set_latency(sim::milliseconds(*r.latency_ms));
              }
              if (r.jitter_ms) {
                link->set_jitter(sim::milliseconds(*r.jitter_ms));
              }
              retunes.add();
              if (trace != nullptr) {
                trace->instant("fault retune", "faults",
                               sim_.now() / sim::kMicrosecond, track,
                               static_cast<std::int64_t>(r.link));
              }
            });
  }

  for (const auto& o : plan_.outages) {
    if (o.node < 1 || o.node >= d) {
      throw std::invalid_argument(
          "FaultInjector: outage node " + std::to_string(o.node) +
          " must be an intermediate node (1.." + std::to_string(d - 1) +
          ")");
    }
    sim::Node* node = &net.node(o.node);
    const auto outages = obs_.outages;
    const auto restarts = obs_.restarts;
    sim_.at(sim::seconds(o.at_seconds),
            [node, outages, trace, track, this] {
              node->set_up(false);
              outages.add();
              if (trace != nullptr) {
                trace->instant("fault crash", "faults",
                               sim_.now() / sim::kMicrosecond, track,
                               static_cast<std::int64_t>(node->index()));
              }
            });
    sim_.at(sim::seconds(o.at_seconds + o.duration_seconds),
            [node, restarts, trace, track, this] {
              node->set_up(true);
              restarts.add();
              if (trace != nullptr) {
                trace->instant("fault restart", "faults",
                               sim_.now() / sim::kMicrosecond, track,
                               static_cast<std::int64_t>(node->index()));
              }
            });
  }
}

bool FaultInjector::burst_active() const {
  for (const auto& process : processes_) {
    if (process->in_bad_state()) return true;
  }
  return false;
}

bool FaultInjector::outage_active(sim::SimTime now) const {
  for (const auto& o : plan_.outages) {
    const sim::SimTime start = sim::seconds(o.at_seconds);
    const sim::SimTime end =
        sim::seconds(o.at_seconds + o.duration_seconds);
    if (now >= start && now < end) return true;
  }
  return false;
}

bool FaultInjector::cover_active(sim::SimTime now) const {
  return burst_active() || outage_active(now);
}

void FaultInjector::finish() {
  std::uint64_t blackholed = 0;
  for (std::size_t i = 0; i <= net_.length(); ++i) {
    blackholed += net_.node(i).crash_drops();
  }
  obs_.node_drops.add(blackholed);
}

}  // namespace paai::faults
