// Burst-aware windowed detection state shared by the three score tables
// (ScoreTable / Paai2ScoreTable / FlScoreTable).
//
// The cumulative estimators in score.h answer "what fraction of this
// link's traffic is lost overall?" — which is exactly the statistic an
// adaptive colluder games: by dropping only inside an honest link's
// Gilbert-Elliott bursts it keeps its cumulative theta inside the noise
// margin (bench_robustness frontier, collude-r10). The windowed layer
// keeps a second, time-local view: the monitored-unit axis is cut into
// fixed-width windows of W units, each closed window yields a
// per-link sliding estimate theta_w, and a WindowLedger accumulates
//
//   - how many closed windows were "hot"  (theta_w > kWindowHighTheta)
//     in a row (current streak + a monotone max-streak latch),
//   - how many were "flagrant"            (theta_w > kWindowFlagrantTheta),
//   - the largest theta_w ever seen (the burstiness numerator),
//   - a short ring of recent theta_w values for forensics.
//
// Multi-level conviction (BlameSpec, --blame=...): the cumulative margin
// rule stays the baseline; windowed/hybrid modes add clauses that fire
// on time-concentrated evidence whose cumulative trace rides inside the
// margin. The ledger is maintained unconditionally — margin-mode
// verdicts never read it, which is what makes
// `--blame=margin` byte-identical to the pre-window code
// (tests/stream_test.cc WindowedNeverAffectsMarginMode).
//
// Contracts: every ledger mutation is driven by the same table mutators
// the forensic event stream replays (src/stream bit-identity); the
// ledger's counters are plain u64s/doubles keyed by window index, so
// snapshots (paai.state.v1 "window" objects) restore them losslessly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paai::protocols {

/// Windows whose theta_w clears this are "hot": individually unremarkable
/// but suspicious in a run. Sits above the decision threshold (0.018 is
/// the paper-calibrated midpoint of [rho=0.01, alpha=0.03]) minus the
/// small-sample slack a W=192 window carries, and above every honest
/// link's cumulative estimate in the benign sweep (max observed 0.0134).
inline constexpr double kWindowHighTheta = 0.014;

/// Windows whose theta_w clears this are "flagrant": loss so concentrated
/// that a single such window plus an above-threshold cumulative estimate
/// convicts. 2.5x the per-link threshold alpha=0.03 inverted through the
/// 2.6-traversal exponent — benign GE bursts at the frontier's cover
/// settings never reach it through PAAI-1's 1/36 sampling.
inline constexpr double kWindowFlagrantTheta = 0.045;

/// Default window width in monitored units. At the paper's 100 pps and
/// PAAI-1's p=1/36 probe sampling, 192 units ~ covers a handful of GE
/// bursts, long enough that an all-clean window reads theta_w = 0 and a
/// colluder-straddled window reads far above kWindowHighTheta.
inline constexpr std::uint64_t kDefaultWindowWidth = 192;

/// Default consecutive-hot-window requirement for --blame=hybrid.
inline constexpr std::uint64_t kDefaultHybridStreak = 4;

/// Default repetition count for --blame=persistent (PR 7's calibration).
inline constexpr std::uint64_t kDefaultPersistence = 3;

/// Completed-window theta_w values retained per link for forensics.
inline constexpr std::size_t kWindowRingCap = 8;

/// Unified conviction-rule spec behind --blame. Grammar
/// (util/specgrammar lexical conventions, parsed by parse()):
///
///   blame := 'margin'
///          | 'persistent' [':' K]        K in [1, 2^20)
///          | 'windowed'   [':' W]        W in [8, 2^20)
///          | 'hybrid'     [':' K [',' W]]  K in [1, 8]
///
/// ("standard" is accepted as a legacy alias for "margin".) The rules:
///
///   margin       theta_i - sd > threshold            (paper Theorem 2)
///   persistent:K s_i >= K and theta_i > threshold    (PR 7)
///   windowed:W   margin OR (>=1 flagrant window and theta_i > threshold)
///   hybrid:K,W   windowed OR (max hot streak >= K and
///                             theta_i > kWindowHighTheta)
///
/// encode32()/decode32() pack a spec into the int32 `link` field of the
/// kRunConfig forensic event (margin = 0 and persistent:K = K keep the
/// PR 7 wire format; windowed/hybrid use tag bits 28+).
struct BlameSpec {
  enum class Mode : std::uint8_t { kMargin, kPersistent, kWindowed, kHybrid };

  Mode mode = Mode::kMargin;
  std::uint64_t k = 0;                     // persistence / streak length
  std::uint64_t w = kDefaultWindowWidth;   // window width, monitored units

  static BlameSpec parse(std::string_view text);
  std::string to_string() const;

  std::int32_t encode32() const;
  static BlameSpec decode32(std::int32_t code);

  bool uses_windows() const {
    return mode == Mode::kWindowed || mode == Mode::kHybrid;
  }

  friend bool operator==(const BlameSpec& a, const BlameSpec& b) {
    return a.mode == b.mode && a.k == b.k && a.w == b.w;
  }
  friend bool operator!=(const BlameSpec& a, const BlameSpec& b) {
    return !(a == b);
  }
};

/// Per-link accumulator over *closed* windows. The owning table cuts its
/// monitored-unit axis every `width` units, computes that window's
/// per-link theta_w vector, and calls finalize(); the ledger never sees
/// the in-progress window (its fill is derivable as axis % width, so
/// snapshots only carry the table's current-window bins plus this
/// ledger's counters).
class WindowLedger {
 public:
  WindowLedger(std::size_t num_links, std::uint64_t width);

  std::uint64_t width() const { return width_; }

  /// Changes the window width. Only legal before any window closed and
  /// with an empty current window (the owner enforces axis == 0).
  void set_width(std::uint64_t width);

  /// Closes one window with the given per-link sliding estimates.
  void finalize(const std::vector<double>& theta_w);

  std::uint64_t completed() const { return completed_; }
  std::size_t num_links() const { return links_.size(); }

  std::uint64_t cur_streak(std::size_t link) const {
    return links_[link].cur_streak;
  }
  /// Monotone latch: longest run of consecutive hot windows ever seen.
  /// (A latch, not "last K windows", so a colluder whose bursts end
  /// before the final checkpoint still shows its streak.)
  std::uint64_t max_streak(std::size_t link) const {
    return links_[link].max_streak;
  }
  std::uint64_t flagrant_windows(std::size_t link) const {
    return links_[link].flagrant;
  }
  double max_theta_w(std::size_t link) const {
    return links_[link].max_theta_w;
  }
  /// Last kWindowRingCap completed-window estimates, oldest first.
  const std::vector<double>& recent(std::size_t link) const {
    return links_[link].recent;
  }

  /// Burstiness statistic: max window blame-share over cumulative share.
  /// ~1 for steady loss, >> 1 when blame concentrates in time. 0 until a
  /// window closed or while the cumulative estimate is 0.
  double burstiness(std::size_t link, double cumulative_theta) const;

  /// Rebuilds the ledger from a snapshot (paai.state.v1 "window" object).
  /// All vectors must have num_links() entries and each recent ring at
  /// most kWindowRingCap values; throws std::invalid_argument otherwise.
  void restore(std::uint64_t completed,
               const std::vector<std::uint64_t>& cur_streak,
               const std::vector<std::uint64_t>& max_streak,
               const std::vector<std::uint64_t>& flagrant,
               const std::vector<double>& max_theta_w,
               const std::vector<std::vector<double>>& recent);

  void reset();

 private:
  struct LinkState {
    std::uint64_t cur_streak = 0;
    std::uint64_t max_streak = 0;
    std::uint64_t flagrant = 0;
    double max_theta_w = 0.0;
    std::vector<double> recent;
  };

  std::vector<LinkState> links_;
  std::uint64_t width_;
  std::uint64_t completed_ = 0;
};

}  // namespace paai::protocols
