// Scoring and identification (§5 "score"/"identify" phases, §6.1 phases
// 4-5, §6.2 phases 4-5).
//
// ScoreTable — used by the onion-report protocols (full-ack, PAAI-1,
// Combination 1, statistical FL). Each monitored unit (packet, probe, or
// sampled interval slot) yields either "no blame" or "blame link l_i"; the
// per-link drop score s_i over n observations estimates the link's drop
// rate. Because a blame on l_i can stem from any of the (up to) t
// traversals that crossed it during one monitored unit (data + acks +
// probes), the per-traversal rate is recovered as
//     theta_i = 1 - (1 - s_i/n)^(1/t).
// The identify phase convicts l_i when theta_i exceeds the decision
// threshold — set between the natural rate rho and the per-link threshold
// alpha (we use the midpoint, giving the symmetric eps-margins Theorem 2's
// Hoeffding analysis assumes).
//
// Paai2ScoreTable — PAAI-2's interval scoring. On a failed probe with
// selected node F_e, every link of the prefix [l_0, l_{e-1}] gains one
// point (the paper's rule). The source also knows e for every probe (it
// computes the selection predicates itself), so the same information is
// kept as per-selection counters from which per-link rates are estimated:
//     q_e      = P[prefix-e failure]           (from failures when sel == e)
//     g_j      = (q_{j+1} - q_j) / (1 - q_j)   (per-link, per-"cycle")
//     theta_j  = 1 - (1 - g_j)^(1/t)           (per traversal, t = 3)
//
// FlScoreTable — statistical FL's accumulated per-node sampled counts
// (§6.2): theta_j = 1 - S_{j+1}/S_j over the counts folded in from each
// reported interval.
//
// All three tables additionally keep a windowed view of the same axis
// (protocols/window.h): every `W` monitored units they close a window,
// compute that window's per-link sliding estimate theta_w, and feed it
// into a WindowLedger. The ledger powers the windowed/hybrid conviction
// rules behind --blame (BlameSpec) — burst-concentrated loss whose
// cumulative trace rides inside the margin still shows up as hot or
// flagrant windows. The ledger is maintained in every mode; margin-mode
// verdicts never read it.
//
// All three tables are *stream-consumable*: every mutation corresponds
// 1:1 to a forensic event the protocols log (obs/events.h), the counters
// are exposed for snapshotting, and restore() rebuilds a table from a
// snapshot bit-identically — src/stream's online engine replays a
// recorded event log through these exact classes, so batch and streaming
// convictions agree to the last bit.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "protocols/window.h"

namespace paai::protocols {

class ScoreTable {
 public:
  /// `traversals` = per-unit link exposure in the typical case (PAAI-1:
  /// data + probe + onion, effectively ~2.6). `probe_extra` supports
  /// protocols whose probe rounds are *conditional* (full-ack, Comb-1):
  /// each round that actually probed adds this many extra traversals, so
  /// the effective exposure is traversals + probe_extra * (probes / n).
  /// This keeps estimates calibrated even when an adversary forces every
  /// round into a probe (e.g. by blackholing destination acks) — a fixed
  /// exponent would inflate honest upstream links threefold there.
  ScoreTable(std::size_t num_links, double traversals,
             double probe_extra = 0.0);

  /// Records that the current monitored unit ran a probe round.
  void note_probe() { ++probes_; }

  /// Records one monitored unit with no localized loss.
  void add_clean();

  /// Records one monitored unit blamed on link `link`.
  void blame(std::size_t link);

  std::uint64_t observations() const { return n_; }
  std::uint64_t score(std::size_t link) const { return s_[link]; }
  std::uint64_t probes() const { return probes_; }

  /// Selects the conviction rule (see BlameSpec in protocols/window.h).
  /// Must be called before the first monitored unit when it changes the
  /// window width; throws std::logic_error otherwise.
  void set_blame(const BlameSpec& spec);
  const BlameSpec& blame_spec() const { return blame_; }

  /// Legacy shim for --blame=persistent:K (PR 7 call sites/tests):
  /// K > 0 selects persistent mode, K == 0 margin mode.
  void set_persistence(std::uint64_t k);
  std::uint64_t persistence() const {
    return blame_.mode == BlameSpec::Mode::kPersistent ? blame_.k : 0;
  }

  /// Per-traversal drop-rate estimate for a link (0 when n == 0).
  double theta(std::size_t link) const;
  std::vector<double> thetas() const;

  /// Links convicted under the configured blame rule.
  std::vector<std::size_t> convicted(double threshold) const;

  std::size_t num_links() const { return s_.size(); }

  /// Windowed view: the ledger of closed windows, the current window's
  /// per-link blame bins, and the burstiness statistic (max window
  /// blame-share over cumulative share).
  const WindowLedger& windows() const { return ledger_; }
  const std::vector<std::uint64_t>& window_bins() const { return win_s_; }
  std::uint64_t window_fill() const { return n_ % ledger_.width(); }
  double burstiness(std::size_t link) const {
    return ledger_.burstiness(link, theta(link));
  }

  /// Rebuilds the mutable counters from a snapshot (paai.state.v1).
  /// `s.size()` must equal num_links(); throws std::invalid_argument
  /// otherwise. Calibration (traversals/probe_extra/blame) is
  /// construction-time state and is not touched. Window state is zeroed
  /// (legacy snapshots carry none); restore_window() rebuilds it.
  void restore(const std::vector<std::uint64_t>& s, std::uint64_t n,
               std::uint64_t probes);

  /// Rebuilds the window layer from a snapshot's "window" object: the
  /// current window's blame bins plus the ledger counters. Call after
  /// restore(); `bins.size()` must equal num_links().
  void restore_window(const std::vector<std::uint64_t>& bins,
                      std::uint64_t completed,
                      const std::vector<std::uint64_t>& cur_streak,
                      const std::vector<std::uint64_t>& max_streak,
                      const std::vector<std::uint64_t>& flagrant,
                      const std::vector<double>& max_theta_w,
                      const std::vector<std::vector<double>>& recent);

  void reset();

 private:
  double effective_traversals() const;
  bool margin_convicts(std::size_t link, double threshold) const;
  void roll_window();

  std::vector<std::uint64_t> s_;
  std::uint64_t n_ = 0;
  std::uint64_t probes_ = 0;
  BlameSpec blame_;
  double traversals_;
  double probe_extra_;
  std::vector<std::uint64_t> win_s_;  // current window's blame bins
  WindowLedger ledger_;
  obs::Counter obs_updates_;
  obs::Counter obs_blames_;
};

class Paai2ScoreTable {
 public:
  explicit Paai2ScoreTable(std::size_t num_links);

  /// Every data packet sent (probed or not) is one trial.
  void add_data_packet();

  /// Records a probe outcome: `selected` = the selected node index e in
  /// [1, d]; `prefix_failed` = the decoded report did not match the
  /// expected value (or never arrived).
  void add_probe(std::size_t selected, bool prefix_failed);

  std::uint64_t data_packets() const { return data_packets_; }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t interval_score(std::size_t link) const { return s_[link]; }
  std::uint64_t selections(std::size_t e) const { return sel_n_[e]; }
  std::uint64_t selection_failures(std::size_t e) const { return sel_f_[e]; }

  /// Selects the conviction rule; the probe count is the window axis.
  void set_blame(const BlameSpec& spec);
  const BlameSpec& blame_spec() const { return blame_; }

  /// Per-traversal per-link estimates via the prefix-difference estimator.
  std::vector<double> thetas() const;

  std::vector<std::size_t> convicted(double threshold) const;

  /// End-to-end data-path drop rate psi observed by the source
  /// (probes / data packets — a probe fires exactly when the destination
  /// ack chain broke somewhere).
  double observed_e2e_rate() const;

  std::size_t num_links() const { return s_.size(); }

  const WindowLedger& windows() const { return ledger_; }
  const std::vector<std::uint64_t>& window_sel_n() const { return win_sel_n_; }
  const std::vector<std::uint64_t>& window_sel_f() const { return win_sel_f_; }
  std::uint64_t window_fill() const { return probes_ % ledger_.width(); }
  double burstiness(std::size_t link) const {
    return ledger_.burstiness(link, thetas()[link]);
  }

  /// Rebuilds the mutable counters from a snapshot (paai.state.v1).
  /// Vector sizes must match the construction shape; throws
  /// std::invalid_argument otherwise. Window state is zeroed;
  /// restore_window() rebuilds it.
  void restore(const std::vector<std::uint64_t>& s,
               const std::vector<std::uint64_t>& sel_n,
               const std::vector<std::uint64_t>& sel_f,
               std::uint64_t data_packets, std::uint64_t probes);

  /// Rebuilds the window layer: current-window selection bins (both
  /// sized num_links() + 1) plus the ledger counters.
  void restore_window(const std::vector<std::uint64_t>& sel_n_bins,
                      const std::vector<std::uint64_t>& sel_f_bins,
                      std::uint64_t completed,
                      const std::vector<std::uint64_t>& cur_streak,
                      const std::vector<std::uint64_t>& max_streak,
                      const std::vector<std::uint64_t>& flagrant,
                      const std::vector<double>& max_theta_w,
                      const std::vector<std::vector<double>>& recent);

  void reset();

 private:
  bool margin_convicts(std::size_t link, double threshold,
                       const std::vector<double>& th) const;
  void roll_window();

  std::vector<std::uint64_t> s_;       // the paper's interval scores
  std::vector<std::uint64_t> sel_n_;   // probes with selection e   [1..d]
  std::vector<std::uint64_t> sel_f_;   // ... of which prefix-failed [1..d]
  std::uint64_t data_packets_ = 0;
  std::uint64_t probes_ = 0;
  BlameSpec blame_;
  std::vector<std::uint64_t> win_sel_n_;  // current window's bins [1..d]
  std::vector<std::uint64_t> win_sel_f_;
  WindowLedger ledger_;
  obs::Counter obs_updates_;
  obs::Counter obs_blames_;
};

/// Statistical FL's accumulated sampled counts (§6.2 phases 4-5): node
/// F_i counts the K_i-sampled packets it forwards per reporting interval;
/// the source folds each interval's reported counts into per-node
/// accumulators S_0..S_d and estimates theta_j = 1 - S_{j+1}/S_j.
/// Accumulation is in doubles (counts are integers, so sums stay exact
/// below 2^53) to mirror the estimator the paper's analysis assumes.
class FlScoreTable {
 public:
  explicit FlScoreTable(std::size_t num_links);

  /// Folds one node's count for a reported interval: S_node += count.
  /// The statfl source calls this for node = 0..d in ascending order,
  /// once per interval whose onion report verified end-to-end.
  void add_count(std::size_t node, std::uint64_t count);

  /// Marks a reporting interval folded in (after its d+1 add_count calls).
  void interval_reported();

  /// Marks a reporting interval abandoned (report never arrived).
  void interval_lost() { ++intervals_lost_; }

  double accumulated(std::size_t node) const { return acc_[node]; }
  std::uint64_t intervals_reported() const { return intervals_reported_; }
  std::uint64_t intervals_lost() const { return intervals_lost_; }
  std::size_t num_links() const { return acc_.size() - 1; }

  /// Selects the conviction rule; reported intervals are the window axis.
  void set_blame(const BlameSpec& spec);
  const BlameSpec& blame_spec() const { return blame_; }

  /// theta_j = max(0, 1 - S_{j+1}/S_j); 0 while S_j is empty.
  std::vector<double> thetas() const;

  /// One-standard-error evidence rule over the count ratios (see
  /// convicted() in statfl.cc history: Var(theta_j) ~ 2 S_{j+1} / S_j^2,
  /// +1 so a total blackhole stays convictable).
  std::vector<std::size_t> convicted(double threshold) const;

  /// 1 - S_d/S_0: the end-to-end drop rate the counts imply.
  double observed_e2e_rate() const;

  const WindowLedger& windows() const { return ledger_; }
  const std::vector<double>& window_counts() const { return win_acc_; }
  std::uint64_t window_fill() const {
    return intervals_reported_ % ledger_.width();
  }
  double burstiness(std::size_t link) const {
    return ledger_.burstiness(link, thetas()[link]);
  }

  /// Rebuilds the accumulators from a snapshot. `acc.size()` must be
  /// num_links() + 1; throws std::invalid_argument otherwise. Window
  /// state is zeroed; restore_window() rebuilds it.
  void restore(const std::vector<double>& acc,
               std::uint64_t intervals_reported, std::uint64_t intervals_lost);

  /// Rebuilds the window layer: current-window per-node count sums
  /// (sized num_links() + 1) plus the ledger counters.
  void restore_window(const std::vector<double>& counts,
                      std::uint64_t completed,
                      const std::vector<std::uint64_t>& cur_streak,
                      const std::vector<std::uint64_t>& max_streak,
                      const std::vector<std::uint64_t>& flagrant,
                      const std::vector<double>& max_theta_w,
                      const std::vector<std::vector<double>>& recent);

  void reset();

 private:
  bool margin_convicts(std::size_t link, double threshold,
                       const std::vector<double>& th) const;
  void roll_window();

  std::vector<double> acc_;  // S_0..S_d, indexed by node
  std::uint64_t intervals_reported_ = 0;
  std::uint64_t intervals_lost_ = 0;
  BlameSpec blame_;
  std::vector<double> win_acc_;  // current window's per-node count sums
  WindowLedger ledger_;
};

}  // namespace paai::protocols
