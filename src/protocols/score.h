// Scoring and identification (§5 "score"/"identify" phases, §6.1 phases
// 4-5, §6.2 phases 4-5).
//
// ScoreTable — used by the onion-report protocols (full-ack, PAAI-1,
// Combination 1, statistical FL). Each monitored unit (packet, probe, or
// sampled interval slot) yields either "no blame" or "blame link l_i"; the
// per-link drop score s_i over n observations estimates the link's drop
// rate. Because a blame on l_i can stem from any of the (up to) t
// traversals that crossed it during one monitored unit (data + acks +
// probes), the per-traversal rate is recovered as
//     theta_i = 1 - (1 - s_i/n)^(1/t).
// The identify phase convicts l_i when theta_i exceeds the decision
// threshold — set between the natural rate rho and the per-link threshold
// alpha (we use the midpoint, giving the symmetric eps-margins Theorem 2's
// Hoeffding analysis assumes).
//
// Paai2ScoreTable — PAAI-2's interval scoring. On a failed probe with
// selected node F_e, every link of the prefix [l_0, l_{e-1}] gains one
// point (the paper's rule). The source also knows e for every probe (it
// computes the selection predicates itself), so the same information is
// kept as per-selection counters from which per-link rates are estimated:
//     q_e      = P[prefix-e failure]           (from failures when sel == e)
//     g_j      = (q_{j+1} - q_j) / (1 - q_j)   (per-link, per-"cycle")
//     theta_j  = 1 - (1 - g_j)^(1/t)           (per traversal, t = 3)
//
// FlScoreTable — statistical FL's accumulated per-node sampled counts
// (§6.2): theta_j = 1 - S_{j+1}/S_j over the counts folded in from each
// reported interval.
//
// All three tables are *stream-consumable*: every mutation corresponds
// 1:1 to a forensic event the protocols log (obs/events.h), the counters
// are exposed for snapshotting, and restore() rebuilds a table from a
// snapshot bit-identically — src/stream's online engine replays a
// recorded event log through these exact classes, so batch and streaming
// convictions agree to the last bit.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace paai::protocols {

class ScoreTable {
 public:
  /// `traversals` = per-unit link exposure in the typical case (PAAI-1:
  /// data + probe + onion, effectively ~2.6). `probe_extra` supports
  /// protocols whose probe rounds are *conditional* (full-ack, Comb-1):
  /// each round that actually probed adds this many extra traversals, so
  /// the effective exposure is traversals + probe_extra * (probes / n).
  /// This keeps estimates calibrated even when an adversary forces every
  /// round into a probe (e.g. by blackholing destination acks) — a fixed
  /// exponent would inflate honest upstream links threefold there.
  ScoreTable(std::size_t num_links, double traversals,
             double probe_extra = 0.0);

  /// Records that the current monitored unit ran a probe round.
  void note_probe() { ++probes_; }

  /// Records one monitored unit with no localized loss.
  void add_clean();

  /// Records one monitored unit blamed on link `link`.
  void blame(std::size_t link);

  std::uint64_t observations() const { return n_; }
  std::uint64_t score(std::size_t link) const { return s_[link]; }
  std::uint64_t probes() const { return probes_; }

  /// Persistence-based conviction (--blame=persistent): when K > 0, the
  /// identify phase trades the one-standard-error margin for a
  /// K-repetition requirement — a link is convicted once its estimate
  /// clears the threshold AND it has been named first-failing hop at
  /// least K times. Repetition is the anti-noise gate instead of the
  /// margin, which catches adversaries whose estimate rides just inside
  /// the margin (the bench_robustness collude-r10 frontier gap). 0 = off.
  void set_persistence(std::uint64_t k) { persistence_ = k; }
  std::uint64_t persistence() const { return persistence_; }

  /// Per-traversal drop-rate estimate for a link (0 when n == 0).
  double theta(std::size_t link) const;
  std::vector<double> thetas() const;

  /// Links whose estimate exceeds the per-traversal decision threshold.
  std::vector<std::size_t> convicted(double threshold) const;

  std::size_t num_links() const { return s_.size(); }

  /// Rebuilds the mutable counters from a snapshot (paai.state.v1).
  /// `s.size()` must equal num_links(); throws std::invalid_argument
  /// otherwise. Calibration (traversals/probe_extra/persistence) is
  /// construction-time state and is not touched.
  void restore(const std::vector<std::uint64_t>& s, std::uint64_t n,
               std::uint64_t probes);

  void reset();

 private:
  double effective_traversals() const;

  std::vector<std::uint64_t> s_;
  std::uint64_t n_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t persistence_ = 0;
  double traversals_;
  double probe_extra_;
  obs::Counter obs_updates_;
  obs::Counter obs_blames_;
};

class Paai2ScoreTable {
 public:
  explicit Paai2ScoreTable(std::size_t num_links);

  /// Every data packet sent (probed or not) is one trial.
  void add_data_packet();

  /// Records a probe outcome: `selected` = the selected node index e in
  /// [1, d]; `prefix_failed` = the decoded report did not match the
  /// expected value (or never arrived).
  void add_probe(std::size_t selected, bool prefix_failed);

  std::uint64_t data_packets() const { return data_packets_; }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t interval_score(std::size_t link) const { return s_[link]; }
  std::uint64_t selections(std::size_t e) const { return sel_n_[e]; }
  std::uint64_t selection_failures(std::size_t e) const { return sel_f_[e]; }

  /// Per-traversal per-link estimates via the prefix-difference estimator.
  std::vector<double> thetas() const;

  std::vector<std::size_t> convicted(double threshold) const;

  /// End-to-end data-path drop rate psi observed by the source
  /// (probes / data packets — a probe fires exactly when the destination
  /// ack chain broke somewhere).
  double observed_e2e_rate() const;

  std::size_t num_links() const { return s_.size(); }

  /// Rebuilds the mutable counters from a snapshot (paai.state.v1).
  /// Vector sizes must match the construction shape; throws
  /// std::invalid_argument otherwise.
  void restore(const std::vector<std::uint64_t>& s,
               const std::vector<std::uint64_t>& sel_n,
               const std::vector<std::uint64_t>& sel_f,
               std::uint64_t data_packets, std::uint64_t probes);

  void reset();

 private:
  std::vector<std::uint64_t> s_;       // the paper's interval scores
  std::vector<std::uint64_t> sel_n_;   // probes with selection e   [1..d]
  std::vector<std::uint64_t> sel_f_;   // ... of which prefix-failed [1..d]
  std::uint64_t data_packets_ = 0;
  std::uint64_t probes_ = 0;
  obs::Counter obs_updates_;
  obs::Counter obs_blames_;
};

/// Statistical FL's accumulated sampled counts (§6.2 phases 4-5): node
/// F_i counts the K_i-sampled packets it forwards per reporting interval;
/// the source folds each interval's reported counts into per-node
/// accumulators S_0..S_d and estimates theta_j = 1 - S_{j+1}/S_j.
/// Accumulation is in doubles (counts are integers, so sums stay exact
/// below 2^53) to mirror the estimator the paper's analysis assumes.
class FlScoreTable {
 public:
  explicit FlScoreTable(std::size_t num_links);

  /// Folds one node's count for a reported interval: S_node += count.
  /// The statfl source calls this for node = 0..d in ascending order,
  /// once per interval whose onion report verified end-to-end.
  void add_count(std::size_t node, std::uint64_t count);

  /// Marks a reporting interval folded in (after its d+1 add_count calls).
  void interval_reported() { ++intervals_reported_; }

  /// Marks a reporting interval abandoned (report never arrived).
  void interval_lost() { ++intervals_lost_; }

  double accumulated(std::size_t node) const { return acc_[node]; }
  std::uint64_t intervals_reported() const { return intervals_reported_; }
  std::uint64_t intervals_lost() const { return intervals_lost_; }
  std::size_t num_links() const { return acc_.size() - 1; }

  /// theta_j = max(0, 1 - S_{j+1}/S_j); 0 while S_j is empty.
  std::vector<double> thetas() const;

  /// One-standard-error evidence rule over the count ratios (see
  /// convicted() in statfl.cc history: Var(theta_j) ~ 2 S_{j+1} / S_j^2,
  /// +1 so a total blackhole stays convictable).
  std::vector<std::size_t> convicted(double threshold) const;

  /// 1 - S_d/S_0: the end-to-end drop rate the counts imply.
  double observed_e2e_rate() const;

  /// Rebuilds the accumulators from a snapshot. `acc.size()` must be
  /// num_links() + 1; throws std::invalid_argument otherwise.
  void restore(const std::vector<double>& acc,
               std::uint64_t intervals_reported, std::uint64_t intervals_lost);

  void reset();

 private:
  std::vector<double> acc_;  // S_0..S_d, indexed by node
  std::uint64_t intervals_reported_ = 0;
  std::uint64_t intervals_lost_ = 0;
};

}  // namespace paai::protocols
