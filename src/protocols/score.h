// Scoring and identification (§5 "score"/"identify" phases, §6.1 phases
// 4-5, §6.2 phases 4-5).
//
// ScoreTable — used by the onion-report protocols (full-ack, PAAI-1,
// Combination 1, statistical FL). Each monitored unit (packet, probe, or
// sampled interval slot) yields either "no blame" or "blame link l_i"; the
// per-link drop score s_i over n observations estimates the link's drop
// rate. Because a blame on l_i can stem from any of the (up to) t
// traversals that crossed it during one monitored unit (data + acks +
// probes), the per-traversal rate is recovered as
//     theta_i = 1 - (1 - s_i/n)^(1/t).
// The identify phase convicts l_i when theta_i exceeds the decision
// threshold — set between the natural rate rho and the per-link threshold
// alpha (we use the midpoint, giving the symmetric eps-margins Theorem 2's
// Hoeffding analysis assumes).
//
// Paai2ScoreTable — PAAI-2's interval scoring. On a failed probe with
// selected node F_e, every link of the prefix [l_0, l_{e-1}] gains one
// point (the paper's rule). The source also knows e for every probe (it
// computes the selection predicates itself), so the same information is
// kept as per-selection counters from which per-link rates are estimated:
//     q_e      = P[prefix-e failure]           (from failures when sel == e)
//     g_j      = (q_{j+1} - q_j) / (1 - q_j)   (per-link, per-"cycle")
//     theta_j  = 1 - (1 - g_j)^(1/t)           (per traversal, t = 3)
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace paai::protocols {

class ScoreTable {
 public:
  /// `traversals` = per-unit link exposure in the typical case (PAAI-1:
  /// data + probe + onion, effectively ~2.6). `probe_extra` supports
  /// protocols whose probe rounds are *conditional* (full-ack, Comb-1):
  /// each round that actually probed adds this many extra traversals, so
  /// the effective exposure is traversals + probe_extra * (probes / n).
  /// This keeps estimates calibrated even when an adversary forces every
  /// round into a probe (e.g. by blackholing destination acks) — a fixed
  /// exponent would inflate honest upstream links threefold there.
  ScoreTable(std::size_t num_links, double traversals,
             double probe_extra = 0.0);

  /// Records that the current monitored unit ran a probe round.
  void note_probe() { ++probes_; }

  /// Records one monitored unit with no localized loss.
  void add_clean();

  /// Records one monitored unit blamed on link `link`.
  void blame(std::size_t link);

  std::uint64_t observations() const { return n_; }
  std::uint64_t score(std::size_t link) const { return s_[link]; }

  /// Per-traversal drop-rate estimate for a link (0 when n == 0).
  double theta(std::size_t link) const;
  std::vector<double> thetas() const;

  /// Links whose estimate exceeds the per-traversal decision threshold.
  std::vector<std::size_t> convicted(double threshold) const;

  std::size_t num_links() const { return s_.size(); }

  void reset();

 private:
  double effective_traversals() const;

  std::vector<std::uint64_t> s_;
  std::uint64_t n_ = 0;
  std::uint64_t probes_ = 0;
  double traversals_;
  double probe_extra_;
  obs::Counter obs_updates_;
  obs::Counter obs_blames_;
};

class Paai2ScoreTable {
 public:
  explicit Paai2ScoreTable(std::size_t num_links);

  /// Every data packet sent (probed or not) is one trial.
  void add_data_packet();

  /// Records a probe outcome: `selected` = the selected node index e in
  /// [1, d]; `prefix_failed` = the decoded report did not match the
  /// expected value (or never arrived).
  void add_probe(std::size_t selected, bool prefix_failed);

  std::uint64_t data_packets() const { return data_packets_; }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t interval_score(std::size_t link) const { return s_[link]; }
  std::uint64_t selections(std::size_t e) const { return sel_n_[e]; }

  /// Per-traversal per-link estimates via the prefix-difference estimator.
  std::vector<double> thetas() const;

  std::vector<std::size_t> convicted(double threshold) const;

  /// End-to-end data-path drop rate psi observed by the source
  /// (probes / data packets — a probe fires exactly when the destination
  /// ack chain broke somewhere).
  double observed_e2e_rate() const;

  std::size_t num_links() const { return s_.size(); }

  void reset();

 private:
  std::vector<std::uint64_t> s_;       // the paper's interval scores
  std::vector<std::uint64_t> sel_n_;   // probes with selection e   [1..d]
  std::vector<std::uint64_t> sel_f_;   // ... of which prefix-failed [1..d]
  std::uint64_t data_packets_ = 0;
  std::uint64_t probes_ = 0;
  obs::Counter obs_updates_;
  obs::Counter obs_blames_;
};

}  // namespace paai::protocols
