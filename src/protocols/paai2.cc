#include "protocols/paai2.h"

#include <cstring>

#include "util/wire.h"

namespace paai::protocols {

namespace {

std::shared_ptr<const Bytes> shared_wire(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

crypto::Mac dest_ack_tag(const ProtocolContext& ctx, const net::PacketId& id) {
  return ctx.crypto().mac(ctx.keys().node_key(ctx.d()),
                          ByteView(id.data(), id.size()));
}

/// How long a node must keep state: until a probe (sent after the
/// source's ack timeout) can no longer arrive, plus response time.
sim::SimDuration state_horizon(const ProtocolContext& ctx,
                               std::size_t node_index) {
  // A probe (sent after the source's ack timeout, <= r_0 + slack) reaches
  // F_i a fixed interval after the data did; the node then needs r_i for
  // the downstream response. Deeper nodes therefore hold state slightly
  // shorter — the position slope of Figure 3(c).
  return ctx.r0() + ctx.rtt(node_index) + 3 * ctx.timer_slack();
}

}  // namespace

crypto::Mac paai2_report_tag(const crypto::CryptoProvider& crypto,
                             const crypto::Key& key, std::size_t index,
                             ByteView probe_bytes) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(index));
  w.var_bytes(probe_bytes);
  const Bytes& buf = w.data();
  return crypto.mac(key, ByteView(buf.data(), buf.size()));
}

Bytes paai2_report_plaintext(const crypto::CryptoProvider& crypto,
                             const crypto::Key& key, std::size_t index,
                             ByteView probe_bytes,
                             const crypto::Mac* ad_tag) {
  const crypto::Mac tag = paai2_report_tag(crypto, key, index, probe_bytes);
  WireWriter w;
  w.raw(ByteView(tag.data(), tag.size()));
  if (ad_tag != nullptr) {
    w.u8(1);
    w.raw(ByteView(ad_tag->data(), ad_tag->size()));
  } else {
    w.u8(0);  // bottom: the node never saw the destination's ack
    const crypto::Mac zero{};
    w.raw(ByteView(zero.data(), zero.size()));
  }
  return std::move(w).take();
}

std::uint64_t paai2_layer_nonce(const net::PacketId& id, std::size_t index) {
  std::uint64_t base;
  std::memcpy(&base, id.data(), sizeof(base));
  return base ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1));
}

// ---------------------------------------------------------------- source

Paai2Source::Paai2Source(const ProtocolContext& ctx, bool sampled_mode)
    : ctx_(ctx),
      sampled_mode_(sampled_mode),
      monitor_sampler_(ctx.crypto(), ctx.keys().destination_key(),
                       ctx.params().probe_probability),
      score_(ctx.d()),
      pending_(nullptr),
      send_period_(static_cast<sim::SimDuration>(
          static_cast<double>(sim::kSecond) / ctx.params().send_rate_pps)) {
  score_.set_blame(ctx.params().blame);
}

void Paai2Source::start() {
  pending_.attach(node(), ctx_.r0() / 2);
  node().sim().after(send_period_, [this] { send_next(); });
}

void Paai2Source::send_next() {
  if (sent_ >= ctx_.params().total_packets) return;

  net::DataPacket pkt;
  pkt.seq = sent_;
  pkt.timestamp_ns = static_cast<std::uint64_t>(node().local_now());
  pkt.payload_size = ctx_.params().payload_size;
  const net::PacketId id = pkt.id(ctx_.crypto());

  // Combination 2: only a K_d-keyed sampled fraction is monitored; for the
  // rest the packet goes out and the protocol stays silent.
  const bool monitored =
      !sampled_mode_ || monitor_sampler_.sampled(ByteView(id.data(), id.size()));

  if (monitored) {
    pending_.purge(node().sim().now());
    pending_.put(id, Pending{},
                 node().sim().now() + 3 * ctx_.r0() + 8 * ctx_.timer_slack());
  }
  node().originate(sim::Direction::kToDest, shared_wire(pkt.encode()),
                   pkt.wire_size());
  ctx_.log_event(node(), obs::EventKind::kDataSend, -1,
                 obs::event_id64(id.data()), pkt.seq);
  ++sent_;

  if (monitored) {
    if (sampled_mode_) {
      ctx_.log_event(node(), obs::EventKind::kSampleSelect, -1,
                     obs::event_id64(id.data()), pkt.seq);
    }
    score_.add_data_packet();
    node().sim().after(ctx_.r0() + ctx_.timer_slack(),
                       [this, id] { on_ack_timeout(id); });
  }
  if (sent_ < ctx_.params().total_packets) {
    node().sim().after(send_period_, [this] { send_next(); });
  }
}

void Paai2Source::on_ack_timeout(const net::PacketId& id) {
  Pending* p = pending_.find(id);
  if (p == nullptr || p->probed) return;
  p->probed = true;
  ctx_.log_event(node(), obs::EventKind::kAckTimeout, -1,
                 obs::event_id64(id.data()));

  // Fresh unpredictable challenge Z (PRF over id and a counter under the
  // source-private key).
  WireWriter zi;
  zi.raw(ByteView(id.data(), id.size()));
  zi.u64(challenge_counter_++);
  const std::uint64_t z = ctx_.crypto().prf(
      ctx_.keys().source_sampling_key(), ByteView(zi.data().data(),
                                                  zi.data().size()));

  net::Probe probe;
  probe.data_id = id;
  probe.challenge = z;
  p->probe_bytes = probe.encode();

  // The source can evaluate every node's predicate itself: it knows which
  // node is selected even though no node (or observer) does.
  p->selected = crypto::selected_node(
      ctx_.crypto(), ctx_.key_vector(),
      ByteView(p->probe_bytes.data(), p->probe_bytes.size()), ctx_.d());

  node().originate(sim::Direction::kToDest,
                   shared_wire(Bytes(p->probe_bytes)), probe.wire_size());
  ctx_.metrics().probes_sent.add();
  ctx_.log_event(node(), obs::EventKind::kProbeSend, -1,
                 obs::event_id64(id.data()), p->selected);
  node().sim().after(ctx_.r0() + 2 * ctx_.timer_slack(),
                     [this, id] { on_probe_timeout(id); });
}

void Paai2Source::on_probe_timeout(const net::PacketId& id) {
  Pending* p = pending_.find(id);
  if (p == nullptr) return;
  score_.add_probe(p->selected, /*prefix_failed=*/true);
  // Prefix evidence: no report survived, so the failure lies somewhere in
  // [l_0, l_{e-1}] (e = selected node) — no single link is named.
  ctx_.log_event(node(), obs::EventKind::kScoreBlame, -1,
                 obs::event_id64(id.data()), p->selected);
  pending_.erase(id);
}

void Paai2Source::on_packet(const sim::PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (!type) return;
  if (*type == net::PacketType::kDestAck) {
    if (const auto ack = net::DestAck::decode(env.view())) {
      handle_dest_ack(*ack);
    }
  } else if (*type == net::PacketType::kReportAck) {
    if (const auto ack = net::ReportAck::decode(env.view())) {
      handle_report(*ack);
    }
  }
}

void Paai2Source::handle_dest_ack(const net::DestAck& ack) {
  ctx_.metrics().dest_acks_received.add();
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr || p->probed) return;
  const crypto::Mac expected = dest_ack_tag(ctx_, ack.data_id);
  if (!ct_equal(ByteView(expected.data(), expected.size()),
                ByteView(ack.tag.data(), ack.tag.size()))) {
    return;
  }
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(ack.data_id.data()), /*b=*/0);
  pending_.erase(ack.data_id);  // clean round: no probe, no scoring
}

void Paai2Source::handle_report(const net::ReportAck& ack) {
  ctx_.metrics().report_acks_received.add();
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr || !p->probed) return;
  if (ack.report.size() != kPaai2ReportSize) return;  // malformed: wait
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(ack.data_id.data()), /*b=*/1);

  // Peel E_{K_1} .. E_{K_e}.
  Bytes cur = ack.report;
  for (std::size_t j = 1; j <= p->selected; ++j) {
    cur = ctx_.crypto().decrypt(ctx_.keys().node_key(j),
                                paai2_layer_nonce(ack.data_id, j),
                                ByteView(cur.data(), cur.size()));
  }

  // Scoring depends only on the authenticator part: a match proves the
  // selected node received the data packet and the probe, i.e. no drop in
  // [l_0, l_{e-1}].
  const crypto::Key& ke = ctx_.keys().node_key(p->selected);
  const crypto::Mac expected = paai2_report_tag(
      ctx_.crypto(), ke, p->selected,
      ByteView(p->probe_bytes.data(), p->probe_bytes.size()));
  const bool match = ct_equal(ByteView(expected.data(), expected.size()),
                              ByteView(cur.data(), crypto::kMacSize));

  // The a_d field is auxiliary delivery evidence, verified independently
  // against [H(m)]_{K_d} (an unauthenticated copy a node stored could have
  // been corrupted in flight — that must not poison the prefix score).
  if (match && cur[crypto::kMacSize] == 1) {
    const crypto::Mac ad = dest_ack_tag(ctx_, ack.data_id);
    if (ct_equal(ByteView(ad.data(), ad.size()),
                 ByteView(cur.data() + crypto::kMacSize + 1,
                          crypto::kMacSize))) {
      ++confirmed_deliveries_;
    }
  }

  ctx_.log_event(node(), obs::EventKind::kOnionDecode, -1,
                 obs::event_id64(ack.data_id.data()), p->selected,
                 match ? 1.0 : 0.0);
  score_.add_probe(p->selected, /*prefix_failed=*/!match);
  ctx_.log_event(node(),
                 match ? obs::EventKind::kScoreClean
                       : obs::EventKind::kScoreBlame,
                 -1, obs::event_id64(ack.data_id.data()), p->selected);
  pending_.erase(ack.data_id);
}

// ----------------------------------------------------------------- relay

void Paai2Relay::start() { pending_.attach(node(), ctx().r0() / 2); }

void Paai2Relay::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  switch (*type) {
    case net::PacketType::kData: {
      const auto pkt = net::DataPacket::decode(env.view());
      if (!pkt || !fresh(*pkt)) return;
      pending_.put(pkt->id(ctx().crypto()), RState{},
                   node().sim().now() + state_horizon(ctx(), node().index()));
      relay(env);
      break;
    }
    case net::PacketType::kDestAck: {
      const auto ack = net::DestAck::decode(env.view());
      if (!ack) return;
      RState* st = pending_.find(ack->data_id);
      if (st == nullptr) return;
      // Keep a copy of a_d (§6.2 phase 1) — it rides along in our report.
      // State is never released on ack sight (even in Combination 2, whose
      // §10 description suggests it): relays cannot authenticate a_d, so
      // corrupted acks could otherwise flush honest state and break
      // localization. See DESIGN.md §"findings".
      st->have_ad = true;
      st->ad_tag = ack->tag;
      relay(env);
      break;
    }
    case net::PacketType::kProbe: {
      const auto probe = net::Probe::decode(env.view());
      if (!probe) return;
      RState* st = pending_.find(probe->data_id);
      if (st == nullptr) {
        relay(env);  // stateless: pass along, contribute nothing
        return;
      }
      st->probe_seen = true;
      st->probe_bytes.assign(env.wire->begin(), env.wire->end());
      st->sampled = crypto::selection_predicate(
          ctx().crypto(), ctx().keys().node_key(node().index()),
          ByteView(st->probe_bytes.data(), st->probe_bytes.size()),
          node().index(), ctx().d());
      const auto wait = ctx().rtt(node().index()) + ctx().timer_slack();
      pending_.extend(probe->data_id,
                      node().sim().now() + wait + 2 * ctx().timer_slack());
      relay(env);
      const net::PacketId id = probe->data_id;
      node().sim().after(wait, [this, id] { on_wait_timeout(id); });
      break;
    }
    case net::PacketType::kReportAck: {
      const auto ack = net::ReportAck::decode(env.view());
      if (!ack) return;
      RState* st = pending_.find(ack->data_id);
      if (st == nullptr || !st->probe_seen || st->responded) return;
      st->responded = true;
      if (st->sampled) {
        // Oblivious overwrite: a sampled node always substitutes its own
        // report for whatever arrived from downstream.
        send_own_report(ack->data_id, *st);
      } else {
        net::ReportAck out;
        out.data_id = ack->data_id;
        out.report = ctx().crypto().encrypt(
            ctx().keys().node_key(node().index()),
            paai2_layer_nonce(ack->data_id, node().index()),
            ByteView(ack->report.data(), ack->report.size()));
        relay(sim::PacketEnv{shared_wire(out.encode()), out.wire_size(),
                             sim::Direction::kToSource});
      }
      pending_.erase(ack->data_id);
      break;
    }
    default:
      relay(env);
      break;
  }
}

void Paai2Relay::send_own_report(const net::PacketId& id, RState& st) {
  const crypto::Key& key = ctx().keys().node_key(node().index());
  const Bytes plaintext = paai2_report_plaintext(
      ctx().crypto(), key, node().index(),
      ByteView(st.probe_bytes.data(), st.probe_bytes.size()),
      st.have_ad ? &st.ad_tag : nullptr);
  net::ReportAck ack;
  ack.data_id = id;
  ack.report =
      ctx().crypto().encrypt(key, paai2_layer_nonce(id, node().index()),
                             ByteView(plaintext.data(), plaintext.size()));
  relay(sim::PacketEnv{shared_wire(ack.encode()), ack.wire_size(),
                       sim::Direction::kToSource});
}

void Paai2Relay::on_wait_timeout(const net::PacketId& id) {
  RState* st = pending_.find(id);
  if (st == nullptr || st->responded) return;
  st->responded = true;
  send_own_report(id, *st);
  pending_.erase(id);
}

// ----------------------------------------------------------- destination

Paai2Destination::Paai2Destination(const ProtocolContext& ctx,
                                   bool ack_only_sampled)
    : ctx_(ctx),
      ack_only_sampled_(ack_only_sampled),
      monitor_sampler_(ctx.crypto(), ctx.keys().destination_key(),
                       ctx.params().probe_probability),
      pending_(nullptr) {}

void Paai2Destination::start() { pending_.attach(node(), ctx_.r0() / 2); }

void Paai2Destination::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  if (*type == net::PacketType::kData) {
    const auto pkt = net::DataPacket::decode(env.view());
    if (!pkt) return;
    const sim::SimTime now = node().local_now();
    const auto age = now - static_cast<sim::SimTime>(pkt->timestamp_ns);
    if (age > ctx_.freshness_window() || age < -ctx_.freshness_window()) {
      return;
    }
    const net::PacketId id = pkt->id(ctx_.crypto());
    if (ack_only_sampled_ &&
        !monitor_sampler_.sampled(ByteView(id.data(), id.size()))) {
      return;  // unmonitored packet: no ack, no state, no probe will come
    }
    pending_.put(id, DState{}, node().sim().now() + state_horizon(ctx_, ctx_.d()));
    net::DestAck ack;
    ack.data_id = id;
    ack.tag = dest_ack_tag(ctx_, id);
    node().originate(sim::Direction::kToSource, shared_wire(ack.encode()),
                     ack.wire_size());
  } else if (*type == net::PacketType::kProbe) {
    const auto probe = net::Probe::decode(env.view());
    if (!probe || pending_.find(probe->data_id) == nullptr) return;
    // T_d fires with probability 1: the destination is always sampled and
    // thus originates the innermost report for every probe it can answer.
    const crypto::Key& key = ctx_.keys().node_key(ctx_.d());
    const crypto::Mac ad = dest_ack_tag(ctx_, probe->data_id);
    const Bytes plaintext = paai2_report_plaintext(ctx_.crypto(), key,
                                                   ctx_.d(), env.view(), &ad);
    net::ReportAck ack;
    ack.data_id = probe->data_id;
    ack.report = ctx_.crypto().encrypt(
        key, paai2_layer_nonce(probe->data_id, ctx_.d()),
        ByteView(plaintext.data(), plaintext.size()));
    node().originate(sim::Direction::kToSource, shared_wire(ack.encode()),
                     ack.wire_size());
    pending_.erase(probe->data_id);
  }
}

}  // namespace paai::protocols
