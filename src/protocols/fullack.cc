#include "protocols/fullack.h"

#include <cstring>

#include "util/wire.h"

namespace paai::protocols {

namespace {

/// a_d = [H(m)]_{K_d}: the MAC input is the packet identifier.
crypto::Mac dest_ack_tag(const ProtocolContext& ctx, const net::PacketId& id) {
  return ctx.crypto().mac(ctx.keys().node_key(ctx.d()),
                          ByteView(id.data(), id.size()));
}

std::shared_ptr<const Bytes> shared_wire(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

/// How long any node must remember a packet id: until no probe (sent after
/// the source's ack timeout) can still arrive, plus response time.
sim::SimDuration state_horizon(const ProtocolContext& ctx,
                               std::size_t node_index) {
  // A probe (sent after the source's ack timeout, <= r_0 + slack) reaches
  // F_i a fixed interval after the data did; the node then needs r_i for
  // the downstream response. Deeper nodes therefore hold state slightly
  // shorter — the position slope of Figure 3(c).
  return ctx.r0() + ctx.rtt(node_index) + 3 * ctx.timer_slack();
}

}  // namespace

std::optional<DecodedData> decode_data(const ProtocolContext& ctx,
                                       ByteView wire) {
  const auto pkt = net::DataPacket::decode(wire);
  if (!pkt) return std::nullopt;
  return DecodedData{*pkt, pkt->id(ctx.crypto())};
}

// ---------------------------------------------------------------- source

// Blame exposure per monitored packet: a *data* drop on l_i is always
// localized there (1 traversal); a lost destination ack resolves to
// "clean" via the onion round (the data demonstrably arrived); the probe
// and onion legs add exposure only in rounds that actually probed — hence
// the dynamic probe_extra term (see ScoreTable).
FullAckSource::FullAckSource(const ProtocolContext& ctx)
    : ctx_(ctx),
      score_(ctx.d(), /*traversals=*/1.0, /*probe_extra=*/2.0),
      pending_(nullptr),
      send_period_(static_cast<sim::SimDuration>(
          static_cast<double>(sim::kSecond) / ctx.params().send_rate_pps)) {
  score_.set_blame(ctx.params().blame);
}

void FullAckSource::start() {
  pending_.attach(node(), ctx_.r0() / 2);
  node().sim().after(send_period_, [this] { send_next(); });
}

void FullAckSource::send_next() {
  if (sent_ >= ctx_.params().total_packets) return;

  net::DataPacket pkt;
  pkt.seq = sent_;
  pkt.timestamp_ns = static_cast<std::uint64_t>(node().local_now());
  pkt.payload_size = ctx_.params().payload_size;
  const net::PacketId id = pkt.id(ctx_.crypto());

  pending_.purge(node().sim().now());
  pending_.put(id, Pending{},
               node().sim().now() + 3 * ctx_.r0() + 8 * ctx_.timer_slack());
  node().originate(sim::Direction::kToDest, shared_wire(pkt.encode()),
                   pkt.wire_size());
  ctx_.log_event(node(), obs::EventKind::kDataSend, -1,
                 obs::event_id64(id.data()), pkt.seq);
  ++sent_;

  node().sim().after(ctx_.r0() + ctx_.timer_slack(),
                     [this, id] { on_ack_timeout(id); });
  if (sent_ < ctx_.params().total_packets) {
    node().sim().after(send_period_, [this] { send_next(); });
  }
}

void FullAckSource::on_ack_timeout(const net::PacketId& id) {
  Pending* p = pending_.find(id);
  if (p == nullptr || p->probed) return;
  p->probed = true;
  score_.note_probe();
  ctx_.log_event(node(), obs::EventKind::kAckTimeout, -1,
                 obs::event_id64(id.data()));

  net::Probe probe;
  probe.data_id = id;
  node().originate(sim::Direction::kToDest, shared_wire(probe.encode()),
                   probe.wire_size());
  ctx_.metrics().probes_sent.add();
  ctx_.log_event(node(), obs::EventKind::kProbeSend, -1,
                 obs::event_id64(id.data()));
  node().sim().after(ctx_.r0() + ctx_.timer_slack(),
                     [this, id] { on_probe_timeout(id); });
}

void FullAckSource::on_probe_timeout(const net::PacketId& id) {
  if (pending_.find(id) == nullptr) return;  // resolved by a report
  // No report at all: the loss is on the source's own downstream link
  // (PAAI-1 footnote 8 reasoning applies here identically).
  score_.blame(0);
  ctx_.log_event(node(), obs::EventKind::kScoreBlame, 0,
                 obs::event_id64(id.data()), score_.observations(),
                 score_.theta(0));
  pending_.erase(id);
}

void FullAckSource::on_packet(const sim::PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (!type) return;
  if (*type == net::PacketType::kDestAck) {
    if (const auto ack = net::DestAck::decode(env.view())) {
      handle_dest_ack(*ack);
    }
  } else if (*type == net::PacketType::kReportAck) {
    if (const auto ack = net::ReportAck::decode(env.view())) {
      handle_report(*ack);
    }
  }
}

void FullAckSource::handle_dest_ack(const net::DestAck& ack) {
  ctx_.metrics().dest_acks_received.add();
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr) return;
  const crypto::Mac expected = dest_ack_tag(ctx_, ack.data_id);
  if (!ct_equal(ByteView(expected.data(), expected.size()),
                ByteView(ack.tag.data(), ack.tag.size()))) {
    return;  // forged/corrupted ack: keep waiting, the timeout will probe
  }
  // Delivery confirmed. A probe may already be in flight (late ack); the
  // outcome is clean either way.
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(ack.data_id.data()), /*b=*/0);
  score_.add_clean();
  ++delivered_;
  ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                 obs::event_id64(ack.data_id.data()), score_.observations());
  pending_.erase(ack.data_id);
}

bool FullAckSource::report_ok(std::uint8_t index, ByteView report,
                              const net::PacketId& id) const {
  // R_i = <i || H(m)>; the destination additionally embeds its original
  // ack tag: R_d = <d || H(m) || a_d>.
  const std::size_t base = 1 + id.size();
  if (report.size() < base) return false;
  if (report[0] != index) return false;
  if (std::memcmp(report.data() + 1, id.data(), id.size()) != 0) return false;
  if (index == ctx_.d()) {
    if (report.size() != base + crypto::kMacSize) return false;
    const crypto::Mac expected = dest_ack_tag(ctx_, id);
    return ct_equal(ByteView(expected.data(), expected.size()),
                    report.subspan(base));
  }
  return report.size() == base;
}

void FullAckSource::handle_report(const net::ReportAck& ack) {
  ctx_.metrics().report_acks_received.add();
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr || !p->probed) return;

  const net::PacketId id = ack.data_id;
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(id.data()), /*b=*/1);
  const auto result = net::onion_verify(
      ctx_.crypto(), ctx_.key_vector(), ctx_.d(),
      ByteView(ack.report.data(), ack.report.size()),
      [this, &id](std::uint8_t i, ByteView r) { return report_ok(i, r, id); });

  ctx_.log_event(node(), obs::EventKind::kOnionDecode, -1,
                 obs::event_id64(id.data()), result.valid_layers);
  if (result.valid_layers == 0) {
    // Not even F_1's layer authenticates: this is indistinguishable from
    // an injected forgery. Acting on it would let any downstream
    // compromised node incriminate l_0 at will, so discard it; genuine
    // F_1 silence is handled by the probe timeout (which blames l_0).
    return;
  }
  if (result.valid_layers >= ctx_.d()) {
    // The onion originates at the destination: the data packet arrived;
    // only its ack was lost (and the onion already localized nothing).
    score_.add_clean();
    ++delivered_;
    ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                   obs::event_id64(id.data()), score_.observations());
  } else {
    score_.blame(result.valid_layers);
    ctx_.log_event(node(), obs::EventKind::kScoreBlame,
                   static_cast<std::int32_t>(result.valid_layers),
                   obs::event_id64(id.data()), score_.observations(),
                   score_.theta(result.valid_layers));
  }
  pending_.erase(id);
}

double FullAckSource::observed_e2e_rate() const {
  if (sent_ == 0) return 0.0;
  return 1.0 - static_cast<double>(delivered_) / static_cast<double>(sent_);
}

// ----------------------------------------------------------------- relay

void FullAckRelay::start() { pending_.attach(node(), ctx().r0() / 2); }

Bytes FullAckRelay::local_report(const net::PacketId& id) const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(node().index()));
  w.raw(ByteView(id.data(), id.size()));
  return std::move(w).take();
}

void FullAckRelay::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  switch (*type) {
    case net::PacketType::kData: {
      const auto data = decode_data(ctx(), env.view());
      if (!data || !fresh(data->packet)) return;
      pending_.put(data->id, RState{},
                   node().sim().now() + state_horizon(ctx(), node().index()));
      relay(env);
      break;
    }
    case net::PacketType::kDestAck: {
      const auto ack = net::DestAck::decode(env.view());
      if (!ack || pending_.find(ack->data_id) == nullptr) return;
      // Note: the state is NOT released here even though the paper's
      // ideal-case storage analysis assumes it could be. Relays cannot
      // authenticate a_d (only S and D hold K_d), so releasing on sight
      // would let an adversary flush honest relays' state by forwarding
      // *corrupted* acks, after which a probe round yields no report and
      // blames honest l_0. Holding for the full horizon closes that
      // incrimination channel at a bounded storage cost.
      relay(env);
      break;
    }
    case net::PacketType::kProbe: {
      const auto probe = net::Probe::decode(env.view());
      if (!probe) return;
      RState* st = pending_.find(probe->data_id);
      if (st == nullptr) {
        // Unknown identifier: a withheld-release decision may still be
        // owed to the strategy, but an honest node ignores the probe.
        relay(sim::PacketEnv{env.wire, env.wire_size, env.dir});
        return;
      }
      st->probe_seen = true;
      const auto wait = ctx().rtt(node().index()) + ctx().timer_slack();
      pending_.extend(probe->data_id, node().sim().now() + wait +
                                          2 * ctx().timer_slack());
      relay(env);
      const net::PacketId id = probe->data_id;
      node().sim().after(wait, [this, id] { on_wait_timeout(id); });
      break;
    }
    case net::PacketType::kReportAck: {
      const auto ack = net::ReportAck::decode(env.view());
      if (!ack) return;
      RState* st = pending_.find(ack->data_id);
      if (st == nullptr || !st->probe_seen || st->responded) return;
      st->responded = true;
      const Bytes report = local_report(ack->data_id);
      net::ReportAck wrapped;
      wrapped.data_id = ack->data_id;
      wrapped.report = net::onion_wrap(
          ctx().crypto(), ctx().keys().node_key(node().index()),
          static_cast<std::uint8_t>(node().index()),
          ByteView(report.data(), report.size()),
          ByteView(ack->report.data(), ack->report.size()));
      relay(sim::PacketEnv{std::make_shared<const Bytes>(wrapped.encode()),
                           wrapped.wire_size(), sim::Direction::kToSource});
      pending_.erase(ack->data_id);
      break;
    }
    default:
      relay(env);
      break;
  }
}

void FullAckRelay::on_wait_timeout(const net::PacketId& id) {
  RState* st = pending_.find(id);
  if (st == nullptr || st->responded) return;
  st->responded = true;
  const Bytes report = local_report(id);
  net::ReportAck ack;
  ack.data_id = id;
  ack.report = net::onion_originate(
      ctx().crypto(), ctx().keys().node_key(node().index()),
      static_cast<std::uint8_t>(node().index()),
      ByteView(report.data(), report.size()));
  relay(sim::PacketEnv{std::make_shared<const Bytes>(ack.encode()),
                       ack.wire_size(), sim::Direction::kToSource});
  pending_.erase(id);
}

// ----------------------------------------------------------- destination

void FullAckDestination::start() { pending_.attach(node(), ctx_.r0() / 2); }

void FullAckDestination::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  if (*type == net::PacketType::kData) {
    const auto data = decode_data(ctx_, env.view());
    if (!data) return;
    // The destination enforces freshness like everyone else.
    const sim::SimTime now = node().local_now();
    const auto age = now - static_cast<sim::SimTime>(data->packet.timestamp_ns);
    if (age > ctx_.freshness_window() || age < -ctx_.freshness_window()) {
      return;
    }
    pending_.put(data->id, DState{},
                 node().sim().now() + state_horizon(ctx_, ctx_.d()));
    net::DestAck ack;
    ack.data_id = data->id;
    ack.tag = dest_ack_tag(ctx_, data->id);
    node().originate(sim::Direction::kToSource,
                     std::make_shared<const Bytes>(ack.encode()),
                     ack.wire_size());
  } else if (*type == net::PacketType::kProbe) {
    const auto probe = net::Probe::decode(env.view());
    if (!probe || pending_.find(probe->data_id) == nullptr) return;
    // R_d = <d || H(m) || a_d>.
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(ctx_.d()));
    w.raw(ByteView(probe->data_id.data(), probe->data_id.size()));
    const crypto::Mac tag = dest_ack_tag(ctx_, probe->data_id);
    w.raw(ByteView(tag.data(), tag.size()));
    const Bytes report = std::move(w).take();

    net::ReportAck ack;
    ack.data_id = probe->data_id;
    ack.report = net::onion_originate(
        ctx_.crypto(), ctx_.keys().node_key(ctx_.d()),
        static_cast<std::uint8_t>(ctx_.d()),
        ByteView(report.data(), report.size()));
    node().originate(sim::Direction::kToSource,
                     std::make_shared<const Bytes>(ack.encode()),
                     ack.wire_size());
    pending_.erase(probe->data_id);
  }
}

}  // namespace paai::protocols
