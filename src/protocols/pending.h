// PendingStore: per-node temporary packet state with expiry.
//
// Every protocol requires nodes to remember packet identifiers for a
// bounded time ("F_i stores the identifier H(m) and starts a wait timer").
// PendingStore keeps a hash map of live entries plus a FIFO of expiry
// deadlines; purge() is called on every packet arrival (amortized O(1)),
// so expired state disappears without per-entry timer events — the storage
// meter still tracks the instantaneous entry count for Figure 3.
//
// Entries whose deadline was extended (e.g. a probe arrived and the node
// now waits for a downstream ack) are re-queued rather than dropped.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "net/packet.h"
#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/storage.h"
#include "sim/time.h"

namespace paai::protocols {

struct PacketIdHash {
  std::size_t operator()(const net::PacketId& id) const {
    std::uint64_t v;
    std::memcpy(&v, id.data(), sizeof(v));
    return static_cast<std::size_t>(v);
  }
};

template <typename State>
class PendingStore {
 public:
  explicit PendingStore(sim::StorageMeter* meter = nullptr) : meter_(meter) {}

  /// Agents construct before being attached to a node; they point the
  /// store at the node's meter from start().
  void set_meter(sim::StorageMeter* meter) { meter_ = meter; }

  /// Arms a self-rescheduling purge timer (period ~ r_0/2) whenever the
  /// store is non-empty, so expired entries vanish (and the storage meter
  /// drains) even when no packets arrive to trigger the on-arrival purge.
  void enable_auto_purge(sim::Simulator* sim, sim::SimDuration period) {
    sim_ = sim;
    purge_period_ = period;
  }

  /// Binds the store to its node: meters storage there, arms the
  /// auto-purge timer, and registers a crash hook so a node outage drops
  /// every in-flight entry — packet-identifier state lives in volatile
  /// memory, so a crashed node forgets it. Agents call this from start().
  void attach(sim::Node& node, sim::SimDuration purge_period) {
    set_meter(&node.storage());
    enable_auto_purge(&node.sim(), purge_period);
    node.add_crash_hook([this] { clear(); });
  }

  /// Drops every entry immediately (crash semantics). The auto-purge
  /// timer is left alone: an armed one fires on an empty map and goes
  /// quiet; the next put() re-arms it.
  void clear() {
    if (meter_ != nullptr) meter_->remove(map_.size());
    map_.clear();
    fifo_.clear();
  }

  /// Inserts (or replaces) state for `id`, expiring at `expiry`.
  State& put(const net::PacketId& id, State state, sim::SimTime expiry) {
    auto [it, inserted] = map_.try_emplace(id);
    it->second.state = std::move(state);
    it->second.expiry = expiry;
    if (inserted && meter_ != nullptr) meter_->add();
    fifo_.emplace_back(expiry, id);
    arm_purge();
    return it->second.state;
  }

  /// Returns the live state for `id`, or nullptr.
  State* find(const net::PacketId& id) {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second.state;
  }

  /// Pushes the expiry of an existing entry out to `expiry` (never pulls
  /// it in).
  void extend(const net::PacketId& id, sim::SimTime expiry) {
    auto it = map_.find(id);
    if (it == map_.end()) return;
    if (expiry > it->second.expiry) it->second.expiry = expiry;
  }

  void erase(const net::PacketId& id) {
    if (map_.erase(id) > 0 && meter_ != nullptr) meter_->remove();
  }

  /// Drops every entry whose deadline has passed. Call on packet arrival.
  void purge(sim::SimTime now) {
    while (!fifo_.empty() && fifo_.front().first <= now) {
      const net::PacketId id = fifo_.front().second;
      fifo_.pop_front();
      auto it = map_.find(id);
      if (it == map_.end()) continue;  // already erased explicitly
      if (it->second.expiry <= now) {
        map_.erase(it);
        if (meter_ != nullptr) meter_->remove();
      } else {
        // Deadline was extended; re-queue under the new deadline.
        fifo_.emplace_back(it->second.expiry, id);
      }
    }
  }

  std::size_t size() const { return map_.size(); }

 private:
  struct Entry {
    State state{};
    sim::SimTime expiry = 0;
  };

  void arm_purge() {
    if (sim_ == nullptr || purge_armed_) return;
    purge_armed_ = true;
    sim_->after(purge_period_, [this] {
      purge_armed_ = false;
      purge(sim_->now());
      if (!map_.empty()) arm_purge();
    });
  }

  std::unordered_map<net::PacketId, Entry, PacketIdHash> map_;
  std::deque<std::pair<sim::SimTime, net::PacketId>> fifo_;
  sim::StorageMeter* meter_;
  sim::Simulator* sim_ = nullptr;
  sim::SimDuration purge_period_ = 0;
  bool purge_armed_ = false;
};

}  // namespace paai::protocols
