// The asymmetric-cryptography AAI variant (footnote 1).
//
// "A fairly simple AAI protocol that employs asymmetric key cryptography
// exists ... protocols employing asymmetric key cryptography are generally
// undesirable due to their high per-packet computation and communication
// overhead."
//
// We build it so that claim can be measured instead of assumed. Structure
// mirrors the full-ack scheme, but every acknowledgement is a one-time
// hash-based signature (W-OTS, crypto/wots.h) instead of a MAC:
//   * the destination signs an ack for every data packet;
//   * on a miss, the source probes and every state-holding node answers
//     with an *independently signed* report (signatures are publicly
//     verifiable and unforgeable by other nodes, so no onion nesting is
//     needed for authenticity — though, as bench_ablation shows for
//     independent acks generally, suppression-based framing returns; the
//     asymmetric variant inherits that weakness too);
//   * per-ack key index = the packet sequence number, with the verifier
//     reconstructing the expected one-time public key from the node's
//     registered seed (standing in for Merkle-tree key registration).
//
// The measured price (bench_asymmetric): ~2.1 KB of signature per ack —
// two orders of magnitude over the 8-byte MACs — plus ~10^3 hash
// compressions per signing/verification.
#pragma once

#include "crypto/wots.h"
#include "net/packet.h"
#include "protocols/context.h"
#include "protocols/pending.h"
#include "protocols/relay_base.h"
#include "protocols/score.h"
#include "protocols/source_handle.h"
#include "sim/node.h"

namespace paai::protocols {

class SigAckSource final : public sim::Agent, public SourceHandle {
 public:
  explicit SigAckSource(const ProtocolContext& ctx);

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

  std::uint64_t packets_sent() const override { return sent_; }
  std::uint64_t observations() const override { return score_.observations(); }
  std::vector<double> thetas() const override { return score_.thetas(); }
  std::vector<std::size_t> convicted(double threshold) const override {
    return score_.convicted(threshold);
  }
  double observed_e2e_rate() const override;

  /// Number of signature verifications performed (cost accounting).
  std::uint64_t signature_verifications() const { return verifications_; }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    bool probed = false;
    std::uint32_t ack_bits = 0;
  };

  void send_next();
  void on_ack_timeout(const net::PacketId& id);
  void on_probe_timeout(const net::PacketId& id);
  void handle_report(const net::ReportAck& ack);

  const ProtocolContext& ctx_;
  ScoreTable score_;
  PendingStore<Pending> pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t verifications_ = 0;
  sim::SimDuration send_period_;
};

class SigAckRelay final : public RelayBase {
 public:
  explicit SigAckRelay(const ProtocolContext& ctx)
      : RelayBase(ctx), pending_(nullptr) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 private:
  struct RState {
    std::uint64_t seq = 0;
  };

  PendingStore<RState> pending_;
};

class SigAckDestination final : public sim::Agent {
 public:
  explicit SigAckDestination(const ProtocolContext& ctx)
      : ctx_(ctx), pending_(nullptr) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 private:
  struct DState {
    std::uint64_t seq = 0;
  };

  const ProtocolContext& ctx_;
  PendingStore<DState> pending_;
};

/// Signed report <i || seq || WOTS-sig over (i || H(m))>; the signing key
/// is (node seed, seq).
Bytes sigack_report(const crypto::Key& node_seed, std::size_t index,
                    std::uint64_t seq, const net::PacketId& id);

/// Verifies a signed report against the reconstructed one-time public key;
/// on success returns the signer's index.
std::optional<std::size_t> sigack_verify(const ProtocolContext& ctx,
                                         ByteView report,
                                         const net::PacketId& id);

}  // namespace paai::protocols
