#include "protocols/paai1.h"

#include <cstring>

#include "util/wire.h"

namespace paai::protocols {

namespace {

std::shared_ptr<const Bytes> shared_wire(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

}  // namespace

Bytes paai1_local_report(std::size_t index, const net::PacketId& id) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(index));
  w.raw(ByteView(id.data(), id.size()));
  return std::move(w).take();
}

bool paai1_report_ok(std::uint8_t index, ByteView report,
                     const net::PacketId& id) {
  if (report.size() != 1 + id.size()) return false;
  return report[0] == index &&
         std::memcmp(report.data() + 1, id.data(), id.size()) == 0;
}

Bytes paai1_independent_report(const crypto::CryptoProvider& crypto,
                               const crypto::Key& key, std::size_t index,
                               const net::PacketId& id) {
  const Bytes content = paai1_local_report(index, id);
  const crypto::Mac mac =
      crypto.mac(key, ByteView(content.data(), content.size()));
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(index));
  w.raw(ByteView(mac.data(), mac.size()));
  return std::move(w).take();
}

namespace {

crypto::Mac probe_auth_tag(const ProtocolContext& ctx, std::size_t index,
                           const net::Probe& probe) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(index));
  w.raw(ByteView(probe.data_id.data(), probe.data_id.size()));
  w.u64(probe.challenge);
  const Bytes& buf = w.data();
  return ctx.crypto().mac(ctx.keys().node_key(index),
                          ByteView(buf.data(), buf.size()));
}

}  // namespace

Bytes build_probe_auth(const ProtocolContext& ctx, const net::Probe& probe) {
  Bytes chain;
  chain.reserve(ctx.d() * crypto::kMacSize);
  for (std::size_t i = 1; i <= ctx.d(); ++i) {
    const crypto::Mac tag = probe_auth_tag(ctx, i, probe);
    chain.insert(chain.end(), tag.begin(), tag.end());
  }
  return chain;
}

bool verify_probe_auth(const ProtocolContext& ctx, const net::Probe& probe,
                       std::size_t index) {
  if (index < 1 || index > ctx.d()) return false;
  if (probe.auth.size() != ctx.d() * crypto::kMacSize) return false;
  const crypto::Mac expected = probe_auth_tag(ctx, index, probe);
  return ct_equal(ByteView(expected.data(), expected.size()),
                  ByteView(probe.auth.data() + (index - 1) * crypto::kMacSize,
                           crypto::kMacSize));
}

// ---------------------------------------------------------------- source

// Every probed packet exposes a link to the data, probe, and onion legs —
// nominally 3 traversals, but a drop suppresses the same round's
// downstream legs (an onion that originated upstream of l_i never crosses
// it), leaving an effective exposure of ~2.6. Calibrated so that honest
// links estimate at their true natural rate.
Paai1Source::Paai1Source(const ProtocolContext& ctx)
    : ctx_(ctx),
      sampler_(ctx.crypto(), ctx.keys().source_sampling_key(),
               ctx.params().probe_probability),
      score_(ctx.d(), /*traversals=*/2.6),
      pending_(nullptr),
      send_period_(static_cast<sim::SimDuration>(
          static_cast<double>(sim::kSecond) / ctx.params().send_rate_pps)) {
  score_.set_blame(ctx.params().blame);
}

void Paai1Source::start() {
  pending_.attach(node(), ctx_.r0() / 2);
  node().sim().after(send_period_, [this] { send_next(); });
}

void Paai1Source::send_next() {
  if (sent_ >= ctx_.params().total_packets) return;

  net::DataPacket pkt;
  pkt.seq = sent_;
  pkt.timestamp_ns = static_cast<std::uint64_t>(node().local_now());
  pkt.payload_size = ctx_.params().payload_size;
  const net::PacketId id = pkt.id(ctx_.crypto());

  node().originate(sim::Direction::kToDest, shared_wire(pkt.encode()),
                   pkt.wire_size());
  ctx_.log_event(node(), obs::EventKind::kDataSend, -1,
                 obs::event_id64(id.data()), pkt.seq);
  ++sent_;

  // Phase 1 decision: sample m for probing with probability p, keyed so
  // no observer can predict the outcome.
  if (sampler_.sampled(ByteView(id.data(), id.size()))) {
    ctx_.log_event(node(), obs::EventKind::kSampleSelect, -1,
                   obs::event_id64(id.data()), pkt.seq);
    pending_.purge(node().sim().now());
    pending_.put(id, Pending{},
                 node().sim().now() + ctx_.probe_delay() + 2 * ctx_.r0() +
                     8 * ctx_.timer_slack());
    node().sim().after(ctx_.probe_delay(), [this, id] { send_probe(id); });
  }

  if (sent_ < ctx_.params().total_packets) {
    node().sim().after(send_period_, [this] { send_next(); });
  }
}

void Paai1Source::send_probe(const net::PacketId& id) {
  if (pending_.find(id) == nullptr) return;
  ++probed_;
  net::Probe probe;
  probe.data_id = id;
  if (ctx_.params().authenticated_probes) {
    probe.auth = build_probe_auth(ctx_, probe);
  }
  node().originate(sim::Direction::kToDest, shared_wire(probe.encode()),
                   probe.wire_size());
  ctx_.metrics().probes_sent.add();
  ctx_.log_event(node(), obs::EventKind::kProbeSend, -1,
                 obs::event_id64(id.data()));
  node().sim().after(ctx_.r0() + 2 * ctx_.timer_slack(),
                     [this, id] { on_resolution_timeout(id); });
}

void Paai1Source::on_resolution_timeout(const net::PacketId& id) {
  Pending* p = pending_.find(id);
  if (p == nullptr) return;  // a report resolved it
  if (ctx_.params().paai1_independent_acks) {
    resolve_independent(id, *p);
    return;
  }
  // No authenticated report at all: the drop is on the source's own
  // downstream link (footnote 8).
  ctx_.log_event(node(), obs::EventKind::kAckTimeout, -1,
                 obs::event_id64(id.data()));
  score_.blame(0);
  ctx_.log_event(node(), obs::EventKind::kScoreBlame, 0,
                 obs::event_id64(id.data()), score_.observations(),
                 score_.theta(0));
  pending_.erase(id);
}

void Paai1Source::resolve_independent(const net::PacketId& id,
                                      const Pending& pending) {
  // Deepest contiguous prefix of verified acks F_1..F_k; blame l_k. This
  // is exactly the rule that independent acks force on the source — and
  // exactly why they are framable (see header / bench_ablation).
  std::size_t k = 0;
  while (k < ctx_.d() && (pending.ack_bits >> (k + 1)) & 1u) ++k;
  if (k >= ctx_.d()) {
    score_.add_clean();
    ++delivered_;
    ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                   obs::event_id64(id.data()), score_.observations());
  } else {
    score_.blame(k);
    ctx_.log_event(node(), obs::EventKind::kScoreBlame,
                   static_cast<std::int32_t>(k), obs::event_id64(id.data()),
                   score_.observations(), score_.theta(k));
  }
  pending_.erase(id);
}

void Paai1Source::on_packet(const sim::PacketEnv& env) {
  if (net::peek_type(env.view()) != net::PacketType::kReportAck) return;
  if (const auto ack = net::ReportAck::decode(env.view())) {
    handle_report(*ack);
  }
}

void Paai1Source::handle_report(const net::ReportAck& ack) {
  ctx_.metrics().report_acks_received.add();
  if (ctx_.params().paai1_independent_acks) {
    handle_independent_report(ack);
    return;
  }
  if (pending_.find(ack.data_id) == nullptr) return;

  const net::PacketId id = ack.data_id;
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(id.data()), /*b=*/1);
  const auto result = net::onion_verify(
      ctx_.crypto(), ctx_.key_vector(), ctx_.d(),
      ByteView(ack.report.data(), ack.report.size()),
      [&id](std::uint8_t i, ByteView r) { return paai1_report_ok(i, r, id); });

  ctx_.log_event(node(), obs::EventKind::kOnionDecode, -1,
                 obs::event_id64(id.data()), result.valid_layers);
  if (result.valid_layers == 0) return;  // unauthenticated: ignore (see §4)
  if (result.valid_layers >= ctx_.d()) {
    score_.add_clean();
    ++delivered_;
    ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                   obs::event_id64(id.data()), score_.observations());
  } else {
    score_.blame(result.valid_layers);
    ctx_.log_event(node(), obs::EventKind::kScoreBlame,
                   static_cast<std::int32_t>(result.valid_layers),
                   obs::event_id64(id.data()), score_.observations(),
                   score_.theta(result.valid_layers));
  }
  pending_.erase(id);
}

void Paai1Source::handle_independent_report(const net::ReportAck& ack) {
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr) return;
  if (ack.report.size() != 1 + crypto::kMacSize) return;
  const std::size_t index = ack.report[0];
  if (index < 1 || index > ctx_.d()) return;
  const Bytes expected = paai1_independent_report(
      ctx_.crypto(), ctx_.keys().node_key(index), index, ack.data_id);
  if (!ct_equal(ByteView(expected.data(), expected.size()),
                ByteView(ack.report.data(), ack.report.size()))) {
    return;
  }
  p->ack_bits |= 1u << index;
  // Resolution happens at the timeout, once all acks had time to arrive.
}

double Paai1Source::observed_e2e_rate() const {
  const std::uint64_t n = score_.observations();
  if (n == 0) return 0.0;
  return 1.0 - static_cast<double>(delivered_) / static_cast<double>(n);
}

// ----------------------------------------------------------------- relay

void Paai1Relay::start() { pending_.attach(node(), ctx().r0() / 2); }

void Paai1Relay::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  switch (*type) {
    case net::PacketType::kData: {
      const auto pkt = net::DataPacket::decode(env.view());
      if (!pkt || !fresh(*pkt)) return;
      pending_.put(pkt->id(ctx().crypto()), RState{},
                   node().sim().now() + ctx().unprobed_state_horizon());
      relay(env);
      break;
    }
    case net::PacketType::kProbe: {
      const auto probe = net::Probe::decode(env.view());
      if (!probe) return;
      if (ctx().params().authenticated_probes &&
          !verify_probe_auth(ctx(), *probe, node().index())) {
        return;  // bogus probe: reject before spending any resources
      }
      RState* st = pending_.find(probe->data_id);
      if (st == nullptr) {
        relay(env);  // stateless: pass along, contribute nothing
        return;
      }
      if (ctx().params().paai1_independent_acks) {
        // Ablation mode: answer immediately with a free-standing ack, no
        // onion nesting, no downstream wait.
        relay(env);
        net::ReportAck ack;
        ack.data_id = probe->data_id;
        ack.report = paai1_independent_report(
            ctx().crypto(), ctx().keys().node_key(node().index()),
            node().index(), probe->data_id);
        relay(sim::PacketEnv{shared_wire(ack.encode()), ack.wire_size(),
                             sim::Direction::kToSource});
        pending_.erase(probe->data_id);
        return;
      }
      st->probe_seen = true;
      const auto wait = ctx().rtt(node().index()) + ctx().timer_slack();
      pending_.extend(probe->data_id,
                      node().sim().now() + wait + 2 * ctx().timer_slack());
      relay(env);
      const net::PacketId id = probe->data_id;
      node().sim().after(wait, [this, id] { on_wait_timeout(id); });
      break;
    }
    case net::PacketType::kReportAck: {
      const auto ack = net::ReportAck::decode(env.view());
      if (!ack) return;
      if (ctx().params().paai1_independent_acks) {
        relay(env);  // free-standing acks are forwarded blindly
        return;
      }
      RState* st = pending_.find(ack->data_id);
      if (st == nullptr || !st->probe_seen || st->responded) return;
      st->responded = true;
      const Bytes report = paai1_local_report(node().index(), ack->data_id);
      net::ReportAck wrapped;
      wrapped.data_id = ack->data_id;
      wrapped.report = net::onion_wrap(
          ctx().crypto(), ctx().keys().node_key(node().index()),
          static_cast<std::uint8_t>(node().index()),
          ByteView(report.data(), report.size()),
          ByteView(ack->report.data(), ack->report.size()));
      relay(sim::PacketEnv{shared_wire(wrapped.encode()), wrapped.wire_size(),
                           sim::Direction::kToSource});
      pending_.erase(ack->data_id);
      break;
    }
    default:
      relay(env);
      break;
  }
}

void Paai1Relay::on_wait_timeout(const net::PacketId& id) {
  RState* st = pending_.find(id);
  if (st == nullptr || st->responded) return;
  st->responded = true;
  const Bytes report = paai1_local_report(node().index(), id);
  net::ReportAck ack;
  ack.data_id = id;
  ack.report = net::onion_originate(
      ctx().crypto(), ctx().keys().node_key(node().index()),
      static_cast<std::uint8_t>(node().index()),
      ByteView(report.data(), report.size()));
  relay(sim::PacketEnv{shared_wire(ack.encode()), ack.wire_size(),
                       sim::Direction::kToSource});
  pending_.erase(id);
}

// ----------------------------------------------------------- destination

void Paai1Destination::start() { pending_.attach(node(), ctx_.r0() / 2); }

void Paai1Destination::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  if (*type == net::PacketType::kData) {
    const auto pkt = net::DataPacket::decode(env.view());
    if (!pkt) return;
    const sim::SimTime now = node().local_now();
    const auto age = now - static_cast<sim::SimTime>(pkt->timestamp_ns);
    if (age > ctx_.freshness_window() || age < -ctx_.freshness_window()) {
      return;
    }
    pending_.put(pkt->id(ctx_.crypto()), DState{},
                 node().sim().now() + ctx_.unprobed_state_horizon());
  } else if (*type == net::PacketType::kProbe) {
    const auto probe = net::Probe::decode(env.view());
    if (!probe || pending_.find(probe->data_id) == nullptr) return;
    if (ctx_.params().authenticated_probes &&
        !verify_probe_auth(ctx_, *probe, ctx_.d())) {
      return;
    }
    net::ReportAck ack;
    ack.data_id = probe->data_id;
    if (ctx_.params().paai1_independent_acks) {
      ack.report = paai1_independent_report(
          ctx_.crypto(), ctx_.keys().node_key(ctx_.d()), ctx_.d(),
          probe->data_id);
    } else {
      const Bytes report = paai1_local_report(ctx_.d(), probe->data_id);
      ack.report = net::onion_originate(
          ctx_.crypto(), ctx_.keys().node_key(ctx_.d()),
          static_cast<std::uint8_t>(ctx_.d()),
          ByteView(report.data(), report.size()));
    }
    node().originate(sim::Direction::kToSource, shared_wire(ack.encode()),
                     ack.wire_size());
    pending_.erase(probe->data_id);
  }
}

}  // namespace paai::protocols
