// Statistical fault localization — our implementation of the baseline the
// paper compares against (Barak, Goldberg, Xiao, EUROCRYPT'08 [7]).
//
// Time is divided into intervals of T data packets. Every node F_i keeps a
// single counter: how many data packets of the current interval were
// "sampled" by PRF_{k_i}(H(m)) < p, where k_i is a sampling key shared
// only between S and F_i (so no other node — compromised or not — can
// predict which packets F_i counts; dropping selectively around another
// node's sample set is impossible). At the end of an interval the source
// requests one onion report carrying every node's counter; per-link loss
// rates are estimated from adjacent counter ratios, which converge by the
// law of large numbers over the sampled sub-streams.
//
// The protocol's per-packet overhead is essentially zero (O(1) counters,
// two control packets per interval) — and its detection rate is orders of
// magnitude slower than PAAI-1's, which is precisely the trade-off the
// paper's Tables 1-2 illustrate.
#pragma once

#include "net/onion.h"
#include "net/packet.h"
#include "protocols/context.h"
#include "protocols/relay_base.h"
#include "protocols/score.h"
#include "protocols/source_handle.h"
#include "sim/node.h"

namespace paai::protocols {

class StatFlSource final : public sim::Agent, public SourceHandle {
 public:
  explicit StatFlSource(const ProtocolContext& ctx);

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

  std::uint64_t packets_sent() const override { return sent_; }
  std::uint64_t observations() const override {
    return score_.intervals_reported();
  }
  std::vector<double> thetas() const override { return score_.thetas(); }
  std::vector<std::size_t> convicted(double threshold) const override {
    return score_.convicted(threshold);
  }
  double observed_e2e_rate() const override {
    return score_.observed_e2e_rate();
  }

 private:
  void send_next();
  void request_report(std::uint64_t interval, int attempt);
  void handle_report(const net::FlReport& report);

  const ProtocolContext& ctx_;
  FlScoreTable score_;
  std::uint64_t sent_ = 0;
  std::uint64_t own_count_ = 0;       // current interval, source's stream
  std::uint64_t interval_ = 0;        // current interval number
  std::uint64_t awaiting_ = 0;        // interval with an outstanding request
  bool awaiting_active_ = false;
  std::uint64_t awaiting_own_count_ = 0;
  sim::SimDuration send_period_;
};

class StatFlRelay final : public RelayBase {
 public:
  explicit StatFlRelay(const ProtocolContext& ctx) : RelayBase(ctx) {}

  void on_packet(const sim::PacketEnv& env) override;

  /// A crashed node loses its volatile interval counters; the interval in
  /// flight under-reports and the source's per-interval estimate absorbs
  /// it (bounded by one interval's worth of samples — the chaos suite
  /// checks it stays below the accusation threshold at paper scale).
  void on_crash() override {
    count_ = 0;
    snapshot_ = 0;
    snapshot_interval_ = ~0ULL;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t snapshot_ = 0;
  std::uint64_t snapshot_interval_ = ~0ULL;
};

class StatFlDestination final : public sim::Agent {
 public:
  explicit StatFlDestination(const ProtocolContext& ctx) : ctx_(ctx) {}

  void on_packet(const sim::PacketEnv& env) override;

 private:
  const ProtocolContext& ctx_;
  std::uint64_t count_ = 0;
  std::uint64_t last_snapshot_ = 0;
  std::uint64_t last_interval_ = ~0ULL;
};

/// Whether node `index`'s sampling stream counts this packet.
bool statfl_counts(const ProtocolContext& ctx, std::size_t index,
                   const net::PacketId& id);

/// The FL local report R_i = <i || interval || count>.
Bytes statfl_local_report(std::size_t index, std::uint64_t interval,
                          std::uint64_t count);

}  // namespace paai::protocols
