// Combination 2 (§10): one *selected* node acknowledges a *selected
// fraction* of data packets — PAAI-2's oblivious selection applied only to
// a K_d-keyed sample of the traffic.
//
// The probe function is keyed with the key shared between S and D, so the
// destination independently knows which packets to ack; an intermediate
// node that sees a valid destination ack pass learns the packet was
// sampled and that no probe will follow, and frees its state early.
// Communication drops below both PAAI-1 and PAAI-2 (O(p) per packet), at
// the price of a detection rate slower by the 1/p factor (Table 1).
//
// Implementation: thin subclasses of the PAAI-2 agents with the
// Combination-2 mode flags — the protocol machinery (challenges,
// predicates, layered re-encryption, prefix scoring) is identical.
#pragma once

#include "protocols/paai2.h"

namespace paai::protocols {

class Comb2Source final : public Paai2Source {
 public:
  explicit Comb2Source(const ProtocolContext& ctx)
      : Paai2Source(ctx, /*sampled_mode=*/true) {}
};

class Comb2Relay final : public Paai2Relay {
 public:
  explicit Comb2Relay(const ProtocolContext& ctx)
      : Paai2Relay(ctx, /*release_on_dest_ack=*/true) {}
};

class Comb2Destination final : public Paai2Destination {
 public:
  explicit Comb2Destination(const ProtocolContext& ctx)
      : Paai2Destination(ctx, /*ack_only_sampled=*/true) {}
};

}  // namespace paai::protocols
