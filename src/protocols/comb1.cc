#include "protocols/comb1.h"

#include <cstring>

#include "util/wire.h"

namespace paai::protocols {

namespace {

std::shared_ptr<const Bytes> shared_wire(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

crypto::Mac dest_ack_tag(const ProtocolContext& ctx, const net::PacketId& id) {
  return ctx.crypto().mac(ctx.keys().node_key(ctx.d()),
                          ByteView(id.data(), id.size()));
}

}  // namespace

// ---------------------------------------------------------------- source

Comb1Source::Comb1Source(const ProtocolContext& ctx)
    : ctx_(ctx),
      sampler_(ctx.crypto(), ctx.keys().destination_key(),
               ctx.params().probe_probability),
      // Same blame-exposure structure as full-ack (see FullAckSource).
      score_(ctx.d(), /*traversals=*/1.0, /*probe_extra=*/2.0),
      pending_(nullptr),
      send_period_(static_cast<sim::SimDuration>(
          static_cast<double>(sim::kSecond) / ctx.params().send_rate_pps)) {
  score_.set_blame(ctx.params().blame);
}

void Comb1Source::start() {
  pending_.attach(node(), ctx_.r0() / 2);
  node().sim().after(send_period_, [this] { send_next(); });
}

void Comb1Source::send_next() {
  if (sent_ >= ctx_.params().total_packets) return;

  net::DataPacket pkt;
  pkt.seq = sent_;
  pkt.timestamp_ns = static_cast<std::uint64_t>(node().local_now());
  pkt.payload_size = ctx_.params().payload_size;
  const net::PacketId id = pkt.id(ctx_.crypto());

  node().originate(sim::Direction::kToDest, shared_wire(pkt.encode()),
                   pkt.wire_size());
  ctx_.log_event(node(), obs::EventKind::kDataSend, -1,
                 obs::event_id64(id.data()), pkt.seq);
  ++sent_;

  // Only K_d-sampled packets are monitored; D acks those unprompted.
  if (sampler_.sampled(ByteView(id.data(), id.size()))) {
    ctx_.log_event(node(), obs::EventKind::kSampleSelect, -1,
                   obs::event_id64(id.data()), pkt.seq);
    pending_.purge(node().sim().now());
    pending_.put(id, Pending{},
                 node().sim().now() + 3 * ctx_.r0() + 8 * ctx_.timer_slack());
    node().sim().after(ctx_.r0() + ctx_.timer_slack(),
                       [this, id] { on_ack_timeout(id); });
  }

  if (sent_ < ctx_.params().total_packets) {
    node().sim().after(send_period_, [this] { send_next(); });
  }
}

void Comb1Source::on_ack_timeout(const net::PacketId& id) {
  Pending* p = pending_.find(id);
  if (p == nullptr || p->probed) return;
  p->probed = true;
  score_.note_probe();
  ctx_.log_event(node(), obs::EventKind::kAckTimeout, -1,
                 obs::event_id64(id.data()));
  net::Probe probe;
  probe.data_id = id;
  node().originate(sim::Direction::kToDest, shared_wire(probe.encode()),
                   probe.wire_size());
  ctx_.metrics().probes_sent.add();
  ctx_.log_event(node(), obs::EventKind::kProbeSend, -1,
                 obs::event_id64(id.data()));
  node().sim().after(ctx_.r0() + 2 * ctx_.timer_slack(),
                     [this, id] { on_probe_timeout(id); });
}

void Comb1Source::on_probe_timeout(const net::PacketId& id) {
  if (pending_.find(id) == nullptr) return;
  score_.blame(0);
  ctx_.log_event(node(), obs::EventKind::kScoreBlame, 0,
                 obs::event_id64(id.data()), score_.observations(),
                 score_.theta(0));
  pending_.erase(id);
}

void Comb1Source::on_packet(const sim::PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (!type) return;
  if (*type == net::PacketType::kDestAck) {
    if (const auto ack = net::DestAck::decode(env.view())) {
      handle_dest_ack(*ack);
    }
  } else if (*type == net::PacketType::kReportAck) {
    if (const auto ack = net::ReportAck::decode(env.view())) {
      handle_report(*ack);
    }
  }
}

void Comb1Source::handle_dest_ack(const net::DestAck& ack) {
  ctx_.metrics().dest_acks_received.add();
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr) return;
  const crypto::Mac expected = dest_ack_tag(ctx_, ack.data_id);
  if (!ct_equal(ByteView(expected.data(), expected.size()),
                ByteView(ack.tag.data(), ack.tag.size()))) {
    return;
  }
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(ack.data_id.data()), /*b=*/0);
  score_.add_clean();
  ++delivered_;
  ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                 obs::event_id64(ack.data_id.data()), score_.observations());
  pending_.erase(ack.data_id);
}

void Comb1Source::handle_report(const net::ReportAck& ack) {
  ctx_.metrics().report_acks_received.add();
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr || !p->probed) return;

  const net::PacketId id = ack.data_id;
  // Relay layers carry <i || H(m)>; the destination embeds its ack tag:
  // <d || H(m) || a_d> (same formats as the full-ack scheme).
  const auto report_ok = [this, &id](std::uint8_t i, ByteView r) {
    const std::size_t base = 1 + id.size();
    if (r.size() < base || r[0] != i) return false;
    if (std::memcmp(r.data() + 1, id.data(), id.size()) != 0) return false;
    if (i == ctx_.d()) {
      if (r.size() != base + crypto::kMacSize) return false;
      const crypto::Mac expected = dest_ack_tag(ctx_, id);
      return ct_equal(ByteView(expected.data(), expected.size()),
                      r.subspan(base));
    }
    return r.size() == base;
  };

  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(id.data()), /*b=*/1);
  const auto result = net::onion_verify(
      ctx_.crypto(), ctx_.key_vector(), ctx_.d(),
      ByteView(ack.report.data(), ack.report.size()), report_ok);

  ctx_.log_event(node(), obs::EventKind::kOnionDecode, -1,
                 obs::event_id64(id.data()), result.valid_layers);
  if (result.valid_layers == 0) return;  // unauthenticated: ignore
  if (result.valid_layers >= ctx_.d()) {
    score_.add_clean();
    ++delivered_;
    ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                   obs::event_id64(id.data()), score_.observations());
  } else {
    score_.blame(result.valid_layers);
    ctx_.log_event(node(), obs::EventKind::kScoreBlame,
                   static_cast<std::int32_t>(result.valid_layers),
                   obs::event_id64(id.data()), score_.observations(),
                   score_.theta(result.valid_layers));
  }
  pending_.erase(id);
}

double Comb1Source::observed_e2e_rate() const {
  const std::uint64_t n = score_.observations();
  if (n == 0) return 0.0;
  return 1.0 - static_cast<double>(delivered_) / static_cast<double>(n);
}

// ----------------------------------------------------------- destination

Comb1Destination::Comb1Destination(const ProtocolContext& ctx)
    : ctx_(ctx),
      sampler_(ctx.crypto(), ctx.keys().destination_key(),
               ctx.params().probe_probability),
      pending_(nullptr) {}

void Comb1Destination::start() { pending_.attach(node(), ctx_.r0() / 2); }

void Comb1Destination::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  if (*type == net::PacketType::kData) {
    const auto pkt = net::DataPacket::decode(env.view());
    if (!pkt) return;
    const sim::SimTime now = node().local_now();
    const auto age = now - static_cast<sim::SimTime>(pkt->timestamp_ns);
    if (age > ctx_.freshness_window() || age < -ctx_.freshness_window()) {
      return;
    }
    const net::PacketId id = pkt->id(ctx_.crypto());
    // D evaluates the K_d-keyed sampler itself: unsampled packets need no
    // ack and will never be probed.
    if (!sampler_.sampled(ByteView(id.data(), id.size()))) return;
    pending_.put(id, DState{},
                 node().sim().now() + 2 * ctx_.r0() + 4 * ctx_.timer_slack());
    net::DestAck ack;
    ack.data_id = id;
    ack.tag = dest_ack_tag(ctx_, id);
    node().originate(sim::Direction::kToSource, shared_wire(ack.encode()),
                     ack.wire_size());
  } else if (*type == net::PacketType::kProbe) {
    const auto probe = net::Probe::decode(env.view());
    if (!probe || pending_.find(probe->data_id) == nullptr) return;
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(ctx_.d()));
    w.raw(ByteView(probe->data_id.data(), probe->data_id.size()));
    const crypto::Mac tag = dest_ack_tag(ctx_, probe->data_id);
    w.raw(ByteView(tag.data(), tag.size()));
    const Bytes report = std::move(w).take();

    net::ReportAck ack;
    ack.data_id = probe->data_id;
    ack.report = net::onion_originate(
        ctx_.crypto(), ctx_.keys().node_key(ctx_.d()),
        static_cast<std::uint8_t>(ctx_.d()),
        ByteView(report.data(), report.size()));
    node().originate(sim::Direction::kToSource, shared_wire(ack.encode()),
                     ack.wire_size());
    pending_.erase(probe->data_id);
  }
}

}  // namespace paai::protocols
