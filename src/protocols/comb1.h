// Combination 1 (§10): every node acknowledges a selected fraction of
// *lost* data packets.
//
// PAAI-1's probe function is re-keyed with K_d (the key shared between S
// and D), so the destination can independently decide that a packet is
// sampled and ack it right away. The source then solicits the O(d) onion
// report only for a sampled packet whose destination ack went missing —
// cutting PAAI-1's communication overhead from O(pd) to O(p(1 + psi d))
// while keeping the same detection rate. The cost is storage: relays
// cannot evaluate the K_d-keyed sampler, so they must hold state for
// *every* packet across the destination-ack round trip (Table 1's
// r_0(0.5 + 2p) nu bound).
//
// Relays behave exactly like full-ack relays (store all ids, release when
// the destination ack passes, contribute onion layers on probes), so that
// class is reused directly.
#pragma once

#include "crypto/sampler.h"
#include "net/onion.h"
#include "net/packet.h"
#include "protocols/context.h"
#include "protocols/fullack.h"
#include "protocols/paai1.h"
#include "protocols/pending.h"
#include "protocols/score.h"
#include "protocols/source_handle.h"
#include "sim/node.h"

namespace paai::protocols {

class Comb1Source final : public sim::Agent, public SourceHandle {
 public:
  explicit Comb1Source(const ProtocolContext& ctx);

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

  std::uint64_t packets_sent() const override { return sent_; }
  std::uint64_t observations() const override { return score_.observations(); }
  std::vector<double> thetas() const override { return score_.thetas(); }
  std::vector<std::size_t> convicted(double threshold) const override {
    return score_.convicted(threshold);
  }
  double observed_e2e_rate() const override;

 private:
  struct Pending {
    bool probed = false;
  };

  void send_next();
  void on_ack_timeout(const net::PacketId& id);
  void on_probe_timeout(const net::PacketId& id);
  void handle_dest_ack(const net::DestAck& ack);
  void handle_report(const net::ReportAck& ack);

  const ProtocolContext& ctx_;
  crypto::SecureSampler sampler_;  // keyed with K_d
  ScoreTable score_;
  PendingStore<Pending> pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  sim::SimDuration send_period_;
};

using Comb1Relay = FullAckRelay;

class Comb1Destination final : public sim::Agent {
 public:
  explicit Comb1Destination(const ProtocolContext& ctx);

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 private:
  struct DState {};

  const ProtocolContext& ctx_;
  crypto::SecureSampler sampler_;
  PendingStore<DState> pending_;
};

}  // namespace paai::protocols
