// PAAI-2 (§6.2): probabilistic sampling of *which node* acknowledges.
//
// Phase 1 — the destination acks every data packet (a_d = [H(m)]_{K_d});
//   relays store H(m) and keep a copy of a_d when it passes.
// Phase 2 — if a_d goes missing, the source probes with a random
//   challenge Z. Each node evaluates a PRF_{K_i} predicate T_i over the
//   probe that fires with probability 1/(d-i+1); the *selected* node is
//   the first that fires, which makes the selection uniform on {1..d} and
//   — because the PRF is keyed per node — invisible to everyone else.
// Phase 3 — the selected node F_e returns an *encrypted* report
//   A_e = E_{K_e}([e || c || a_d]_{K_e}); every upstream node re-encrypts
//   (A_i = E_{K_i}(A_{i+1})) or, if itself sampled, overwrites with its
//   own report. Acks therefore have constant size and are unlinkable to
//   the selected node (the obliviousness property). The overwrite rule is
//   also a defense: a forged ack injected downstream of F_e gets replaced
//   with the truth as it passes F_e.
// Phase 4 — the source (which can evaluate every predicate itself) peels
//   E_{K_1}..E_{K_e} and compares against the two expected tags (a_d seen
//   / not seen). A mismatch or a missing report means at least one drop
//   in [l_0, l_{e-1}]: each link of that prefix gains a score point.
// Phase 5 — per-link rates are recovered from adjacent prefix-failure
//   differences (see Paai2ScoreTable) and compared to the threshold.
#pragma once

#include "crypto/sampler.h"
#include "net/packet.h"
#include "protocols/context.h"
#include "protocols/pending.h"
#include "protocols/relay_base.h"
#include "protocols/score.h"
#include "protocols/source_handle.h"
#include "sim/node.h"

namespace paai::protocols {

class Paai2Source : public sim::Agent, public SourceHandle {
 public:
  explicit Paai2Source(const ProtocolContext& ctx)
      : Paai2Source(ctx, /*sampled_mode=*/false) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

  std::uint64_t packets_sent() const override { return sent_; }
  std::uint64_t observations() const override { return score_.probes(); }
  std::vector<double> thetas() const override { return score_.thetas(); }
  std::vector<std::size_t> convicted(double threshold) const override {
    return score_.convicted(threshold);
  }
  double observed_e2e_rate() const override {
    return score_.observed_e2e_rate();
  }

  const Paai2ScoreTable& score_table() const { return score_; }

 protected:
  /// sampled_mode = Combination 2 (§10): only a K_d-keyed sampled fraction
  /// of the traffic is monitored at all.
  Paai2Source(const ProtocolContext& ctx, bool sampled_mode);

 private:
  struct Pending {
    bool probed = false;
    std::size_t selected = 0;
    Bytes probe_bytes;
  };

  void send_next();
  void on_ack_timeout(const net::PacketId& id);
  void on_probe_timeout(const net::PacketId& id);
  void handle_dest_ack(const net::DestAck& ack);
  void handle_report(const net::ReportAck& ack);

  const ProtocolContext& ctx_;
  bool sampled_mode_;
  crypto::SecureSampler monitor_sampler_;
  Paai2ScoreTable score_;
  PendingStore<Pending> pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t challenge_counter_ = 0;
  std::uint64_t confirmed_deliveries_ = 0;  // via verified a_d copies
  sim::SimDuration send_period_;
};

class Paai2Relay : public RelayBase {
 public:
  explicit Paai2Relay(const ProtocolContext& ctx)
      : Paai2Relay(ctx, /*release_on_dest_ack=*/false) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 protected:
  /// Combination 2 relays behave identically (an early state release on
  /// ack sight, which §10 hints at, is unsound — relays cannot
  /// authenticate a_d; see the note in on_packet). The flag is retained
  /// for interface stability and diagnostics only.
  Paai2Relay(const ProtocolContext& ctx, bool release_on_dest_ack)
      : RelayBase(ctx),
        release_on_dest_ack_(release_on_dest_ack),
        pending_(nullptr) {}

 private:
  struct RState {
    bool have_ad = false;
    bool probe_seen = false;
    bool sampled = false;
    bool responded = false;
    crypto::Mac ad_tag{};
    Bytes probe_bytes;
  };

  void on_wait_timeout(const net::PacketId& id);
  void send_own_report(const net::PacketId& id, RState& st);

  bool release_on_dest_ack_;
  PendingStore<RState> pending_;
};

class Paai2Destination : public sim::Agent {
 public:
  explicit Paai2Destination(const ProtocolContext& ctx)
      : Paai2Destination(ctx, /*ack_only_sampled=*/false) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 protected:
  Paai2Destination(const ProtocolContext& ctx, bool ack_only_sampled);

 private:
  struct DState {};

  const ProtocolContext& ctx_;
  bool ack_only_sampled_;
  crypto::SecureSampler monitor_sampler_;
  PendingStore<DState> pending_;
};

/// Authenticator [i || c]_{K_i}: MAC over the node index and the full
/// probe bytes. Scoring depends only on this part.
crypto::Mac paai2_report_tag(const crypto::CryptoProvider& crypto,
                             const crypto::Key& key, std::size_t index,
                             ByteView probe_bytes);

/// Fixed-size report plaintext: [i || c]_{K_i} || flag || a_d-tag.
/// The destination-ack copy rides *alongside* the MAC, not inside it: a
/// node stores a_d without being able to authenticate it, so folding its
/// value into the MAC would let an adversary corrupt passing acks and
/// thereby invalidate honest nodes' reports (incriminating the honest
/// prefix). The source verifies the a_d field independently.
constexpr std::size_t kPaai2ReportSize = crypto::kMacSize + 1 + crypto::kMacSize;
Bytes paai2_report_plaintext(const crypto::CryptoProvider& crypto,
                             const crypto::Key& key, std::size_t index,
                             ByteView probe_bytes,
                             const crypto::Mac* ad_tag);

/// Per-layer encryption nonce, derived from the packet id and the node
/// index so that source and node agree without extra wire bytes.
std::uint64_t paai2_layer_nonce(const net::PacketId& id, std::size_t index);

}  // namespace paai::protocols
