// Shared protocol context and parameters.
//
// One ProtocolContext is built per monitored path and shared (by reference)
// by every agent on it. It bundles the crypto provider, the key store, and
// the timing book-keeping all five phases depend on: RTT bounds r_i, the
// timestamp freshness window, and PAAI's delayed-sampling probe delay.
//
// Timing rationale (§5): probes are sent *after* the data packet (delayed
// sampling); a node discards data whose timestamp is older than the
// freshness window, and the probe delay strictly exceeds that window, so an
// adversary that withholds a packet until the probe reveals whether it is
// monitored can only release a packet that every honest downstream node
// will reject as expired — and the resulting drop is charged to one of the
// adversary's own links. Hence: freshness_window >= max one-way transit +
// clock error, and probe_delay > freshness_window.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/keystore.h"
#include "crypto/provider.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "protocols/window.h"
#include "sim/network.h"
#include "sim/time.h"

namespace paai::protocols {

/// Protocol-plane observability handles (proto.* in the registry),
/// shared by every agent on the path. Inert until the global registry is
/// enabled; see docs/OBSERVABILITY.md for the names.
struct ProtocolMetrics {
  obs::Counter probes_sent;
  obs::Counter dest_acks_received;
  obs::Counter report_acks_received;
  obs::Counter fl_reports_received;
};

enum class ProtocolKind : std::uint8_t {
  kFullAck,
  kPaai1,
  kPaai2,
  kCombination1,
  kCombination2,
  kStatisticalFl,
  kSigAck,  // footnote-1 asymmetric-crypto variant (W-OTS acks)
};

const char* protocol_name(ProtocolKind kind);

struct ProtocolParams {
  /// PAAI-1 / combinations: probe (sampling) frequency p. The paper's
  /// reference setting is p = 1/d^2.
  double probe_probability = 1.0 / 36.0;
  /// Source sending rate, data packets per second.
  double send_rate_pps = 100.0;
  /// Total data packets the source will emit.
  std::uint64_t total_packets = 2000;
  /// Simulated application payload bytes per data packet.
  std::uint16_t payload_size = 1000;
  /// Statistical FL: data packets per reporting interval.
  std::uint64_t fl_interval_packets = 500;
  /// Statistical FL: per-packet secret sampling probability.
  double fl_sampling = 1.0 / 36.0;

  /// Footnote 7: attach a MAC chain (one tag per node) to every probe so
  /// that relays can reject bogus probes instead of spending storage and
  /// uplink on them. Costs O(d) bytes per probe.
  bool authenticated_probes = false;

  /// --blame: the conviction rule the identify phase applies — margin
  /// (paper default), persistent:K (PR 7's repetition gate), or the
  /// windowed/hybrid burst-aware rules (protocols/window.h). Threaded to
  /// every score table via set_blame().
  BlameSpec blame;

  // --- Ablation switches (INSECURE — for the design-choice benches) ---

  /// > 0 overrides the probe delay (ms). Setting it below the freshness
  /// window disables the delayed-sampling defense: a withholding
  /// adversary can wait for the probe and release monitored packets
  /// still-fresh, evading detection (bench_ablation demonstrates this).
  double unsafe_probe_delay_ms = 0.0;

  /// PAAI-1 with *independent* per-node acks instead of onion reports.
  /// An upstream adversary can then drop acks from selected downstream
  /// origins and frame an honest link — the attack that motivates onion
  /// reports in §5.
  bool paai1_independent_acks = false;
};

class ProtocolContext {
 public:
  ProtocolContext(const crypto::CryptoProvider& crypto,
                  const crypto::KeyStore& keys, const sim::PathNetwork& net,
                  const ProtocolParams& params);

  const crypto::CryptoProvider& crypto() const { return *crypto_; }
  const crypto::KeyStore& keys() const { return *keys_; }
  const ProtocolParams& params() const { return params_; }

  std::size_t d() const { return d_; }

  /// RTT bound r_i between node F_i and the destination.
  sim::SimDuration rtt(std::size_t i) const { return rtt_[i]; }
  sim::SimDuration r0() const { return rtt_[0]; }

  /// Maximum acceptable data-packet age at any node.
  sim::SimDuration freshness_window() const { return freshness_window_; }

  /// Delay between sending a data packet and its probe (PAAI-1/Comb-1).
  sim::SimDuration probe_delay() const { return probe_delay_; }

  /// How long a relay keeps state for an unprobed packet: until no probe
  /// can possibly still arrive for it.
  sim::SimDuration unprobed_state_horizon() const {
    return probe_delay_ + freshness_window_;
  }

  /// Grace period added to response timers (processing jitter allowance).
  sim::SimDuration timer_slack() const { return timer_slack_; }

  /// Keys K_1..K_d indexed by node (index 0 unused) — the layout
  /// onion_verify() and selected_node() expect.
  const std::vector<crypto::Key>& key_vector() const { return key_vec_; }

  /// Observability handles (no-ops while the registry is disabled).
  const ProtocolMetrics& metrics() const { return metrics_; }

  /// Structured event log (nullptr = logging off), taken from the path
  /// config. Strictly observational — protocols write, never read.
  obs::EventLog* events() const { return events_; }

  /// Appends a forensic event attributed to `node` (stamped with the
  /// simulated clock); one branch when logging is off.
  void log_event(sim::Node& node, obs::EventKind kind, std::int32_t link = -1,
                 std::uint64_t a = 0, std::uint64_t b = 0,
                 double value = 0.0) const {
    if (events_ != nullptr) {
      events_->append(node.index(), kind, node.sim().now(), link, a, b, value);
    }
  }

 private:
  const crypto::CryptoProvider* crypto_;
  const crypto::KeyStore* keys_;
  ProtocolParams params_;
  std::size_t d_;
  std::vector<sim::SimDuration> rtt_;
  sim::SimDuration freshness_window_;
  sim::SimDuration probe_delay_;
  sim::SimDuration timer_slack_;
  std::vector<crypto::Key> key_vec_;
  ProtocolMetrics metrics_;
  obs::EventLog* events_ = nullptr;
};

}  // namespace paai::protocols
