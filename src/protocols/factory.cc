#include "protocols/factory.h"

#include <memory>
#include <stdexcept>

#include "protocols/comb1.h"
#include "protocols/comb2.h"
#include "protocols/fullack.h"
#include "protocols/paai1.h"
#include "protocols/paai2.h"
#include "protocols/sigack.h"
#include "protocols/statfl.h"

namespace paai::protocols {

namespace {

adversary::Strategy* strategy_for(
    const std::vector<adversary::Strategy*>& strategies, std::size_t i) {
  return i < strategies.size() ? strategies[i] : nullptr;
}

template <typename Source, typename Relay, typename Dest>
SourceHandle* install(const ProtocolContext& ctx, sim::PathNetwork& net,
                      const std::vector<adversary::Strategy*>& strategies) {
  auto source = std::make_unique<Source>(ctx);
  SourceHandle* handle = source.get();
  net.source().attach_agent(std::move(source));

  for (std::size_t i = 1; i < net.length(); ++i) {
    auto relay = std::make_unique<Relay>(ctx);
    relay->set_strategy(strategy_for(strategies, i));
    net.node(i).attach_agent(std::move(relay));
  }

  net.destination().attach_agent(std::make_unique<Dest>(ctx));
  return handle;
}

}  // namespace

SourceHandle* install_protocol(
    ProtocolKind kind, const ProtocolContext& ctx, sim::PathNetwork& net,
    const std::vector<adversary::Strategy*>& strategies) {
  if (net.length() != ctx.d()) {
    throw std::invalid_argument(
        "install_protocol: context and network disagree on path length");
  }
  switch (kind) {
    case ProtocolKind::kFullAck:
      return install<FullAckSource, FullAckRelay, FullAckDestination>(
          ctx, net, strategies);
    case ProtocolKind::kPaai1:
      return install<Paai1Source, Paai1Relay, Paai1Destination>(ctx, net,
                                                                strategies);
    case ProtocolKind::kPaai2:
      return install<Paai2Source, Paai2Relay, Paai2Destination>(ctx, net,
                                                                strategies);
    case ProtocolKind::kCombination1:
      return install<Comb1Source, Comb1Relay, Comb1Destination>(ctx, net,
                                                                strategies);
    case ProtocolKind::kCombination2:
      return install<Comb2Source, Comb2Relay, Comb2Destination>(ctx, net,
                                                                strategies);
    case ProtocolKind::kStatisticalFl:
      return install<StatFlSource, StatFlRelay, StatFlDestination>(
          ctx, net, strategies);
    case ProtocolKind::kSigAck:
      return install<SigAckSource, SigAckRelay, SigAckDestination>(
          ctx, net, strategies);
  }
  throw std::invalid_argument("install_protocol: unknown protocol kind");
}

}  // namespace paai::protocols
