#include "protocols/sigack.h"

#include <cstring>

#include "util/wire.h"

namespace paai::protocols {

namespace {

std::shared_ptr<const Bytes> shared_wire(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

sim::SimDuration state_horizon(const ProtocolContext& ctx,
                               std::size_t node_index) {
  // A probe (sent after the source's ack timeout, <= r_0 + slack) reaches
  // F_i a fixed interval after the data did; the node then needs r_i for
  // the downstream response. Deeper nodes therefore hold state slightly
  // shorter — the position slope of Figure 3(c).
  return ctx.r0() + ctx.rtt(node_index) + 3 * ctx.timer_slack();
}

Bytes signed_content(std::size_t index, const net::PacketId& id) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(index));
  w.raw(ByteView(id.data(), id.size()));
  return std::move(w).take();
}

}  // namespace

Bytes sigack_report(const crypto::Key& node_seed, std::size_t index,
                    std::uint64_t seq, const net::PacketId& id) {
  const Bytes content = signed_content(index, id);
  const Bytes sig = crypto::wots_sign(node_seed, seq,
                                      ByteView(content.data(), content.size()));
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(index));
  w.u64(seq);
  w.raw(ByteView(sig.data(), sig.size()));
  return std::move(w).take();
}

std::optional<std::size_t> sigack_verify(const ProtocolContext& ctx,
                                         ByteView report,
                                         const net::PacketId& id) {
  WireReader r(report);
  std::uint8_t index = 0;
  std::uint64_t seq = 0;
  Bytes sig;
  if (!r.u8(index) || !r.u64(seq) ||
      !r.raw(crypto::kWotsSignatureSize, sig) || !r.done()) {
    return std::nullopt;
  }
  if (index < 1 || index > ctx.d()) return std::nullopt;
  // Reconstruct the expected one-time public key for (node, seq) — the
  // simulation stand-in for looking it up in a pre-registered Merkle tree.
  const crypto::WotsPublicKey pk =
      crypto::wots_public_key(ctx.keys().node_key(index), seq);
  const Bytes content = signed_content(index, id);
  if (!crypto::wots_verify(pk, ByteView(content.data(), content.size()),
                           ByteView(sig.data(), sig.size()))) {
    return std::nullopt;
  }
  return index;
}

// ---------------------------------------------------------------- source

SigAckSource::SigAckSource(const ProtocolContext& ctx)
    : ctx_(ctx),
      score_(ctx.d(), /*traversals=*/1.0, /*probe_extra=*/2.0),
      pending_(nullptr),
      send_period_(static_cast<sim::SimDuration>(
          static_cast<double>(sim::kSecond) / ctx.params().send_rate_pps)) {
  score_.set_blame(ctx.params().blame);
}

void SigAckSource::start() {
  pending_.attach(node(), ctx_.r0() / 2);
  node().sim().after(send_period_, [this] { send_next(); });
}

void SigAckSource::send_next() {
  if (sent_ >= ctx_.params().total_packets) return;

  net::DataPacket pkt;
  pkt.seq = sent_;
  pkt.timestamp_ns = static_cast<std::uint64_t>(node().local_now());
  pkt.payload_size = ctx_.params().payload_size;
  const net::PacketId id = pkt.id(ctx_.crypto());

  pending_.purge(node().sim().now());
  Pending p;
  p.seq = sent_;
  pending_.put(id, p,
               node().sim().now() + 3 * ctx_.r0() + 8 * ctx_.timer_slack());
  node().originate(sim::Direction::kToDest, shared_wire(pkt.encode()),
                   pkt.wire_size());
  ctx_.log_event(node(), obs::EventKind::kDataSend, -1,
                 obs::event_id64(id.data()), pkt.seq);
  ++sent_;

  node().sim().after(ctx_.r0() + ctx_.timer_slack(),
                     [this, id] { on_ack_timeout(id); });
  if (sent_ < ctx_.params().total_packets) {
    node().sim().after(send_period_, [this] { send_next(); });
  }
}

void SigAckSource::on_ack_timeout(const net::PacketId& id) {
  Pending* p = pending_.find(id);
  if (p == nullptr || p->probed) return;
  p->probed = true;
  score_.note_probe();
  ctx_.log_event(node(), obs::EventKind::kAckTimeout, -1,
                 obs::event_id64(id.data()));
  net::Probe probe;
  probe.data_id = id;
  node().originate(sim::Direction::kToDest, shared_wire(probe.encode()),
                   probe.wire_size());
  ctx_.metrics().probes_sent.add();
  ctx_.log_event(node(), obs::EventKind::kProbeSend, -1,
                 obs::event_id64(id.data()));
  node().sim().after(ctx_.r0() + 2 * ctx_.timer_slack(),
                     [this, id] { on_probe_timeout(id); });
}

void SigAckSource::on_probe_timeout(const net::PacketId& id) {
  Pending* p = pending_.find(id);
  if (p == nullptr) return;
  // Deepest contiguous prefix of verified signed reports.
  std::size_t k = 0;
  while (k < ctx_.d() && (p->ack_bits >> (k + 1)) & 1u) ++k;
  if (k >= ctx_.d()) {
    score_.add_clean();
    ++delivered_;
    ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                   obs::event_id64(id.data()), score_.observations());
  } else {
    score_.blame(k);
    ctx_.log_event(node(), obs::EventKind::kScoreBlame,
                   static_cast<std::int32_t>(k), obs::event_id64(id.data()),
                   score_.observations(), score_.theta(k));
  }
  pending_.erase(id);
}

void SigAckSource::on_packet(const sim::PacketEnv& env) {
  if (net::peek_type(env.view()) != net::PacketType::kReportAck) return;
  const auto ack = net::ReportAck::decode(env.view());
  if (ack) handle_report(*ack);
}

void SigAckSource::handle_report(const net::ReportAck& ack) {
  ctx_.metrics().report_acks_received.add();
  Pending* p = pending_.find(ack.data_id);
  if (p == nullptr) return;

  ++verifications_;
  const auto signer = sigack_verify(ctx_, ByteView(ack.report.data(),
                                                   ack.report.size()),
                                    ack.data_id);
  if (!signer) return;
  // b = signing node index (the destination's per-packet ack is b = d).
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1,
                 obs::event_id64(ack.data_id.data()), *signer);

  if (*signer == ctx_.d() && !p->probed) {
    // The destination's per-packet signed ack: delivery confirmed.
    score_.add_clean();
    ++delivered_;
    ctx_.log_event(node(), obs::EventKind::kScoreClean, -1,
                   obs::event_id64(ack.data_id.data()),
                   score_.observations());
    pending_.erase(ack.data_id);
    return;
  }
  p->ack_bits |= 1u << *signer;
  // Probed rounds resolve at the probe timeout once all reports are in.
}

double SigAckSource::observed_e2e_rate() const {
  if (sent_ == 0) return 0.0;
  return 1.0 - static_cast<double>(delivered_) / static_cast<double>(sent_);
}

// ----------------------------------------------------------------- relay

void SigAckRelay::start() { pending_.attach(node(), ctx().r0() / 2); }

void SigAckRelay::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  switch (*type) {
    case net::PacketType::kData: {
      const auto pkt = net::DataPacket::decode(env.view());
      if (!pkt || !fresh(*pkt)) return;
      RState st;
      st.seq = pkt->seq;
      pending_.put(pkt->id(ctx().crypto()), st,
                   node().sim().now() + state_horizon(ctx(), node().index()));
      relay(env);
      break;
    }
    case net::PacketType::kProbe: {
      const auto probe = net::Probe::decode(env.view());
      if (!probe) return;
      RState* st = pending_.find(probe->data_id);
      relay(env);
      if (st == nullptr) return;
      net::ReportAck ack;
      ack.data_id = probe->data_id;
      ack.report = sigack_report(ctx().keys().node_key(node().index()),
                                 node().index(), st->seq, probe->data_id);
      relay(sim::PacketEnv{shared_wire(ack.encode()), ack.wire_size(),
                           sim::Direction::kToSource});
      pending_.erase(probe->data_id);
      break;
    }
    default:
      relay(env);  // signed acks are self-authenticating: forward blindly
      break;
  }
}

// ----------------------------------------------------------- destination

void SigAckDestination::start() { pending_.attach(node(), ctx_.r0() / 2); }

void SigAckDestination::on_packet(const sim::PacketEnv& env) {
  pending_.purge(node().sim().now());
  const auto type = net::peek_type(env.view());
  if (!type) return;

  if (*type == net::PacketType::kData) {
    const auto pkt = net::DataPacket::decode(env.view());
    if (!pkt) return;
    const sim::SimTime now = node().local_now();
    const auto age = now - static_cast<sim::SimTime>(pkt->timestamp_ns);
    if (age > ctx_.freshness_window() || age < -ctx_.freshness_window()) {
      return;
    }
    const net::PacketId id = pkt->id(ctx_.crypto());
    DState st;
    st.seq = pkt->seq;
    pending_.put(id, st, node().sim().now() + state_horizon(ctx_, ctx_.d()));
    // Per-packet signed ack.
    net::ReportAck ack;
    ack.data_id = id;
    ack.report = sigack_report(ctx_.keys().node_key(ctx_.d()), ctx_.d(),
                               pkt->seq, id);
    node().originate(sim::Direction::kToSource, shared_wire(ack.encode()),
                     ack.wire_size());
  } else if (*type == net::PacketType::kProbe) {
    const auto probe = net::Probe::decode(env.view());
    if (!probe) return;
    DState* st = pending_.find(probe->data_id);
    if (st == nullptr) return;
    net::ReportAck ack;
    ack.data_id = probe->data_id;
    ack.report = sigack_report(ctx_.keys().node_key(ctx_.d()), ctx_.d(),
                               st->seq, probe->data_id);
    node().originate(sim::Direction::kToSource, shared_wire(ack.encode()),
                     ack.wire_size());
    pending_.erase(probe->data_id);
  }
}

}  // namespace paai::protocols
