#include "protocols/context.h"

#include <stdexcept>

namespace paai::protocols {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kFullAck:
      return "full-ack";
    case ProtocolKind::kPaai1:
      return "PAAI-1";
    case ProtocolKind::kPaai2:
      return "PAAI-2";
    case ProtocolKind::kCombination1:
      return "combination-1";
    case ProtocolKind::kCombination2:
      return "combination-2";
    case ProtocolKind::kStatisticalFl:
      return "statistical-FL";
    case ProtocolKind::kSigAck:
      return "sig-ack";
  }
  return "unknown";
}

ProtocolContext::ProtocolContext(const crypto::CryptoProvider& crypto,
                                 const crypto::KeyStore& keys,
                                 const sim::PathNetwork& net,
                                 const ProtocolParams& params)
    : crypto_(&crypto),
      keys_(&keys),
      params_(params),
      d_(net.length()),
      events_(net.config().events) {
  if (keys.path_length() != d_) {
    throw std::invalid_argument(
        "ProtocolContext: key store and network disagree on path length");
  }
  rtt_.reserve(d_ + 1);
  for (std::size_t i = 0; i <= d_; ++i) rtt_.push_back(net.rtt_bound(i));

  // One-way transit bound is half the path RTT bound; allow for the
  // configured clock error on top, then require probe_delay > window.
  const auto clock_error =
      sim::milliseconds(net.config().max_clock_error_ms);
  freshness_window_ = rtt_[0] / 2 + 2 * clock_error + sim::milliseconds(0.5);
  probe_delay_ = freshness_window_ + rtt_[0] / 4 + sim::milliseconds(0.5);
  if (params.unsafe_probe_delay_ms > 0.0) {
    // Ablation only: breaks the probe_delay > freshness_window invariant
    // on purpose (see ProtocolParams::unsafe_probe_delay_ms).
    probe_delay_ = sim::milliseconds(params.unsafe_probe_delay_ms);
  }
  timer_slack_ = sim::milliseconds(1.0);

  key_vec_.resize(d_ + 1);
  for (std::size_t i = 1; i <= d_; ++i) key_vec_[i] = keys.node_key(i);

  auto& reg = obs::MetricsRegistry::global();
  metrics_.probes_sent = reg.counter("proto.probes_sent");
  metrics_.dest_acks_received = reg.counter("proto.dest_acks_received");
  metrics_.report_acks_received = reg.counter("proto.report_acks_received");
  metrics_.fl_reports_received = reg.counter("proto.fl_reports_received");
}

}  // namespace paai::protocols
