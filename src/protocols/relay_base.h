// RelayBase: common machinery for intermediate-node agents.
//
// Every protocol's relay derives from this. It provides
//   * the adversary interposition point: protocol code calls relay()
//     instead of Node::forward(), and a compromised node's Strategy gets to
//     drop / corrupt / withhold the packet. Note the protocol state update
//     happens *before* relay() is called, which yields exactly the paper's
//     §8.1 tactic (b): a node that drops a data packet still answers later
//     ack requests as if it had forwarded it, so its drops are charged to
//     its downstream link;
//   * timestamp freshness checking (§5/§6 phase 1): a data packet whose
//     embedded timestamp is older than the freshness window is discarded,
//     which is what defeats the withhold-until-probed attack; and
//   * the withheld-packet buffer used when a Strategy plays that attack.
#pragma once

#include <unordered_map>

#include "adversary/strategy.h"
#include "net/packet.h"
#include "protocols/context.h"
#include "protocols/pending.h"
#include "sim/node.h"

namespace paai::protocols {

class RelayBase : public sim::Agent {
 public:
  void set_strategy(adversary::Strategy* strategy) { strategy_ = strategy; }
  adversary::Strategy* strategy() const { return strategy_; }

 protected:
  explicit RelayBase(const ProtocolContext& ctx) : ctx_(ctx) {}

  const ProtocolContext& ctx() const { return ctx_; }

  /// Forwards `env` in its travel direction, subject to the adversary
  /// strategy (if any). Honest nodes always forward. Returns true iff the
  /// packet (or a corrupted copy) actually went out — callers that release
  /// state "because the packet passed" must check this, otherwise a
  /// compromised node that swallowed the packet would also forget it and
  /// shift later blame onto its honest upstream neighbour.
  bool relay(const sim::PacketEnv& env);

  /// True iff the data packet's timestamp is within the freshness window
  /// of this node's local clock (slightly-future timestamps are tolerated
  /// up to the clock-sync bound).
  bool fresh(const net::DataPacket& pkt) const;

 private:
  void handle_withheld_release(const sim::PacketEnv& probe_env,
                               const net::PacketId& id);

  const ProtocolContext& ctx_;
  adversary::Strategy* strategy_ = nullptr;
  std::unordered_map<net::PacketId, sim::PacketEnv, PacketIdHash> withheld_;
};

}  // namespace paai::protocols
