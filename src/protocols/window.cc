#include "protocols/window.h"

#include <stdexcept>

#include "util/specgrammar.h"

namespace paai::protocols {

namespace {

constexpr std::uint64_t kMaxCount = std::uint64_t{1} << 20;  // K / W ceiling
constexpr std::uint64_t kMinWidth = 8;
constexpr std::int32_t kTagShift = 28;
constexpr std::int32_t kStreakShift = 20;

const std::string kPrefix = "blame spec";

std::uint64_t parse_count(std::string_view text, const std::string& what) {
  return static_cast<std::uint64_t>(util::spec_parse_index(text, what, kPrefix));
}

void check_persistence(std::uint64_t k) {
  if (k < 1 || k >= kMaxCount) {
    util::spec_error(kPrefix, "persistent K must be in [1, 2^20)");
  }
}

void check_width(std::uint64_t w) {
  if (w < kMinWidth || w >= kMaxCount) {
    util::spec_error(kPrefix, "window width W must be in [8, 2^20)");
  }
}

void check_streak(std::uint64_t k) {
  if (k < 1 || k > kWindowRingCap) {
    util::spec_error(kPrefix, "hybrid streak K must be in [1, 8]");
  }
}

}  // namespace

BlameSpec BlameSpec::parse(std::string_view text) {
  const std::string_view spec = util::spec_trim(text);
  const std::size_t colon = spec.find(':');
  const std::string_view head = util::spec_trim(spec.substr(0, colon));
  const std::string_view args = colon == std::string_view::npos
                                    ? std::string_view{}
                                    : util::spec_trim(spec.substr(colon + 1));

  BlameSpec out;
  if (head == "margin" || head == "standard") {
    if (colon != std::string_view::npos) {
      util::spec_error(kPrefix, "margin mode takes no arguments");
    }
    return out;
  }
  if (head == "persistent") {
    out.mode = Mode::kPersistent;
    out.k = kDefaultPersistence;
    if (colon != std::string_view::npos) {
      out.k = parse_count(args, "persistence K");
    }
    check_persistence(out.k);
    return out;
  }
  if (head == "windowed") {
    out.mode = Mode::kWindowed;
    if (colon != std::string_view::npos) {
      out.w = parse_count(args, "window width W");
    }
    check_width(out.w);
    return out;
  }
  if (head == "hybrid") {
    out.mode = Mode::kHybrid;
    out.k = kDefaultHybridStreak;
    if (colon != std::string_view::npos) {
      const std::size_t comma = args.find(',');
      out.k = parse_count(util::spec_trim(args.substr(0, comma)), "streak K");
      if (comma != std::string_view::npos) {
        out.w = parse_count(util::spec_trim(args.substr(comma + 1)),
                            "window width W");
      }
    }
    check_streak(out.k);
    check_width(out.w);
    return out;
  }
  util::spec_error(
      kPrefix,
      "unknown mode '" + std::string(head) +
          "' (expected margin|persistent:K|windowed:W|hybrid:K,W)");
}

std::string BlameSpec::to_string() const {
  switch (mode) {
    case Mode::kMargin:
      return "margin";
    case Mode::kPersistent:
      return "persistent:" + std::to_string(k);
    case Mode::kWindowed:
      return "windowed:" + std::to_string(w);
    case Mode::kHybrid:
      return "hybrid:" + std::to_string(k) + "," + std::to_string(w);
  }
  return "margin";
}

std::int32_t BlameSpec::encode32() const {
  switch (mode) {
    case Mode::kMargin:
      return 0;
    case Mode::kPersistent:
      // PR 7 wire format: a bare K. Keeps old streams decodable.
      return static_cast<std::int32_t>(k);
    case Mode::kWindowed:
      return static_cast<std::int32_t>((std::uint64_t{1} << kTagShift) | w);
    case Mode::kHybrid:
      return static_cast<std::int32_t>((std::uint64_t{2} << kTagShift) |
                                       (k << kStreakShift) | w);
  }
  return 0;
}

BlameSpec BlameSpec::decode32(std::int32_t code) {
  if (code < 0) {
    util::spec_error(kPrefix, "negative wire encoding");
  }
  const std::uint64_t u = static_cast<std::uint64_t>(code);
  const std::uint64_t tag = u >> kTagShift;
  BlameSpec out;
  switch (tag) {
    case 0:
      if (u == 0) return out;  // margin
      out.mode = Mode::kPersistent;
      out.k = u;
      check_persistence(out.k);
      return out;
    case 1:
      out.mode = Mode::kWindowed;
      out.w = u & (kMaxCount - 1);
      check_width(out.w);
      return out;
    case 2:
      out.mode = Mode::kHybrid;
      out.k = (u >> kStreakShift) & 0xff;
      out.w = u & (kMaxCount - 1);
      check_streak(out.k);
      check_width(out.w);
      return out;
    default:
      util::spec_error(kPrefix, "unknown wire tag");
  }
}

WindowLedger::WindowLedger(std::size_t num_links, std::uint64_t width)
    : links_(num_links), width_(width) {
  if (num_links == 0) {
    throw std::invalid_argument("WindowLedger: need at least one link");
  }
  check_width(width);
}

void WindowLedger::set_width(std::uint64_t width) {
  check_width(width);
  if (completed_ != 0) {
    throw std::logic_error(
        "WindowLedger::set_width: windows already closed at the old width");
  }
  width_ = width;
}

void WindowLedger::finalize(const std::vector<double>& theta_w) {
  if (theta_w.size() != links_.size()) {
    throw std::invalid_argument("WindowLedger::finalize: shape mismatch");
  }
  ++completed_;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkState& st = links_[i];
    const double tw = theta_w[i];
    if (tw > kWindowHighTheta) {
      ++st.cur_streak;
      if (st.cur_streak > st.max_streak) st.max_streak = st.cur_streak;
    } else {
      st.cur_streak = 0;
    }
    if (tw > kWindowFlagrantTheta) ++st.flagrant;
    if (tw > st.max_theta_w) st.max_theta_w = tw;
    if (st.recent.size() == kWindowRingCap) {
      st.recent.erase(st.recent.begin());
    }
    st.recent.push_back(tw);
  }
}

double WindowLedger::burstiness(std::size_t link,
                                double cumulative_theta) const {
  if (completed_ == 0 || cumulative_theta <= 0.0) return 0.0;
  return links_[link].max_theta_w / cumulative_theta;
}

void WindowLedger::restore(std::uint64_t completed,
                           const std::vector<std::uint64_t>& cur_streak,
                           const std::vector<std::uint64_t>& max_streak,
                           const std::vector<std::uint64_t>& flagrant,
                           const std::vector<double>& max_theta_w,
                           const std::vector<std::vector<double>>& recent) {
  const std::size_t d = links_.size();
  if (cur_streak.size() != d || max_streak.size() != d ||
      flagrant.size() != d || max_theta_w.size() != d || recent.size() != d) {
    throw std::invalid_argument("WindowLedger::restore: shape mismatch");
  }
  for (const auto& ring : recent) {
    if (ring.size() > kWindowRingCap) {
      throw std::invalid_argument("WindowLedger::restore: ring overflow");
    }
  }
  completed_ = completed;
  for (std::size_t i = 0; i < d; ++i) {
    links_[i].cur_streak = cur_streak[i];
    links_[i].max_streak = max_streak[i];
    links_[i].flagrant = flagrant[i];
    links_[i].max_theta_w = max_theta_w[i];
    links_[i].recent = recent[i];
  }
}

void WindowLedger::reset() {
  completed_ = 0;
  for (auto& st : links_) st = LinkState{};
}

}  // namespace paai::protocols
