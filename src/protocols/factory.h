// Protocol installation: builds the per-node agents for one protocol on
// one PathNetwork and wires in adversary strategies.
//
// This is the main entry point of the library: given a path, keys, and a
// protocol choice, it attaches a source agent to F_0, relay agents to
// F_1..F_{d-1} (optionally compromised), and a destination agent to F_d,
// and returns the SourceHandle used to drive identification.
#pragma once

#include <vector>

#include "adversary/strategy.h"
#include "protocols/context.h"
#include "protocols/source_handle.h"
#include "sim/network.h"

namespace paai::protocols {

/// `strategies[i]` (if non-null) compromises node F_i; entries for indices
/// 0 and d are ignored — the paper assumes S and D honest. The vector may
/// be shorter than d+1. Strategy objects must outlive the network.
SourceHandle* install_protocol(
    ProtocolKind kind, const ProtocolContext& ctx, sim::PathNetwork& net,
    const std::vector<adversary::Strategy*>& strategies = {});

}  // namespace paai::protocols
