#include "protocols/relay_base.h"

namespace paai::protocols {

bool RelayBase::relay(const sim::PacketEnv& env) {
  if (strategy_ == nullptr || !strategy_->active()) {
    node().forward(env);
    return true;
  }

  const auto type = net::peek_type(env.view());
  adversary::Context actx;
  actx.type = type.value_or(net::PacketType::kData);
  actx.dir = env.dir;
  actx.node_index = node().index();
  actx.wire = env.view();
  actx.now = node().local_now();

  // Packet identifiers are computed only for strategies that ask (one
  // hash per data packet is wasted work for an oblivious dropper).
  net::PacketId data_id{};
  const bool want_ids = strategy_->wants_packet_ids();
  if (want_ids && actx.type == net::PacketType::kData) {
    if (const auto data = net::DataPacket::decode(env.view())) {
      data_id = data->id(ctx_.crypto());
      actx.packet_id = &data_id;
    }
  }

  // A probe may reference a packet this node withheld earlier; give the
  // strategy its release/drop decision before the probe itself is handled.
  net::PacketId probe_id{};
  if (type == net::PacketType::kProbe) {
    if (const auto probe = net::Probe::decode(env.view())) {
      handle_withheld_release(env, probe->data_id);
      if (want_ids) {
        probe_id = probe->data_id;
        actx.probe_data_id = &probe_id;
      }
    }
  }

  switch (strategy_->on_packet(actx)) {
    case adversary::Action::kForward:
      node().forward(env);
      return true;
    case adversary::Action::kDrop:
      break;
    case adversary::Action::kCorrupt: {
      // Forward an altered copy: flip a bit in the last header byte. For
      // data packets this changes H(m); for reports it breaks a MAC — in
      // all cases the source ends up treating it as a drop (§5).
      auto tampered = std::make_shared<Bytes>(*env.wire);
      if (!tampered->empty()) tampered->back() ^= 0x01;
      node().forward(sim::PacketEnv{std::move(tampered), env.wire_size,
                                    env.dir});
      return true;
    }
    case adversary::Action::kWithhold: {
      if (const auto data = net::DataPacket::decode(env.view())) {
        withheld_[data->id(ctx_.crypto())] = env;
      }
      break;
    }
  }
  return false;
}

void RelayBase::handle_withheld_release(const sim::PacketEnv& probe_env,
                                        const net::PacketId& id) {
  auto it = withheld_.find(id);
  if (it == withheld_.end()) return;

  adversary::Context pctx;
  pctx.type = net::PacketType::kProbe;
  pctx.dir = probe_env.dir;
  pctx.node_index = node().index();
  pctx.wire = probe_env.view();

  if (strategy_->on_withheld_probe(pctx) == adversary::Action::kForward) {
    // Release the stale packet ahead of the probe. Its timestamp is
    // unchanged (altering it would change H(m)), so the next honest node
    // rejects it as expired.
    node().forward(it->second);
  }
  withheld_.erase(it);
}

bool RelayBase::fresh(const net::DataPacket& pkt) const {
  const sim::SimTime now = node().local_now();
  const auto ts = static_cast<sim::SimTime>(pkt.timestamp_ns);
  const sim::SimDuration age = now - ts;
  // Tolerate slightly-future timestamps (peer clock ahead of ours).
  return age <= ctx_.freshness_window() && age >= -ctx_.freshness_window();
}

}  // namespace paai::protocols
