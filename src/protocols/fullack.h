// The full-ack strawman protocol (§4).
//
// Every data packet is acknowledged by the destination with
// a_d = [H(m)]_{K_d}. If the source misses that ack within the path RTT
// bound, it sends an onion-report request (probe); every node still holding
// state for H(m) contributes a MAC layer, and the first missing/invalid
// layer pinpoints the faulty link for *that very packet* — the finest
// detection granularity of all the protocols, at one control packet (plus
// an O(d) onion on loss) per data packet.
//
// Storage note: the paper's ideal-case bound (§7.4) assumes a relay can
// release its per-packet state once the destination ack passes. We found
// that optimization unsound: relays cannot authenticate a_d, so corrupted
// acks injected by an adversary would flush honest state and turn the next
// probe round into a false accusation of l_0 (see DESIGN.md §"findings").
// Our relays therefore hold state for the full probe horizon; the paper's
// worst-case bound still applies.
#pragma once

#include "net/onion.h"
#include "net/packet.h"
#include "protocols/context.h"
#include "protocols/pending.h"
#include "protocols/relay_base.h"
#include "protocols/score.h"
#include "protocols/source_handle.h"
#include "sim/node.h"

namespace paai::protocols {

class FullAckSource final : public sim::Agent, public SourceHandle {
 public:
  explicit FullAckSource(const ProtocolContext& ctx);

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

  std::uint64_t packets_sent() const override { return sent_; }
  std::uint64_t observations() const override { return score_.observations(); }
  std::vector<double> thetas() const override { return score_.thetas(); }
  std::vector<std::size_t> convicted(double threshold) const override {
    return score_.convicted(threshold);
  }
  double observed_e2e_rate() const override;

 private:
  struct Pending {
    bool probed = false;
  };

  void send_next();
  void on_ack_timeout(const net::PacketId& id);
  void on_probe_timeout(const net::PacketId& id);
  void handle_dest_ack(const net::DestAck& ack);
  void handle_report(const net::ReportAck& ack);
  bool report_ok(std::uint8_t index, ByteView report,
                 const net::PacketId& id) const;

  const ProtocolContext& ctx_;
  ScoreTable score_;
  PendingStore<Pending> pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  sim::SimDuration send_period_;
};

class FullAckRelay final : public RelayBase {
 public:
  explicit FullAckRelay(const ProtocolContext& ctx) : RelayBase(ctx), pending_(nullptr) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 private:
  struct RState {
    bool probe_seen = false;
    bool responded = false;
  };

  void on_wait_timeout(const net::PacketId& id);
  Bytes local_report(const net::PacketId& id) const;

  PendingStore<RState> pending_;
};

class FullAckDestination final : public sim::Agent {
 public:
  explicit FullAckDestination(const ProtocolContext& ctx)
      : ctx_(ctx), pending_(nullptr) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 private:
  struct DState {};

  const ProtocolContext& ctx_;
  PendingStore<DState> pending_;
};

/// Freshness-checked decode helper shared by all destination/relay agents:
/// returns the packet and its identifier iff the wire bytes parse.
struct DecodedData {
  net::DataPacket packet;
  net::PacketId id;
};
std::optional<DecodedData> decode_data(const ProtocolContext& ctx,
                                       ByteView wire);

}  // namespace paai::protocols
