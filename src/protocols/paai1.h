// PAAI-1 (§6.1): probabilistic sampling of *which data packets* to probe.
//
// Phase 1 — the source sends m = <data || timestamp>; each node checks
//   freshness, stores H(m), and forwards. The source's secure-sampling
//   algorithm (a PRF keyed with a source-private key) marks m for probing
//   with probability p; nothing on the wire reveals the decision.
// Phase 2 — for a sampled packet, the source sends the probe c = H(m)
//   after a delay that *exceeds* the freshness window, so a node cannot
//   withhold m until it learns whether m is monitored (§5).
// Phase 3 — nodes holding H(m) return an onion report; a node whose
//   downstream stayed silent past its wait-timer originates the report.
// Phase 4/5 — the source verifies the onion, blames the link after the
//   last valid layer, and convicts links whose estimated drop rate
//   exceeds the threshold.
//
// Wait-timer nesting: node F_i waits r_i + slack. Because the r_i bounds
// differ by two hop latencies plus a per-hop allowance, a downstream
// node's timed-out report always arrives before its upstream neighbour's
// own timer fires — honest nodes never race each other into
// mislocalization (asserted by tests/paai1_test.cc).
#pragma once

#include "crypto/sampler.h"
#include "net/onion.h"
#include "net/packet.h"
#include "protocols/context.h"
#include "protocols/pending.h"
#include "protocols/relay_base.h"
#include "protocols/score.h"
#include "protocols/source_handle.h"
#include "sim/node.h"

namespace paai::protocols {

class Paai1Source final : public sim::Agent, public SourceHandle {
 public:
  explicit Paai1Source(const ProtocolContext& ctx);

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

  std::uint64_t packets_sent() const override { return sent_; }
  std::uint64_t observations() const override { return score_.observations(); }
  std::vector<double> thetas() const override { return score_.thetas(); }
  std::vector<std::size_t> convicted(double threshold) const override {
    return score_.convicted(threshold);
  }
  double observed_e2e_rate() const override;

 private:
  struct Pending {
    // Independent-ack ablation mode only: bit i records a verified ack
    // from node F_i.
    std::uint32_t ack_bits = 0;
  };

  void send_next();
  void send_probe(const net::PacketId& id);
  void on_resolution_timeout(const net::PacketId& id);
  void handle_report(const net::ReportAck& ack);
  void handle_independent_report(const net::ReportAck& ack);
  void resolve_independent(const net::PacketId& id, const Pending& pending);

  const ProtocolContext& ctx_;
  crypto::SecureSampler sampler_;
  ScoreTable score_;
  PendingStore<Pending> pending_;
  std::uint64_t sent_ = 0;
  std::uint64_t probed_ = 0;
  std::uint64_t delivered_ = 0;  // probes whose onion originated at D
  sim::SimDuration send_period_;
};

class Paai1Relay final : public RelayBase {
 public:
  explicit Paai1Relay(const ProtocolContext& ctx)
      : RelayBase(ctx), pending_(nullptr) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 private:
  struct RState {
    bool probe_seen = false;
    bool responded = false;
  };

  void on_wait_timeout(const net::PacketId& id);

  PendingStore<RState> pending_;
};

class Paai1Destination final : public sim::Agent {
 public:
  explicit Paai1Destination(const ProtocolContext& ctx)
      : ctx_(ctx), pending_(nullptr) {}

  void start() override;
  void on_packet(const sim::PacketEnv& env) override;

 private:
  struct DState {};

  const ProtocolContext& ctx_;
  PendingStore<DState> pending_;
};

/// The PAAI-1 local report R_i = <i || H(m)> (uniform for relays and D).
Bytes paai1_local_report(std::size_t index, const net::PacketId& id);

/// Checks a received layer's report against R_i = <i || H(m)>.
bool paai1_report_ok(std::uint8_t index, ByteView report,
                     const net::PacketId& id);

/// Independent-ack ablation mode: a free-standing per-node ack
/// <i || [i || H(m)]_{K_i}> (no onion nesting).
Bytes paai1_independent_report(const crypto::CryptoProvider& crypto,
                               const crypto::Key& key, std::size_t index,
                               const net::PacketId& id);

/// Footnote-7 probe authentication: builds the MAC chain the source
/// attaches (tag i = [i || H(m) || Z]_{K_i} at offset (i-1)*8) and the
/// check each node applies before acting on a probe.
Bytes build_probe_auth(const ProtocolContext& ctx, const net::Probe& probe);
bool verify_probe_auth(const ProtocolContext& ctx, const net::Probe& probe,
                       std::size_t index);

}  // namespace paai::protocols
