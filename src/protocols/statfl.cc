#include "protocols/statfl.h"

#include <cmath>

#include "crypto/sampler.h"
#include "util/wire.h"

namespace paai::protocols {

namespace {

std::shared_ptr<const Bytes> shared_wire(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

constexpr int kMaxRequestAttempts = 4;

}  // namespace

bool statfl_counts(const ProtocolContext& ctx, std::size_t index,
                   const net::PacketId& id) {
  const crypto::Key& key = index == 0
                               ? ctx.keys().source_sampling_key()
                               : ctx.keys().fl_sampling_key(index);
  const crypto::SecureSampler sampler(ctx.crypto(), key,
                                      ctx.params().fl_sampling);
  return sampler.sampled(ByteView(id.data(), id.size()));
}

Bytes statfl_local_report(std::size_t index, std::uint64_t interval,
                          std::uint64_t count) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(index));
  w.u64(interval);
  w.u32(static_cast<std::uint32_t>(count));
  return std::move(w).take();
}

// ---------------------------------------------------------------- source

StatFlSource::StatFlSource(const ProtocolContext& ctx)
    : ctx_(ctx),
      score_(ctx.d()),
      send_period_(static_cast<sim::SimDuration>(
          static_cast<double>(sim::kSecond) / ctx.params().send_rate_pps)) {
  score_.set_blame(ctx.params().blame);
}

void StatFlSource::start() {
  node().sim().after(send_period_, [this] { send_next(); });
}

void StatFlSource::send_next() {
  if (sent_ >= ctx_.params().total_packets) return;

  net::DataPacket pkt;
  pkt.seq = sent_;
  pkt.timestamp_ns = static_cast<std::uint64_t>(node().local_now());
  pkt.payload_size = ctx_.params().payload_size;
  const net::PacketId id = pkt.id(ctx_.crypto());
  const bool counted = statfl_counts(ctx_, 0, id);
  if (counted) ++own_count_;

  node().originate(sim::Direction::kToDest, shared_wire(pkt.encode()),
                   pkt.wire_size());
  ctx_.log_event(node(), obs::EventKind::kDataSend, -1,
                 obs::event_id64(id.data()), pkt.seq);
  if (counted) {
    ctx_.log_event(node(), obs::EventKind::kSampleSelect, -1,
                   obs::event_id64(id.data()), pkt.seq);
  }
  ++sent_;

  if (sent_ % ctx_.params().fl_interval_packets == 0) {
    // Close the interval. The request trails the interval's last data
    // packet by a timer slack so that even with per-hop jitter it cannot
    // overtake it — node snapshots stay race-free.
    const std::uint64_t closing = interval_++;
    awaiting_ = closing;
    awaiting_active_ = true;
    awaiting_own_count_ = own_count_;
    own_count_ = 0;
    node().sim().after(ctx_.timer_slack(),
                       [this, closing] { request_report(closing, 0); });
  }

  if (sent_ < ctx_.params().total_packets) {
    node().sim().after(send_period_, [this] { send_next(); });
  }
}

void StatFlSource::request_report(std::uint64_t interval, int attempt) {
  if (!awaiting_active_ || awaiting_ != interval) return;
  if (attempt >= kMaxRequestAttempts) {
    awaiting_active_ = false;
    score_.interval_lost();
    // a = interval, b = attempts — the interval's report never arrived.
    ctx_.log_event(node(), obs::EventKind::kAckTimeout, -1, interval,
                   static_cast<std::uint64_t>(attempt));
    return;
  }
  net::FlRequest req;
  req.interval = interval;
  node().originate(sim::Direction::kToDest, shared_wire(req.encode()),
                   req.wire_size());
  // a = interval, b = attempt — the FL report request plays probe here.
  ctx_.log_event(node(), obs::EventKind::kProbeSend, -1, interval,
                 static_cast<std::uint64_t>(attempt));
  node().sim().after(ctx_.r0() + 2 * ctx_.timer_slack(),
                     [this, interval, attempt] {
                       request_report(interval, attempt + 1);
                     });
}

void StatFlSource::on_packet(const sim::PacketEnv& env) {
  if (net::peek_type(env.view()) != net::PacketType::kFlReport) return;
  if (const auto report = net::FlReport::decode(env.view())) {
    handle_report(*report);
  }
}

void StatFlSource::handle_report(const net::FlReport& report) {
  ctx_.metrics().fl_reports_received.add();
  if (!awaiting_active_ || report.interval != awaiting_) return;
  ctx_.log_event(node(), obs::EventKind::kAckRecv, -1, report.interval,
                 /*b=*/2);

  std::vector<std::uint64_t> counts(ctx_.d() + 1, 0);
  const std::uint64_t interval = report.interval;
  const auto result = net::onion_verify(
      ctx_.crypto(), ctx_.key_vector(), ctx_.d(),
      ByteView(report.report.data(), report.report.size()),
      [&](std::uint8_t i, ByteView r) {
        WireReader rd(r);
        std::uint8_t idx = 0;
        std::uint64_t iv = 0;
        std::uint32_t count = 0;
        if (!rd.u8(idx) || !rd.u64(iv) || !rd.u32(count) || !rd.done()) {
          return false;
        }
        if (idx != i || iv != interval) return false;
        counts[i] = count;
        return true;
      });

  ctx_.log_event(node(), obs::EventKind::kOnionDecode, -1, report.interval,
                 result.valid_layers);
  if (result.valid_layers < ctx_.d()) {
    // Broken or truncated onion: wait for a retransmission to bring a
    // complete one; the attempt counter bounds the wait.
    return;
  }

  counts[0] = awaiting_own_count_;
  for (std::size_t i = 0; i <= ctx_.d(); ++i) {
    // One kFlCount per node, in ascending order, so a stream consumer
    // can rebuild the accumulators without decoding the onion itself.
    ctx_.log_event(node(), obs::EventKind::kFlCount,
                   static_cast<std::int32_t>(i), report.interval, counts[i]);
    score_.add_count(i, counts[i]);
  }
  score_.interval_reported();
  awaiting_active_ = false;
  // a = interval, b = intervals folded in so far.
  ctx_.log_event(node(), obs::EventKind::kScoreClean, -1, report.interval,
                 score_.intervals_reported());
}

// ----------------------------------------------------------------- relay

void StatFlRelay::on_packet(const sim::PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (!type) return;

  switch (*type) {
    case net::PacketType::kData: {
      const auto pkt = net::DataPacket::decode(env.view());
      if (!pkt || !fresh(*pkt)) return;
      if (statfl_counts(ctx(), node().index(), pkt->id(ctx().crypto()))) {
        ++count_;
      }
      relay(env);
      break;
    }
    case net::PacketType::kFlRequest: {
      const auto req = net::FlRequest::decode(env.view());
      if (!req) return;
      if (snapshot_interval_ != req->interval) {
        // First request for this interval: snapshot and reset the counter
        // (retransmitted requests reuse the snapshot).
        snapshot_ = count_;
        count_ = 0;
        snapshot_interval_ = req->interval;
      }
      relay(env);
      break;
    }
    case net::PacketType::kFlReport: {
      const auto report = net::FlReport::decode(env.view());
      if (!report || report->interval != snapshot_interval_) return;
      const Bytes local =
          statfl_local_report(node().index(), snapshot_interval_, snapshot_);
      net::FlReport wrapped;
      wrapped.interval = report->interval;
      wrapped.report = net::onion_wrap(
          ctx().crypto(), ctx().keys().node_key(node().index()),
          static_cast<std::uint8_t>(node().index()),
          ByteView(local.data(), local.size()),
          ByteView(report->report.data(), report->report.size()));
      relay(sim::PacketEnv{shared_wire(wrapped.encode()), wrapped.wire_size(),
                           sim::Direction::kToSource});
      break;
    }
    default:
      relay(env);
      break;
  }
}

// ----------------------------------------------------------- destination

void StatFlDestination::on_packet(const sim::PacketEnv& env) {
  const auto type = net::peek_type(env.view());
  if (!type) return;

  if (*type == net::PacketType::kData) {
    const auto pkt = net::DataPacket::decode(env.view());
    if (!pkt) return;
    const sim::SimTime now = node().local_now();
    const auto age = now - static_cast<sim::SimTime>(pkt->timestamp_ns);
    if (age > ctx_.freshness_window() || age < -ctx_.freshness_window()) {
      return;
    }
    if (statfl_counts(ctx_, ctx_.d(), pkt->id(ctx_.crypto()))) ++count_;
  } else if (*type == net::PacketType::kFlRequest) {
    const auto req = net::FlRequest::decode(env.view());
    if (!req) return;
    // The destination snapshots and immediately originates the onion.
    // Retransmitted requests re-originate from the same snapshot.
    if (last_interval_ != req->interval) {
      last_snapshot_ = count_;
      count_ = 0;
      last_interval_ = req->interval;
    }
    const Bytes local =
        statfl_local_report(ctx_.d(), req->interval, last_snapshot_);
    net::FlReport report;
    report.interval = req->interval;
    report.report = net::onion_originate(
        ctx_.crypto(), ctx_.keys().node_key(ctx_.d()),
        static_cast<std::uint8_t>(ctx_.d()),
        ByteView(local.data(), local.size()));
    node().originate(sim::Direction::kToSource, shared_wire(report.encode()),
                     report.wire_size());
  }
}

}  // namespace paai::protocols
