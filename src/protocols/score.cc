#include "protocols/score.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paai::protocols {

ScoreTable::ScoreTable(std::size_t num_links, double traversals,
                       double probe_extra)
    : s_(num_links, 0), traversals_(traversals), probe_extra_(probe_extra) {
  if (num_links == 0 || traversals <= 0.0 || probe_extra < 0.0) {
    throw std::invalid_argument("ScoreTable: bad construction parameters");
  }
  auto& reg = obs::MetricsRegistry::global();
  obs_updates_ = reg.counter("proto.score.updates");
  obs_blames_ = reg.counter("proto.score.blames");
}

double ScoreTable::effective_traversals() const {
  if (n_ == 0 || probe_extra_ == 0.0) return traversals_;
  return traversals_ + probe_extra_ * static_cast<double>(probes_) /
                           static_cast<double>(n_);
}

void ScoreTable::add_clean() {
  ++n_;
  obs_updates_.add();
}

void ScoreTable::blame(std::size_t link) {
  ++n_;
  if (link >= s_.size()) {
    throw std::out_of_range("ScoreTable::blame: link index out of range");
  }
  ++s_[link];
  obs_updates_.add();
  obs_blames_.add();
}

double ScoreTable::theta(std::size_t link) const {
  if (n_ == 0) return 0.0;
  const double blame_rate =
      static_cast<double>(s_[link]) / static_cast<double>(n_);
  // Invert 1 - (1-theta)^t = blame_rate.
  return 1.0 - std::pow(1.0 - std::min(blame_rate, 1.0),
                        1.0 / effective_traversals());
}

std::vector<double> ScoreTable::thetas() const {
  std::vector<double> out(s_.size());
  for (std::size_t i = 0; i < s_.size(); ++i) out[i] = theta(i);
  return out;
}

std::vector<std::size_t> ScoreTable::convicted(double threshold) const {
  std::vector<std::size_t> out;
  if (n_ == 0) return out;
  if (persistence_ > 0) {
    // Persistence mode: the K-repetition requirement replaces the
    // standard-error margin as the anti-noise gate. An honest link needs
    // BOTH K first-failing-hop blames AND an above-threshold estimate to
    // be falsely convicted (bench_robustness section A checks it never
    // is); an adversary riding just inside the margin no longer escapes.
    for (std::size_t i = 0; i < s_.size(); ++i) {
      if (s_[i] >= persistence_ && theta(i) > threshold) out.push_back(i);
    }
    return out;
  }
  // Conviction requires the estimate to clear the threshold by one
  // standard error — the operational form of the paper's "converged
  // condition" (§7: the observed rate approaches its true value within a
  // small uncertainty interval before decisions are made). Without the
  // margin, early small-sample noise convicts honest links.
  const double n = static_cast<double>(n_);
  for (std::size_t i = 0; i < s_.size(); ++i) {
    const double b = static_cast<double>(s_[i]) / n;
    const double sd_b = std::sqrt(std::max(b, 1.0 / n) * (1.0 - b) / n);
    const double sd_theta = sd_b / effective_traversals();
    if (theta(i) - sd_theta > threshold) out.push_back(i);
  }
  return out;
}

void ScoreTable::restore(const std::vector<std::uint64_t>& s, std::uint64_t n,
                         std::uint64_t probes) {
  if (s.size() != s_.size()) {
    throw std::invalid_argument("ScoreTable::restore: link count mismatch");
  }
  s_ = s;
  n_ = n;
  probes_ = probes;
}

void ScoreTable::reset() {
  std::fill(s_.begin(), s_.end(), 0ULL);
  n_ = 0;
  probes_ = 0;
}

Paai2ScoreTable::Paai2ScoreTable(std::size_t num_links)
    : s_(num_links, 0), sel_n_(num_links + 1, 0), sel_f_(num_links + 1, 0) {
  if (num_links == 0) {
    throw std::invalid_argument("Paai2ScoreTable: need at least one link");
  }
  auto& reg = obs::MetricsRegistry::global();
  obs_updates_ = reg.counter("proto.score.updates");
  obs_blames_ = reg.counter("proto.score.blames");
}

void Paai2ScoreTable::add_data_packet() { ++data_packets_; }

void Paai2ScoreTable::add_probe(std::size_t selected, bool prefix_failed) {
  if (selected < 1 || selected > s_.size()) {
    throw std::out_of_range("Paai2ScoreTable::add_probe: bad selection");
  }
  ++probes_;
  ++sel_n_[selected];
  obs_updates_.add();
  if (prefix_failed) {
    ++sel_f_[selected];
    // The paper's scoring rule: +1 to every link in [l_0, l_{e-1}].
    for (std::size_t j = 0; j < selected; ++j) ++s_[j];
    obs_blames_.add();
  }
}

double Paai2ScoreTable::observed_e2e_rate() const {
  if (data_packets_ == 0) return 0.0;
  return static_cast<double>(probes_) / static_cast<double>(data_packets_);
}

std::vector<double> Paai2ScoreTable::thetas() const {
  const std::size_t d = s_.size();
  std::vector<double> out(d, 0.0);
  if (data_packets_ == 0) return out;
  const double psi = observed_e2e_rate();

  // Unconditional prefix-failure probabilities q_e; carry forward when a
  // selection index has no observations yet.
  std::vector<double> q(d + 1, 0.0);
  for (std::size_t e = 1; e <= d; ++e) {
    if (sel_n_[e] == 0) {
      q[e] = q[e - 1];
      continue;
    }
    const double cond_fail = static_cast<double>(sel_f_[e]) /
                             static_cast<double>(sel_n_[e]);
    q[e] = std::max(q[e - 1], psi * cond_fail);
  }

  // Per-link cycle rate from adjacent prefix differences, then down to a
  // per-traversal rate. The data packet always crosses a prefix link, but
  // the probe and the report only exist when a probe fired (probability
  // psi), so one monitored cycle exposes a prefix link to ~(1 + 2 psi)
  // traversals.
  const double traversals = 1.0 + 2.0 * psi;
  for (std::size_t j = 0; j < d; ++j) {
    const double denom = 1.0 - q[j];
    const double g = denom > 0.0 ? (q[j + 1] - q[j]) / denom : 0.0;
    out[j] = 1.0 - std::pow(1.0 - std::clamp(g, 0.0, 1.0), 1.0 / traversals);
  }
  return out;
}

std::vector<std::size_t> Paai2ScoreTable::convicted(double threshold) const {
  // Same two-standard-error evidence rule as ScoreTable. The per-link
  // estimate comes from the difference of two prefix-failure estimates,
  // each a proportion over the probes whose selection hit that index, so
  // the standard error combines both selection bins (scaled by psi, since
  // q_e = psi * conditional failure rate).
  const std::vector<double> th = thetas();
  const double psi = observed_e2e_rate();
  const double traversals = 1.0 + 2.0 * psi;
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < th.size(); ++j) {
    const double n_hi = static_cast<double>(sel_n_[j + 1]);
    if (n_hi < 1.0) continue;
    // q_0 is exactly zero; q_j for j >= 1 carries its own bin's noise.
    const double inv_lo =
        j == 0 ? 0.0 : 1.0 / std::max(1.0, static_cast<double>(sel_n_[j]));
    const double sd_q = psi * 0.5 * std::sqrt(inv_lo + 1.0 / n_hi);
    const double margin = sd_q / traversals;
    if (th[j] - margin > threshold) out.push_back(j);
  }
  return out;
}

void Paai2ScoreTable::restore(const std::vector<std::uint64_t>& s,
                              const std::vector<std::uint64_t>& sel_n,
                              const std::vector<std::uint64_t>& sel_f,
                              std::uint64_t data_packets,
                              std::uint64_t probes) {
  if (s.size() != s_.size() || sel_n.size() != sel_n_.size() ||
      sel_f.size() != sel_f_.size()) {
    throw std::invalid_argument("Paai2ScoreTable::restore: shape mismatch");
  }
  s_ = s;
  sel_n_ = sel_n;
  sel_f_ = sel_f;
  data_packets_ = data_packets;
  probes_ = probes;
}

void Paai2ScoreTable::reset() {
  std::fill(s_.begin(), s_.end(), 0ULL);
  std::fill(sel_n_.begin(), sel_n_.end(), 0ULL);
  std::fill(sel_f_.begin(), sel_f_.end(), 0ULL);
  data_packets_ = 0;
  probes_ = 0;
}

FlScoreTable::FlScoreTable(std::size_t num_links)
    : acc_(num_links + 1, 0.0) {
  if (num_links == 0) {
    throw std::invalid_argument("FlScoreTable: need at least one link");
  }
}

void FlScoreTable::add_count(std::size_t node, std::uint64_t count) {
  if (node >= acc_.size()) {
    throw std::out_of_range("FlScoreTable::add_count: node index out of range");
  }
  acc_[node] += static_cast<double>(count);
}

std::vector<double> FlScoreTable::thetas() const {
  const std::size_t d = num_links();
  std::vector<double> out(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    if (acc_[j] <= 0.0) continue;
    out[j] = std::max(0.0, 1.0 - acc_[j + 1] / acc_[j]);
  }
  return out;
}

std::vector<std::size_t> FlScoreTable::convicted(double threshold) const {
  // One-standard-error evidence rule on a ratio of Poisson-ish sampled
  // counts: Var(S_{j+1}/S_j) ~ 2 S_{j+1} / S_j^2 (both counts carry
  // sampling noise); the +1 keeps a total blackhole (S_{j+1} = 0)
  // convictable with a finite margin.
  const std::vector<double> th = thetas();
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < th.size(); ++j) {
    const double sj = acc_[j];
    if (sj < 1.0) continue;
    const double sd = std::sqrt(2.0 * acc_[j + 1] + 1.0) / sj;
    if (th[j] - sd > threshold) out.push_back(j);
  }
  return out;
}

double FlScoreTable::observed_e2e_rate() const {
  if (acc_[0] <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - acc_.back() / acc_[0]);
}

void FlScoreTable::restore(const std::vector<double>& acc,
                           std::uint64_t intervals_reported,
                           std::uint64_t intervals_lost) {
  if (acc.size() != acc_.size()) {
    throw std::invalid_argument("FlScoreTable::restore: shape mismatch");
  }
  acc_ = acc;
  intervals_reported_ = intervals_reported;
  intervals_lost_ = intervals_lost;
}

void FlScoreTable::reset() {
  std::fill(acc_.begin(), acc_.end(), 0.0);
  intervals_reported_ = 0;
  intervals_lost_ = 0;
}

}  // namespace paai::protocols
