#include "protocols/score.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paai::protocols {

ScoreTable::ScoreTable(std::size_t num_links, double traversals,
                       double probe_extra)
    : s_(num_links, 0),
      traversals_(traversals),
      probe_extra_(probe_extra),
      win_s_(num_links, 0),
      ledger_(num_links, kDefaultWindowWidth) {
  if (num_links == 0 || traversals <= 0.0 || probe_extra < 0.0) {
    throw std::invalid_argument("ScoreTable: bad construction parameters");
  }
  auto& reg = obs::MetricsRegistry::global();
  obs_updates_ = reg.counter("proto.score.updates");
  obs_blames_ = reg.counter("proto.score.blames");
}

double ScoreTable::effective_traversals() const {
  if (n_ == 0 || probe_extra_ == 0.0) return traversals_;
  return traversals_ + probe_extra_ * static_cast<double>(probes_) /
                           static_cast<double>(n_);
}

void ScoreTable::set_blame(const BlameSpec& spec) {
  if (spec.w != ledger_.width()) {
    if (n_ != 0) {
      throw std::logic_error(
          "ScoreTable::set_blame: window width change mid-run");
    }
    ledger_.set_width(spec.w);
  }
  blame_ = spec;
}

void ScoreTable::set_persistence(std::uint64_t k) {
  BlameSpec spec;
  if (k > 0) {
    spec.mode = BlameSpec::Mode::kPersistent;
    spec.k = k;
  }
  set_blame(spec);
}

void ScoreTable::roll_window() {
  if (n_ % ledger_.width() != 0) return;
  // Close the window: per-link sliding estimate from this window's blame
  // bins, inverted through the *current* effective exposure (replayed
  // identically by the stream engine, which sees the same counters).
  const double w = static_cast<double>(ledger_.width());
  const double inv_t = 1.0 / effective_traversals();
  std::vector<double> tw(s_.size());
  for (std::size_t i = 0; i < s_.size(); ++i) {
    const double b = static_cast<double>(win_s_[i]) / w;
    tw[i] = 1.0 - std::pow(1.0 - std::min(b, 1.0), inv_t);
  }
  ledger_.finalize(tw);
  std::fill(win_s_.begin(), win_s_.end(), 0ULL);
}

void ScoreTable::add_clean() {
  ++n_;
  obs_updates_.add();
  roll_window();
}

void ScoreTable::blame(std::size_t link) {
  ++n_;
  if (link >= s_.size()) {
    throw std::out_of_range("ScoreTable::blame: link index out of range");
  }
  ++s_[link];
  ++win_s_[link];
  obs_updates_.add();
  obs_blames_.add();
  roll_window();
}

double ScoreTable::theta(std::size_t link) const {
  if (n_ == 0) return 0.0;
  const double blame_rate =
      static_cast<double>(s_[link]) / static_cast<double>(n_);
  // Invert 1 - (1-theta)^t = blame_rate.
  return 1.0 - std::pow(1.0 - std::min(blame_rate, 1.0),
                        1.0 / effective_traversals());
}

std::vector<double> ScoreTable::thetas() const {
  std::vector<double> out(s_.size());
  for (std::size_t i = 0; i < s_.size(); ++i) out[i] = theta(i);
  return out;
}

bool ScoreTable::margin_convicts(std::size_t link, double threshold) const {
  // Conviction requires the estimate to clear the threshold by one
  // standard error — the operational form of the paper's "converged
  // condition" (§7: the observed rate approaches its true value within a
  // small uncertainty interval before decisions are made). Without the
  // margin, early small-sample noise convicts honest links.
  const double n = static_cast<double>(n_);
  const double b = static_cast<double>(s_[link]) / n;
  const double sd_b = std::sqrt(std::max(b, 1.0 / n) * (1.0 - b) / n);
  const double sd_theta = sd_b / effective_traversals();
  return theta(link) - sd_theta > threshold;
}

std::vector<std::size_t> ScoreTable::convicted(double threshold) const {
  std::vector<std::size_t> out;
  if (n_ == 0) return out;
  for (std::size_t i = 0; i < s_.size(); ++i) {
    bool guilty = false;
    switch (blame_.mode) {
      case BlameSpec::Mode::kMargin:
        guilty = margin_convicts(i, threshold);
        break;
      case BlameSpec::Mode::kPersistent:
        // Persistence mode: the K-repetition requirement replaces the
        // standard-error margin as the anti-noise gate. An honest link
        // needs BOTH K first-failing-hop blames AND an above-threshold
        // estimate to be falsely convicted (bench_robustness section A
        // checks it never is); an adversary riding just inside the
        // margin no longer escapes.
        guilty = s_[i] >= blame_.k && theta(i) > threshold;
        break;
      case BlameSpec::Mode::kWindowed:
        // A single flagrant window plus an above-threshold cumulative
        // estimate is burst evidence the margin rule would dilute away.
        guilty = margin_convicts(i, threshold) ||
                 (ledger_.flagrant_windows(i) >= 1 && theta(i) > threshold);
        break;
      case BlameSpec::Mode::kHybrid:
        // Windowed clauses, plus the streak clause: >= K consecutive hot
        // windows with the cumulative estimate above the hot bar. The
        // cumulative floor is what separates a colluder (theta ~ 0.015+)
        // from benign loss churn whose windows also run hot for a while
        // but whose lifetime average stays below kWindowHighTheta.
        guilty = margin_convicts(i, threshold) ||
                 (ledger_.flagrant_windows(i) >= 1 && theta(i) > threshold) ||
                 (ledger_.max_streak(i) >= blame_.k &&
                  theta(i) > kWindowHighTheta);
        break;
    }
    if (guilty) out.push_back(i);
  }
  return out;
}

void ScoreTable::restore(const std::vector<std::uint64_t>& s, std::uint64_t n,
                         std::uint64_t probes) {
  if (s.size() != s_.size()) {
    throw std::invalid_argument("ScoreTable::restore: link count mismatch");
  }
  s_ = s;
  n_ = n;
  probes_ = probes;
  // Legacy snapshots carry no window state; start from a clean ledger and
  // let restore_window() (new snapshots) rebuild the real one.
  std::fill(win_s_.begin(), win_s_.end(), 0ULL);
  ledger_.reset();
}

void ScoreTable::restore_window(
    const std::vector<std::uint64_t>& bins, std::uint64_t completed,
    const std::vector<std::uint64_t>& cur_streak,
    const std::vector<std::uint64_t>& max_streak,
    const std::vector<std::uint64_t>& flagrant,
    const std::vector<double>& max_theta_w,
    const std::vector<std::vector<double>>& recent) {
  if (bins.size() != win_s_.size()) {
    throw std::invalid_argument("ScoreTable::restore_window: shape mismatch");
  }
  win_s_ = bins;
  ledger_.restore(completed, cur_streak, max_streak, flagrant, max_theta_w,
                  recent);
}

void ScoreTable::reset() {
  std::fill(s_.begin(), s_.end(), 0ULL);
  n_ = 0;
  probes_ = 0;
  std::fill(win_s_.begin(), win_s_.end(), 0ULL);
  ledger_.reset();
}

Paai2ScoreTable::Paai2ScoreTable(std::size_t num_links)
    : s_(num_links, 0),
      sel_n_(num_links + 1, 0),
      sel_f_(num_links + 1, 0),
      win_sel_n_(num_links + 1, 0),
      win_sel_f_(num_links + 1, 0),
      ledger_(num_links, kDefaultWindowWidth) {
  if (num_links == 0) {
    throw std::invalid_argument("Paai2ScoreTable: need at least one link");
  }
  auto& reg = obs::MetricsRegistry::global();
  obs_updates_ = reg.counter("proto.score.updates");
  obs_blames_ = reg.counter("proto.score.blames");
}

void Paai2ScoreTable::set_blame(const BlameSpec& spec) {
  if (spec.w != ledger_.width()) {
    if (probes_ != 0) {
      throw std::logic_error(
          "Paai2ScoreTable::set_blame: window width change mid-run");
    }
    ledger_.set_width(spec.w);
  }
  blame_ = spec;
}

void Paai2ScoreTable::roll_window() {
  if (probes_ % ledger_.width() != 0) return;
  // Windowed prefix-difference estimator: same shape as thetas(), but the
  // selection bins are this window's only. psi and the traversal exponent
  // stay cumulative — they calibrate exposure, not the time-local rate.
  const std::size_t d = s_.size();
  const double psi = observed_e2e_rate();
  std::vector<double> q(d + 1, 0.0);
  for (std::size_t e = 1; e <= d; ++e) {
    if (win_sel_n_[e] == 0) {
      q[e] = q[e - 1];
      continue;
    }
    const double cond_fail = static_cast<double>(win_sel_f_[e]) /
                             static_cast<double>(win_sel_n_[e]);
    q[e] = std::max(q[e - 1], psi * cond_fail);
  }
  const double traversals = 1.0 + 2.0 * psi;
  std::vector<double> tw(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const double denom = 1.0 - q[j];
    const double g = denom > 0.0 ? (q[j + 1] - q[j]) / denom : 0.0;
    tw[j] = 1.0 - std::pow(1.0 - std::clamp(g, 0.0, 1.0), 1.0 / traversals);
  }
  ledger_.finalize(tw);
  std::fill(win_sel_n_.begin(), win_sel_n_.end(), 0ULL);
  std::fill(win_sel_f_.begin(), win_sel_f_.end(), 0ULL);
}

void Paai2ScoreTable::add_data_packet() { ++data_packets_; }

void Paai2ScoreTable::add_probe(std::size_t selected, bool prefix_failed) {
  if (selected < 1 || selected > s_.size()) {
    throw std::out_of_range("Paai2ScoreTable::add_probe: bad selection");
  }
  ++probes_;
  ++sel_n_[selected];
  ++win_sel_n_[selected];
  obs_updates_.add();
  if (prefix_failed) {
    ++sel_f_[selected];
    ++win_sel_f_[selected];
    // The paper's scoring rule: +1 to every link in [l_0, l_{e-1}].
    for (std::size_t j = 0; j < selected; ++j) ++s_[j];
    obs_blames_.add();
  }
  roll_window();
}

double Paai2ScoreTable::observed_e2e_rate() const {
  if (data_packets_ == 0) return 0.0;
  return static_cast<double>(probes_) / static_cast<double>(data_packets_);
}

std::vector<double> Paai2ScoreTable::thetas() const {
  const std::size_t d = s_.size();
  std::vector<double> out(d, 0.0);
  if (data_packets_ == 0) return out;
  const double psi = observed_e2e_rate();

  // Unconditional prefix-failure probabilities q_e; carry forward when a
  // selection index has no observations yet.
  std::vector<double> q(d + 1, 0.0);
  for (std::size_t e = 1; e <= d; ++e) {
    if (sel_n_[e] == 0) {
      q[e] = q[e - 1];
      continue;
    }
    const double cond_fail = static_cast<double>(sel_f_[e]) /
                             static_cast<double>(sel_n_[e]);
    q[e] = std::max(q[e - 1], psi * cond_fail);
  }

  // Per-link cycle rate from adjacent prefix differences, then down to a
  // per-traversal rate. The data packet always crosses a prefix link, but
  // the probe and the report only exist when a probe fired (probability
  // psi), so one monitored cycle exposes a prefix link to ~(1 + 2 psi)
  // traversals.
  const double traversals = 1.0 + 2.0 * psi;
  for (std::size_t j = 0; j < d; ++j) {
    const double denom = 1.0 - q[j];
    const double g = denom > 0.0 ? (q[j + 1] - q[j]) / denom : 0.0;
    out[j] = 1.0 - std::pow(1.0 - std::clamp(g, 0.0, 1.0), 1.0 / traversals);
  }
  return out;
}

bool Paai2ScoreTable::margin_convicts(std::size_t link, double threshold,
                                      const std::vector<double>& th) const {
  // Same two-standard-error evidence rule as ScoreTable. The per-link
  // estimate comes from the difference of two prefix-failure estimates,
  // each a proportion over the probes whose selection hit that index, so
  // the standard error combines both selection bins (scaled by psi, since
  // q_e = psi * conditional failure rate).
  const double psi = observed_e2e_rate();
  const double traversals = 1.0 + 2.0 * psi;
  const double n_hi = static_cast<double>(sel_n_[link + 1]);
  if (n_hi < 1.0) return false;
  // q_0 is exactly zero; q_j for j >= 1 carries its own bin's noise.
  const double inv_lo =
      link == 0 ? 0.0
                : 1.0 / std::max(1.0, static_cast<double>(sel_n_[link]));
  const double sd_q = psi * 0.5 * std::sqrt(inv_lo + 1.0 / n_hi);
  const double margin = sd_q / traversals;
  return th[link] - margin > threshold;
}

std::vector<std::size_t> Paai2ScoreTable::convicted(double threshold) const {
  const std::vector<double> th = thetas();
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < th.size(); ++j) {
    bool guilty = false;
    switch (blame_.mode) {
      case BlameSpec::Mode::kMargin:
        guilty = margin_convicts(j, threshold, th);
        break;
      case BlameSpec::Mode::kPersistent:
        // Interval scores are PAAI-2's per-link blame tallies.
        guilty = s_[j] >= blame_.k && th[j] > threshold;
        break;
      case BlameSpec::Mode::kWindowed:
        guilty = margin_convicts(j, threshold, th) ||
                 (ledger_.flagrant_windows(j) >= 1 && th[j] > threshold);
        break;
      case BlameSpec::Mode::kHybrid:
        guilty = margin_convicts(j, threshold, th) ||
                 (ledger_.flagrant_windows(j) >= 1 && th[j] > threshold) ||
                 (ledger_.max_streak(j) >= blame_.k &&
                  th[j] > kWindowHighTheta);
        break;
    }
    if (guilty) out.push_back(j);
  }
  return out;
}

void Paai2ScoreTable::restore(const std::vector<std::uint64_t>& s,
                              const std::vector<std::uint64_t>& sel_n,
                              const std::vector<std::uint64_t>& sel_f,
                              std::uint64_t data_packets,
                              std::uint64_t probes) {
  if (s.size() != s_.size() || sel_n.size() != sel_n_.size() ||
      sel_f.size() != sel_f_.size()) {
    throw std::invalid_argument("Paai2ScoreTable::restore: shape mismatch");
  }
  s_ = s;
  sel_n_ = sel_n;
  sel_f_ = sel_f;
  data_packets_ = data_packets;
  probes_ = probes;
  std::fill(win_sel_n_.begin(), win_sel_n_.end(), 0ULL);
  std::fill(win_sel_f_.begin(), win_sel_f_.end(), 0ULL);
  ledger_.reset();
}

void Paai2ScoreTable::restore_window(
    const std::vector<std::uint64_t>& sel_n_bins,
    const std::vector<std::uint64_t>& sel_f_bins, std::uint64_t completed,
    const std::vector<std::uint64_t>& cur_streak,
    const std::vector<std::uint64_t>& max_streak,
    const std::vector<std::uint64_t>& flagrant,
    const std::vector<double>& max_theta_w,
    const std::vector<std::vector<double>>& recent) {
  if (sel_n_bins.size() != win_sel_n_.size() ||
      sel_f_bins.size() != win_sel_f_.size()) {
    throw std::invalid_argument(
        "Paai2ScoreTable::restore_window: shape mismatch");
  }
  win_sel_n_ = sel_n_bins;
  win_sel_f_ = sel_f_bins;
  ledger_.restore(completed, cur_streak, max_streak, flagrant, max_theta_w,
                  recent);
}

void Paai2ScoreTable::reset() {
  std::fill(s_.begin(), s_.end(), 0ULL);
  std::fill(sel_n_.begin(), sel_n_.end(), 0ULL);
  std::fill(sel_f_.begin(), sel_f_.end(), 0ULL);
  data_packets_ = 0;
  probes_ = 0;
  std::fill(win_sel_n_.begin(), win_sel_n_.end(), 0ULL);
  std::fill(win_sel_f_.begin(), win_sel_f_.end(), 0ULL);
  ledger_.reset();
}

FlScoreTable::FlScoreTable(std::size_t num_links)
    : acc_(num_links + 1, 0.0),
      win_acc_(num_links + 1, 0.0),
      ledger_(num_links, kDefaultWindowWidth) {
  if (num_links == 0) {
    throw std::invalid_argument("FlScoreTable: need at least one link");
  }
}

void FlScoreTable::set_blame(const BlameSpec& spec) {
  if (spec.w != ledger_.width()) {
    if (intervals_reported_ != 0) {
      throw std::logic_error(
          "FlScoreTable::set_blame: window width change mid-run");
    }
    ledger_.set_width(spec.w);
  }
  blame_ = spec;
}

void FlScoreTable::roll_window() {
  if (intervals_reported_ % ledger_.width() != 0) return;
  const std::size_t d = num_links();
  std::vector<double> tw(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    if (win_acc_[j] <= 0.0) continue;
    tw[j] = std::max(0.0, 1.0 - win_acc_[j + 1] / win_acc_[j]);
  }
  ledger_.finalize(tw);
  std::fill(win_acc_.begin(), win_acc_.end(), 0.0);
}

void FlScoreTable::add_count(std::size_t node, std::uint64_t count) {
  if (node >= acc_.size()) {
    throw std::out_of_range("FlScoreTable::add_count: node index out of range");
  }
  acc_[node] += static_cast<double>(count);
  win_acc_[node] += static_cast<double>(count);
}

void FlScoreTable::interval_reported() {
  ++intervals_reported_;
  roll_window();
}

std::vector<double> FlScoreTable::thetas() const {
  const std::size_t d = num_links();
  std::vector<double> out(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    if (acc_[j] <= 0.0) continue;
    out[j] = std::max(0.0, 1.0 - acc_[j + 1] / acc_[j]);
  }
  return out;
}

bool FlScoreTable::margin_convicts(std::size_t link, double threshold,
                                   const std::vector<double>& th) const {
  // One-standard-error evidence rule on a ratio of Poisson-ish sampled
  // counts: Var(S_{j+1}/S_j) ~ 2 S_{j+1} / S_j^2 (both counts carry
  // sampling noise); the +1 keeps a total blackhole (S_{j+1} = 0)
  // convictable with a finite margin.
  const double sj = acc_[link];
  if (sj < 1.0) return false;
  const double sd = std::sqrt(2.0 * acc_[link + 1] + 1.0) / sj;
  return th[link] - sd > threshold;
}

std::vector<std::size_t> FlScoreTable::convicted(double threshold) const {
  const std::vector<double> th = thetas();
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < th.size(); ++j) {
    bool guilty = false;
    switch (blame_.mode) {
      case BlameSpec::Mode::kMargin:
        guilty = margin_convicts(j, threshold, th);
        break;
      case BlameSpec::Mode::kPersistent:
        // The sampled-count deficit at this hop plays the blame-tally
        // role: at least K sampled packets must have vanished here.
        guilty = acc_[j] - acc_[j + 1] >= static_cast<double>(blame_.k) &&
                 th[j] > threshold;
        break;
      case BlameSpec::Mode::kWindowed:
        guilty = margin_convicts(j, threshold, th) ||
                 (ledger_.flagrant_windows(j) >= 1 && th[j] > threshold);
        break;
      case BlameSpec::Mode::kHybrid:
        guilty = margin_convicts(j, threshold, th) ||
                 (ledger_.flagrant_windows(j) >= 1 && th[j] > threshold) ||
                 (ledger_.max_streak(j) >= blame_.k &&
                  th[j] > kWindowHighTheta);
        break;
    }
    if (guilty) out.push_back(j);
  }
  return out;
}

double FlScoreTable::observed_e2e_rate() const {
  if (acc_[0] <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - acc_.back() / acc_[0]);
}

void FlScoreTable::restore(const std::vector<double>& acc,
                           std::uint64_t intervals_reported,
                           std::uint64_t intervals_lost) {
  if (acc.size() != acc_.size()) {
    throw std::invalid_argument("FlScoreTable::restore: shape mismatch");
  }
  acc_ = acc;
  intervals_reported_ = intervals_reported;
  intervals_lost_ = intervals_lost;
  std::fill(win_acc_.begin(), win_acc_.end(), 0.0);
  ledger_.reset();
}

void FlScoreTable::restore_window(
    const std::vector<double>& counts, std::uint64_t completed,
    const std::vector<std::uint64_t>& cur_streak,
    const std::vector<std::uint64_t>& max_streak,
    const std::vector<std::uint64_t>& flagrant,
    const std::vector<double>& max_theta_w,
    const std::vector<std::vector<double>>& recent) {
  if (counts.size() != win_acc_.size()) {
    throw std::invalid_argument("FlScoreTable::restore_window: shape mismatch");
  }
  win_acc_ = counts;
  ledger_.restore(completed, cur_streak, max_streak, flagrant, max_theta_w,
                  recent);
}

void FlScoreTable::reset() {
  std::fill(acc_.begin(), acc_.end(), 0.0);
  intervals_reported_ = 0;
  intervals_lost_ = 0;
  std::fill(win_acc_.begin(), win_acc_.end(), 0.0);
  ledger_.reset();
}

}  // namespace paai::protocols
