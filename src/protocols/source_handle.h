// SourceHandle: the monitoring interface every protocol's source agent
// exposes to the library user (and to the experiment runner).
//
// This is the public API surface of the identification machinery: how many
// packets have been sent, the current per-link drop-rate estimates, which
// links the identify phase convicts at a given threshold, and the observed
// end-to-end drop rate psi.
#pragma once

#include <cstdint>
#include <vector>

namespace paai::protocols {

class SourceHandle {
 public:
  virtual ~SourceHandle() = default;

  /// Data packets the source has emitted so far.
  virtual std::uint64_t packets_sent() const = 0;

  /// Monitored units with a resolved outcome (packets for full-ack,
  /// probes for the PAAI protocols, sampled packets for statistical FL).
  virtual std::uint64_t observations() const = 0;

  /// Current per-traversal drop-rate estimate for each link l_0..l_{d-1}.
  virtual std::vector<double> thetas() const = 0;

  /// Identify phase: links whose estimate exceeds `threshold` (the
  /// decision threshold between the natural rate rho and the per-link
  /// drop-rate threshold alpha).
  virtual std::vector<std::size_t> convicted(double threshold) const = 0;

  /// End-to-end data drop rate psi as the source observes it.
  virtual double observed_e2e_rate() const = 0;
};

}  // namespace paai::protocols
