// run_fleet re-expressed as the degenerate mesh case: link-disjoint
// linear chains (one per path), packet engine, per-path fault lists
// applied verbatim. The historical contract — baseline seeded seed0,
// paths seeded by ShardPlan(seed0 + 1), damage folded in path order — is
// carried by the packet engine's fleet-compat mode, so FleetResult
// numbers are bit-identical to the original standalone implementation
// (tests/fleet_test.cc pins this against an inlined copy of the legacy
// serial loop).
#include "runner/fleet.h"

#include <algorithm>
#include <utility>

#include "mesh/runner.h"

namespace paai::runner {

FleetResult run_fleet(const FleetConfig& config) {
  mesh::MeshConfig mc;
  const std::size_t chains = std::max<std::size_t>(1, config.paths.size());
  mc.topo = mesh::Topology::linear(chains, config.base.path.length);
  mc.paths = mc.topo.enumerate_paths(config.paths.size(), /*seed=*/0);
  mc.engine = mesh::MeshEngine::kPacket;
  mc.natural_loss = config.base.path.natural_loss;
  mc.decision_threshold = config.base.decision_threshold;
  mc.seed0 = config.seed0;
  mc.jobs = config.jobs;
  mc.packet_base = config.base;
  mc.packet_path_faults = config.paths;
  mc.packet_baseline = true;

  mesh::MeshResult mr = mesh::run_mesh(mc);

  FleetResult result;
  result.total_damage = mr.total_damage;
  result.baseline_delivery = mr.baseline_delivery;
  result.exec = mr.exec;
  result.paths.reserve(mr.path_outcomes.size());
  for (mesh::MeshPathOutcome& outcome : mr.path_outcomes) {
    FleetResult::PathOutcome path;
    path.ground_truth_delivery = outcome.ground_truth_delivery;
    path.observed_e2e_rate = outcome.observed_e2e_rate;
    path.convicted = std::move(outcome.convicted);
    path.malicious = std::move(outcome.malicious);
    path.all_malicious_convicted = outcome.all_malicious_convicted;
    path.any_honest_convicted = outcome.any_honest_convicted;
    result.paths.push_back(std::move(path));
  }
  return result;
}

}  // namespace paai::runner
