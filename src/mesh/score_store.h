// GlobalScoreStore: cross-path, per-link evidence aggregation (Corollary
// 2) with memory provably O(links) — never O(paths).
//
// Every monitored path contributes (units, blames) evidence for each link
// it crosses; the store keys that evidence by *topology link id* and
// convicts from the union: a node sitting on a thousand paths is judged
// on the sum of all thousand score tables' worth of observations, which
// is exactly the aggregation Corollary 2 says defeats a spread-out
// adversary budget. This is the FAIR / SDNsec bounded-state design
// constraint (per-AS / per-switch accountability with O(links) state):
//
//   per link:  units (u64) + blames (u64) + paths (u64) + solo (u64) +
//              kWitnessCap witness path ids (u32 each) +
//              rounds x (units, blames) window counters (u64 each)
//
// and nothing else, regardless of how many paths are monitored. The
// per-path witness sample is the *bounded* provenance: the kWitnessCap
// smallest contributing path ids (smallest = deterministic under any
// merge order), enough to answer "which paths convicted this link" in
// the audit trail without an O(paths) side table.
//
// Windows: the mesh's time axis is the checkpoint-round schedule (all
// paths advance together), so a "window" here IS a round — the chain
// detectors' unit-count windows (protocols::WindowLedger) specialize to
// the round grid. Evidence deltas are keyed by round index, making the
// window counters u64 sums like everything else: a shard absorbed in any
// order lands each delta in the same round cell, so the merged window
// state commutes exactly. The multi-level conviction rules
// (protocols::BlameSpec) evaluate post-merge over the round grid; the
// spec's W parameter is ignored in the mesh (the round schedule fixes
// the window width — documented in docs/DETECTORS.md).
//
// Sharding/determinism contract: workers accumulate into private
// ScoreShard instances (one per in-flight tile of the path range) and the
// driver absorbs them in tile order. All evidence counters are u64 sums —
// associative and commutative exactly — and the witness merge keeps the
// smallest ids, so the merged store is bit-identical for ANY worker count
// and ANY completion order; the tile fold order only matters for the
// floating-point damage partials the runner carries alongside.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "protocols/window.h"

namespace paai::mesh {

inline constexpr std::size_t kWitnessCap = 4;
inline constexpr std::uint32_t kNoWitness = 0xffffffffu;

/// One worker's private slice of evidence: same struct-of-arrays shape as
/// the global store, no synchronization, merged via
/// GlobalScoreStore::absorb.
class ScoreShard {
 public:
  explicit ScoreShard(std::size_t num_links, std::size_t rounds = 1);

  /// Folds one path's evidence for one link: `units` monitored units of
  /// which `blames` were blamed on the link. `path` feeds the bounded
  /// witness sample (only when it contributed blame); `solo` marks that
  /// the path's own evidence alone would convict the link (the
  /// single-path counterfactual the cross-path acceptance scenario needs
  /// to be zero).
  void add(std::size_t link, std::uint64_t units, std::uint64_t blames,
           std::uint32_t path, bool solo);

  /// Folds one path's evidence delta for one link *within one checkpoint
  /// round* (the mesh's window). Keyed by round index so deltas from any
  /// shard land in the same cell — u64 sums that commute under any
  /// absorb order. Callers that add windows must cover the totals they
  /// pass to add(): summing a link's window cells over all rounds yields
  /// its cumulative (units, blames).
  void add_window(std::size_t link, std::size_t round, std::uint64_t units,
                  std::uint64_t blames);

  std::size_t num_links() const { return units_.size(); }
  std::size_t rounds() const { return rounds_; }

  /// Heap bytes one shard pins while in flight.
  static std::size_t bytes_for(std::size_t num_links, std::size_t rounds = 1);

 private:
  friend class GlobalScoreStore;
  std::size_t rounds_;
  std::vector<std::uint64_t> units_;
  std::vector<std::uint64_t> blames_;
  std::vector<std::uint64_t> paths_;
  std::vector<std::uint64_t> solo_;
  std::vector<std::uint32_t> witness_;   // num_links x kWitnessCap, sorted
  std::vector<std::uint64_t> win_units_;   // round-major, round * L + l
  std::vector<std::uint64_t> win_blames_;  // round-major, round * L + l
};

class GlobalScoreStore {
 public:
  explicit GlobalScoreStore(std::size_t num_links, std::size_t rounds = 1);

  /// Merges a shard in (u64 sums + smallest-K witness merge). Shard link
  /// and round counts must match; throws std::invalid_argument otherwise.
  void absorb(const ScoreShard& shard);

  std::size_t num_links() const { return units_.size(); }
  std::size_t rounds() const { return rounds_; }
  std::uint64_t units(std::size_t link) const { return units_[link]; }
  std::uint64_t blames(std::size_t link) const { return blames_[link]; }
  std::uint64_t paths(std::size_t link) const { return paths_[link]; }
  std::uint64_t solo_convictions(std::size_t link) const {
    return solo_[link];
  }

  /// Per-round window cells (round-major u64 sums over absorbed shards).
  std::uint64_t round_units(std::size_t link, std::size_t round) const {
    return win_units_[round * num_links() + link];
  }
  std::uint64_t round_blames(std::size_t link, std::size_t round) const {
    return win_blames_[round * num_links() + link];
  }

  /// Cumulative window evidence over the first `rounds_prefix` rounds —
  /// the checkpoint-scan axis. With a full prefix this equals
  /// units()/blames() whenever every add() was mirrored by add_window()
  /// calls covering the same totals.
  std::uint64_t units_through(std::size_t link,
                              std::size_t rounds_prefix) const;
  std::uint64_t blames_through(std::size_t link,
                               std::size_t rounds_prefix) const;

  /// Witness path ids for a link (ascending, at most kWitnessCap).
  std::vector<std::uint32_t> witnesses(std::size_t link) const;

  /// Aggregate per-traversal drop-rate estimate: blames/units (the mesh
  /// evidence model is one traversal per monitored unit, so the
  /// ScoreTable inversion 1-(1-b)^(1/t) degenerates to b itself).
  double theta(std::size_t link) const;

  /// Same one-standard-error evidence rule as protocols::ScoreTable: the
  /// estimate must clear the threshold by one standard error of the
  /// aggregated blame proportion. More cross-path evidence -> smaller
  /// margin -> Corollary 2's union conviction, while honest links keep
  /// the no-false-accusation bar at any path count.
  bool convicts(std::size_t link, double threshold) const;
  std::vector<std::size_t> convicted(double threshold) const;

  /// Multi-level conviction rule (protocols::BlameSpec) evaluated over
  /// the first `rounds_prefix` checkpoint rounds of window evidence
  /// (default: all). Rounds are the mesh's windows; the spec's W is
  /// ignored. Margin mode reproduces convicts() exactly when the window
  /// cells cover the cumulative evidence; persistent:K requires >= K
  /// cumulative blames above the raw threshold; windowed adds the
  /// flagrant-round clause; hybrid adds the hot-round streak clause
  /// (thresholds shared with the chain detectors: kWindowHighTheta /
  /// kWindowFlagrantTheta).
  bool convicts(std::size_t link, double threshold,
                const protocols::BlameSpec& blame,
                std::size_t rounds_prefix = ~std::size_t{0}) const;
  std::vector<std::size_t> convicted(double threshold,
                                     const protocols::BlameSpec& blame) const;

  /// Heap bytes of the aggregated store itself (the O(links) quantity the
  /// bench reports as memory per link).
  std::size_t memory_bytes() const;

 private:
  std::size_t rounds_;
  std::vector<std::uint64_t> units_;
  std::vector<std::uint64_t> blames_;
  std::vector<std::uint64_t> paths_;
  std::vector<std::uint64_t> solo_;
  std::vector<std::uint32_t> witness_;
  std::vector<std::uint64_t> win_units_;
  std::vector<std::uint64_t> win_blames_;
};

}  // namespace paai::mesh
