#include "mesh/runner.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exec/parallel_for.h"
#include "exec/shard_plan.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "util/rng.h"
#include "util/stats.h"

namespace paai::mesh {

namespace {

/// The store's one-standard-error rule applied to a raw (units, blames)
/// pair — used for the single-path solo counterfactual and the
/// cumulative checkpoint scan, so all three conviction sites share one
/// formula.
bool evidence_convicts(std::uint64_t units, std::uint64_t blames,
                       double threshold) {
  if (units == 0) return false;
  const double n = static_cast<double>(units);
  const double b = static_cast<double>(blames) / n;
  const double sd = std::sqrt(std::max(b, 1.0 / n) * (1.0 - b) / n);
  return b - sd > threshold;
}

/// Composes two independent per-traversal drop probabilities.
double compose(double a, double b) { return 1.0 - (1.0 - a) * (1.0 - b); }

void check_index(std::size_t index, std::size_t bound, const char* what) {
  if (index >= bound) {
    throw std::invalid_argument(std::string("run_mesh: ") + what + " index " +
                                std::to_string(index) +
                                " out of range (bound " +
                                std::to_string(bound) + ")");
  }
}

void validate_paths(const MeshConfig& config) {
  const std::size_t num_links = config.topo.num_links();
  for (std::size_t i = 0; i < config.paths.size(); ++i) {
    const std::uint32_t* pl = config.paths.links(i);
    const std::size_t len = config.paths.length(i);
    if (len == 0) {
      throw std::invalid_argument("run_mesh: path " + std::to_string(i) +
                                  " has no links");
    }
    for (std::size_t j = 0; j < len; ++j) {
      check_index(pl[j], num_links, "path link");
    }
  }
}

/// Ground truth: every outgoing link of a compromised node plus every
/// directly planted link fault. Control-plane-only adversaries (ack,
/// originfilter) still mark their links — an unconvicted one shows up as
/// missed_malicious, which is the honest report (no data evidence exists
/// against it).
std::vector<char> malicious_links(const MeshConfig& config) {
  std::vector<char> malicious(config.topo.num_links(), 0);
  for (const adversary::Spec& spec : config.adversaries.specs) {
    check_index(spec.node, config.topo.num_nodes(), "adversary node");
    for (const std::uint32_t l : config.topo.out_links(
             static_cast<std::uint32_t>(spec.node))) {
      malicious[l] = 1;
    }
  }
  for (const MeshLinkFault& fault : config.link_faults) {
    check_index(fault.link, config.topo.num_links(), "link fault");
    malicious[fault.link] = 1;
  }
  return malicious;
}

// ---------------------------------------------------------------------
// Stat engine
// ---------------------------------------------------------------------

/// Per-round, per-link drop-rate tables the stat engine samples from.
/// benign excludes the adversary (the clean-baseline rate); total
/// composes the adversary on top. Layout: round-major, `round * L + l`.
struct StatTables {
  std::vector<double> benign;
  std::vector<double> total;
};

StatTables build_stat_tables(const MeshConfig& config, std::size_t rounds) {
  const Topology& topo = config.topo;
  const std::size_t num_links = topo.num_links();
  const double horizon = config.duration_s > 0.0 ? config.duration_s : 600.0;
  const double round_s = horizon / static_cast<double>(rounds);

  // Gilbert–Elliott stationary loss replaces the natural coin on its
  // link (same rule as the packet simulator: the GE chain IS the link's
  // loss process).
  std::vector<double> base(num_links, config.natural_loss);
  double worst_pi_bad = 0.0;
  for (const faults::GilbertElliottFault& ge : config.faults.gilbert) {
    check_index(ge.link, num_links, "ge fault link");
    const double denom = ge.params.good_to_bad + ge.params.bad_to_good;
    const double pi_bad = denom > 0.0 ? ge.params.good_to_bad / denom : 0.0;
    base[ge.link] = ge.params.loss_good * (1.0 - pi_bad) +
                    ge.params.loss_bad * pi_bad;
    worst_pi_bad = std::max(worst_pi_bad, pi_bad);
  }
  for (const faults::LinkRetune& retune : config.faults.retunes) {
    check_index(retune.link, num_links, "retune link");
  }
  // Long-run fraction of time benign fault cover is active — what a
  // fault-colluding adversary's duty cycle keys off.
  double outage_fraction = 0.0;
  for (const faults::NodeOutage& outage : config.faults.outages) {
    check_index(outage.node, topo.num_nodes(), "outage node");
    outage_fraction += std::max(0.0, outage.duration_seconds) / horizon;
  }
  const double cover = std::min(1.0, worst_pi_bad + outage_fraction);
  // Reorder/dup clauses drop nothing; validated and otherwise ignored.
  for (const faults::ReorderFault& reorder : config.faults.reorders) {
    check_index(reorder.link, num_links, "reorder link");
  }
  for (const faults::DuplicateFault& dup : config.faults.duplicates) {
    check_index(dup.link, num_links, "dup link");
  }

  // Adversary extra rate per link: every outgoing link of a compromised
  // node drops at the spec's time-averaged rate; direct link faults
  // compose in.
  std::vector<double> extra(num_links, 0.0);
  for (const adversary::Spec& spec : config.adversaries.specs) {
    check_index(spec.node, topo.num_nodes(), "adversary node");
    const double rate =
        spec.mean_drop_rate(cover, config.decision_threshold);
    for (const std::uint32_t l :
         topo.out_links(static_cast<std::uint32_t>(spec.node))) {
      extra[l] = compose(extra[l], rate);
    }
  }
  for (const MeshLinkFault& fault : config.link_faults) {
    check_index(fault.link, num_links, "link fault");
    extra[fault.link] = compose(extra[fault.link], fault.extra_loss);
  }

  StatTables tables;
  tables.benign.resize(rounds * num_links);
  tables.total.resize(rounds * num_links);
  for (std::size_t r = 0; r < rounds; ++r) {
    const double t_mid = (static_cast<double>(r) + 0.5) * round_s;
    const double round_begin = static_cast<double>(r) * round_s;
    const double round_end = round_begin + round_s;
    for (std::size_t l = 0; l < num_links; ++l) {
      double benign = base[l];
      // Latest retune whose schedule point has passed the round midpoint
      // wins (clauses are a piecewise schedule; the midpoint is the
      // round's representative instant).
      double latest_at = -1.0;
      for (const faults::LinkRetune& retune : config.faults.retunes) {
        if (retune.link != l || !retune.loss.has_value()) continue;
        if (retune.at_seconds <= t_mid && retune.at_seconds > latest_at) {
          latest_at = retune.at_seconds;
          benign = *retune.loss;
        }
      }
      // Outages blackhole the crashed node's outgoing links for the
      // fraction of the round the outage window overlaps.
      const std::uint32_t from = topo.link(l).from;
      for (const faults::NodeOutage& outage : config.faults.outages) {
        if (outage.node != from) continue;
        const double begin = std::max(round_begin, outage.at_seconds);
        const double end = std::min(
            round_end, outage.at_seconds + outage.duration_seconds);
        if (end > begin) {
          const double fraction = (end - begin) / round_s;
          benign = benign + fraction * (1.0 - benign);
        }
      }
      tables.benign[r * num_links + l] = benign;
      tables.total[r * num_links + l] = compose(benign, extra[l]);
    }
  }
  return tables;
}

MeshResult run_stat(const MeshConfig& config) {
  const std::size_t num_links = config.topo.num_links();
  const std::size_t num_paths = config.paths.size();
  const std::size_t rounds = std::max<std::size_t>(1, config.rounds);
  const StatTables tables = build_stat_tables(config, rounds);
  const std::vector<char> malicious = malicious_links(config);

  // Every path sends the same per-round unit slices, so the cumulative
  // per-path unit count at each checkpoint is a shared schedule.
  std::vector<std::uint64_t> slice(rounds, 0);
  std::vector<std::uint64_t> cum_units(rounds, 0);
  for (std::size_t r = 0; r < rounds; ++r) {
    slice[r] = config.units_per_path / rounds +
               (r < config.units_per_path % rounds ? 1 : 0);
    cum_units[r] = (r == 0 ? 0 : cum_units[r - 1]) + slice[r];
  }
  const double units_per_path =
      std::max<double>(1.0, static_cast<double>(config.units_per_path));

  // One tile = one contiguous block of the path range. The tile count is
  // a pure function of the path count (never of jobs), and the fold below
  // runs strictly in tile order, so the result is bit-identical for any
  // worker count.
  const exec::ShardPlan plan(config.seed0 + 1, num_paths);
  const auto ranges = plan.partition(exec::fixed_tile_count(num_paths));

  struct TileResult {
    ScoreShard shard;
    double damage = 0.0;
    double baseline = 0.0;
    TileResult(std::size_t links, std::size_t rounds)
        : shard(links, rounds) {}
  };

  GlobalScoreStore store(num_links, rounds);
  double total_damage = 0.0;
  double baseline_sum = 0.0;
  std::uint64_t committed_units = 0;
  exec::OrderedReducer<TileResult> reducer(
      ranges.size(), [&](std::size_t ti, TileResult&& tile) {
        store.absorb(tile.shard);
        total_damage += tile.damage;
        baseline_sum += tile.baseline;
        // Telemetry on the serialized fold: cumulative committed units
        // make a monotone axis regardless of worker interleaving.
        committed_units += (ranges[ti].second - ranges[ti].first) *
                           config.units_per_path;
        if (config.telemetry != nullptr) {
          config.telemetry->tick(committed_units);
        }
      });

  MeshResult result;
  result.exec = exec::parallel_for_each(
      ranges.size(),
      [&](std::size_t ti) {
        const obs::ScopedPhase phase(obs::Phase::kMeshStat);
        TileResult tile(num_links, rounds);
        std::vector<std::uint64_t> path_units(config.paths.max_length(), 0);
        std::vector<std::uint64_t> path_blames(config.paths.max_length(), 0);
        for (std::size_t i = ranges[ti].first; i < ranges[ti].second; ++i) {
          const std::uint32_t* pl = config.paths.links(i);
          const std::size_t len = config.paths.length(i);
          std::fill(path_units.begin(), path_units.begin() + len, 0);
          std::fill(path_blames.begin(), path_blames.begin() + len, 0);

          Rng base(plan.seed(i));
          std::uint64_t delivered = 0;
          double baseline_units = 0.0;
          for (std::size_t r = 0; r < rounds; ++r) {
            Rng rng = base.fork(r + 1);
            std::uint64_t reached = slice[r];
            double clean = 1.0;
            for (std::size_t j = 0; j < len; ++j) {
              const std::size_t l = pl[j];
              const std::uint64_t drops =
                  rng.binomial(reached, tables.total[r * num_links + l]);
              tile.shard.add_window(l, r, slice[r], drops);
              path_units[j] += slice[r];
              path_blames[j] += drops;
              reached -= drops;
              clean *= 1.0 - tables.benign[r * num_links + l];
            }
            delivered += reached;
            baseline_units += clean * static_cast<double>(slice[r]);
          }

          const double baseline_path = baseline_units / units_per_path;
          const double delivered_path =
              static_cast<double>(delivered) / units_per_path;
          tile.damage += std::max(0.0, baseline_path - delivered_path);
          tile.baseline += baseline_path;
          for (std::size_t j = 0; j < len; ++j) {
            const bool solo = evidence_convicts(path_units[j], path_blames[j],
                                                config.decision_threshold);
            tile.shard.add(pl[j], path_units[j], path_blames[j],
                           static_cast<std::uint32_t>(i), solo);
          }
        }
        reducer.commit(ti, std::move(tile));
      },
      config.jobs);

  result.paths = num_paths;
  result.total_units =
      static_cast<std::uint64_t>(num_paths) * config.units_per_path;
  result.total_damage = total_damage;
  result.baseline_delivery =
      num_paths > 0 ? baseline_sum / static_cast<double>(num_paths) : 0.0;
  result.store_bytes = store.memory_bytes();
  result.shard_bytes = ScoreShard::bytes_for(num_links, rounds);

  result.links.resize(num_links);
  std::vector<double> detection;
  for (std::size_t l = 0; l < num_links; ++l) {
    MeshResult::LinkVerdict& row = result.links[l];
    row.units = store.units(l);
    row.blames = store.blames(l);
    row.paths = store.paths(l);
    row.solo_convictions = store.solo_convictions(l);
    row.theta = store.theta(l);
    row.convicted =
        store.convicts(l, config.decision_threshold, config.blame);
    row.malicious = malicious[l] != 0;
    row.witnesses = store.witnesses(l);
    // Replay the cumulative checkpoint schedule to find the first round
    // prefix whose aggregated evidence convicts under the configured
    // blame rule — the detection-latency axis.
    for (std::size_t r = 0; r < rounds; ++r) {
      if (store.convicts(l, config.decision_threshold, config.blame,
                         r + 1)) {
        row.first_convicted_units = cum_units[r];
        break;
      }
    }
    if (row.convicted) result.convicted.push_back(l);
    if (row.malicious) result.malicious_links.push_back(l);
    if (row.convicted && !row.malicious) ++result.false_accusations;
    if (!row.convicted && row.malicious) ++result.missed_malicious;
    if (row.convicted && row.malicious && row.first_convicted_units > 0) {
      detection.push_back(static_cast<double>(row.first_convicted_units));
    }
  }
  if (!detection.empty()) {
    result.detection_units_p50 = quantile(detection, 0.5);
    result.detection_units_p90 = quantile(detection, 0.9);
    result.detection_units_p99 = quantile(detection, 0.99);
  }
  return result;
}

// ---------------------------------------------------------------------
// Packet engine
// ---------------------------------------------------------------------

MeshResult run_packet(const MeshConfig& config) {
  const Topology& topo = config.topo;
  const std::size_t num_links = topo.num_links();
  const std::size_t num_paths = config.paths.size();
  const bool fleet_mode = !config.packet_path_faults.empty();
  if (fleet_mode && config.packet_path_faults.size() != num_paths) {
    throw std::invalid_argument(
        "run_mesh: packet_path_faults must have one entry per path");
  }

  MeshResult result;

  // Clean baseline: template with the malicious state stripped — the
  // exact historical run_fleet baseline (benign FaultPlan intentionally
  // kept, matching a deployment measuring its own fault floor).
  if (config.packet_baseline) {
    runner::ExperimentConfig clean = config.packet_base;
    clean.link_faults.clear();
    clean.adversaries.clear();
    clean.path.seed = config.seed0;
    result.baseline_delivery =
        runner::run_experiment(clean).ground_truth_delivery;
  }

  // Ground-truth malicious mesh links. Fleet mode plants path-local
  // faults, so project them onto the topology; mesh mode derives them
  // from the mesh-level plans.
  std::vector<char> malicious(num_links, 0);
  if (fleet_mode) {
    for (std::size_t i = 0; i < num_paths; ++i) {
      for (const runner::LinkFault& fault : config.packet_path_faults[i]) {
        if (fault.link < config.paths.length(i)) {
          malicious[config.paths.links(i)[fault.link]] = 1;
        }
      }
    }
  } else {
    malicious = malicious_links(config);
  }

  struct PathEvidence {
    MeshPathOutcome outcome;
    std::uint64_t units = 0;
    std::vector<std::uint64_t> blames;  // per hop
    std::vector<char> solo;             // per hop
  };

  GlobalScoreStore store(num_links);
  ScoreShard shard(num_links);
  std::uint64_t total_units = 0;
  result.path_outcomes.reserve(num_paths);
  exec::OrderedReducer<PathEvidence> reducer(
      num_paths, [&](std::size_t i, PathEvidence&& ev) {
        // Identical fold to run_fleet: damage accumulates in path order.
        result.total_damage += std::max(
            0.0, result.baseline_delivery - ev.outcome.ground_truth_delivery);
        const std::uint32_t* pl = config.paths.links(i);
        for (std::size_t j = 0; j < ev.blames.size(); ++j) {
          shard.add(pl[j], ev.units, ev.blames[j],
                    static_cast<std::uint32_t>(i), ev.solo[j] != 0);
          // Single checkpoint at the full horizon: all window evidence
          // lands in round 0 so the blame rules degenerate gracefully.
          shard.add_window(pl[j], 0, ev.units, ev.blames[j]);
        }
        total_units += ev.units;
        result.path_outcomes.push_back(std::move(ev.outcome));
        if (config.telemetry != nullptr) config.telemetry->tick(total_units);
      });

  const exec::ShardPlan plan(config.seed0 + 1, num_paths);
  result.exec = exec::parallel_for_each(
      num_paths,
      [&](std::size_t i) {
        const std::uint32_t* pl = config.paths.links(i);
        const std::size_t len = config.paths.length(i);

        runner::ExperimentConfig cfg = config.packet_base;
        cfg.path.seed = plan.seed(i);
        if (fleet_mode) {
          // Historical run_fleet contract, verbatim: per-path faults
          // replace the template's; everything else (length, benign
          // FaultPlan) is the template's as-is.
          cfg.link_faults = config.packet_path_faults[i];
        } else {
          // Project the mesh-level plans onto this path's local indices:
          // hop j's link is path-local link j, its upstream node is
          // path-local node j.
          cfg.path.length = len;
          cfg.link_faults.clear();
          cfg.adversaries.clear();
          cfg.faults = faults::FaultPlan{};
          for (std::size_t j = 0; j < len; ++j) {
            const std::uint32_t l = pl[j];
            const std::uint32_t from = topo.link(l).from;
            for (const MeshLinkFault& fault : config.link_faults) {
              if (fault.link == l) {
                cfg.link_faults.push_back({j, fault.extra_loss});
              }
            }
            // The path source (j == 0) is the monitor itself and cannot
            // be the adversary; a compromised destination has no on-path
            // outgoing link and never maps.
            if (j >= 1) {
              for (const adversary::Spec& spec : config.adversaries.specs) {
                if (spec.node == from) {
                  adversary::Spec local = spec;
                  local.node = j;
                  cfg.adversaries.push_back(local);
                }
              }
              for (const faults::NodeOutage& outage : config.faults.outages) {
                if (outage.node == from) {
                  faults::NodeOutage local = outage;
                  local.node = j;
                  cfg.faults.outages.push_back(local);
                }
              }
            }
            for (const faults::GilbertElliottFault& ge :
                 config.faults.gilbert) {
              if (ge.link == l) {
                faults::GilbertElliottFault local = ge;
                local.link = j;
                cfg.faults.gilbert.push_back(local);
              }
            }
            for (const faults::LinkRetune& retune : config.faults.retunes) {
              if (retune.link == l) {
                faults::LinkRetune local = retune;
                local.link = j;
                cfg.faults.retunes.push_back(local);
              }
            }
            for (const faults::ReorderFault& reorder :
                 config.faults.reorders) {
              if (reorder.link == l) {
                faults::ReorderFault local = reorder;
                local.link = j;
                cfg.faults.reorders.push_back(local);
              }
            }
            for (const faults::DuplicateFault& dup :
                 config.faults.duplicates) {
              if (dup.link == l) {
                faults::DuplicateFault local = dup;
                local.link = j;
                cfg.faults.duplicates.push_back(local);
              }
            }
          }
        }

        const obs::ScopedPhase phase(obs::Phase::kMeshPacket);
        const runner::ExperimentResult run = runner::run_experiment(cfg);

        PathEvidence ev;
        ev.units = run.observations;
        ev.blames.resize(len, 0);
        ev.solo.resize(len, 0);
        // Rate-preserving evidence projection: the experiment's final
        // per-link theta estimate (whatever protocol produced it) becomes
        // blames/units evidence at the same rate.
        const std::size_t hops = std::min(len, run.final_thetas.size());
        for (std::size_t j = 0; j < hops; ++j) {
          const double theta =
              std::clamp(run.final_thetas[j], 0.0, 1.0);
          const auto blames = static_cast<std::uint64_t>(
              std::llround(static_cast<double>(run.observations) * theta));
          ev.blames[j] = std::min(blames, run.observations);
        }
        for (const std::size_t c : run.final_convicted) {
          if (c < len) ev.solo[c] = 1;
        }

        MeshPathOutcome& outcome = ev.outcome;
        outcome.ground_truth_delivery = run.ground_truth_delivery;
        outcome.observed_e2e_rate = run.observed_e2e_rate;
        outcome.convicted = run.final_convicted;
        if (fleet_mode) {
          for (const runner::LinkFault& fault : config.packet_path_faults[i]) {
            outcome.malicious.push_back(fault.link);
          }
        } else {
          for (std::size_t j = 0; j < len; ++j) {
            if (malicious[pl[j]]) outcome.malicious.push_back(j);
          }
        }
        std::sort(outcome.malicious.begin(), outcome.malicious.end());
        outcome.all_malicious_convicted = true;
        for (const std::size_t link : outcome.malicious) {
          if (std::find(outcome.convicted.begin(), outcome.convicted.end(),
                        link) == outcome.convicted.end()) {
            outcome.all_malicious_convicted = false;
          }
        }
        for (const std::size_t link : outcome.convicted) {
          if (std::find(outcome.malicious.begin(), outcome.malicious.end(),
                        link) == outcome.malicious.end()) {
            outcome.any_honest_convicted = true;
          }
        }
        reducer.commit(i, std::move(ev));
      },
      config.jobs);

  store.absorb(shard);
  result.paths = num_paths;
  result.total_units = total_units;
  result.store_bytes = store.memory_bytes();
  result.shard_bytes = ScoreShard::bytes_for(num_links);

  result.links.resize(num_links);
  std::vector<double> detection;
  for (std::size_t l = 0; l < num_links; ++l) {
    MeshResult::LinkVerdict& row = result.links[l];
    row.units = store.units(l);
    row.blames = store.blames(l);
    row.paths = store.paths(l);
    row.solo_convictions = store.solo_convictions(l);
    row.theta = store.theta(l);
    row.convicted =
        store.convicts(l, config.decision_threshold, config.blame);
    row.malicious = malicious[l] != 0;
    row.witnesses = store.witnesses(l);
    if (row.convicted && row.paths > 0) {
      // Single checkpoint at the full horizon: the link's mean per-path
      // evidence is the finest detection-latency statement available.
      row.first_convicted_units = row.units / row.paths;
    }
    if (row.convicted) result.convicted.push_back(l);
    if (row.malicious) result.malicious_links.push_back(l);
    if (row.convicted && !row.malicious) ++result.false_accusations;
    if (!row.convicted && row.malicious) ++result.missed_malicious;
    if (row.convicted && row.malicious && row.first_convicted_units > 0) {
      detection.push_back(static_cast<double>(row.first_convicted_units));
    }
  }
  if (!detection.empty()) {
    result.detection_units_p50 = quantile(detection, 0.5);
    result.detection_units_p90 = quantile(detection, 0.9);
    result.detection_units_p99 = quantile(detection, 0.99);
  }
  return result;
}

}  // namespace

MeshResult run_mesh(const MeshConfig& config) {
  if (config.topo.num_links() == 0) {
    throw std::invalid_argument("run_mesh: topology has no links");
  }
  validate_paths(config);
  return config.engine == MeshEngine::kStat ? run_stat(config)
                                            : run_packet(config);
}

}  // namespace paai::mesh
