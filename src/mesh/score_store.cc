#include "mesh/score_store.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paai::mesh {

namespace {

/// Inserts `path` into a sorted kWitnessCap window (ascending, kNoWitness
/// padded), keeping the smallest ids. Duplicate ids are kept out so a
/// path absorbed via several shards (impossible today — tiles partition
/// the path range — but cheap to guarantee) counts once.
void witness_insert(std::uint32_t* window, std::uint32_t path) {
  for (std::size_t i = 0; i < kWitnessCap; ++i) {
    if (window[i] == path) return;
    if (path < window[i]) {
      std::swap(path, window[i]);
    }
  }
}

}  // namespace

ScoreShard::ScoreShard(std::size_t num_links)
    : units_(num_links, 0),
      blames_(num_links, 0),
      paths_(num_links, 0),
      solo_(num_links, 0),
      witness_(num_links * kWitnessCap, kNoWitness) {
  if (num_links == 0) {
    throw std::invalid_argument("ScoreShard: need at least one link");
  }
}

void ScoreShard::add(std::size_t link, std::uint64_t units,
                     std::uint64_t blames, std::uint32_t path, bool solo) {
  units_[link] += units;
  blames_[link] += blames;
  paths_[link] += 1;
  solo_[link] += solo ? 1 : 0;
  if (blames > 0) {
    witness_insert(witness_.data() + link * kWitnessCap, path);
  }
}

std::size_t ScoreShard::bytes_for(std::size_t num_links) {
  return num_links * (4 * sizeof(std::uint64_t) +
                      kWitnessCap * sizeof(std::uint32_t));
}

GlobalScoreStore::GlobalScoreStore(std::size_t num_links)
    : units_(num_links, 0),
      blames_(num_links, 0),
      paths_(num_links, 0),
      solo_(num_links, 0),
      witness_(num_links * kWitnessCap, kNoWitness) {
  if (num_links == 0) {
    throw std::invalid_argument("GlobalScoreStore: need at least one link");
  }
}

void GlobalScoreStore::absorb(const ScoreShard& shard) {
  if (shard.num_links() != num_links()) {
    throw std::invalid_argument("GlobalScoreStore::absorb: link mismatch");
  }
  for (std::size_t l = 0; l < units_.size(); ++l) {
    units_[l] += shard.units_[l];
    blames_[l] += shard.blames_[l];
    paths_[l] += shard.paths_[l];
    solo_[l] += shard.solo_[l];
    const std::uint32_t* in = shard.witness_.data() + l * kWitnessCap;
    std::uint32_t* out = witness_.data() + l * kWitnessCap;
    for (std::size_t i = 0; i < kWitnessCap && in[i] != kNoWitness; ++i) {
      witness_insert(out, in[i]);
    }
  }
}

std::vector<std::uint32_t> GlobalScoreStore::witnesses(
    std::size_t link) const {
  std::vector<std::uint32_t> out;
  const std::uint32_t* w = witness_.data() + link * kWitnessCap;
  for (std::size_t i = 0; i < kWitnessCap && w[i] != kNoWitness; ++i) {
    out.push_back(w[i]);
  }
  return out;
}

double GlobalScoreStore::theta(std::size_t link) const {
  if (units_[link] == 0) return 0.0;
  return static_cast<double>(blames_[link]) /
         static_cast<double>(units_[link]);
}

bool GlobalScoreStore::convicts(std::size_t link, double threshold) const {
  const std::uint64_t n_units = units_[link];
  if (n_units == 0) return false;
  const double n = static_cast<double>(n_units);
  const double b = static_cast<double>(blames_[link]) / n;
  const double sd = std::sqrt(std::max(b, 1.0 / n) * (1.0 - b) / n);
  return b - sd > threshold;
}

std::vector<std::size_t> GlobalScoreStore::convicted(
    double threshold) const {
  std::vector<std::size_t> out;
  for (std::size_t l = 0; l < units_.size(); ++l) {
    if (convicts(l, threshold)) out.push_back(l);
  }
  return out;
}

std::size_t GlobalScoreStore::memory_bytes() const {
  return units_.capacity() * sizeof(std::uint64_t) +
         blames_.capacity() * sizeof(std::uint64_t) +
         paths_.capacity() * sizeof(std::uint64_t) +
         solo_.capacity() * sizeof(std::uint64_t) +
         witness_.capacity() * sizeof(std::uint32_t);
}

}  // namespace paai::mesh
