#include "mesh/score_store.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace paai::mesh {

namespace {

/// Inserts `path` into a sorted kWitnessCap window (ascending, kNoWitness
/// padded), keeping the smallest ids. Duplicate ids are kept out so a
/// path absorbed via several shards (impossible today — tiles partition
/// the path range — but cheap to guarantee) counts once.
void witness_insert(std::uint32_t* window, std::uint32_t path) {
  for (std::size_t i = 0; i < kWitnessCap; ++i) {
    if (window[i] == path) return;
    if (path < window[i]) {
      std::swap(path, window[i]);
    }
  }
}

}  // namespace

ScoreShard::ScoreShard(std::size_t num_links, std::size_t rounds)
    : rounds_(rounds == 0 ? 1 : rounds),
      units_(num_links, 0),
      blames_(num_links, 0),
      paths_(num_links, 0),
      solo_(num_links, 0),
      witness_(num_links * kWitnessCap, kNoWitness),
      win_units_(num_links * rounds_, 0),
      win_blames_(num_links * rounds_, 0) {
  if (num_links == 0) {
    throw std::invalid_argument("ScoreShard: need at least one link");
  }
}

void ScoreShard::add(std::size_t link, std::uint64_t units,
                     std::uint64_t blames, std::uint32_t path, bool solo) {
  units_[link] += units;
  blames_[link] += blames;
  paths_[link] += 1;
  solo_[link] += solo ? 1 : 0;
  if (blames > 0) {
    witness_insert(witness_.data() + link * kWitnessCap, path);
  }
}

void ScoreShard::add_window(std::size_t link, std::size_t round,
                            std::uint64_t units, std::uint64_t blames) {
  win_units_[round * num_links() + link] += units;
  win_blames_[round * num_links() + link] += blames;
}

std::size_t ScoreShard::bytes_for(std::size_t num_links, std::size_t rounds) {
  return num_links * (4 * sizeof(std::uint64_t) +
                      kWitnessCap * sizeof(std::uint32_t)) +
         num_links * (rounds == 0 ? 1 : rounds) * 2 * sizeof(std::uint64_t);
}

GlobalScoreStore::GlobalScoreStore(std::size_t num_links, std::size_t rounds)
    : rounds_(rounds == 0 ? 1 : rounds),
      units_(num_links, 0),
      blames_(num_links, 0),
      paths_(num_links, 0),
      solo_(num_links, 0),
      witness_(num_links * kWitnessCap, kNoWitness),
      win_units_(num_links * rounds_, 0),
      win_blames_(num_links * rounds_, 0) {
  if (num_links == 0) {
    throw std::invalid_argument("GlobalScoreStore: need at least one link");
  }
}

void GlobalScoreStore::absorb(const ScoreShard& shard) {
  if (shard.num_links() != num_links()) {
    throw std::invalid_argument("GlobalScoreStore::absorb: link mismatch");
  }
  if (shard.rounds() != rounds_) {
    throw std::invalid_argument("GlobalScoreStore::absorb: round mismatch");
  }
  for (std::size_t l = 0; l < units_.size(); ++l) {
    units_[l] += shard.units_[l];
    blames_[l] += shard.blames_[l];
    paths_[l] += shard.paths_[l];
    solo_[l] += shard.solo_[l];
    const std::uint32_t* in = shard.witness_.data() + l * kWitnessCap;
    std::uint32_t* out = witness_.data() + l * kWitnessCap;
    for (std::size_t i = 0; i < kWitnessCap && in[i] != kNoWitness; ++i) {
      witness_insert(out, in[i]);
    }
  }
  for (std::size_t k = 0; k < win_units_.size(); ++k) {
    win_units_[k] += shard.win_units_[k];
    win_blames_[k] += shard.win_blames_[k];
  }
}

std::uint64_t GlobalScoreStore::units_through(
    std::size_t link, std::size_t rounds_prefix) const {
  std::uint64_t sum = 0;
  const std::size_t n = std::min(rounds_prefix, rounds_);
  for (std::size_t r = 0; r < n; ++r) sum += round_units(link, r);
  return sum;
}

std::uint64_t GlobalScoreStore::blames_through(
    std::size_t link, std::size_t rounds_prefix) const {
  std::uint64_t sum = 0;
  const std::size_t n = std::min(rounds_prefix, rounds_);
  for (std::size_t r = 0; r < n; ++r) sum += round_blames(link, r);
  return sum;
}

std::vector<std::uint32_t> GlobalScoreStore::witnesses(
    std::size_t link) const {
  std::vector<std::uint32_t> out;
  const std::uint32_t* w = witness_.data() + link * kWitnessCap;
  for (std::size_t i = 0; i < kWitnessCap && w[i] != kNoWitness; ++i) {
    out.push_back(w[i]);
  }
  return out;
}

double GlobalScoreStore::theta(std::size_t link) const {
  if (units_[link] == 0) return 0.0;
  return static_cast<double>(blames_[link]) /
         static_cast<double>(units_[link]);
}

namespace {

/// The one-standard-error margin rule on a raw (units, blames) pair —
/// identical math to the two-argument convicts() and to
/// protocols::ScoreTable's margin mode on the mesh's t = 1 evidence.
bool margin_convicts(std::uint64_t units, std::uint64_t blames,
                     double threshold) {
  if (units == 0) return false;
  const double n = static_cast<double>(units);
  const double b = static_cast<double>(blames) / n;
  const double sd = std::sqrt(std::max(b, 1.0 / n) * (1.0 - b) / n);
  return b - sd > threshold;
}

}  // namespace

bool GlobalScoreStore::convicts(std::size_t link, double threshold) const {
  return margin_convicts(units_[link], blames_[link], threshold);
}

std::vector<std::size_t> GlobalScoreStore::convicted(
    double threshold) const {
  std::vector<std::size_t> out;
  for (std::size_t l = 0; l < units_.size(); ++l) {
    if (convicts(l, threshold)) out.push_back(l);
  }
  return out;
}

bool GlobalScoreStore::convicts(std::size_t link, double threshold,
                                const protocols::BlameSpec& blame,
                                std::size_t rounds_prefix) const {
  using Mode = protocols::BlameSpec::Mode;
  const std::size_t prefix = std::min(rounds_prefix, rounds_);
  const std::uint64_t cum_units = units_through(link, prefix);
  const std::uint64_t cum_blames = blames_through(link, prefix);
  if (cum_units == 0) return false;
  const double cum_theta =
      static_cast<double>(cum_blames) / static_cast<double>(cum_units);

  switch (blame.mode) {
    case Mode::kMargin:
      return margin_convicts(cum_units, cum_blames, threshold);
    case Mode::kPersistent:
      // The chain rule's per-link blame tally maps onto the aggregated
      // blame count: K independent blame observations above the raw
      // threshold convict without waiting out the sd margin.
      return cum_blames >= blame.k && cum_theta > threshold;
    case Mode::kWindowed:
    case Mode::kHybrid: {
      if (margin_convicts(cum_units, cum_blames, threshold)) return true;
      // Rounds are the windows: scan the prefix for flagrant rounds and
      // the longest hot-round streak, same bars as the chain ledger.
      bool flagrant = false;
      std::size_t streak = 0;
      std::size_t max_streak = 0;
      for (std::size_t r = 0; r < prefix; ++r) {
        const std::uint64_t ru = round_units(link, r);
        if (ru == 0) {
          streak = 0;
          continue;
        }
        const double theta_r = static_cast<double>(round_blames(link, r)) /
                               static_cast<double>(ru);
        if (theta_r > protocols::kWindowFlagrantTheta) flagrant = true;
        if (theta_r > protocols::kWindowHighTheta) {
          ++streak;
          max_streak = std::max(max_streak, streak);
        } else {
          streak = 0;
        }
      }
      if (flagrant && cum_theta > threshold) return true;
      if (blame.mode == Mode::kHybrid) {
        return max_streak >= blame.k &&
               cum_theta > protocols::kWindowHighTheta;
      }
      return false;
    }
  }
  return false;
}

std::vector<std::size_t> GlobalScoreStore::convicted(
    double threshold, const protocols::BlameSpec& blame) const {
  std::vector<std::size_t> out;
  for (std::size_t l = 0; l < units_.size(); ++l) {
    if (convicts(l, threshold, blame)) out.push_back(l);
  }
  return out;
}

std::size_t GlobalScoreStore::memory_bytes() const {
  return units_.capacity() * sizeof(std::uint64_t) +
         blames_.capacity() * sizeof(std::uint64_t) +
         paths_.capacity() * sizeof(std::uint64_t) +
         solo_.capacity() * sizeof(std::uint64_t) +
         witness_.capacity() * sizeof(std::uint32_t) +
         win_units_.capacity() * sizeof(std::uint64_t) +
         win_blames_.capacity() * sizeof(std::uint64_t);
}

}  // namespace paai::mesh
