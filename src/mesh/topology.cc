#include "mesh/topology.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/rng.h"
#include "util/specgrammar.h"

namespace paai::mesh {

namespace {

const std::string kPrefix = "Topology";

[[noreturn]] void bad(const std::string& message) {
  util::spec_error(kPrefix, message);
}

/// SplitMix-style route hash: deterministic, seed-separated choice stream
/// for staircase columns / fat-tree (agg, core) selection.
std::uint64_t route_hash(std::uint64_t seed, std::uint64_t a,
                         std::uint64_t b) {
  SplitMix64 sm(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                (b * 0xbf58476d1ce4e5b9ULL));
  return sm.next();
}

}  // namespace

void PathSet::append(const std::vector<std::uint32_t>& link_ids) {
  links_.insert(links_.end(), link_ids.begin(), link_ids.end());
  offsets_.push_back(links_.size());
  max_length_ = std::max(max_length_, link_ids.size());
}

std::size_t PathSet::memory_bytes() const {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         links_.capacity() * sizeof(std::uint32_t);
}

std::uint32_t Topology::add_node() {
  out_links_.emplace_back();
  return static_cast<std::uint32_t>(num_nodes_++);
}

std::uint32_t Topology::add_link(std::uint32_t from, std::uint32_t to) {
  const auto id = static_cast<std::uint32_t>(links_.size());
  links_.push_back(MeshLink{from, to});
  out_links_[from].push_back(id);
  return id;
}

std::optional<std::uint32_t> Topology::find_link(std::uint32_t from,
                                                 std::uint32_t to) const {
  if (from >= num_nodes_) return std::nullopt;
  for (const std::uint32_t id : out_links_[from]) {
    if (links_[id].to == to) return id;
  }
  return std::nullopt;
}

Topology Topology::linear(std::size_t chains, std::size_t hops) {
  if (chains == 0 || hops < 2) {
    bad("linear needs chains >= 1 and hops >= 2");
  }
  Topology t;
  t.kind_ = Kind::kLinear;
  t.p_chains_ = chains;
  t.p_hops_ = hops;
  for (std::size_t c = 0; c < chains; ++c) {
    std::uint32_t prev = t.add_node();
    for (std::size_t j = 0; j < hops; ++j) {
      const std::uint32_t next = t.add_node();
      t.add_link(prev, next);
      prev = next;
    }
  }
  return t;
}

Topology Topology::grid(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols < 3) bad("grid needs rows >= 1 and cols >= 3");
  Topology t;
  t.kind_ = Kind::kGrid;
  t.p_rows_ = rows;
  t.p_cols_ = cols;
  for (std::size_t i = 0; i < rows * cols; ++i) t.add_node();
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  // Right edges first (row-major), then down edges — fixed numbering.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c + 1 < cols; ++c) {
      t.add_link(id(r, c), id(r, c + 1));
    }
  }
  for (std::size_t r = 0; r + 1 < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      t.add_link(id(r, c), id(r + 1, c));
    }
  }
  return t;
}

std::uint32_t Topology::core_id(std::size_t a, std::size_t c) const {
  return static_cast<std::uint32_t>(a * (p_k_ / 2) + c);
}

std::uint32_t Topology::agg_id(std::size_t pod, std::size_t a) const {
  const std::size_t cores = (p_k_ / 2) * (p_k_ / 2);
  return static_cast<std::uint32_t>(cores + pod * p_k_ + a);
}

std::uint32_t Topology::edge_id(std::size_t pod, std::size_t e) const {
  const std::size_t cores = (p_k_ / 2) * (p_k_ / 2);
  return static_cast<std::uint32_t>(cores + pod * p_k_ + p_k_ / 2 + e);
}

Topology Topology::fat_tree(std::size_t k) {
  if (k < 2 || k % 2 != 0) bad("fattree needs an even k >= 2");
  Topology t;
  t.kind_ = Kind::kFatTree;
  t.p_k_ = k;
  const std::size_t half = k / 2;
  // Numbering: (k/2)^2 cores, then per pod k/2 aggs followed by k/2
  // edges. Allocate all nodes up front so the helpers above are valid.
  const std::size_t total = half * half + k * k;
  for (std::size_t i = 0; i < total; ++i) t.add_node();
  for (std::size_t pod = 0; pod < k; ++pod) {
    // Edge <-> agg, full bipartite within the pod, both directions.
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        t.add_link(t.edge_id(pod, e), t.agg_id(pod, a));
        t.add_link(t.agg_id(pod, a), t.edge_id(pod, e));
      }
    }
    // Agg a <-> its k/2 cores [a*(k/2), (a+1)*(k/2)).
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        t.add_link(t.agg_id(pod, a), t.core_id(a, c));
        t.add_link(t.core_id(a, c), t.agg_id(pod, a));
      }
    }
  }
  return t;
}

Topology Topology::chains(std::size_t nodes, std::size_t degree,
                          std::uint64_t seed) {
  if (nodes < 4 || nodes > 65536) bad("chains needs 4 <= nodes <= 65536");
  if (degree == 0 || degree >= nodes) {
    bad("chains needs 1 <= degree < nodes");
  }
  Topology t;
  t.kind_ = Kind::kChains;
  t.p_nodes_ = nodes;
  t.p_degree_ = degree;
  t.p_seed_ = seed;
  for (std::size_t i = 0; i < nodes; ++i) t.add_node();
  // Ring backbone guarantees strong connectivity; extra seeded links make
  // it a mesh. Link numbering: ring first, then per-node extras.
  for (std::size_t i = 0; i < nodes; ++i) {
    t.add_link(static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>((i + 1) % nodes));
  }
  Rng rng(seed ^ 0x70704f4c4f475943ULL);
  for (std::size_t i = 0; i < nodes; ++i) {
    std::size_t added = 0;
    // Bounded rejection: skip self-links and duplicates deterministically.
    for (std::size_t attempt = 0; added < degree && attempt < degree * 16;
         ++attempt) {
      const auto target =
          static_cast<std::uint32_t>(rng.next_below(nodes));
      if (target == i) continue;
      if (t.find_link(static_cast<std::uint32_t>(i), target)) continue;
      t.add_link(static_cast<std::uint32_t>(i), target);
      ++added;
    }
  }
  return t;
}

Topology Topology::parse(std::string_view spec) {
  const auto clauses = util::parse_compact_clauses(spec, kPrefix);
  if (clauses.size() != 1) {
    bad("expected exactly one topology clause, got " +
        std::to_string(clauses.size()));
  }
  const util::SpecClause& c = clauses[0];
  const auto count_key = [&](std::string_view key, std::size_t dflt,
                             std::size_t lo, std::size_t hi) {
    const auto v = c.get(key);
    if (!v) return dflt;
    if (!(*v >= static_cast<double>(lo)) ||
        !(*v <= static_cast<double>(hi)) ||
        *v != static_cast<double>(static_cast<std::size_t>(*v))) {
      bad(std::string(key) + " must be an integer in [" +
          std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
    return static_cast<std::size_t>(*v);
  };
  if (c.kind == "linear") {
    c.check_keys({"hops"}, kPrefix);
    return linear(c.index, count_key("hops", 6, 2, 64));
  }
  if (c.kind == "grid") {
    c.check_keys({"cols"}, kPrefix);
    return grid(c.index, count_key("cols", c.index, 3, 4096));
  }
  if (c.kind == "fattree") {
    c.check_keys({}, kPrefix);
    return fat_tree(c.index);
  }
  if (c.kind == "chains") {
    c.check_keys({"degree", "seed"}, kPrefix);
    const auto seed = c.get("seed");
    return chains(c.index, count_key("degree", 3, 1, 64),
                  seed ? static_cast<std::uint64_t>(*seed) : 1);
  }
  bad("unknown topology kind '" + c.kind +
      "' (expected linear | grid | fattree | chains)");
}

std::string Topology::to_string() const {
  switch (kind_) {
    case Kind::kLinear:
      return "linear@" + std::to_string(p_chains_) +
             ":hops=" + std::to_string(p_hops_);
    case Kind::kGrid:
      return "grid@" + std::to_string(p_rows_) +
             ":cols=" + std::to_string(p_cols_);
    case Kind::kFatTree:
      return "fattree@" + std::to_string(p_k_);
    case Kind::kChains:
      return "chains@" + std::to_string(p_nodes_) +
             ":degree=" + std::to_string(p_degree_) +
             ",seed=" + std::to_string(p_seed_);
  }
  return {};
}

PathSet Topology::enumerate_paths(std::size_t count,
                                  std::uint64_t seed) const {
  PathSet out;
  std::vector<std::uint32_t> route;

  switch (kind_) {
    case Kind::kLinear: {
      // Path i rides chain (i % chains) end to end: the link-disjoint
      // fleet shape (a chain carrying several paths still shares every
      // node between them).
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t chain = i % p_chains_;
        route.clear();
        for (std::size_t j = 0; j < p_hops_; ++j) {
          route.push_back(static_cast<std::uint32_t>(chain * p_hops_ + j));
        }
        out.append(route);
      }
      return out;
    }

    case Kind::kGrid: {
      // Left-column row r0 to right-column row r1 >= r0; the descent
      // column for each row step is a route_hash choice, so many paths
      // funnel through shared interior nodes.
      const std::size_t right_base = p_rows_ * (p_cols_ - 1);
      const auto right_link = [&](std::size_t r, std::size_t c) {
        return static_cast<std::uint32_t>(r * (p_cols_ - 1) + c);
      };
      const auto down_link = [&](std::size_t r, std::size_t c) {
        return static_cast<std::uint32_t>(right_base + r * p_cols_ + c);
      };
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t h = route_hash(seed, i, 0);
        const std::size_t r0 = h % p_rows_;
        const std::size_t r1 = r0 + (h >> 20) % (p_rows_ - r0);
        route.clear();
        std::size_t r = r0, c = 0;
        std::size_t drops_left = r1 - r0;
        while (c + 1 < p_cols_) {
          // Descend when the remaining columns are exactly enough, or
          // when the hash says so (spreads descents over the lattice).
          const std::size_t cols_left = p_cols_ - 1 - c;
          if (drops_left > 0 &&
              route_hash(seed, i, 1000 + c) % cols_left < drops_left) {
            route.push_back(down_link(r, c));
            ++r;
            --drops_left;
            continue;
          }
          route.push_back(right_link(r, c));
          ++c;
        }
        while (drops_left > 0) {
          route.push_back(down_link(r, p_cols_ - 1));
          ++r;
          --drops_left;
        }
        out.append(route);
      }
      return out;
    }

    case Kind::kFatTree: {
      const std::size_t half = p_k_ / 2;
      const std::size_t edges = p_k_ * half;  // edge switches overall
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t h = route_hash(seed, i, 0);
        const std::size_t src = h % edges;
        std::size_t dst = (h >> 16) % edges;
        if (dst == src) dst = (dst + 1) % edges;
        const std::size_t sp = src / half, se = src % half;
        const std::size_t dp = dst / half, de = dst % half;
        const std::size_t a = (h >> 32) % half;
        route.clear();
        if (sp == dp) {
          // Intra-pod: edge -> agg -> edge (2 links).
          route.push_back(*find_link(edge_id(sp, se), agg_id(sp, a)));
          route.push_back(*find_link(agg_id(sp, a), edge_id(dp, de)));
        } else {
          // Inter-pod: edge -> agg -> core -> agg' -> edge' (4 links).
          const std::size_t cc = (h >> 48) % half;
          route.push_back(*find_link(edge_id(sp, se), agg_id(sp, a)));
          route.push_back(*find_link(agg_id(sp, a), core_id(a, cc)));
          route.push_back(*find_link(core_id(a, cc), agg_id(dp, a)));
          route.push_back(*find_link(agg_id(dp, a), edge_id(dp, de)));
        }
        out.append(route);
      }
      return out;
    }

    case Kind::kChains: {
      // Deterministic gateway targets (bounded so the per-target BFS
      // next-hop tables stay small); sources cycle all nodes. Routes are
      // BFS-shortest toward the target, ties broken by link id.
      const std::size_t gateways = std::min<std::size_t>(p_nodes_, 64);
      Rng pick(seed ^ 0x47415445ULL);
      std::vector<std::uint32_t> targets;
      for (std::size_t g = 0; g < gateways; ++g) {
        targets.push_back(
            static_cast<std::uint32_t>(pick.next_below(p_nodes_)));
      }
      // next_link[t][n] = the out-link node n takes toward target t.
      std::vector<std::vector<std::uint32_t>> next_link(
          targets.size(),
          std::vector<std::uint32_t>(p_nodes_, UINT32_MAX));
      // Reverse adjacency once.
      std::vector<std::vector<std::uint32_t>> in_links(p_nodes_);
      for (std::uint32_t id = 0;
           id < static_cast<std::uint32_t>(links_.size()); ++id) {
        in_links[links_[id].to].push_back(id);
      }
      for (std::size_t ti = 0; ti < targets.size(); ++ti) {
        std::deque<std::uint32_t> frontier{targets[ti]};
        std::vector<bool> seen(p_nodes_, false);
        seen[targets[ti]] = true;
        while (!frontier.empty()) {
          const std::uint32_t node = frontier.front();
          frontier.pop_front();
          for (const std::uint32_t id : in_links[node]) {
            const std::uint32_t pred = links_[id].from;
            if (seen[pred]) continue;
            seen[pred] = true;
            next_link[ti][pred] = id;
            frontier.push_back(pred);
          }
        }
      }
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t h = route_hash(seed, i, 2);
        const std::size_t ti = h % targets.size();
        std::uint32_t node =
            static_cast<std::uint32_t>((h >> 24) % p_nodes_);
        if (node == targets[ti]) node = (node + 1) % p_nodes_;
        route.clear();
        while (node != targets[ti]) {
          const std::uint32_t id = next_link[ti][node];
          route.push_back(id);
          node = links_[id].to;
        }
        out.append(route);
      }
      return out;
    }
  }
  return out;
}

}  // namespace paai::mesh
