// Mesh topology: the network graph the fleet of monitored paths routes
// over.
//
// The paper fixes one d-hop path; Corollary 2 reasons about an adversary
// whose z compromised links are spread across a *network* of many paths.
// A Topology is that network: directed links between nodes, generated in
// ISP-style shapes, plus a deterministic path-enumeration API that routes
// many source-destination pairs over shared intermediate nodes — the
// substrate the mesh runner aggregates cross-path evidence on.
//
// Generators (spec grammar shares util/specgrammar with --faults and
// --adversary, so "fattree@8" parses exactly like "ge@2:pb=0.3"):
//
//   linear@C:hops=H    C link-disjoint chains of H links each — the
//                      degenerate shape run_fleet reduces to
//   grid@R:cols=C      R x C lattice, right/down edges; staircase routes
//                      from the left column to the right column share
//                      interior nodes
//   fattree@K          canonical K-ary fat-tree (K pods, (K/2)^2 cores,
//                      K/2 aggregation + K/2 edge switches per pod, links
//                      in both directions); edge switches are the
//                      terminals, routes hash onto an (agg, core) pair
//   chains@N:degree=D,seed=S
//                      ROCKETFUEL-like random mesh: N nodes on a ring
//                      (guaranteeing strong connectivity) plus D seeded
//                      random extra out-links per node; routes follow
//                      BFS shortest paths toward a bounded set of
//                      deterministic gateway targets
//
// Everything here is a pure function of the spec (and its embedded seed):
// the same spec always yields the same node/link numbering and
// enumerate_paths(count, seed) always yields the same PathSet, on any
// machine, for any --jobs value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace paai::mesh {

/// One directed link. The link id (its index in the topology) is the key
/// the GlobalScoreStore aggregates evidence under.
struct MeshLink {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

/// A set of routed paths in compressed-sparse-row form: offsets_[i] ..
/// offsets_[i+1] indexes the flat link-id array. Memory is O(total hops),
/// intentionally separate from the O(links) score state — the store's
/// memory bound is the design constraint, the path list is the workload
/// description.
class PathSet {
 public:
  std::size_t size() const { return offsets_.size() - 1; }
  std::size_t length(std::size_t path) const {
    return static_cast<std::size_t>(offsets_[path + 1] - offsets_[path]);
  }
  const std::uint32_t* links(std::size_t path) const {
    return links_.data() + offsets_[path];
  }
  std::uint64_t total_hops() const { return offsets_.back(); }
  std::size_t max_length() const { return max_length_; }

  void append(const std::vector<std::uint32_t>& link_ids);
  std::size_t memory_bytes() const;

 private:
  std::vector<std::uint64_t> offsets_{0};
  std::vector<std::uint32_t> links_;
  std::size_t max_length_ = 0;
};

class Topology {
 public:
  enum class Kind { kLinear, kGrid, kFatTree, kChains };

  static Topology linear(std::size_t chains, std::size_t hops);
  static Topology grid(std::size_t rows, std::size_t cols);
  static Topology fat_tree(std::size_t k);
  static Topology chains(std::size_t nodes, std::size_t degree,
                         std::uint64_t seed);

  /// Parses a single-clause topology spec ("fattree@8",
  /// "grid@16:cols=16", "linear@4:hops=6", "chains@64:degree=3,seed=7").
  /// Throws std::invalid_argument with a pointed message on anything
  /// malformed — same failure contract as FaultPlan/AdversaryPlan.
  static Topology parse(std::string_view spec);

  /// Canonical spec rendering; parse(to_string()) reproduces the topology.
  std::string to_string() const;

  Kind kind() const { return kind_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_links() const { return links_.size(); }
  const MeshLink& link(std::size_t id) const { return links_[id]; }

  /// Out-link ids of a node, in insertion (deterministic) order.
  const std::vector<std::uint32_t>& out_links(std::uint32_t node) const {
    return out_links_[node];
  }

  std::optional<std::uint32_t> find_link(std::uint32_t from,
                                         std::uint32_t to) const;

  /// Routes `count` source-destination pairs deterministically from
  /// `seed`. Pairs cycle the generator's terminal sets; shared
  /// intermediate nodes are the point — on every non-linear shape many
  /// paths cross the same aggregation/core/lattice nodes.
  PathSet enumerate_paths(std::size_t count, std::uint64_t seed) const;

 private:
  Topology() = default;
  std::uint32_t add_node();
  std::uint32_t add_link(std::uint32_t from, std::uint32_t to);

  Kind kind_ = Kind::kLinear;
  std::size_t num_nodes_ = 0;
  std::vector<MeshLink> links_;
  std::vector<std::vector<std::uint32_t>> out_links_;

  // Generator parameters (for to_string and routing).
  std::size_t p_chains_ = 0, p_hops_ = 0;      // linear
  std::size_t p_rows_ = 0, p_cols_ = 0;        // grid
  std::size_t p_k_ = 0;                        // fat-tree
  std::size_t p_nodes_ = 0, p_degree_ = 0;     // chains
  std::uint64_t p_seed_ = 0;                   // chains

  // Fat-tree node-numbering helpers.
  std::uint32_t core_id(std::size_t a, std::size_t c) const;
  std::uint32_t agg_id(std::size_t pod, std::size_t a) const;
  std::uint32_t edge_id(std::size_t pod, std::size_t e) const;
};

}  // namespace paai::mesh
