// MeshRunner: many monitored paths over one shared topology, convicted
// from the cross-path union of evidence (Corollary 2).
//
// Two engines, one result contract:
//
//   kStat   — the scale engine. Each path is a statistical protocol
//             instance of the full-ack evidence model: every monitored
//             unit crosses the path's links in order and is either
//             delivered or blamed on the first dropping link, so a
//             path's (units, blames) evidence is a chain of Binomial
//             draws — O(path length) RNG work per path per round instead
//             of a discrete-event simulation. This is what makes 1M
//             simultaneous paths on one machine tractable while keeping
//             the estimator identical in expectation to
//             protocols::ScoreTable with t = 1.
//   kPacket — the fidelity engine. Each path runs the full
//             run_experiment() discrete-event simulation (all seven
//             protocols, adaptive adversaries, fault injection) and its
//             per-link theta estimates are projected into rate-preserving
//             (units, blames) evidence. run_fleet() is exactly this
//             engine on a linear topology — the degenerate link-disjoint
//             case.
//
// Both engines fan out over the src/exec pool and are bit-identical for
// any --jobs value: the path range is cut into exec::fixed_tile_count
// tiles (a pure function of the path count, never of jobs), every path's
// randomness comes from its own ShardPlan seed, per-tile evidence shards
// are u64 sums merged in tile order, and the floating-point damage
// partials are folded strictly in tile order by an OrderedReducer.
//
// Time axis: the stat engine splits each path's units into `rounds`
// checkpoint rounds (all paths advance together, as they would in wall
// time). Evidence decomposes additively over rounds, so one parallel
// pass computes per-round deltas and the driver replays the cumulative
// sums afterwards to find each link's first conviction point — the
// detection-units percentiles — without any cross-round barrier.
//
// Adversary/fault mapping (stat engine): a node spec drops on every
// outgoing link of its node at Spec::mean_drop_rate(); benign FaultPlan
// clauses index mesh links/nodes — a ge clause replaces the link's
// natural coin with the chain's stationary loss, set clauses follow
// their schedule across rounds (the nominal horizon is duration_s),
// outages blackhole the node's outgoing links for the overlapping round
// fraction, reorder/dup clauses drop nothing and are ignored. The packet
// engine maps both plans onto each path's local indices and keeps full
// behavioural semantics. See docs/MESH.md.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/spec.h"
#include "exec/telemetry.h"
#include "faults/plan.h"
#include "mesh/score_store.h"
#include "mesh/topology.h"
#include "runner/experiment.h"

namespace paai::mesh {

enum class MeshEngine { kStat, kPacket };

/// Link-level malicious extra drop rate on a topology link (the mesh
/// analog of runner::LinkFault).
struct MeshLinkFault {
  std::size_t link = 0;
  double extra_loss = 0.02;
};

struct MeshConfig {
  Topology topo = Topology::linear(1, 6);
  PathSet paths;
  MeshEngine engine = MeshEngine::kStat;

  /// Monitored units (data packets) each path sends over the horizon.
  std::uint64_t units_per_path = 1000;
  /// Stat engine: checkpoint rounds the horizon is split into (>= 1).
  std::size_t rounds = 8;
  /// Stat engine: nominal wall-clock horizon the FaultPlan schedule maps
  /// onto (the chain benches' 60k packets at 100 pps = 600 s).
  double duration_s = 600.0;

  double natural_loss = 0.01;
  double decision_threshold = 0.02;

  /// Conviction rule applied to the merged cross-path evidence
  /// (protocols::BlameSpec — margin|persistent:K|windowed:W|hybrid:K,W).
  /// The mesh's windows are the checkpoint rounds, so the spec's W is
  /// ignored here; hybrid's streak K counts consecutive hot rounds. The
  /// default (margin) reproduces the historical convicts() verdict
  /// bit-identically.
  protocols::BlameSpec blame;

  /// Compromised nodes (mesh node ids); each drops on all its outgoing
  /// links. Ground truth marks those links malicious.
  adversary::AdversaryPlan adversaries;
  /// Direct link-level faults (mesh link ids); also ground-truth
  /// malicious.
  std::vector<MeshLinkFault> link_faults;
  /// Benign scripted faults (mesh link/node ids); never ground-truth
  /// malicious — the no-false-accusation bar applies under them.
  faults::FaultPlan faults;

  std::uint64_t seed0 = 9000;
  /// Worker threads: 0 = hardware concurrency, 1 = serial; results are
  /// bit-identical for any value.
  std::size_t jobs = 1;

  // --- Packet engine only -------------------------------------------
  /// Template experiment (protocol, rates, params). Per path, its length
  /// is overridden to the path's hop count and its seed to the path's
  /// ShardPlan seed.
  runner::ExperimentConfig packet_base{};
  /// Fleet-compat override: when non-empty (one entry per path), each
  /// path's link_faults are taken VERBATIM (path-local indices) and
  /// packet_base.faults is applied as-is — exactly the historical
  /// run_fleet contract. When empty, faults and adversaries are mapped
  /// from mesh ids to each path's local indices.
  std::vector<std::vector<runner::LinkFault>> packet_path_faults;
  /// Run the clean-template baseline experiment (fleet semantics); the
  /// stat engine instead uses the closed-form (1-rho)^len baseline.
  bool packet_baseline = true;

  /// Optional live telemetry sink (obs/telemetry.h), ticked from each
  /// engine's serialized reducer with cumulative committed units. Purely
  /// observational — verdicts are bit-identical with it attached.
  obs::TelemetrySink* telemetry = nullptr;
};

/// Per-path outcome, packet engine only (the fleet contract; the stat
/// engine keeps no O(paths) result state).
struct MeshPathOutcome {
  double ground_truth_delivery = 0.0;
  double observed_e2e_rate = 0.0;
  std::vector<std::size_t> convicted;  // path-local link positions
  std::vector<std::size_t> malicious;  // path-local, ground truth
  bool all_malicious_convicted = false;
  bool any_honest_convicted = false;
};

struct MeshResult {
  /// Per-link verdict row — everything O(links).
  struct LinkVerdict {
    std::uint64_t units = 0;
    std::uint64_t blames = 0;
    std::uint64_t paths = 0;
    std::uint64_t solo_convictions = 0;
    double theta = 0.0;
    bool convicted = false;
    bool malicious = false;  // ground truth
    /// Cumulative per-path units at the first checkpoint round that
    /// convicted the link (0 = never). The packet engine has a single
    /// checkpoint at the full horizon, so there it is the link's mean
    /// per-path units when convicted.
    std::uint64_t first_convicted_units = 0;
    /// Bounded conviction provenance: smallest contributing path ids.
    std::vector<std::uint32_t> witnesses;
  };

  std::vector<LinkVerdict> links;
  std::vector<std::size_t> convicted;        // link ids
  std::vector<std::size_t> malicious_links;  // ground truth link ids
  std::size_t false_accusations = 0;         // convicted honest links
  std::size_t missed_malicious = 0;          // unconvicted malicious links

  std::size_t paths = 0;
  std::uint64_t total_units = 0;

  /// Sum over paths of max(0, clean-baseline delivery - delivery), in
  /// paths' worth of traffic (the Corollary 2 damage axis).
  double total_damage = 0.0;
  double baseline_delivery = 0.0;

  /// Detection-units percentiles over malicious links that were
  /// convicted (units-per-path scale; 0 when none).
  double detection_units_p50 = 0.0;
  double detection_units_p90 = 0.0;
  double detection_units_p99 = 0.0;

  /// Score-store memory: the aggregated store plus one in-flight shard
  /// per worker — the O(links) quantity the bench reports.
  std::size_t store_bytes = 0;
  std::size_t shard_bytes = 0;

  /// Packet engine only (empty for stat): per-path outcomes in path
  /// order.
  std::vector<MeshPathOutcome> path_outcomes;

  exec::ExecTelemetry exec;
};

MeshResult run_mesh(const MeshConfig& config);

}  // namespace paai::mesh
