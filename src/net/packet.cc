#include "net/packet.h"

#include <cstring>

namespace paai::net {

namespace {

void put_id(WireWriter& w, const PacketId& id) {
  w.raw(ByteView(id.data(), id.size()));
}

bool get_id(WireReader& r, PacketId& id) {
  Bytes tmp;
  if (!r.raw(id.size(), tmp)) return false;
  std::memcpy(id.data(), tmp.data(), id.size());
  return true;
}

bool get_mac(WireReader& r, crypto::Mac& mac) {
  Bytes tmp;
  if (!r.raw(mac.size(), tmp)) return false;
  std::memcpy(mac.data(), tmp.data(), mac.size());
  return true;
}

bool check_type(WireReader& r, PacketType expected) {
  std::uint8_t t = 0;
  return r.u8(t) && t == static_cast<std::uint8_t>(expected);
}

}  // namespace

Bytes DataPacket::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(PacketType::kData));
  w.u64(seq);
  w.u64(timestamp_ns);
  w.u16(payload_size);
  return std::move(w).take();
}

std::optional<DataPacket> DataPacket::decode(ByteView wire) {
  WireReader r(wire);
  if (!check_type(r, PacketType::kData)) return std::nullopt;
  DataPacket p;
  if (!r.u64(p.seq) || !r.u64(p.timestamp_ns) || !r.u16(p.payload_size)) {
    return std::nullopt;
  }
  return p;
}

PacketId DataPacket::id(const crypto::CryptoProvider& crypto) const {
  const Bytes header = encode();
  return packet_id_of(crypto, ByteView(header.data(), header.size()));
}

std::size_t DataPacket::wire_size() const {
  return encode().size() + payload_size;
}

Bytes DestAck::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(PacketType::kDestAck));
  put_id(w, data_id);
  w.raw(ByteView(tag.data(), tag.size()));
  return std::move(w).take();
}

std::optional<DestAck> DestAck::decode(ByteView wire) {
  WireReader r(wire);
  if (!check_type(r, PacketType::kDestAck)) return std::nullopt;
  DestAck a;
  if (!get_id(r, a.data_id) || !get_mac(r, a.tag)) return std::nullopt;
  return a;
}

Bytes Probe::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(PacketType::kProbe));
  put_id(w, data_id);
  w.u64(challenge);
  w.var_bytes(ByteView(auth.data(), auth.size()));
  return std::move(w).take();
}

std::optional<Probe> Probe::decode(ByteView wire) {
  WireReader r(wire);
  if (!check_type(r, PacketType::kProbe)) return std::nullopt;
  Probe p;
  if (!get_id(r, p.data_id) || !r.u64(p.challenge) || !r.var_bytes(p.auth)) {
    return std::nullopt;
  }
  return p;
}

Bytes ReportAck::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(PacketType::kReportAck));
  put_id(w, data_id);
  w.var_bytes(ByteView(report.data(), report.size()));
  return std::move(w).take();
}

std::optional<ReportAck> ReportAck::decode(ByteView wire) {
  WireReader r(wire);
  if (!check_type(r, PacketType::kReportAck)) return std::nullopt;
  ReportAck a;
  if (!get_id(r, a.data_id) || !r.var_bytes(a.report)) return std::nullopt;
  return a;
}

Bytes FlRequest::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(PacketType::kFlRequest));
  w.u64(interval);
  return std::move(w).take();
}

std::optional<FlRequest> FlRequest::decode(ByteView wire) {
  WireReader r(wire);
  if (!check_type(r, PacketType::kFlRequest)) return std::nullopt;
  FlRequest q;
  if (!r.u64(q.interval)) return std::nullopt;
  return q;
}

Bytes FlReport::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(PacketType::kFlReport));
  w.u64(interval);
  w.var_bytes(ByteView(report.data(), report.size()));
  return std::move(w).take();
}

std::optional<FlReport> FlReport::decode(ByteView wire) {
  WireReader r(wire);
  if (!check_type(r, PacketType::kFlReport)) return std::nullopt;
  FlReport p;
  if (!r.u64(p.interval) || !r.var_bytes(p.report)) return std::nullopt;
  return p;
}

std::optional<PacketType> peek_type(ByteView wire) {
  if (wire.empty()) return std::nullopt;
  const std::uint8_t t = wire[0];
  if (t < static_cast<std::uint8_t>(PacketType::kData) ||
      t > static_cast<std::uint8_t>(PacketType::kFlRequest)) {
    return std::nullopt;
  }
  return static_cast<PacketType>(t);
}

PacketId packet_id_of(const crypto::CryptoProvider& crypto, ByteView message) {
  const auto digest = crypto.hash(message);
  PacketId id;
  std::memcpy(id.data(), digest.data(), id.size());
  return id;
}

std::string id_prefix(const PacketId& id) {
  return to_hex(ByteView(id.data(), 3)) + "..";
}

}  // namespace paai::net
