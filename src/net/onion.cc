#include "net/onion.h"

#include "util/wire.h"

namespace paai::net {

namespace {

/// MAC input is index || report || inner bytes — the serialized equivalent
/// of [i || R_i || A_{i+1}]_{K_i}.
crypto::Mac layer_mac(const crypto::CryptoProvider& crypto,
                      const crypto::Key& key, std::uint8_t node_index,
                      ByteView report, ByteView inner) {
  WireWriter mi;
  mi.u8(node_index);
  mi.var_bytes(report);
  mi.raw(inner);
  const Bytes& buf = mi.data();
  return crypto.mac(key, ByteView(buf.data(), buf.size()));
}

}  // namespace

Bytes onion_originate(const crypto::CryptoProvider& crypto,
                      const crypto::Key& key, std::uint8_t node_index,
                      ByteView local_report) {
  return onion_wrap(crypto, key, node_index, local_report, ByteView{});
}

Bytes onion_wrap(const crypto::CryptoProvider& crypto, const crypto::Key& key,
                 std::uint8_t node_index, ByteView local_report,
                 ByteView inner) {
  const crypto::Mac mac =
      layer_mac(crypto, key, node_index, local_report, inner);
  WireWriter w;
  w.u8(node_index);
  w.var_bytes(local_report);
  w.raw(ByteView(mac.data(), mac.size()));
  w.raw(inner);
  return std::move(w).take();
}

OnionVerifyResult onion_verify(
    const crypto::CryptoProvider& crypto, const std::vector<crypto::Key>& keys,
    std::size_t path_length, ByteView serialized,
    const std::function<bool(std::uint8_t, ByteView)>& report_ok,
    std::uint8_t first_index) {
  OnionVerifyResult result;
  std::size_t offset = 0;
  std::uint8_t expected = first_index;

  while (offset < serialized.size()) {
    WireReader r(serialized.subspan(offset));
    std::uint8_t index = 0;
    Bytes report;
    Bytes mac_bytes;
    if (!r.u8(index) || !r.var_bytes(report) ||
        !r.raw(crypto::kMacSize, mac_bytes)) {
      return result;  // truncated / malformed layer: stop at last valid
    }
    if (index != expected || index > path_length) return result;

    const std::size_t header_len = 1 + 2 + report.size() + crypto::kMacSize;
    const ByteView inner = serialized.subspan(offset + header_len);
    const crypto::Mac computed =
        layer_mac(crypto, keys[index], index,
                  ByteView(report.data(), report.size()), inner);
    if (!ct_equal(ByteView(computed.data(), computed.size()),
                  ByteView(mac_bytes.data(), mac_bytes.size()))) {
      return result;
    }
    if (report_ok && !report_ok(index, ByteView(report.data(), report.size()))) {
      return result;
    }

    ++result.valid_layers;
    result.origin = index;
    offset += header_len;
    ++expected;
  }
  result.complete = result.valid_layers > 0;
  return result;
}

}  // namespace paai::net
