// Wire formats for every packet the AAI protocols exchange.
//
// §3.3: for a data packet m, H(m) is the packet identifier; acks have the
// structure a_i = <H(m) || A_i^m>. We give each packet an explicit
// big-endian wire encoding (bounds-checked on decode) so that a node only
// ever acts on bytes it could actually have parsed off a link. Data
// payloads are represented by their *size* (the simulator does not need the
// application bytes), but all protocol-relevant fields are real.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/provider.h"
#include "util/bytes.h"
#include "util/wire.h"

namespace paai::net {

/// Truncated hash of the data packet header — the identifier H(m).
using PacketId = std::array<std::uint8_t, 16>;

enum class PacketType : std::uint8_t {
  kData = 1,          // m = <data || timestamp>
  kDestAck = 2,       // a_d = [H(m)]_{K_d} from the destination
  kProbe = 3,         // ack request c (PAAI-1: H(m); PAAI-2: <H(m) || Z>)
  kReportAck = 4,     // a_i = <H(m) || A_i> carrying an onion/encrypted report
  kFlReport = 5,      // statistical-FL interval report (onion of counters)
  kFlRequest = 6,     // statistical-FL end-of-interval report request
};

/// Header of a data packet m = <data || timestamp>. The identifier is the
/// hash of this header; `payload_size` stands in for the actual data bytes.
struct DataPacket {
  std::uint64_t seq = 0;            // source-assigned sequence number
  std::uint64_t timestamp_ns = 0;   // send time (loose clock sync assumed)
  std::uint16_t payload_size = 0;   // simulated payload length in bytes

  Bytes encode() const;
  static std::optional<DataPacket> decode(ByteView wire);

  /// H(m): truncated hash of the encoded header.
  PacketId id(const crypto::CryptoProvider& crypto) const;

  /// Total on-wire size including the simulated payload.
  std::size_t wire_size() const;
};

/// Destination's per-packet ack in the full-ack scheme and PAAI-2 phase 1.
struct DestAck {
  PacketId data_id{};
  crypto::Mac tag{};  // [H(m)]_{K_d}

  Bytes encode() const;
  static std::optional<DestAck> decode(ByteView wire);
  std::size_t wire_size() const { return 1 + data_id.size() + tag.size(); }
};

/// Probe (ack request). PAAI-1 probes carry only H(m); PAAI-2 probes add
/// the random challenge Z that drives the selection predicates. `auth` is
/// the optional footnote-7 MAC chain (one 8-byte tag per node, node i's at
/// offset (i-1)*8) that stops bogus probes from draining relay resources.
struct Probe {
  PacketId data_id{};
  std::uint64_t challenge = 0;  // Z; 0 (unused) in PAAI-1 / full-ack
  Bytes auth;                   // empty when probe authentication is off

  Bytes encode() const;
  static std::optional<Probe> decode(ByteView wire);
  std::size_t wire_size() const {
    return 1 + data_id.size() + 8 + 2 + auth.size();
  }
};

/// Ack carrying a report: a_i = <H(m) || A_i>. `report` is either a
/// serialized onion report (full-ack, PAAI-1, statistical FL) or a
/// fixed-size layered ciphertext (PAAI-2).
struct ReportAck {
  PacketId data_id{};
  Bytes report;

  Bytes encode() const;
  static std::optional<ReportAck> decode(ByteView wire);
  std::size_t wire_size() const { return 1 + data_id.size() + 2 + report.size(); }
};

/// Statistical-FL end-of-interval request, identified by interval number.
struct FlRequest {
  std::uint64_t interval = 0;

  Bytes encode() const;
  static std::optional<FlRequest> decode(ByteView wire);
  std::size_t wire_size() const { return 1 + 8; }
};

/// Statistical-FL interval report (an onion report over per-node counters).
struct FlReport {
  std::uint64_t interval = 0;
  Bytes report;

  Bytes encode() const;
  static std::optional<FlReport> decode(ByteView wire);
  std::size_t wire_size() const { return 1 + 8 + 2 + report.size(); }
};

/// Reads the type tag without consuming the buffer.
std::optional<PacketType> peek_type(ByteView wire);

/// Computes a PacketId from an arbitrary message (truncated hash).
PacketId packet_id_of(const crypto::CryptoProvider& crypto, ByteView message);

/// Renders an id prefix for diagnostics ("3fa9c1..").
std::string id_prefix(const PacketId& id);

}  // namespace paai::net
