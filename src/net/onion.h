// Onion reports (§3.3).
//
// When every intermediate node must return an authenticated local report,
// reports nest:  A_d = [d || R_d]_{K_d},  A_i = [i || R_i || A_{i+1}]_{K_i}.
// Each layer's MAC covers the node's index, its local report, and the
// entire serialized inner onion, so a downstream node (or an adversary on
// the reverse path) cannot strip, reorder, or substitute layers without
// invalidating the first honest layer above it — that is what lets the
// source blame the *first* broken hop and no other (§4 "Security").
//
// Wire format: a sequence of layers, outermost (closest to S) first:
//   layer := node_index (u8) || report_len (u16) || report || mac (8B)
// Wrapping prepends one layer; the inner bytes are included in the MAC but
// never re-encoded, so wrap is O(layer size).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "crypto/provider.h"
#include "util/bytes.h"

namespace paai::net {

/// Creates a single-layer onion: A_i = [i || R_i]_{K_i}. Used by the node
/// that originates a report (the destination, or the node whose downstream
/// wait-timer expired).
Bytes onion_originate(const crypto::CryptoProvider& crypto,
                      const crypto::Key& key, std::uint8_t node_index,
                      ByteView local_report);

/// Wraps an existing serialized onion with one more layer:
/// A_i = [i || R_i || A_{i+1}]_{K_i}.
Bytes onion_wrap(const crypto::CryptoProvider& crypto, const crypto::Key& key,
                 std::uint8_t node_index, ByteView local_report,
                 ByteView inner);

struct OnionVerifyResult {
  /// Number of consecutive valid layers starting from the outermost. A
  /// layer is valid iff its node index equals the expected next index, its
  /// MAC verifies under that node's key, and the caller's report check
  /// accepts its local report.
  std::size_t valid_layers = 0;
  /// True iff every byte of the onion was consumed by valid layers.
  bool complete = false;
  /// Node index of the innermost valid layer (the report's originator);
  /// meaningful only when valid_layers > 0.
  std::uint8_t origin = 0;
};

/// Checks a received onion against per-node keys. `keys[i]` must hold K_i
/// for i in [1, d]; layers are expected to carry indices first_index,
/// first_index+1, ... . `report_ok(i, R_i)` validates layer contents.
OnionVerifyResult onion_verify(
    const crypto::CryptoProvider& crypto, const std::vector<crypto::Key>& keys,
    std::size_t path_length, ByteView serialized,
    const std::function<bool(std::uint8_t, ByteView)>& report_ok,
    std::uint8_t first_index = 1);

/// Size in bytes one layer adds for a report of the given length.
constexpr std::size_t onion_layer_overhead(std::size_t report_len) {
  return 1 + 2 + report_len + crypto::kMacSize;
}

}  // namespace paai::net
