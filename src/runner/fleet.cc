#include "runner/fleet.h"

#include <algorithm>

#include "exec/parallel_for.h"
#include "exec/shard_plan.h"

namespace paai::runner {

FleetResult run_fleet(const FleetConfig& config) {
  FleetResult result;

  // Clean baseline: same template, no faults.
  {
    ExperimentConfig clean = config.base;
    clean.link_faults.clear();
    clean.adversaries.clear();
    clean.path.seed = config.seed0;
    result.baseline_delivery = run_experiment(clean).ground_truth_delivery;
  }

  // Paths are link-disjoint and independently seeded, so the simulations
  // compose exactly; run them across the pool. The damage sum is reduced
  // in path order (OrderedReducer) so floating-point accumulation — and
  // therefore the result — is bit-identical for any jobs value.
  const exec::ShardPlan plan(config.seed0 + 1, config.paths.size());
  result.paths.reserve(config.paths.size());

  auto fold = [&](std::size_t, FleetResult::PathOutcome&& outcome) {
    result.total_damage +=
        std::max(0.0, result.baseline_delivery - outcome.ground_truth_delivery);
    result.paths.push_back(std::move(outcome));
  };
  exec::OrderedReducer<FleetResult::PathOutcome> reducer(config.paths.size(),
                                                         fold);

  result.exec = exec::parallel_for_each(
      config.paths.size(),
      [&](std::size_t i) {
        ExperimentConfig cfg = config.base;
        cfg.link_faults = config.paths[i];
        cfg.path.seed = plan.seed(i);
        const ExperimentResult run = run_experiment(cfg);

        FleetResult::PathOutcome outcome;
        outcome.ground_truth_delivery = run.ground_truth_delivery;
        outcome.observed_e2e_rate = run.observed_e2e_rate;
        outcome.convicted = run.final_convicted;
        for (const auto& fault : config.paths[i]) {
          outcome.malicious.push_back(fault.link);
        }
        std::sort(outcome.malicious.begin(), outcome.malicious.end());

        outcome.all_malicious_convicted = true;
        for (const std::size_t link : outcome.malicious) {
          if (std::find(outcome.convicted.begin(), outcome.convicted.end(),
                        link) == outcome.convicted.end()) {
            outcome.all_malicious_convicted = false;
          }
        }
        for (const std::size_t link : outcome.convicted) {
          if (std::find(outcome.malicious.begin(), outcome.malicious.end(),
                        link) == outcome.malicious.end()) {
            outcome.any_honest_convicted = true;
          }
        }
        reducer.commit(i, std::move(outcome));
      },
      config.jobs);
  return result;
}

}  // namespace paai::runner
