#include "runner/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "exec/parallel_for.h"
#include "exec/shard_plan.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace paai::runner {

std::vector<std::uint64_t> log_checkpoints(std::uint64_t lo, std::uint64_t hi,
                                           std::size_t count) {
  std::vector<std::uint64_t> out;
  if (lo == 0) lo = 1;
  if (hi < lo) hi = lo;
  const double l0 = std::log(static_cast<double>(lo));
  const double l1 = std::log(static_cast<double>(hi));
  for (std::size_t i = 0; i < count; ++i) {
    const double f =
        count == 1 ? 1.0
                   : static_cast<double>(i) / static_cast<double>(count - 1);
    out.push_back(static_cast<std::uint64_t>(
        std::llround(std::exp(l0 + (l1 - l0) * f))));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Classifies one run's checkpoint conviction sets against ground truth.
struct RunOutcome {
  std::vector<bool> fp;  // per checkpoint
  std::vector<bool> fn;
};

RunOutcome classify(const ExperimentResult& result,
                    const std::vector<std::size_t>& malicious) {
  RunOutcome out;
  out.fp.reserve(result.checkpoints.size());
  out.fn.reserve(result.checkpoints.size());
  for (const auto& cp : result.checkpoints) {
    bool any_fp = false;
    for (const std::size_t link : cp.convicted) {
      if (std::find(malicious.begin(), malicious.end(), link) ==
          malicious.end()) {
        any_fp = true;
        break;
      }
    }
    bool any_fn = false;
    for (const std::size_t link : malicious) {
      if (std::find(cp.convicted.begin(), cp.convicted.end(), link) ==
          cp.convicted.end()) {
        any_fn = true;
        break;
      }
    }
    out.fp.push_back(any_fp);
    out.fn.push_back(any_fn);
  }
  return out;
}

}  // namespace

MonteCarloResult run_monte_carlo(const MonteCarloConfig& config) {
  MonteCarloResult result;
  result.runs = config.runs;

  const std::size_t num_cps = config.base.checkpoints.size();
  std::vector<std::uint64_t> fp_count(num_cps, 0);
  std::vector<std::uint64_t> fn_count(num_cps, 0);

  const std::size_t d = config.base.path.length;
  result.final_thetas.resize(d);
  result.true_link_loss.resize(d);
  if (config.storage_bins > 0) {
    for (std::size_t i = 0; i <= d; ++i) {
      result.storage_grids.emplace_back(config.storage_horizon_seconds,
                                        config.storage_bins);
    }
  }

  // Fan the runs out across the pool. Seeds are fixed up front by the
  // ShardPlan, and per-run results are folded into the aggregate strictly
  // in run order by the OrderedReducer, so the aggregate is bit-identical
  // to the serial loop for any jobs value.
  const exec::ShardPlan plan(config.seed0, config.runs);

  // Driver-level observability. Handles resolve to no-ops while the
  // registry is disabled; they are never read back into the result, so the
  // aggregate stays bit-identical for any jobs value.
  auto& reg = obs::MetricsRegistry::global();
  const obs::Counter obs_runs = reg.counter("runner.runs");
  const obs::Histogram obs_run_wall = reg.histogram("runner.run_wall_ns");
  const obs::Histogram obs_detection =
      reg.histogram("runner.detection_packets");

  auto fold = [&](std::size_t, ExperimentResult&& run) {
    result.total_events += run.events_processed;

    const RunOutcome outcome = classify(run, config.malicious_links);
    for (std::size_t i = 0; i < num_cps && i < outcome.fp.size(); ++i) {
      if (outcome.fp[i]) ++fp_count[i];
      if (outcome.fn[i]) ++fn_count[i];
    }

    // Per-run detection point: the first checkpoint that is correct and
    // stays correct through the end of the run.
    std::size_t first_stable = outcome.fp.size();
    for (std::size_t i = outcome.fp.size(); i-- > 0;) {
      if (outcome.fp[i] || outcome.fn[i]) break;
      first_stable = i;
    }
    if (first_stable < run.checkpoints.size()) {
      const double packets =
          static_cast<double>(run.checkpoints[first_stable].packets);
      result.per_run_detection_packets.add(packets);
      result.detection_samples.push_back(packets);
      obs_detection.observe(run.checkpoints[first_stable].packets);
    }

    result.final_e2e_rate.add(run.observed_e2e_rate);
    result.overhead_bytes_ratio.add(run.overhead_bytes_ratio);
    result.overhead_packets_ratio.add(run.overhead_packets_ratio);
    for (std::size_t i = 0; i < d && i < run.final_thetas.size(); ++i) {
      result.final_thetas[i].add(run.final_thetas[i]);
    }
    for (std::size_t i = 0; i < d && i < run.true_link_loss.size(); ++i) {
      result.true_link_loss[i].add(run.true_link_loss[i]);
    }
    if (!result.storage_grids.empty()) {
      for (std::size_t i = 0; i <= d && i < run.storage.size(); ++i) {
        result.storage_grids[i].accumulate(run.storage[i]);
      }
    }
  };
  // Telemetry ticks piggyback on the serialized progress callback so a
  // multi-threaded fan-out still produces a monotone sample stream.
  std::function<void(std::size_t)> progress = config.progress;
  if (config.telemetry != nullptr) {
    obs::TelemetrySink* const sink = config.telemetry;
    const std::function<void(std::size_t)> user = config.progress;
    progress = [sink, user](std::size_t completed) {
      sink->tick(completed);
      if (user) user(completed);
    };
  }
  exec::OrderedReducer<ExperimentResult> reducer(config.runs, fold, progress);

  result.exec = exec::parallel_for_each(
      config.runs,
      [&](std::size_t r) {
        ExperimentConfig cfg = config.base;
        cfg.path.seed = plan.seed(r);
        cfg.path.trace = config.trace;
        cfg.path.trace_track = static_cast<std::uint32_t>(r);
        // Forensics attach to run 0 only: single writer, and the stream
        // is bit-identical for any jobs value.
        cfg.path.events = (r == 0) ? config.events : nullptr;
        obs_runs.add();
        const obs::ScopedTimer timer(obs_run_wall);
        reducer.commit(r, run_experiment(cfg));
      },
      config.jobs);

  const double n = static_cast<double>(config.runs);
  for (std::size_t i = 0; i < num_cps; ++i) {
    CurvePoint pt;
    pt.packets = config.base.checkpoints[i];
    pt.fp = static_cast<double>(fp_count[i]) / n;
    pt.fn = static_cast<double>(fn_count[i]) / n;
    result.curve.push_back(pt);
    if (!result.detection_packets && pt.fp <= config.sigma &&
        pt.fn <= config.sigma) {
      result.detection_packets = pt.packets;
    }
  }
  // Convergence timeline: percentile packets-to-detection over the runs
  // that stabilized on the exact malicious set.
  result.detection_p50 = quantile(result.detection_samples, 0.50);
  result.detection_p90 = quantile(result.detection_samples, 0.90);
  result.detection_p99 = quantile(result.detection_samples, 0.99);
  return result;
}

}  // namespace paai::runner
