// Batch experiment as a stream producer.
//
// The streaming engine (src/stream) consumes the forensic JSONL event
// stream; this adapter re-expresses the batch path as a producer of that
// stream: run one experiment with an EventLog attached, then emit the
// merged log as JSONL. The contract that makes `paai replay` bit-identical
// to the batch run is *drop-freeness*: every score-relevant event is
// logged by the source (node 0) in exact mutation order, so as long as
// node 0's ring never overflows, the exported stream contains the complete
// mutation history of the scoring state. run_experiment_to_stream() sizes
// the ring for that by default and reports the drop counter so callers can
// hard-fail when a caller-chosen capacity turned out too small.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "runner/experiment.h"

namespace paai::runner {

struct StreamProduceResult {
  ExperimentResult result;
  std::uint64_t events_recorded = 0;
  /// Ring-overflow casualties. Must be 0 for the replay-equivalence
  /// guarantee to hold; nonzero means the caller's `events_cap` was too
  /// small for the run.
  std::uint64_t events_dropped = 0;
};

/// Runs `config` with a forensic event log attached (replacing any
/// `config.path.events` the caller set) and writes the merged stream as
/// JSONL to `os`. `events_cap` is the per-node ring capacity; 0 picks a
/// capacity generous enough that no event is dropped (≈16 events per
/// packet per node, floored at 4096).
StreamProduceResult run_experiment_to_stream(ExperimentConfig config,
                                             std::ostream& os,
                                             std::size_t events_cap = 0);

}  // namespace paai::runner
