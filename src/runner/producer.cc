#include "runner/producer.h"

#include <algorithm>
#include <ostream>

#include "obs/events.h"

namespace paai::runner {

StreamProduceResult run_experiment_to_stream(ExperimentConfig config,
                                             std::ostream& os,
                                             std::size_t events_cap) {
  if (events_cap == 0) {
    // The busiest ring is the source's: per data packet it sees the
    // protocol decisions (send, sample, probe, ack, onion, score — up to
    // ~8) plus its own wire events. 16/packet with a floor comfortably
    // bounds every protocol in the suite.
    events_cap = std::max<std::size_t>(
        4096, static_cast<std::size_t>(config.params.total_packets) * 16);
  }
  obs::EventLog log(events_cap);
  config.path.events = &log;

  StreamProduceResult out;
  out.result = run_experiment(config);
  out.events_recorded = log.recorded();
  out.events_dropped = log.dropped();
  log.write_jsonl(os);
  return out;
}

}  // namespace paai::runner
