#include "runner/experiment.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "crypto/keystore.h"
#include "faults/injector.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "protocols/factory.h"
#include "sim/simulator.h"

namespace paai::runner {

namespace {

/// Bridges the live FaultInjector to the adversary observation channel.
/// The runner is the only layer that sees both sides, which keeps
/// paai_adversary free of any dependency on paai_faults.
class InjectorCover final : public adversary::FaultObservation {
 public:
  explicit InjectorCover(const faults::FaultInjector* injector)
      : injector_(injector) {}

  bool cover_active(sim::SimTime now) const override {
    return injector_ != nullptr && injector_->cover_active(now);
  }

 private:
  const faults::FaultInjector* injector_;
};

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Simulator simulator;

  // Provision the wait-timer cascade for the fault schedule: latency
  // retunes above the configured maximum and reordering delay widen the
  // RTT bounds (and nothing else — link construction and RNG streams are
  // untouched, so an empty plan leaves runs bit-identical).
  sim::PathConfig path_config = config.path;
  if (!config.faults.empty()) {
    path_config.extra_rtt_slack_ms +=
        std::max(0.0,
                 config.faults.max_latency_ms() - path_config.max_latency_ms) +
        config.faults.max_extra_delay_ms();
  }
  sim::PathNetwork net(simulator, path_config);

  // Forensic event log (optional, source-node attributed). Strictly
  // observational: never read back into the result.
  obs::EventLog* const events = path_config.events;
  if (events != nullptr) {
    events->append(0, obs::EventKind::kRunStart, /*ts_ns=*/0, /*link=*/-1,
                   config.params.total_packets, config.path.seed,
                   config.decision_threshold);
    // Stream self-description: everything src/stream needs to rebuild the
    // scoring state from the log alone (protocol, path length, blame-mode
    // code, threshold) — see stream::ScoreEngine.
    events->append(0, obs::EventKind::kRunConfig, /*ts_ns=*/0,
                   config.params.blame.encode32(),
                   static_cast<std::uint64_t>(config.protocol),
                   static_cast<std::uint64_t>(config.path.length),
                   config.decision_threshold);
  }

  const auto provider = crypto::make_crypto(config.crypto);
  const crypto::KeyStore keys(crypto::test_master_key(config.path.seed),
                              net.length());
  const protocols::ProtocolContext ctx(*provider, keys, net, config.params);

  // Link-level faults: compose the malicious rate with the natural loss.
  for (const auto& fault : config.link_faults) {
    if (fault.link < net.length()) {
      net.link(fault.link)
          .set_loss_rate(1.0 - (1.0 - config.path.natural_loss) *
                                   (1.0 - fault.extra_loss));
    }
  }

  // Scripted benign faults come after link_faults so a Gilbert-Elliott
  // clause replaces whatever loss rate (natural or composed) its link
  // currently has — and before the strategies, whose observation channel
  // may watch the injector's fault windows. (Neither strategy
  // construction nor the loss-rate pokes above schedule simulator events,
  // so this ordering leaves the event sequence — and thus every run
  // without adaptive adversaries — bit-identical.)
  std::optional<faults::FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(simulator, net, config.faults);
  }
  const InjectorCover cover(injector ? &*injector : nullptr);

  // Build strategies; index them by node. Every strategy gets its own
  // forked Rng stream plus the public protocol parameters (§5: the
  // adversary knows them all) and the ambient fault-cover signal.
  adversary::Environment env;
  env.decision_threshold = config.decision_threshold;
  env.natural_loss = config.path.natural_loss;
  env.cover = injector ? &cover : nullptr;
  Rng adv_rng(config.path.seed ^ 0xadull << 48);
  std::vector<std::unique_ptr<adversary::Strategy>> owned;
  std::vector<adversary::Strategy*> by_node(net.length() + 1, nullptr);
  for (const auto& spec : config.adversaries) {
    owned.push_back(
        adversary::make_strategy(spec, env, adv_rng.fork(owned.size() + 1)));
    if (spec.node >= 1 && spec.node < net.length()) {
      by_node[spec.node] = owned.back().get();
    }
  }

  protocols::SourceHandle* source =
      protocols::install_protocol(config.protocol, ctx, net, by_node);
  net.start_agents();

  const auto send_period = static_cast<sim::SimDuration>(
      static_cast<double>(sim::kSecond) / config.params.send_rate_pps);
  const sim::SimTime settle = 4 * net.path_rtt_bound();
  const sim::SimTime end_time =
      static_cast<sim::SimTime>(config.params.total_packets + 1) *
          send_period +
      settle;

  ExperimentResult result;

  // Conviction snapshots: packet N has settled ~3 RTTs after it was sent.
  for (const std::uint64_t n : config.checkpoints) {
    const sim::SimTime t =
        static_cast<sim::SimTime>(n) * send_period + 3 * net.path_rtt_bound();
    simulator.at(t, [&result, &simulator, source, n, &config, events] {
      std::vector<std::size_t> convicted =
          source->convicted(config.decision_threshold);
      if (events != nullptr) {
        const auto thetas = source->thetas();
        for (const std::size_t link : convicted) {
          events->append(0, obs::EventKind::kConviction, simulator.now(),
                         static_cast<std::int32_t>(link), /*a=*/n,
                         source->observations(),
                         link < thetas.size() ? thetas[link] : 0.0);
        }
      }
      result.checkpoints.push_back(CheckpointResult{n, std::move(convicted)});
    });
  }

  // Storage sampling across all nodes.
  if (config.storage_sample_period > 0) {
    result.storage.resize(net.length() + 1);
    const auto period = config.storage_sample_period;
    // Recursive sampling event.
    struct Sampler {
      sim::Simulator& simulator;
      sim::PathNetwork& net;
      ExperimentResult& result;
      sim::SimDuration period;
      sim::SimTime end;

      void operator()() {
        const double t = sim::to_seconds(simulator.now());
        for (std::size_t i = 0; i <= net.length(); ++i) {
          result.storage[i].add(
              t, static_cast<double>(net.node(i).storage().current()));
        }
        if (simulator.now() + period <= end) {
          simulator.after(period, *this);
        }
      }
    };
    simulator.after(period,
                    Sampler{simulator, net, result, period, end_time});
  }

  // Live telemetry: a recursive sampler event ticks the sink with the
  // source's packet count as the unit axis and the simulated clock as the
  // virtual timestamp. The sampler is strictly observational — it reads
  // the source, never mutates anything, and the simulator's tie-break seq
  // means an extra event cannot reorder protocol events relative to each
  // other. Its own fire count is subtracted from events_processed below
  // so results stay bit-identical with telemetry on.
  std::uint64_t telemetry_fires = 0;
  if (config.telemetry != nullptr) {
    const sim::SimDuration telemetry_period =
        send_period *
        static_cast<sim::SimDuration>(
            std::max<std::uint64_t>(1, config.telemetry->every()));
    struct TelemetrySampler {
      sim::Simulator& simulator;
      obs::TelemetrySink& sink;
      protocols::SourceHandle& source;
      std::uint64_t& fires;
      sim::SimDuration period;
      sim::SimTime end;

      void operator()() {
        ++fires;
        sink.sample_now(source.packets_sent(),
                        static_cast<std::uint64_t>(simulator.now()));
        if (simulator.now() + period <= end) {
          simulator.after(period, *this);
        }
      }
    };
    simulator.after(telemetry_period,
                    TelemetrySampler{simulator, *config.telemetry, *source,
                                     telemetry_fires, telemetry_period,
                                     end_time});
  }

  // Adversary bypass ("w/ AAI").
  if (config.bypass_after_packets > 0) {
    const sim::SimTime t =
        static_cast<sim::SimTime>(config.bypass_after_packets) * send_period;
    simulator.at(t, [&owned, &net, &config] {
      for (auto& s : owned) s->set_active(false);
      for (const auto& fault : config.link_faults) {
        if (fault.link < net.length()) {
          net.link(fault.link).set_loss_rate(config.path.natural_loss);
        }
      }
    });
  }

  simulator.run_until(end_time);
  simulator.run();  // drain remaining settled timers
  if (injector) injector->finish();

  result.final_thetas = source->thetas();
  result.final_convicted = source->convicted(config.decision_threshold);
  result.observed_e2e_rate = source->observed_e2e_rate();
  result.observations = source->observations();
  result.packets_sent = source->packets_sent();
  result.overhead_bytes_ratio = net.counters().overhead_ratio();
  result.overhead_packets_ratio = net.counters().control_packets_per_data();
  result.data_link_crossings =
      net.counters().by_type(net::PacketType::kData).packets;
  if (result.packets_sent > 0) {
    const std::size_t last = net.length() - 1;
    result.ground_truth_delivery =
        static_cast<double>(net.counters().data_tx(last) -
                            net.counters().data_drops(last)) /
        static_cast<double>(result.packets_sent);
  }
  // Ground-truth per-link loss with the paper's attribution: a packet that
  // reaches F_i but never leaves it (relay-strategy drop, withhold, crash
  // blackhole) is charged to F_i's *downstream* link l_i — §8.1 tactic
  // (b), "the malicious drops will directly increase l_4's drop count".
  // Link-level counters alone cannot see relay drops (the packet is never
  // transmitted), so the rate is computed from the arrival/departure
  // balance of each hop instead. Duplication can push departures above
  // arrivals; the rate clamps at 0.
  result.true_link_loss.reserve(net.length());
  for (std::size_t i = 0; i < net.length(); ++i) {
    const std::uint64_t arrived =
        i == 0 ? result.packets_sent
                : net.counters().data_tx(i - 1) -
                      net.counters().data_drops(i - 1);
    const std::uint64_t departed =
        net.counters().data_tx(i) - net.counters().data_drops(i);
    result.true_link_loss.push_back(
        arrived > 0 && arrived > departed
            ? static_cast<double>(arrived - departed) /
                  static_cast<double>(arrived)
            : 0.0);
  }
  result.events_processed = simulator.events_processed() - telemetry_fires;

  if (events != nullptr) {
    // Final verdict: one conviction event per convicted link, then the
    // run-end marker that closes the forensic stream.
    for (const std::size_t link : result.final_convicted) {
      events->append(0, obs::EventKind::kConviction, simulator.now(),
                     static_cast<std::int32_t>(link), result.packets_sent,
                     result.observations,
                     link < result.final_thetas.size()
                         ? result.final_thetas[link]
                         : 0.0);
    }
    events->append(0, obs::EventKind::kRunEnd, simulator.now(), /*link=*/-1,
                   result.packets_sent, result.observations);
  }

  // Observability epilogue (no-ops while the registry is disabled; never
  // read back into the result). Gauge high-water across nodes gives the
  // worst per-node storage the run ever saw.
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i <= net.length(); ++i) {
    peak = std::max(peak, net.node(i).storage().peak());
  }
  obs::MetricsRegistry::global()
      .gauge("sim.storage.peak_entries")
      .set(static_cast<std::int64_t>(peak));
  if (config.path.trace != nullptr) {
    config.path.trace->complete(
        "run", "runner", /*ts_us=*/0,
        simulator.now() / sim::kMicrosecond, config.path.trace_track,
        static_cast<std::int64_t>(result.events_processed));
  }
  return result;
}

ExperimentConfig paper_config(protocols::ProtocolKind protocol,
                              std::uint64_t total_packets,
                              std::uint64_t seed) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.path.length = 6;
  config.path.natural_loss = 0.01;
  config.path.min_latency_ms = 0.0;
  config.path.max_latency_ms = 5.0;
  config.path.seed = seed;
  config.params.total_packets = total_packets;
  config.params.send_rate_pps = 100.0;
  config.params.probe_probability = 1.0 / 36.0;
  // The paper's adversary: node F_4 drops at 0.02 in a way that charges
  // its downstream link, so l_4 exhibits ~alpha = 0.03 total.
  config.link_faults.push_back(LinkFault{4, 0.02});
  // Decision threshold between the honest estimate (~rho = 0.01) and the
  // estimator's view of an alpha-rate link. Because a monitored round's
  // blame goes to the *first* failing hop, a malicious link's estimate
  // reads ~15% below its true alpha = 0.03, so the empirical midpoint sits
  // slightly under the analytic (rho + alpha)/2.
  config.decision_threshold = 0.018;
  return config;
}

}  // namespace paai::runner
