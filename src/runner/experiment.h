// Experiment: wires a full single simulation run together.
//
// One run = one PathNetwork + KeyStore + ProtocolContext + protocol agents
// + adversary strategies, driven until the source has sent
// params.total_packets and every timer has settled. The result carries
// conviction snapshots on a packet-count grid (for the Fig. 2 FP/FN
// curves), per-node storage time series (Fig. 3), traffic counters
// (communication overhead), and the final estimates.
//
// Thread-safety contract (relied on by src/exec and the parallel
// Monte-Carlo/fleet drivers): run_experiment() is a pure function of its
// config. Every piece of mutable state — Simulator, PathNetwork, crypto
// provider, KeyStore, ProtocolContext, adversary strategies, and all RNG
// streams (forked from config.path.seed) — is constructed inside the call
// and owned by it. There are no globals, function-local statics, or
// lazily initialized shared tables anywhere beneath it, with one
// deliberate carve-out: the src/obs metrics registry
// (obs::MetricsRegistry::global()) and an optional caller-owned
// obs::TraceRing. Both are fully synchronized (mutex-guarded
// registration, relaxed atomics on the hot path) and strictly
// write-only from inside a run — no result field ever reads them — so
// concurrent run_experiment() calls remain safe and their results still
// depend only on their configs, never on interleaving. Any future code
// that introduces shared mutable state below this call must follow the
// same rule: synchronize it AND keep results schedule-independent, or be
// rejected — tools/check.sh runs the exec + runner + obs tests under
// TSan to enforce the first half, and the jobs=1-vs-jobs=8 determinism
// test in tests/exec_test.cc the second.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/spec.h"
#include "adversary/strategy.h"
#include "crypto/provider.h"
#include "faults/plan.h"
#include "protocols/context.h"
#include "sim/network.h"
#include "util/timeseries.h"

namespace paai::obs {
class TelemetrySink;
}  // namespace paai::obs

namespace paai::runner {

/// One compromised node's behaviour. The full definition (kinds, the
/// --adversary grammar, make_strategy) lives in adversary/spec.h; the
/// runner consumes it verbatim.
using AdversarySpec = adversary::Spec;

/// A link-level malicious drop rate, composed with the natural loss. This
/// is the paper's formal model (Theorems 1-2 speak of per-*link* drop
/// rates theta_i) and its simulation target ("the malicious drops will
/// directly increase l_4's drop count; thus l_4 is the target link"): a
/// compromised node dropping uniformly while pretending honesty in the ack
/// machinery manifests exactly as extra loss on its downstream link.
/// Node-level Strategy adversaries (AdversarySpec) model the *behavioural*
/// attacks instead; the security tests use those.
struct LinkFault {
  std::size_t link = 4;
  double extra_loss = 0.02;
};

struct ExperimentConfig {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::kPaai1;
  sim::PathConfig path{};
  protocols::ProtocolParams params{};
  crypto::CryptoKind crypto = crypto::CryptoKind::kFast;
  std::vector<AdversarySpec> adversaries{};
  std::vector<LinkFault> link_faults{};

  /// Scripted *benign* faults (bursty loss, link churn, node outages —
  /// src/faults). Installed after link_faults; a Gilbert–Elliott clause
  /// replaces the Bernoulli coin (and thus any composed link-fault rate)
  /// on its link, so benign-fault robustness studies keep adversaries and
  /// fault processes on disjoint links. The plan's worst-case latency /
  /// reordering delay is folded into the path's RTT bounds before the
  /// network is built (sim::PathConfig::extra_rtt_slack_ms), so the
  /// wait-timer cascade is provisioned for the schedule just as a real
  /// deployment provisions for its SLA envelope.
  faults::FaultPlan faults{};

  /// Identify-phase decision threshold in per-traversal terms; the paper's
  /// setting rho = 0.01, alpha = 0.03 gives the midpoint 0.02.
  double decision_threshold = 0.02;

  /// Packet counts at which to snapshot the convicted-link set.
  std::vector<std::uint64_t> checkpoints{};

  /// When > 0, sample every node's storage meter with this period.
  sim::SimDuration storage_sample_period = 0;

  /// When > 0, deactivate all adversary strategies and reset faulty links
  /// to the natural loss rate once this many packets have been sent (the
  /// source "bypasses" the identified node — the "w/ AAI" curves of
  /// Fig. 3, implemented exactly like the paper: "resetting F_4's drop
  /// rate to zero").
  std::uint64_t bypass_after_packets = 0;

  /// Optional live telemetry sink (obs/telemetry.h). A periodic sampler
  /// event snapshots the metrics registry / phase profiler as the run
  /// progresses, with the simulated clock as the virtual timestamp.
  /// Strictly observational: sampler events are subtracted from
  /// events_processed, and they never reorder protocol events (the
  /// simulator's tie-break seq preserves relative order of all other
  /// events). Callers sharing one sink across parallel runs get
  /// interleaved-but-valid samples; the Monte-Carlo driver instead ticks
  /// its sink from the serialized fold.
  obs::TelemetrySink* telemetry = nullptr;
};

struct CheckpointResult {
  std::uint64_t packets = 0;
  std::vector<std::size_t> convicted;
};

struct ExperimentResult {
  std::vector<CheckpointResult> checkpoints;
  std::vector<double> final_thetas;
  std::vector<std::size_t> final_convicted;
  double observed_e2e_rate = 0.0;
  std::uint64_t observations = 0;
  std::uint64_t packets_sent = 0;

  /// storage[i] is node F_i's sampled storage series (seconds, packets);
  /// empty when storage sampling was off.
  std::vector<TimeSeries> storage;

  /// Control bytes per data byte, and control packets per data packet.
  double overhead_bytes_ratio = 0.0;
  double overhead_packets_ratio = 0.0;

  /// Ground-truth traffic: total data-packet link crossings (a packet
  /// surviving the whole path counts d times). Used by tests to verify
  /// that control-plane attacks leave the data plane untouched.
  std::uint64_t data_link_crossings = 0;

  /// Ground truth: fraction of sent data packets that physically reached
  /// the destination (the quantity Theorem 1 bounds), and the true
  /// per-traversal data loss rate of each link.
  double ground_truth_delivery = 0.0;
  std::vector<double> true_link_loss;

  std::uint64_t events_processed = 0;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

/// The paper's reference configuration (§8.1): d = 6, rho = 0.01 per link,
/// uniform 0-5 ms link latency, malicious node F_4 dropping everything at
/// 0.02 (so link l_4 exhibits ~alpha = 0.03), source rate 100 pps.
ExperimentConfig paper_config(protocols::ProtocolKind protocol,
                              std::uint64_t total_packets,
                              std::uint64_t seed);

}  // namespace paai::runner
