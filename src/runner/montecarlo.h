// Monte-Carlo driver: repeats an Experiment across seeds and aggregates
//   * FP/FN rates per checkpoint (the Fig. 2 curves): at checkpoint N,
//     FP = fraction of runs convicting at least one honest link,
//     FN = fraction of runs missing at least one truly malicious link;
//   * the detection point: the first checkpoint where both rates fall
//     below the allowed sigma (the "converged condition" of §7);
//   * per-run detection packets (first checkpoint whose conviction set is
//     exactly right and stays right), averaged over runs;
//   * storage statistics per node resampled onto a common time grid.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "exec/telemetry.h"
#include "obs/events.h"
#include "obs/tracer.h"
#include "runner/experiment.h"
#include "util/stats.h"
#include "util/timeseries.h"

namespace paai::runner {

struct MonteCarloConfig {
  ExperimentConfig base;
  std::size_t runs = 100;
  std::uint64_t seed0 = 1000;
  /// Ground truth for FP/FN accounting (link indices).
  std::vector<std::size_t> malicious_links{4};
  double sigma = 0.03;

  /// When set, aggregate each node's storage series onto a grid of this
  /// many bins over [0, horizon_seconds].
  std::size_t storage_bins = 0;
  double storage_horizon_seconds = 0.0;

  /// Worker threads for the run fan-out: 0 = hardware concurrency, 1 =
  /// serial. Results are bit-identical for any value (seeds are fixed up
  /// front and reduction happens strictly in run order).
  std::size_t jobs = 1;

  /// Optional event tracer. Each run gets its own Chrome-trace track
  /// (tid = run index) so per-link events from concurrent runs never
  /// interleave. Purely observational — results are unaffected.
  obs::TraceRing* trace = nullptr;

  /// Optional forensic event log. Attached to run 0 ONLY: a single run's
  /// stream is causally coherent (one path, one clock) where an
  /// interleaving of seeds would not be, and single-writer means the
  /// stream is bit-identical for any jobs value. Purely observational.
  obs::EventLog* events = nullptr;

  /// Optional progress callback. Invoked from a single reducer context
  /// (serialized, never concurrently) with the monotonically increasing
  /// count of completed runs, 1..runs, in order. Must not call back into
  /// the Monte-Carlo engine.
  std::function<void(std::size_t)> progress;

  /// Optional live telemetry sink, ticked from the serialized reducer
  /// with completed-run counts (so a multi-threaded fan-out still
  /// produces a monotone sample stream). Purely observational.
  obs::TelemetrySink* telemetry = nullptr;
};

struct CurvePoint {
  std::uint64_t packets = 0;
  double fp = 0.0;
  double fn = 0.0;
};

struct MonteCarloResult {
  std::vector<CurvePoint> curve;

  /// First checkpoint with fp <= sigma && fn <= sigma (nullopt if never).
  std::optional<std::uint64_t> detection_packets;

  /// Mean over runs of the first checkpoint from which the conviction set
  /// is exactly the malicious set and never regresses.
  RunningStat per_run_detection_packets;

  /// The same per-run detection points as raw samples, in run order
  /// (runs that never stabilize contribute no sample), plus the
  /// convergence-timeline percentiles over them (0 when no run detected).
  std::vector<double> detection_samples;
  double detection_p50 = 0.0;
  double detection_p90 = 0.0;
  double detection_p99 = 0.0;

  RunningStat final_e2e_rate;
  RunningStat overhead_bytes_ratio;
  RunningStat overhead_packets_ratio;
  std::vector<RunningStat> final_thetas;  // per link

  /// Ground-truth per-link data loss rate over runs. Together with
  /// final_thetas this measures what an adaptive adversary *achieved*
  /// (real damage on its downstream link) vs what the scorer *saw* — the
  /// two axes of the stealth frontier (bench_robustness).
  std::vector<RunningStat> true_link_loss;  // per link

  /// storage_grids[i]: node F_i's aggregated storage series (empty when
  /// storage aggregation is off).
  std::vector<SeriesGrid> storage_grids;

  std::uint64_t total_events = 0;
  std::size_t runs = 0;

  /// Where the wall-clock went: per-run wall time, queue wait, pool
  /// utilization (see exec/telemetry.h). Populated on every call,
  /// including jobs=1.
  exec::ExecTelemetry exec;
};

MonteCarloResult run_monte_carlo(const MonteCarloConfig& config);

/// Log-spaced checkpoint grid from `lo` to `hi` (inclusive-ish), deduped.
std::vector<std::uint64_t> log_checkpoints(std::uint64_t lo, std::uint64_t hi,
                                           std::size_t count);

}  // namespace paai::runner
