// Fleet experiments: many monitored paths at once.
//
// Corollary 2 reasons about an adversary with a fixed budget of z
// compromised links spread across the *network*: concentrating them on one
// path caps the damage (drops compound multiplicatively and the path gets
// convicted just as fast), while spreading one link per path inflicts
// ~z * alpha total undetected loss. A FleetExperiment runs one protocol
// instance per path (paths are link-disjoint, so independent simulations
// compose exactly) and aggregates ground-truth damage and detection
// outcomes.
#pragma once

#include <vector>

#include "exec/telemetry.h"
#include "runner/experiment.h"

namespace paai::runner {

struct FleetConfig {
  /// Template for every path (protocol, length, rates, budget...). The
  /// per-path `link_faults` below replace the template's.
  ExperimentConfig base;
  /// One entry per path: the malicious links planted on it (may be empty).
  std::vector<std::vector<LinkFault>> paths;
  std::uint64_t seed0 = 9000;

  /// Worker threads for the per-path fan-out: 0 = hardware concurrency,
  /// 1 = serial. Bit-identical results for any value (paths are
  /// link-disjoint and independently seeded; aggregation is in path
  /// order).
  std::size_t jobs = 1;
};

struct FleetResult {
  struct PathOutcome {
    double ground_truth_delivery = 0.0;
    double observed_e2e_rate = 0.0;
    std::vector<std::size_t> convicted;
    std::vector<std::size_t> malicious;  // planted links (ground truth)
    bool all_malicious_convicted = false;
    bool any_honest_convicted = false;
  };

  std::vector<PathOutcome> paths;

  /// Sum over paths of (clean-baseline delivery - path delivery): the
  /// total damage the adversary inflicted, in units of "paths' worth of
  /// delivered traffic".
  double total_damage = 0.0;
  double baseline_delivery = 0.0;  // measured on a fault-free path

  /// Execution telemetry for the per-path fan-out (see exec/telemetry.h).
  exec::ExecTelemetry exec;
};

FleetResult run_fleet(const FleetConfig& config);

}  // namespace paai::runner
