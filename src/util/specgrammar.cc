#include "util/specgrammar.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace paai::util {

void spec_error(const std::string& prefix, const std::string& message) {
  throw std::invalid_argument(prefix + ": " + message);
}

std::optional<double> SpecClause::get(std::string_view key) const {
  for (const auto& [k, v] : kv) {
    if (k == key) return v;
  }
  return std::nullopt;
}

double SpecClause::require(std::string_view key,
                           const std::string& err_prefix) const {
  const auto v = get(key);
  if (!v) spec_error(err_prefix, kind + " clause needs " + std::string(key) + "=");
  return *v;
}

void SpecClause::check_keys(std::initializer_list<std::string_view> allowed,
                            const std::string& err_prefix) const {
  for (const auto& [k, v] : kv) {
    (void)v;
    if (std::find(allowed.begin(), allowed.end(), k) == allowed.end()) {
      spec_error(err_prefix, "unknown key '" + k + "' in " + kind + " clause");
    }
  }
}

std::string_view spec_trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\n' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

double spec_parse_double(std::string_view text, const std::string& what,
                         const std::string& err_prefix) {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value)) {
    spec_error(err_prefix,
               "bad number for " + what + ": '" + std::string(text) + "'");
  }
  return value;
}

std::size_t spec_parse_index(std::string_view text, const std::string& what,
                             const std::string& err_prefix) {
  std::size_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) {
    spec_error(err_prefix,
               "bad index for " + what + ": '" + std::string(text) + "'");
  }
  return value;
}

void spec_check_probability(double value, const std::string& what,
                            const std::string& err_prefix) {
  if (!(value >= 0.0 && value <= 1.0)) {
    spec_error(err_prefix,
               what + " must be within [0, 1], got " + std::to_string(value));
  }
}

void spec_check_nonnegative(double value, const std::string& what,
                            const std::string& err_prefix) {
  if (!(value >= 0.0)) {
    spec_error(err_prefix,
               what + " must be >= 0, got " + std::to_string(value));
  }
}

std::vector<SpecClause> parse_compact_clauses(std::string_view spec,
                                              const std::string& err_prefix) {
  std::vector<SpecClause> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    const std::string_view raw = spec_trim(spec.substr(pos, semi - pos));
    pos = semi + 1;
    if (raw.empty()) continue;

    SpecClause c;
    const std::size_t at = raw.find('@');
    const std::size_t colon = raw.find(':');
    if (at == std::string_view::npos ||
        (colon != std::string_view::npos && colon < at)) {
      spec_error(err_prefix,
                 "clause '" + std::string(raw) +
                     "' does not match kind@index[:key=value,...]");
    }
    const std::size_t index_end =
        colon == std::string_view::npos ? raw.size() : colon;
    c.kind = std::string(spec_trim(raw.substr(0, at)));
    c.index = spec_parse_index(spec_trim(raw.substr(at + 1, index_end - at - 1)),
                               c.kind + " index", err_prefix);
    // A parameterless clause ("fattree@4") is legal; clause kinds with
    // mandatory keys still fail loudly via SpecClause::require().
    std::string_view rest =
        colon == std::string_view::npos ? std::string_view{}
                                        : raw.substr(colon + 1);
    std::size_t kpos = 0;
    while (kpos <= rest.size()) {
      const std::size_t comma = std::min(rest.find(',', kpos), rest.size());
      const std::string_view kv = spec_trim(rest.substr(kpos, comma - kpos));
      kpos = comma + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        spec_error(err_prefix, "expected key=value, got '" + std::string(kv) +
                                   "' in " + c.kind + " clause");
      }
      const std::string key(spec_trim(kv.substr(0, eq)));
      c.kv.emplace_back(key, spec_parse_double(spec_trim(kv.substr(eq + 1)),
                                               c.kind + " " + key,
                                               err_prefix));
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::string fmt_double(double value) {
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc{} ? std::string(buffer, ptr) : "0";
}

}  // namespace paai::util
