// Small table formatter used by every bench binary: prints aligned columns
// for human reading, or CSV when requested (so the figure series can be fed
// straight into a plotting tool).
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace paai {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; fill it with cell()/num().
  Table& row();
  Table& cell(std::string value);
  Table& num(double value, int precision = 4);
  Table& integer(long long value);

  /// Renders with space-aligned columns.
  void print(std::ostream& os) const;
  /// Renders as RFC-4180 CSV: cells containing commas, quotes, or
  /// newlines are quoted (with "" escaping), everything else is emitted
  /// verbatim.
  void print_csv(std::ostream& os) const;

  /// Convenience: honours `csv` flag.
  void print(std::ostream& os, bool csv) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly (strips trailing zeros).
std::string fmt_num(double value, int precision = 4);

/// True when argv contains the given flag (e.g. "--csv").
bool has_flag(int argc, char** argv, const std::string& flag);

/// Strict base-10 integer parse: optional leading '-', digits only, no
/// whitespace, no trailing garbage, rejects overflow and empty input.
std::optional<long long> parse_ll(std::string_view text);

/// Returns the integer value following "--name=" or env fallback, else
/// dflt. A malformed value (e.g. PAAI_JOBS=all) is a hard error: prints a
/// diagnostic naming the offending flag/variable to stderr and exits 2 —
/// it must never silently become 0/dflt.
long long flag_or_env(int argc, char** argv, const std::string& name,
                      const char* env, long long dflt);

/// Returns the string value following "--name=" or "--name <value>", else
/// nullopt. "--name" as the last token (missing value) exits 2.
std::optional<std::string> flag_str(int argc, char** argv,
                                    const std::string& name);

}  // namespace paai
