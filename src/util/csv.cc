#include "util/csv.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace paai {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::num(double value, int precision) {
  return cell(fmt_num(value, precision));
}

Table& Table::integer(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      emit_cell(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    print_csv(os);
  } else {
    print(os);
  }
}

std::string fmt_num(double value, int precision) {
  std::ostringstream ss;
  ss.precision(precision);
  ss << value;
  return ss.str();
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::optional<long long> parse_ll(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (negative) i = 1;
  if (i >= text.size()) return std::nullopt;
  unsigned long long magnitude = 0;
  const unsigned long long limit =
      negative ? 9223372036854775808ULL : 9223372036854775807ULL;
  for (; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch < '0' || ch > '9') return std::nullopt;
    const unsigned long long digit = static_cast<unsigned long long>(ch - '0');
    if (magnitude > (limit - digit) / 10) return std::nullopt;  // overflow
    magnitude = magnitude * 10 + digit;
  }
  if (negative) {
    return static_cast<long long>(~magnitude + 1ULL);
  }
  return static_cast<long long>(magnitude);
}

namespace {

[[noreturn]] void die_bad_value(const char* what, const std::string& name,
                                const char* value) {
  std::fprintf(stderr,
               "error: invalid integer for %s %s: \"%s\" "
               "(expected base-10 digits)\n",
               what, name.c_str(), value);
  std::exit(2);
}

}  // namespace

long long flag_or_env(int argc, char** argv, const std::string& name,
                      const char* env, long long dflt) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      const char* value = arg.c_str() + prefix.size();
      const auto parsed = parse_ll(value);
      if (!parsed) die_bad_value("flag", name, value);
      return *parsed;
    }
  }
  if (env != nullptr) {
    if (const char* v = std::getenv(env); v != nullptr && *v != '\0') {
      const auto parsed = parse_ll(v);
      if (!parsed) die_bad_value("environment variable", env, v);
      return *parsed;
    }
  }
  return dflt;
}

std::optional<std::string> flag_str(int argc, char** argv,
                                    const std::string& name) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == name) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: flag %s requires a value\n",
                     name.c_str());
        std::exit(2);
      }
      return std::string(argv[i + 1]);
    }
  }
  return std::nullopt;
}

}  // namespace paai
