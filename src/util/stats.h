// Statistical helpers used by the protocol scorers, the analysis module
// (Theorem 2 is a Hoeffding bound), and the Monte-Carlo aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paai {

/// Single-pass mean / variance accumulator (Welford).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel Welford).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Number of i.i.d. Bernoulli samples needed so that the empirical mean is
/// within +/- eps of the true mean with probability >= 1 - sigma
/// (two-sided Hoeffding):  n >= ln(2/sigma) / (2 eps^2).
double hoeffding_samples(double eps, double sigma);

/// Two-sided Hoeffding failure probability after n samples at accuracy eps:
/// 2 exp(-2 n eps^2).
double hoeffding_failure(double n, double eps);

/// Wilson score interval half-width for a proportion p_hat over n trials at
/// ~95% confidence (z = 1.96). Used when reporting FP/FN curves.
double wilson_halfwidth(double p_hat, std::size_t n);

/// Quantile of a sorted-or-not sample (linear interpolation, q in [0,1]).
/// Copies and sorts internally; empty input returns 0.
double quantile(std::vector<double> xs, double q);

/// Pearson chi-square statistic for an observed histogram against uniform
/// expectation. Used by the PAAI-2 selection-uniformity property test.
double chi_square_uniform(const std::vector<std::uint64_t>& observed);

}  // namespace paai
