// Time-series accumulation for the storage-overhead figures (Fig. 3) and
// FP/FN convergence curves (Fig. 2).
//
// A TimeSeries records raw (t, value) observations from one simulation run.
// A SeriesGrid resamples many runs onto a common grid of x positions and
// keeps per-bin RunningStats so Monte-Carlo averages and spreads can be
// reported per grid point.
#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.h"

namespace paai {

struct SeriesPoint {
  double t = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  void add(double t, double value) { points_.push_back({t, value}); }
  const std::vector<SeriesPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Value at time t using step ("sample & hold") interpolation; points must
  /// have been added in nondecreasing t order. Returns fallback before the
  /// first point.
  double at(double t, double fallback = 0.0) const;

 private:
  std::vector<SeriesPoint> points_;
};

class SeriesGrid {
 public:
  /// Uniform grid of `bins` points covering [0, x_max].
  SeriesGrid(double x_max, std::size_t bins);

  /// Log-spaced grid covering [x_min, x_max] (both > 0).
  static SeriesGrid logspace(double x_min, double x_max, std::size_t bins);

  /// Folds one run's series into the grid with step interpolation.
  void accumulate(const TimeSeries& run);

  /// Adds a single observation at the bin nearest to x.
  void add_at(double x, double value);

  std::size_t size() const { return xs_.size(); }
  double x(std::size_t i) const { return xs_[i]; }
  const RunningStat& stat(std::size_t i) const { return stats_[i]; }

 private:
  SeriesGrid() = default;

  std::vector<double> xs_;
  std::vector<RunningStat> stats_;
};

}  // namespace paai
