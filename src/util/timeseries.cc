#include "util/timeseries.h"

#include <algorithm>
#include <cmath>

namespace paai {

double TimeSeries::at(double t, double fallback) const {
  if (points_.empty() || t < points_.front().t) return fallback;
  // Binary search for the last point with point.t <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const SeriesPoint& p) { return lhs < p.t; });
  return std::prev(it)->value;
}

SeriesGrid::SeriesGrid(double x_max, std::size_t bins) {
  xs_.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    xs_.push_back(x_max * static_cast<double>(i + 1) /
                  static_cast<double>(bins));
  }
  stats_.resize(bins);
}

SeriesGrid SeriesGrid::logspace(double x_min, double x_max, std::size_t bins) {
  SeriesGrid g;
  g.xs_.reserve(bins);
  const double l0 = std::log(x_min);
  const double l1 = std::log(x_max);
  for (std::size_t i = 0; i < bins; ++i) {
    const double f = bins == 1 ? 1.0
                               : static_cast<double>(i) /
                                     static_cast<double>(bins - 1);
    g.xs_.push_back(std::exp(l0 + (l1 - l0) * f));
  }
  g.stats_.resize(bins);
  return g;
}

void SeriesGrid::accumulate(const TimeSeries& run) {
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    stats_[i].add(run.at(xs_[i]));
  }
}

void SeriesGrid::add_at(double x, double value) {
  if (xs_.empty()) return;
  auto it = std::lower_bound(xs_.begin(), xs_.end(), x);
  std::size_t idx;
  if (it == xs_.end()) {
    idx = xs_.size() - 1;
  } else if (it == xs_.begin()) {
    idx = 0;
  } else {
    const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
    idx = (x - xs_[hi - 1] <= xs_[hi] - x) ? hi - 1 : hi;
  }
  stats_[idx].add(value);
}

}  // namespace paai
