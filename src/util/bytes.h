// Byte-buffer helpers shared across the library.
//
// The whole code base passes binary data as `Bytes` (an owning
// std::vector<uint8_t>) or `ByteView` (a non-owning std::span). Hex
// conversion is used by tests (crypto test vectors) and diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace paai {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encodes `data` as a lowercase hex string ("deadbeef").
std::string to_hex(ByteView data);

/// Decodes a hex string. Accepts upper/lower case; throws
/// std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Builds a Bytes from a string literal / std::string payload.
Bytes bytes_of(std::string_view s);

/// Concatenates any number of byte views into one owning buffer.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality for fixed-size secrets (MAC tags). Returns false
/// for mismatched lengths without inspecting contents.
bool ct_equal(ByteView a, ByteView b);

}  // namespace paai
