// Deterministic pseudo-random number generation for simulation.
//
// We intentionally do not use std::mt19937 for the hot simulation paths:
// xoshiro256** is ~4x faster, has a tiny state, and supports cheap
// independent streams via SplitMix64 seeding — important because every
// Monte-Carlo run and every link gets its own stream so results are
// reproducible regardless of event interleaving.
//
// NOTE: this RNG models *benign channel randomness* only. All
// adversary-visible randomness (sampling decisions, selection predicates,
// challenges) comes from the keyed PRFs in src/crypto.
#pragma once

#include <cstdint>

namespace paai {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state and
/// to derive independent per-component seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// reimplemented here.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  /// bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Binomial(n, p) draw. Exact CDF-inversion walk while the expected
  /// count is small (the regime the mesh stat engine lives in: per-path,
  /// per-round drop counts with n*p well under a few hundred); switches to
  /// a clamped continuity-corrected normal approximation when both tails
  /// exceed kBinomialExactLimit, where inversion would underflow and cost
  /// O(n*p) anyway. Consumes exactly one next_double() either way, so a
  /// draw is a pure function of (state, n, p) — the determinism contract
  /// everything in src/exec relies on.
  static constexpr double kBinomialExactLimit = 400.0;
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Derives an independent child stream; children with distinct tags are
  /// statistically independent of the parent and each other.
  Rng fork(std::uint64_t tag);

 private:
  std::uint64_t s_[4];
};

}  // namespace paai
