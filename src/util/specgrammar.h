// Shared compact clause grammar for declarative plan specs:
//
//   plan    := clause (';' clause)*
//   clause  := kind '@' index [':' key '=' value (',' key '=' value)*]
//
// faults::FaultPlan ("ge@2:pb=0.3,...") , adversary::AdversaryPlan
// ("stealth@4:margin=0.9"), and mesh::Topology ("fattree@8") all parse
// through this helper, so the grammars stay lexically identical and
// their fuzz suites exercise the same code. The key list may be empty
// ("fattree@8"); kinds with mandatory keys reject that through
// SpecClause::require(). Every malformed clause throws std::invalid_argument with the
// caller's prefix and a pointed message — specs must fail loudly, never
// silently produce nonsense.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paai::util {

/// Throws std::invalid_argument("<prefix>: <message>").
[[noreturn]] void spec_error(const std::string& prefix,
                             const std::string& message);

/// One parsed clause, kind-agnostic: index plus key=value pairs.
struct SpecClause {
  std::string kind;
  std::size_t index = 0;
  std::vector<std::pair<std::string, double>> kv;

  std::optional<double> get(std::string_view key) const;

  /// Returns the key's value or throws "<kind> clause needs <key>=".
  double require(std::string_view key, const std::string& err_prefix) const;

  /// Throws "unknown key '<k>' in <kind> clause" for any key outside
  /// `allowed`.
  void check_keys(std::initializer_list<std::string_view> allowed,
                  const std::string& err_prefix) const;
};

/// Strips ASCII whitespace from both ends.
std::string_view spec_trim(std::string_view s);

/// Parses a finite double / a size_t index, or throws with a message
/// naming `what`.
double spec_parse_double(std::string_view text, const std::string& what,
                         const std::string& err_prefix);
std::size_t spec_parse_index(std::string_view text, const std::string& what,
                             const std::string& err_prefix);

/// Range validators: [0, 1] probabilities and non-negative quantities.
void spec_check_probability(double value, const std::string& what,
                            const std::string& err_prefix);
void spec_check_nonnegative(double value, const std::string& what,
                            const std::string& err_prefix);

/// Splits a compact spec into clauses. Empty clauses (";;", trailing ';')
/// are skipped; a clause missing '@'/':' or key=value structure throws.
std::vector<SpecClause> parse_compact_clauses(std::string_view spec,
                                              const std::string& err_prefix);

/// Shortest round-trippable rendering of a double (std::to_chars).
std::string fmt_double(double value);

}  // namespace paai::util
