#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace paai {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double hoeffding_samples(double eps, double sigma) {
  return std::log(2.0 / sigma) / (2.0 * eps * eps);
}

double hoeffding_failure(double n, double eps) {
  return 2.0 * std::exp(-2.0 * n * eps * eps);
}

double wilson_halfwidth(double p_hat, std::size_t n) {
  if (n == 0) return 1.0;
  constexpr double z = 1.959963984540054;
  const double nn = static_cast<double>(n);
  return z * std::sqrt(p_hat * (1.0 - p_hat) / nn + z * z / (4.0 * nn * nn)) /
         (1.0 + z * z / nn);
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double chi_square_uniform(const std::vector<std::uint64_t>& observed) {
  if (observed.empty()) return 0.0;
  std::uint64_t total = 0;
  for (auto c : observed) total += c;
  if (total == 0) return 0.0;
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  double stat = 0.0;
  for (auto c : observed) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

}  // namespace paai
