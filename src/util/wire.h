// Bounds-checked big-endian wire serialization.
//
// Every packet in src/net has an explicit wire format encoded/decoded with
// these helpers. WireReader never reads past the buffer: all getters return
// false (or std::nullopt via helpers) on truncated input, so decoding
// attacker-supplied bytes can never crash — a property fuzz-tested in
// tests/wire_test.cc.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.h"

namespace paai {

class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(ByteView data);
  /// Length-prefixed (u16) variable byte string.
  void var_bytes(ByteView data);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class WireReader {
 public:
  explicit WireReader(ByteView data) : data_(data) {}

  bool u8(std::uint8_t& out);
  bool u16(std::uint16_t& out);
  bool u32(std::uint32_t& out);
  bool u64(std::uint64_t& out);
  /// Copies exactly n bytes.
  bool raw(std::size_t n, Bytes& out);
  /// Reads a u16 length prefix then that many bytes. Fails if the prefix
  /// exceeds the remaining buffer.
  bool var_bytes(Bytes& out);
  /// Skips n bytes.
  bool skip(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  bool take(std::size_t n, const std::uint8_t*& p);

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace paai
