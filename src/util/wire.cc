#include "util/wire.h"

#include <limits>
#include <stdexcept>

namespace paai {

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::raw(ByteView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void WireWriter::var_bytes(ByteView data) {
  // Oversized payloads indicate a programming error, not attacker input.
  if (data.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::length_error("var_bytes: payload exceeds u16 length prefix");
  }
  u16(static_cast<std::uint16_t>(data.size()));
  raw(data);
}

bool WireReader::take(std::size_t n, const std::uint8_t*& p) {
  if (remaining() < n) return false;
  p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::u8(std::uint8_t& out) {
  const std::uint8_t* p = nullptr;
  if (!take(1, p)) return false;
  out = p[0];
  return true;
}

bool WireReader::u16(std::uint16_t& out) {
  const std::uint8_t* p = nullptr;
  if (!take(2, p)) return false;
  out = static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  return true;
}

bool WireReader::u32(std::uint32_t& out) {
  const std::uint8_t* p = nullptr;
  if (!take(4, p)) return false;
  out = 0;
  for (int i = 0; i < 4; ++i) out = (out << 8) | p[i];
  return true;
}

bool WireReader::u64(std::uint64_t& out) {
  const std::uint8_t* p = nullptr;
  if (!take(8, p)) return false;
  out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | p[i];
  return true;
}

bool WireReader::raw(std::size_t n, Bytes& out) {
  const std::uint8_t* p = nullptr;
  if (!take(n, p)) return false;
  out.assign(p, p + n);
  return true;
}

bool WireReader::var_bytes(Bytes& out) {
  std::uint16_t len = 0;
  if (!u16(len)) return false;
  return raw(len, out);
}

bool WireReader::skip(std::size_t n) {
  const std::uint8_t* p = nullptr;
  return take(n, p);
}

}  // namespace paai
