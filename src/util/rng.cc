#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace paai {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Work on the smaller tail so the inversion walk stays O(min(np, nq)).
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  const double mean = static_cast<double>(n) * q;
  const double u = next_double();
  std::uint64_t k;
  if (mean <= kBinomialExactLimit) {
    // CDF inversion: pmf(0) = (1-q)^n, pmf(k+1)/pmf(k) = (n-k)/(k+1) *
    // q/(1-q). (1-q)^n stays above DBL_MIN while mean <= 400, so the walk
    // cannot underflow into an infinite loop; the k == n guard bounds it
    // regardless.
    const double ratio = q / (1.0 - q);
    double pmf = std::pow(1.0 - q, static_cast<double>(n));
    double cdf = pmf;
    k = 0;
    while (u >= cdf && k < n) {
      pmf *= ratio * static_cast<double>(n - k) / static_cast<double>(k + 1);
      cdf += pmf;
      ++k;
    }
  } else {
    // Normal approximation with continuity correction; at mean > 400 the
    // relative error is far below the one-standard-error conviction
    // margins the evidence feeds.
    const double sd = std::sqrt(mean * (1.0 - q));
    // Probit by bisection on the normal CDF (40 halvings of [-8, 8] ~
    // 1e-11 absolute) — branch-free in distribution terms and needs no
    // erf-inverse.
    double lo = -8.0, hi = 8.0;
    for (int i = 0; i < 40; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double cdf = 0.5 * std::erfc(-mid / std::sqrt(2.0));
      (cdf < u ? lo : hi) = mid;
    }
    const double z = 0.5 * (lo + hi);
    const double draw = std::floor(mean + sd * z + 0.5);
    const double clamped =
        std::min(std::max(draw, 0.0), static_cast<double>(n));
    k = static_cast<std::uint64_t>(clamped);
  }
  return flipped ? n - k : k;
}

Rng Rng::fork(std::uint64_t tag) {
  SplitMix64 sm(next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  return Rng(sm.next());
}

}  // namespace paai
