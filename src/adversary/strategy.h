// Adversary strategies (§3.2 adversary model, §5 threat model, §8.1
// methodology).
//
// The adversary compromises *nodes*; it may drop, alter, or inject packets
// on its adjacent links, knows all protocol parameters, holds the
// compromised nodes' keys, and can do traffic analysis. We model each
// compromised node's behaviour as a Strategy consulted by the relay
// interposition point (protocols::RelayBase::relay) before any honest
// processing happens.
//
// Observation channel (§3.2/§5 — what a compromised node may legally see):
//   * every packet traversing the node: type, direction, full header bytes,
//     and — when the strategy asks for them via wants_packet_ids() — the
//     packet identifier H(m) of data packets and the H(m) a probe
//     references. This is exactly the traffic analysis §5 grants.
//   * the node-local clock at arrival (Context::now).
//   * protocol parameters (Environment): the conviction threshold ψ_th and
//     the natural loss ρ — §5: "the adversary knows all protocol
//     parameters".
//   * ambient benign turbulence (Environment::cover): whether a scripted
//     fault window — a Gilbert–Elliott burst or a node outage from the
//     active faults::FaultPlan — is open right now. An on-path adversary
//     observes loss bursts and dead neighbours directly; modelling that
//     observation as a queryable signal is what lets a strategy *collude*
//     with benign faults.
//   * its own history: a stateful Strategy tracks what it saw and dropped
//     (e.g. a self-estimate of the blame its downstream link accumulates).
// Strategies must NOT observe honest nodes' keys, per-link RNG streams, or
// scorer state — nothing beyond the packets that physically reach them
// plus public parameters and ambient signals.
//
// Actions:
//   kForward  — behave honestly for this packet.
//   kDrop     — silently drop it.
//   kCorrupt  — forward an altered copy (the paper folds alteration into
//               "drop": §5 "our protocol design ensures that S interprets
//               each such activity simply as a data packet drop").
//   kWithhold — buffer the packet instead of forwarding; used by the
//               delayed-release attack against delayed sampling. The
//               wrapper calls on_withheld_probe() when a probe for a
//               withheld packet shows up.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "sim/node.h"
#include "sim/time.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace paai::adversary {

enum class Action : std::uint8_t { kForward, kDrop, kCorrupt, kWithhold };

/// Per-packet observation handed to Strategy::on_packet. All fields are
/// things the compromised node can see on its own wire.
struct Context {
  net::PacketType type = net::PacketType::kData;
  sim::Direction dir = sim::Direction::kToDest;
  std::size_t node_index = 0;
  ByteView wire;  // full header bytes, should the strategy want to parse

  /// Node-local arrival time (the compromised node's clock).
  sim::SimTime now = 0;

  /// H(m) of a data packet, computed by the relay only when the strategy
  /// declares wants_packet_ids() — hashing every packet for an oblivious
  /// dropper would be wasted work. nullptr otherwise.
  const net::PacketId* packet_id = nullptr;

  /// For probes: the H(m) the probe references (the packet being sampled).
  /// nullptr for non-probe packets or undecodable probes.
  const net::PacketId* probe_data_id = nullptr;
};

/// Ambient benign-turbulence signal (implemented by the runner over the
/// live faults::FaultInjector). cover_active() answers "is there a benign
/// loss window open right now that my drops could hide in?".
class FaultObservation {
 public:
  virtual ~FaultObservation() = default;

  /// True iff a Gilbert–Elliott process currently sits in its Bad state or
  /// a scheduled node-outage window contains `now`.
  virtual bool cover_active(sim::SimTime now) const = 0;
};

/// Protocol-parameter knowledge shared by all strategies on a run (§5:
/// the adversary knows all protocol parameters). `cover` may be null when
/// no fault plan is active; adaptive strategies must degrade gracefully.
struct Environment {
  double decision_threshold = 0.02;  // ψ_th the source convicts at
  double natural_loss = 0.01;        // ρ, per-link natural loss
  const FaultObservation* cover = nullptr;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Decides the fate of a packet traversing the compromised node. The
  /// active() check lives here — uniformly for every strategy — so
  /// set_active(false) (the runner's "bypass" switch) always means
  /// "forward everything", including for stateful strategies.
  Action on_packet(const Context& ctx) {
    return active_ ? decide(ctx) : Action::kForward;
  }

  /// For a strategy that returned kWithhold earlier: a probe referencing
  /// the withheld data packet has just arrived. Return kForward to release
  /// the stale packet (it will carry its original, now-old timestamp) or
  /// kDrop to discard it.
  virtual Action on_withheld_probe(const Context& probe_ctx) {
    (void)probe_ctx;
    return Action::kDrop;
  }

  /// §8.1 tactic (b): a compromised node that dropped a data packet still
  /// answers later ack requests "as if it were functioning correctly", so
  /// its dropping manifests on its *downstream* link. All our built-in
  /// strategies behave this way.
  virtual bool pretend_honest_in_acks() const { return true; }

  /// True iff the strategy wants Context::packet_id / probe_data_id
  /// populated (costs one hash per data packet at the relay).
  virtual bool wants_packet_ids() const { return false; }

  /// The runner flips this to simulate the source bypassing an identified
  /// adversary ("w/ AAI" curves of Fig. 3): an inactive strategy forwards
  /// everything.
  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

 protected:
  /// Strategy-specific decision; called only while active.
  virtual Action decide(const Context& ctx) = 0;

 private:
  bool active_ = true;
};

// ---------------------------------------------------------------------------
// Oblivious strategies (fixed behaviour, no reaction to network state).
// Factory signatures are uniform: parameters, then the strategy's private
// Rng stream (taken even where the decision is deterministic, so specs
// stay seedable and call sites never special-case).

/// Drops every packet type at the same rate — the optimal strategy per
/// Corollary 1 and the one used in the paper's simulations.
std::unique_ptr<Strategy> make_uniform_dropper(double drop_rate, Rng rng);

/// Drops data, probe, and ack packets at individually configured rates
/// (used to *verify* Corollary 1: no advantage over uniform dropping).
struct TypeRates {
  double data = 0.0;
  double probe = 0.0;
  double ack = 0.0;  // applies to kDestAck, kReportAck, and FL reports
};
std::unique_ptr<Strategy> make_type_rate_dropper(const TypeRates& rates,
                                                 Rng rng);

/// Drops only reverse-path report/ack traffic — the incrimination attempt
/// of §5 footnote 6. Security tests assert honest links stay unconvicted.
std::unique_ptr<Strategy> make_ack_dropper(double drop_rate, Rng rng);

/// Forwards everything but corrupts (alters) packets at the given rate.
std::unique_ptr<Strategy> make_corrupter(double corrupt_rate, Rng rng);

/// Withholds data packets, releasing them only if a probe arrives (the
/// attack delayed sampling + timestamp freshness is designed to defeat,
/// §5). `release_on_probe` = true releases the stale packet, false drops
/// unprobed packets silently.
std::unique_ptr<Strategy> make_withholder(double withhold_rate,
                                          bool release_on_probe, Rng rng);

/// Drops *bursts* of data packets: out of every `period` data packets
/// traversing the node, a contiguous run of `burst` is dropped (random
/// phase). Models congestion-like, non-i.i.d. malicious dropping; the
/// scorers' estimates depend only on long-run rates, so localization must
/// still work (tested in security_test.cc).
std::unique_ptr<Strategy> make_burst_dropper(std::uint32_t burst,
                                             std::uint32_t period, Rng rng);

/// Drops report acks whose embedded origin index is >= `min_origin` — the
/// selective incrimination attack of §5: suppress the acks of nodes
/// beyond an honest target so the target's link looks like the loss
/// point. Effective against the independent-ack ablation of PAAI-1 and
/// harmless against onion reports (whose outermost layer index reveals
/// nothing about the origin) — demonstrated in bench_ablation.
std::unique_ptr<Strategy> make_origin_filter_dropper(std::uint8_t min_origin,
                                                     Rng rng);

// ---------------------------------------------------------------------------
// Adaptive strategies (stateful; react to the observation channel). See
// docs/ADVERSARIES.md for the catalog and the stealth-frontier bench.

/// Fault-colluder: drops data packets (at `drop_rate`, per packet) ONLY
/// while env.cover reports an open benign fault window — a GE burst or a
/// node outage. Outside cover, or when no fault plan is active, it is a
/// perfectly honest relay. The blame its drops create must still land on
/// its own downstream link, not on the bursty honest link it hides behind.
std::unique_ptr<Strategy> make_fault_colluder(double drop_rate,
                                              const Environment& env,
                                              Rng rng);

/// Threshold-stealth dropper: modulates its data-drop decisions so the
/// downstream link's projected loss rate — ρ composed with its own drop
/// tally, the same self-estimate of accumulated blame the scorer will
/// converge to — stays at `margin` × ψ_th. margin < 1 rides under the
/// threshold (maximum damage while staying unconvicted); margin > 1
/// deliberately overshoots (for calibrating the frontier bench).
std::unique_ptr<Strategy> make_threshold_stealth_dropper(
    double margin, const Environment& env, Rng rng);

/// Probe-aware backoff dropper (§5 traffic analysis made concrete): drops
/// data at `drop_rate`, but when it observes a probe referencing a data
/// packet it recently saw — i.e. the source is sampling its segment of the
/// stream — it pauses all dropping for `cooldown_seconds`. Requires packet
/// ids from the relay (wants_packet_ids() = true).
std::unique_ptr<Strategy> make_probe_shy_dropper(double drop_rate,
                                                 double cooldown_seconds,
                                                 const Environment& env,
                                                 Rng rng);

/// On-off (jellyfish-style) dropper: a periodic duty cycle of
/// `on_seconds` dropping (data at `drop_rate`) followed by `off_seconds`
/// honest forwarding, with a random initial phase. The classic low-duty
/// attack on end-to-end loss estimators: time-averaged damage with
/// bursty, hard-to-sample structure.
std::unique_ptr<Strategy> make_on_off_dropper(double drop_rate,
                                              double on_seconds,
                                              double off_seconds, Rng rng);

}  // namespace paai::adversary
