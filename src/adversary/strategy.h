// Adversary strategies (§3.2 adversary model, §8.1 methodology).
//
// The adversary compromises *nodes*; it may drop, alter, or inject packets
// on its adjacent links, knows all protocol parameters, holds the
// compromised nodes' keys, and can do traffic analysis. We model each
// compromised node's behaviour as a Strategy consulted by an
// AdversarialRelay wrapper (src/protocols/adversarial_relay.h) before any
// honest processing happens.
//
// Actions:
//   kForward  — behave honestly for this packet.
//   kDrop     — silently drop it.
//   kCorrupt  — forward an altered copy (the paper folds alteration into
//               "drop": §5 "our protocol design ensures that S interprets
//               each such activity simply as a data packet drop").
//   kWithhold — buffer the packet instead of forwarding; used by the
//               delayed-release attack against delayed sampling. The
//               wrapper calls on_withheld_probe() when a probe for a
//               withheld packet shows up.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.h"
#include "sim/node.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace paai::adversary {

enum class Action : std::uint8_t { kForward, kDrop, kCorrupt, kWithhold };

struct Context {
  net::PacketType type = net::PacketType::kData;
  sim::Direction dir = sim::Direction::kToDest;
  std::size_t node_index = 0;
  ByteView wire;  // full header bytes, should the strategy want to parse
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Decides the fate of a packet traversing the compromised node.
  virtual Action on_packet(const Context& ctx) = 0;

  /// For a strategy that returned kWithhold earlier: a probe referencing
  /// the withheld data packet has just arrived. Return kForward to release
  /// the stale packet (it will carry its original, now-old timestamp) or
  /// kDrop to discard it.
  virtual Action on_withheld_probe(const Context& probe_ctx) {
    (void)probe_ctx;
    return Action::kDrop;
  }

  /// §8.1 tactic (b): a compromised node that dropped a data packet still
  /// answers later ack requests "as if it were functioning correctly", so
  /// its dropping manifests on its *downstream* link. All our built-in
  /// strategies behave this way.
  virtual bool pretend_honest_in_acks() const { return true; }

  /// The runner flips this to simulate the source bypassing an identified
  /// adversary ("w/ AAI" curves of Fig. 3): an inactive strategy forwards
  /// everything.
  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

 private:
  bool active_ = true;
};

/// Drops every packet type at the same rate — the optimal strategy per
/// Corollary 1 and the one used in the paper's simulations.
std::unique_ptr<Strategy> make_uniform_dropper(double drop_rate, Rng rng);

/// Drops data, probe, and ack packets at individually configured rates
/// (used to *verify* Corollary 1: no advantage over uniform dropping).
struct TypeRates {
  double data = 0.0;
  double probe = 0.0;
  double ack = 0.0;  // applies to kDestAck, kReportAck, and FL reports
};
std::unique_ptr<Strategy> make_type_rate_dropper(const TypeRates& rates,
                                                 Rng rng);

/// Drops only reverse-path report/ack traffic — the incrimination attempt
/// of §5 footnote 6. Security tests assert honest links stay unconvicted.
std::unique_ptr<Strategy> make_ack_dropper(double drop_rate, Rng rng);

/// Forwards everything but corrupts (alters) packets at the given rate.
std::unique_ptr<Strategy> make_corrupter(double corrupt_rate, Rng rng);

/// Withholds data packets, releasing them only if a probe arrives (the
/// attack delayed sampling + timestamp freshness is designed to defeat,
/// §5). `release_on_probe` = true releases the stale packet, false drops
/// unprobed packets silently.
std::unique_ptr<Strategy> make_withholder(double withhold_rate,
                                          bool release_on_probe, Rng rng);

/// Drops *bursts* of data packets: out of every `period` data packets
/// traversing the node, a contiguous run of `burst` is dropped (random
/// phase). Models congestion-like, non-i.i.d. malicious dropping; the
/// scorers' estimates depend only on long-run rates, so localization must
/// still work (tested in security_test.cc).
std::unique_ptr<Strategy> make_burst_dropper(std::uint32_t burst,
                                             std::uint32_t period, Rng rng);

/// Drops report acks whose embedded origin index is >= `min_origin` — the
/// selective incrimination attack of §5: suppress the acks of nodes
/// beyond an honest target so the target's link looks like the loss
/// point. Effective against the independent-ack ablation of PAAI-1 and
/// harmless against onion reports (whose outermost layer index reveals
/// nothing about the origin) — demonstrated in bench_ablation.
std::unique_ptr<Strategy> make_origin_filter_dropper(std::uint8_t min_origin);

}  // namespace paai::adversary
