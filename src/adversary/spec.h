// Declarative adversary specs: the --adversary grammar.
//
// Mirrors faults::FaultPlan exactly: a compact clause form
//
//   plan   := clause (';' clause)*
//   clause := kind '@' node ':' key '=' value (',' key '=' value)*
//
// and an equivalent JSON form (an array of clause objects, or an object
// with an "adversaries" array). Both parse through util/specgrammar, both
// round-trip through to_string()/parse(), and both fail loudly on any
// malformed input. Clause kinds:
//
//   uniform@N:rate=R                 drop everything at R (Corollary 1)
//   type@N:data=R,probe=R,ack=R     per-packet-type rates
//   ack@N:rate=R                     drop only reverse-path reports/acks
//   corrupt@N:rate=R                 alter packets at R
//   withhold@N:rate=R[,release=0|1]  withhold data; release=1 frees on probe
//   originfilter@N:min=K             drop report acks from origins >= K
//   burst@N:burst=B,period=P         drop B of every P data packets
//   collude@N:rate=R                 drop only inside benign fault windows
//   stealth@N:margin=M               ride at M x psi_th projected blame
//   probeshy@N:rate=R,cooldown=C     pause C seconds after being probed
//   onoff@N:rate=R,on=A,off=B        jellyfish duty cycle (A on, B off)
//
// N is the compromised node index F_N; the blame its drops create lands on
// the downstream link l_N (§8.1 tactic (b)).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/strategy.h"
#include "util/rng.h"

namespace paai::adversary {

/// One compromised node's behaviour. Field defaults match the paper's
/// reference adversary (F_4 dropping uniformly at 0.02).
struct Spec {
  enum class Kind {
    kUniform,          // drop everything at `rate` (Corollary 1 optimum)
    kTypeRates,        // per-packet-type rates
    kAckOnly,          // drop only reverse-path reports/acks
    kCorrupt,          // alter packets at `rate`
    kWithholdDrop,     // withhold data; drop unless probed
    kWithholdRelease,  // withhold data; release (stale) when probed
    kOriginFilter,     // drop report acks from origins >= min_origin
    kBurst,            // drop `burst` of every `period` data packets
    kFaultCollude,     // adaptive: drop only under benign fault cover
    kThresholdStealth, // adaptive: ride margin x psi_th projected blame
    kProbeShy,         // adaptive: back off after observing a probe
    kOnOff,            // adaptive: on/off duty cycle (jellyfish)
  };

  std::size_t node = 4;  // compromised node index (1..d-1)
  Kind kind = Kind::kUniform;
  double rate = 0.02;
  adversary::TypeRates type_rates{};
  std::uint8_t min_origin = 3;       // kOriginFilter only
  std::uint32_t burst = 30;          // kBurst only
  std::uint32_t burst_period = 100;  // kBurst only
  double margin = 0.9;               // kThresholdStealth only
  double cooldown_s = 2.0;           // kProbeShy only
  double on_s = 5.0;                 // kOnOff only
  double off_s = 15.0;               // kOnOff only

  /// Canonical single-clause rendering ("stealth@4:margin=0.9").
  std::string to_string() const;

  /// Time-averaged data-plane drop rate the strategy inflicts on its
  /// downstream links — the rate the mesh stat engine (src/mesh) maps a
  /// node spec onto every outgoing topology link. `cover_fraction` is the
  /// long-run fraction of time benign fault cover is active (collude
  /// drops only then); `decision_threshold` calibrates the
  /// threshold-stealth rider (it parks its projected blame at margin x
  /// threshold). Control-plane-only kinds (ack, originfilter) drop no
  /// data and return 0; probe-shy ignores its cooldown (a conservative
  /// upper bound). Exact behavioural semantics need the packet engine.
  double mean_drop_rate(double cover_fraction,
                        double decision_threshold) const;
};

/// An ordered list of Specs, at most one per node. Parse accepts the
/// compact grammar, the JSON forms, and the empty string (no adversary).
struct AdversaryPlan {
  std::vector<Spec> specs;

  static AdversaryPlan parse(std::string_view text);

  /// Canonical compact rendering; parse(to_string()) reproduces the plan
  /// bit-for-bit (doubles render via shortest-round-trip to_chars).
  std::string to_string() const;

  bool empty() const { return specs.empty(); }
};

/// Builds the Strategy a Spec describes. `env` carries the public protocol
/// parameters and the ambient fault-cover signal; `rng` must be a stream
/// forked exclusively for this strategy (determinism across --jobs relies
/// on every strategy owning its own stream).
std::unique_ptr<Strategy> make_strategy(const Spec& spec,
                                        const Environment& env, Rng rng);

}  // namespace paai::adversary
