// Adaptive adversary strategies: stateful droppers that react to the
// observation channel (strategy.h) instead of tossing a fixed coin.
//
// Design constraints shared by all four:
//   * Determinism: every random decision draws only from the strategy's
//     private Rng stream (forked from the run seed), and every observed
//     quantity (sim time, fault-window state, packet ids) is itself a
//     deterministic function of the run seed — so runs with adaptive
//     adversaries stay bit-identical across --jobs values.
//   * Legal observation only: decisions depend on packets that physically
//     traversed the node, public protocol parameters (Environment), the
//     node-local clock, and ambient fault windows — never on honest keys,
//     link RNG streams, or scorer internals.
#include <algorithm>
#include <array>
#include <cmath>

#include "adversary/strategy.h"

namespace paai::adversary {

namespace {

bool forward_path_data(const Context& ctx) {
  return ctx.type == net::PacketType::kData &&
         ctx.dir == sim::Direction::kToDest;
}

/// Drops only inside benign fault windows (GE bursts, node outages). With
/// no cover signal at all it behaves honestly — there is nothing to hide
/// behind.
class FaultColluder final : public Strategy {
 public:
  FaultColluder(double rate, const Environment& env, Rng rng)
      : rate_(rate), env_(env), rng_(rng) {}

  Action decide(const Context& ctx) override {
    if (!forward_path_data(ctx)) return Action::kForward;
    if (env_.cover == nullptr || !env_.cover->cover_active(ctx.now)) {
      return Action::kForward;
    }
    return rng_.bernoulli(rate_) ? Action::kDrop : Action::kForward;
  }

 private:
  double rate_;
  Environment env_;
  Rng rng_;
};

/// Modulates drops so the downstream link's projected loss — the natural
/// rate composed with this node's own drop tally — tracks margin × ψ_th.
/// The tally IS the §5 self-estimate of accumulated blame: the scorer's
/// estimate of θ for the downstream link converges to exactly this
/// composition, so staying under it here means staying under the
/// conviction threshold there.
class ThresholdStealthDropper final : public Strategy {
 public:
  ThresholdStealthDropper(double margin, const Environment& env)
      : target_(margin * env.decision_threshold), rho_(env.natural_loss) {}

  Action decide(const Context& ctx) override {
    if (!forward_path_data(ctx)) return Action::kForward;
    ++seen_;
    // Projected downstream loss if this packet is dropped too:
    // ρ composed with (drops + 1) / seen malicious dropping.
    const double projected =
        rho_ + (1.0 - rho_) * static_cast<double>(drops_ + 1) /
                   static_cast<double>(seen_);
    if (projected <= target_) {
      ++drops_;
      return Action::kDrop;
    }
    return Action::kForward;
  }

 private:
  double target_;
  double rho_;
  std::uint64_t seen_ = 0;
  std::uint64_t drops_ = 0;
};

/// Backs off after being sampled: a probe whose referenced H(m) matches a
/// recently-seen data packet means the source is currently auditing this
/// segment of the stream, so all dropping pauses for a cooldown.
class ProbeShyDropper final : public Strategy {
 public:
  ProbeShyDropper(double rate, double cooldown_seconds, Rng rng)
      : rate_(rate),
        cooldown_(sim::seconds(cooldown_seconds)),
        rng_(rng) {
    recent_.fill(net::PacketId{});
  }

  bool wants_packet_ids() const override { return true; }

  Action decide(const Context& ctx) override {
    if (ctx.type == net::PacketType::kProbe &&
        ctx.probe_data_id != nullptr && seen_recently(*ctx.probe_data_id)) {
      cooldown_until_ = ctx.now + cooldown_;
      return Action::kForward;
    }
    if (!forward_path_data(ctx)) return Action::kForward;
    if (ctx.packet_id != nullptr) remember(*ctx.packet_id);
    if (ctx.now < cooldown_until_) return Action::kForward;
    return rng_.bernoulli(rate_) ? Action::kDrop : Action::kForward;
  }

 private:
  static constexpr std::size_t kWindow = 128;

  void remember(const net::PacketId& id) {
    recent_[head_] = id;
    head_ = (head_ + 1) % kWindow;
    count_ = std::min(count_ + 1, kWindow);
  }

  bool seen_recently(const net::PacketId& id) const {
    for (std::size_t i = 0; i < count_; ++i) {
      if (recent_[i] == id) return true;
    }
    return false;
  }

  double rate_;
  sim::SimDuration cooldown_;
  Rng rng_;
  std::array<net::PacketId, kWindow> recent_{};
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  sim::SimTime cooldown_until_ = 0;
};

/// Periodic duty cycle: on_seconds of dropping, off_seconds of honesty,
/// random initial phase (the jellyfish attack's low-duty shape).
class OnOffDropper final : public Strategy {
 public:
  OnOffDropper(double rate, double on_seconds, double off_seconds, Rng rng)
      : rate_(rate),
        on_(on_seconds),
        period_(on_seconds + off_seconds),
        phase_(period_ > 0.0 ? rng.uniform(0.0, period_) : 0.0),
        rng_(rng) {}

  Action decide(const Context& ctx) override {
    if (!forward_path_data(ctx)) return Action::kForward;
    const bool on =
        period_ <= 0.0 ||
        std::fmod(sim::to_seconds(ctx.now) + phase_, period_) < on_;
    if (!on) return Action::kForward;
    return rng_.bernoulli(rate_) ? Action::kDrop : Action::kForward;
  }

 private:
  double rate_;
  double on_;
  double period_;
  double phase_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<Strategy> make_fault_colluder(double drop_rate,
                                              const Environment& env,
                                              Rng rng) {
  return std::make_unique<FaultColluder>(drop_rate, env, rng);
}

std::unique_ptr<Strategy> make_threshold_stealth_dropper(
    double margin, const Environment& env, Rng /*rng*/) {
  // Deterministic by design (the blame ledger drives every decision); the
  // Rng is accepted for the uniform factory signature.
  return std::make_unique<ThresholdStealthDropper>(margin, env);
}

std::unique_ptr<Strategy> make_probe_shy_dropper(double drop_rate,
                                                 double cooldown_seconds,
                                                 const Environment& /*env*/,
                                                 Rng rng) {
  return std::make_unique<ProbeShyDropper>(drop_rate, cooldown_seconds, rng);
}

std::unique_ptr<Strategy> make_on_off_dropper(double drop_rate,
                                              double on_seconds,
                                              double off_seconds, Rng rng) {
  return std::make_unique<OnOffDropper>(drop_rate, on_seconds, off_seconds,
                                        rng);
}

}  // namespace paai::adversary
