#include "adversary/spec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/json.h"
#include "util/specgrammar.h"

namespace paai::adversary {

namespace {

const std::string kPrefix = "AdversaryPlan";

[[noreturn]] void bad(const std::string& message) {
  util::spec_error(kPrefix, message);
}

void check_probability(double value, const std::string& what) {
  util::spec_check_probability(value, what, kPrefix);
}

void check_nonnegative(double value, const std::string& what) {
  util::spec_check_nonnegative(value, what, kPrefix);
}

/// Parses a value that must be a non-negative integer (node indices and
/// packet counts arrive through the shared grammar as doubles).
std::uint64_t as_count(double value, const std::string& what,
                       std::uint64_t max) {
  if (!(value >= 0.0) || value != std::floor(value) ||
      value > static_cast<double>(max)) {
    bad(what + " must be an integer in [0, " + std::to_string(max) +
        "], got " + util::fmt_double(value));
  }
  return static_cast<std::uint64_t>(value);
}

Spec spec_from_clause(const util::SpecClause& c) {
  using Kind = Spec::Kind;
  const auto require = [&c](std::string_view key) {
    return c.require(key, kPrefix);
  };
  Spec s;
  s.node = c.index;
  if (c.kind == "uniform") {
    c.check_keys({"rate"}, kPrefix);
    s.kind = Kind::kUniform;
    s.rate = require("rate");
    check_probability(s.rate, "uniform rate");
  } else if (c.kind == "type") {
    c.check_keys({"data", "probe", "ack"}, kPrefix);
    s.kind = Kind::kTypeRates;
    s.type_rates.data = c.get("data").value_or(0.0);
    s.type_rates.probe = c.get("probe").value_or(0.0);
    s.type_rates.ack = c.get("ack").value_or(0.0);
    check_probability(s.type_rates.data, "type data");
    check_probability(s.type_rates.probe, "type probe");
    check_probability(s.type_rates.ack, "type ack");
  } else if (c.kind == "ack") {
    c.check_keys({"rate"}, kPrefix);
    s.kind = Kind::kAckOnly;
    s.rate = require("rate");
    check_probability(s.rate, "ack rate");
  } else if (c.kind == "corrupt") {
    c.check_keys({"rate"}, kPrefix);
    s.kind = Kind::kCorrupt;
    s.rate = require("rate");
    check_probability(s.rate, "corrupt rate");
  } else if (c.kind == "withhold") {
    c.check_keys({"rate", "release"}, kPrefix);
    s.rate = require("rate");
    check_probability(s.rate, "withhold rate");
    const auto release =
        as_count(c.get("release").value_or(0.0), "withhold release", 1);
    s.kind = release != 0 ? Kind::kWithholdRelease : Kind::kWithholdDrop;
  } else if (c.kind == "originfilter") {
    c.check_keys({"min"}, kPrefix);
    s.kind = Kind::kOriginFilter;
    s.min_origin =
        static_cast<std::uint8_t>(as_count(require("min"),
                                           "originfilter min", 255));
  } else if (c.kind == "burst") {
    c.check_keys({"burst", "period"}, kPrefix);
    s.kind = Kind::kBurst;
    s.burst_period = static_cast<std::uint32_t>(
        as_count(require("period"), "burst period", 1u << 30));
    if (s.burst_period == 0) bad("burst period must be >= 1");
    s.burst = static_cast<std::uint32_t>(
        as_count(require("burst"), "burst burst", s.burst_period));
  } else if (c.kind == "collude") {
    c.check_keys({"rate"}, kPrefix);
    s.kind = Kind::kFaultCollude;
    s.rate = require("rate");
    check_probability(s.rate, "collude rate");
  } else if (c.kind == "stealth") {
    c.check_keys({"margin"}, kPrefix);
    s.kind = Kind::kThresholdStealth;
    s.margin = require("margin");
    check_nonnegative(s.margin, "stealth margin");
  } else if (c.kind == "probeshy") {
    c.check_keys({"rate", "cooldown"}, kPrefix);
    s.kind = Kind::kProbeShy;
    s.rate = require("rate");
    s.cooldown_s = require("cooldown");
    check_probability(s.rate, "probeshy rate");
    check_nonnegative(s.cooldown_s, "probeshy cooldown");
  } else if (c.kind == "onoff") {
    c.check_keys({"rate", "on", "off"}, kPrefix);
    s.kind = Kind::kOnOff;
    s.rate = require("rate");
    s.on_s = require("on");
    s.off_s = require("off");
    check_probability(s.rate, "onoff rate");
    check_nonnegative(s.on_s, "onoff on");
    check_nonnegative(s.off_s, "onoff off");
    if (!(s.on_s + s.off_s > 0.0)) {
      bad("onoff needs on + off > 0");
    }
  } else {
    bad("unknown clause kind '" + c.kind +
        "' (expected uniform, type, ack, corrupt, withhold, originfilter, "
        "burst, collude, stealth, probeshy, or onoff)");
  }
  return s;
}

void append_spec(AdversaryPlan& plan, Spec spec) {
  for (const auto& existing : plan.specs) {
    if (existing.node == spec.node) {
      bad("duplicate clause for node " + std::to_string(spec.node) +
          " (at most one strategy per compromised node)");
    }
  }
  plan.specs.push_back(spec);
}

AdversaryPlan parse_json(std::string_view text) {
  std::string error;
  const auto doc = obs::json_parse(text, &error);
  if (!doc) bad("JSON parse error: " + error);
  const obs::JsonValue* clauses = &*doc;
  if (doc->is_object()) {
    clauses = doc->find("adversaries");
    if (clauses == nullptr || !clauses->is_array()) {
      bad("JSON object form needs an \"adversaries\" array member");
    }
  } else if (!doc->is_array()) {
    bad("JSON form must be an array of clause objects");
  }

  AdversaryPlan plan;
  for (const auto& entry : clauses->array) {
    if (!entry.is_object()) bad("JSON clause must be an object");
    util::SpecClause c;
    bool have_node = false;
    for (const auto& [key, value] : entry.object) {
      if (key == "kind") {
        if (!value.is_string()) bad("JSON clause \"kind\" must be a string");
        c.kind = value.string;
        continue;
      }
      if (!value.is_number()) {
        bad("JSON clause key '" + key + "' must be a number");
      }
      if (key == "node") {
        if (!(value.number >= 0.0)) bad("node must be >= 0");
        c.index = static_cast<std::size_t>(value.number);
        have_node = true;
        continue;
      }
      c.kv.emplace_back(key, value.number);
    }
    if (c.kind.empty()) bad("JSON clause is missing \"kind\"");
    if (!have_node) bad(c.kind + " JSON clause needs \"node\"");
    append_spec(plan, spec_from_clause(c));
  }
  return plan;
}

std::string fmt(double value) { return util::fmt_double(value); }

}  // namespace

std::string Spec::to_string() const {
  const std::string at = "@" + std::to_string(node) + ":";
  switch (kind) {
    case Kind::kUniform:
      return "uniform" + at + "rate=" + fmt(rate);
    case Kind::kTypeRates:
      return "type" + at + "data=" + fmt(type_rates.data) +
             ",probe=" + fmt(type_rates.probe) + ",ack=" + fmt(type_rates.ack);
    case Kind::kAckOnly:
      return "ack" + at + "rate=" + fmt(rate);
    case Kind::kCorrupt:
      return "corrupt" + at + "rate=" + fmt(rate);
    case Kind::kWithholdDrop:
      return "withhold" + at + "rate=" + fmt(rate) + ",release=0";
    case Kind::kWithholdRelease:
      return "withhold" + at + "rate=" + fmt(rate) + ",release=1";
    case Kind::kOriginFilter:
      return "originfilter" + at + "min=" + std::to_string(min_origin);
    case Kind::kBurst:
      return "burst" + at + "burst=" + std::to_string(burst) +
             ",period=" + std::to_string(burst_period);
    case Kind::kFaultCollude:
      return "collude" + at + "rate=" + fmt(rate);
    case Kind::kThresholdStealth:
      return "stealth" + at + "margin=" + fmt(margin);
    case Kind::kProbeShy:
      return "probeshy" + at + "rate=" + fmt(rate) +
             ",cooldown=" + fmt(cooldown_s);
    case Kind::kOnOff:
      return "onoff" + at + "rate=" + fmt(rate) + ",on=" + fmt(on_s) +
             ",off=" + fmt(off_s);
  }
  return {};
}

double Spec::mean_drop_rate(double cover_fraction,
                            double decision_threshold) const {
  switch (kind) {
    case Kind::kUniform:
    case Kind::kCorrupt:  // corrupted packets fail verification downstream
    case Kind::kWithholdDrop:
    case Kind::kWithholdRelease:
    case Kind::kProbeShy:
      return rate;
    case Kind::kTypeRates:
      return type_rates.data;
    case Kind::kAckOnly:
    case Kind::kOriginFilter:
      return 0.0;
    case Kind::kBurst:
      return burst_period == 0
                 ? 0.0
                 : static_cast<double>(burst) /
                       static_cast<double>(burst_period);
    case Kind::kFaultCollude:
      return rate * std::min(std::max(cover_fraction, 0.0), 1.0);
    case Kind::kThresholdStealth:
      return margin * decision_threshold;
    case Kind::kOnOff: {
      const double cycle = on_s + off_s;
      return cycle > 0.0 ? rate * on_s / cycle : 0.0;
    }
  }
  return 0.0;
}

AdversaryPlan AdversaryPlan::parse(std::string_view text) {
  const std::string_view trimmed = util::spec_trim(text);
  if (trimmed.empty()) return AdversaryPlan{};
  if (trimmed.front() == '[' || trimmed.front() == '{') {
    return parse_json(trimmed);
  }
  AdversaryPlan plan;
  for (const auto& clause : util::parse_compact_clauses(trimmed, kPrefix)) {
    append_spec(plan, spec_from_clause(clause));
  }
  return plan;
}

std::string AdversaryPlan::to_string() const {
  std::string out;
  for (const auto& spec : specs) {
    if (!out.empty()) out += ';';
    out += spec.to_string();
  }
  return out;
}

std::unique_ptr<Strategy> make_strategy(const Spec& spec,
                                        const Environment& env, Rng rng) {
  using Kind = Spec::Kind;
  switch (spec.kind) {
    case Kind::kUniform:
      return make_uniform_dropper(spec.rate, rng);
    case Kind::kTypeRates:
      return make_type_rate_dropper(spec.type_rates, rng);
    case Kind::kAckOnly:
      return make_ack_dropper(spec.rate, rng);
    case Kind::kCorrupt:
      return make_corrupter(spec.rate, rng);
    case Kind::kWithholdDrop:
      return make_withholder(spec.rate, /*release_on_probe=*/false, rng);
    case Kind::kWithholdRelease:
      return make_withholder(spec.rate, /*release_on_probe=*/true, rng);
    case Kind::kOriginFilter:
      return make_origin_filter_dropper(spec.min_origin, rng);
    case Kind::kBurst:
      return make_burst_dropper(spec.burst, spec.burst_period, rng);
    case Kind::kFaultCollude:
      return make_fault_colluder(spec.rate, env, rng);
    case Kind::kThresholdStealth:
      return make_threshold_stealth_dropper(spec.margin, env, rng);
    case Kind::kProbeShy:
      return make_probe_shy_dropper(spec.rate, spec.cooldown_s, env, rng);
    case Kind::kOnOff:
      return make_on_off_dropper(spec.rate, spec.on_s, spec.off_s, rng);
  }
  return nullptr;
}

}  // namespace paai::adversary
