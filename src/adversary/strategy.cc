#include "adversary/strategy.h"

namespace paai::adversary {

namespace {

class UniformDropper final : public Strategy {
 public:
  UniformDropper(double rate, Rng rng) : rate_(rate), rng_(rng) {}

  Action decide(const Context&) override {
    return rng_.bernoulli(rate_) ? Action::kDrop : Action::kForward;
  }

 private:
  double rate_;
  Rng rng_;
};

class TypeRateDropper final : public Strategy {
 public:
  TypeRateDropper(const TypeRates& rates, Rng rng)
      : rates_(rates), rng_(rng) {}

  Action decide(const Context& ctx) override {
    double rate = 0.0;
    switch (ctx.type) {
      case net::PacketType::kData:
        rate = rates_.data;
        break;
      case net::PacketType::kProbe:
      case net::PacketType::kFlRequest:
        rate = rates_.probe;
        break;
      case net::PacketType::kDestAck:
      case net::PacketType::kReportAck:
      case net::PacketType::kFlReport:
        rate = rates_.ack;
        break;
    }
    return rng_.bernoulli(rate) ? Action::kDrop : Action::kForward;
  }

 private:
  TypeRates rates_;
  Rng rng_;
};

class AckDropper final : public Strategy {
 public:
  AckDropper(double rate, Rng rng) : rate_(rate), rng_(rng) {}

  Action decide(const Context& ctx) override {
    const bool is_ack = ctx.type == net::PacketType::kDestAck ||
                        ctx.type == net::PacketType::kReportAck ||
                        ctx.type == net::PacketType::kFlReport;
    if (is_ack && rng_.bernoulli(rate_)) return Action::kDrop;
    return Action::kForward;
  }

 private:
  double rate_;
  Rng rng_;
};

class Corrupter final : public Strategy {
 public:
  Corrupter(double rate, Rng rng) : rate_(rate), rng_(rng) {}

  Action decide(const Context&) override {
    return rng_.bernoulli(rate_) ? Action::kCorrupt : Action::kForward;
  }

 private:
  double rate_;
  Rng rng_;
};

class Withholder final : public Strategy {
 public:
  Withholder(double rate, bool release_on_probe, Rng rng)
      : rate_(rate), release_on_probe_(release_on_probe), rng_(rng) {}

  Action decide(const Context& ctx) override {
    if (ctx.type == net::PacketType::kData &&
        ctx.dir == sim::Direction::kToDest && rng_.bernoulli(rate_)) {
      return Action::kWithhold;
    }
    return Action::kForward;
  }

  Action on_withheld_probe(const Context&) override {
    return release_on_probe_ ? Action::kForward : Action::kDrop;
  }

 private:
  double rate_;
  bool release_on_probe_;
  Rng rng_;
};

class BurstDropper final : public Strategy {
 public:
  BurstDropper(std::uint32_t burst, std::uint32_t period, Rng rng)
      : burst_(burst),
        period_(period == 0 ? 1 : period),
        phase_(rng.next_below(period == 0 ? 1 : period)) {}

  Action decide(const Context& ctx) override {
    if (ctx.type != net::PacketType::kData ||
        ctx.dir != sim::Direction::kToDest) {
      return Action::kForward;
    }
    const std::uint64_t pos = (counter_++ + phase_) % period_;
    return pos < burst_ ? Action::kDrop : Action::kForward;
  }

 private:
  std::uint32_t burst_;
  std::uint32_t period_;
  std::uint64_t phase_;
  std::uint64_t counter_ = 0;
};

class OriginFilterDropper final : public Strategy {
 public:
  // The decision is deterministic; the Rng is accepted for the uniform
  // factory signature and intentionally unused.
  OriginFilterDropper(std::uint8_t min_origin, Rng /*rng*/)
      : min_origin_(min_origin) {}

  Action decide(const Context& ctx) override {
    if (ctx.type != net::PacketType::kReportAck) {
      return Action::kForward;
    }
    const auto ack = net::ReportAck::decode(ctx.wire);
    if (!ack || ack->report.empty()) return Action::kForward;
    // First report byte = node index of the outermost contributor. For
    // independent acks that IS the origin; for onion reports it is merely
    // the adjacent wrapper and leaks nothing about the origin.
    return ack->report[0] >= min_origin_ ? Action::kDrop : Action::kForward;
  }

 private:
  std::uint8_t min_origin_;
};

}  // namespace

std::unique_ptr<Strategy> make_uniform_dropper(double drop_rate, Rng rng) {
  return std::make_unique<UniformDropper>(drop_rate, rng);
}

std::unique_ptr<Strategy> make_type_rate_dropper(const TypeRates& rates,
                                                 Rng rng) {
  return std::make_unique<TypeRateDropper>(rates, rng);
}

std::unique_ptr<Strategy> make_ack_dropper(double drop_rate, Rng rng) {
  return std::make_unique<AckDropper>(drop_rate, rng);
}

std::unique_ptr<Strategy> make_corrupter(double corrupt_rate, Rng rng) {
  return std::make_unique<Corrupter>(corrupt_rate, rng);
}

std::unique_ptr<Strategy> make_withholder(double withhold_rate,
                                          bool release_on_probe, Rng rng) {
  return std::make_unique<Withholder>(withhold_rate, release_on_probe, rng);
}

std::unique_ptr<Strategy> make_burst_dropper(std::uint32_t burst,
                                             std::uint32_t period, Rng rng) {
  return std::make_unique<BurstDropper>(burst, period, rng);
}

std::unique_ptr<Strategy> make_origin_filter_dropper(std::uint8_t min_origin,
                                                     Rng rng) {
  return std::make_unique<OriginFilterDropper>(min_origin, rng);
}

}  // namespace paai::adversary
