// Corollary 3 sensitivity study:
//   * full-ack / PAAI-1 detection is dominated by sigma; path length d and
//     natural loss rho have negligible influence;
//   * PAAI-2 detection degrades steeply with d.
// We sweep d and rho with measured Monte-Carlo detection, next to the
// Theorem-2 bounds.
#include <iostream>

#include "analysis/bounds.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

std::optional<std::uint64_t> measure_detection(
    protocols::ProtocolKind kind, std::size_t d, double rho,
    std::uint64_t packets, std::size_t runs, std::size_t jobs,
    obs::TraceRing* trace, const bench::BenchArgs& cli) {
  MonteCarloConfig mc;
  mc.jobs = jobs;
  mc.trace = trace;
  mc.base = paper_config(kind, packets, 0);
  mc.base.path.length = d;
  mc.base.path.natural_loss = rho;
  mc.base.link_faults.clear();
  // Keep the malicious link mid-path and its rate at rho + 0.02.
  const std::size_t target = d - 2;
  mc.base.link_faults.push_back(LinkFault{target, 0.02});
  // The decision threshold tracks the natural rate (the estimator reads a
  // malicious link at ~rho + 0.016).
  mc.base.decision_threshold = rho + 0.008;
  mc.base.checkpoints = log_checkpoints(200, packets, 12);
  mc.runs = runs;
  mc.seed0 = 1000;
  mc.malicious_links = {target};
  mc.sigma = 0.03;
  cli.apply_adversaries(mc);
  return run_monte_carlo(mc).detection_packets;
}

std::string fmt_detection(std::optional<std::uint64_t> v) {
  return v ? std::to_string(*v) : std::string("n/a");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_corollary3", argc, argv);
  const auto& args = session.args;
  bench::print_header("Corollary 3 — parameter sensitivity of detection",
                      "Corollary 3");

  analysis::Params ap;
  ap.alpha = 0.03;
  ap.sigma = 0.03;
  ap.p = 1.0 / 36.0;

  // -- PAAI-1 across d and rho: near-flat measured detection -------------
  std::printf("-- PAAI-1 measured detection (packets) across d and rho "
              "(bound in parentheses) --\n");
  Table p1({"d", "rho", "measured_pkts", "bound_pkts"});
  const std::size_t runs1 = args.runs_or(32);
  for (const std::size_t d : {std::size_t{4}, std::size_t{6},
                              std::size_t{8}}) {
    for (const double rho : {0.005, 0.01, 0.02}) {
      ap.d = d;
      ap.rho = rho;
      ap.alpha = rho + 0.02;
      std::fprintf(stderr, "[cor3] PAAI-1 d=%zu rho=%.3f...\n", d, rho);
      const auto measured = measure_detection(
          protocols::ProtocolKind::kPaai1, d, rho, args.scaled(140000),
          runs1, args.jobs, session.trace(), args);
      if (measured) {
        session.metric("paai1.d" + std::to_string(d) + ".rho" +
                           fmt_num(rho, 3),
                       static_cast<double>(*measured));
      }
      p1.row()
          .integer(static_cast<long long>(d))
          .num(rho, 3)
          .cell(fmt_detection(measured))
          .num(analysis::tau_paai1(ap), 3);
    }
  }
  p1.print(std::cout, args.csv);

  // -- sigma dominance (analytic; the measured criterion uses sigma
  //    directly, so the bound shows the scaling) --------------------------
  std::printf("\n-- sigma sensitivity (Theorem 2, PAAI-1, d=6, "
              "rho=0.01) --\n");
  Table ps({"sigma", "bound_pkts"});
  ap.d = 6;
  ap.rho = 0.01;
  ap.alpha = 0.03;
  for (const double sigma : {0.1, 0.03, 0.01, 0.003, 0.001}) {
    ap.sigma = sigma;
    ps.row().num(sigma, 4).num(analysis::tau_paai1(ap), 4);
  }
  ps.print(std::cout, args.csv);
  ap.sigma = 0.03;

  // -- PAAI-2 vs d: the 2^d wall ------------------------------------------
  std::printf("\n-- PAAI-2 detection vs d (measured + Theorem 2 bound) "
              "--\n");
  Table p2({"d", "measured_pkts", "bound_pkts"});
  const std::size_t runs2 = args.runs_or(32) / 2;
  for (const std::size_t d : {std::size_t{4}, std::size_t{6},
                              std::size_t{8}}) {
    ap.d = d;
    std::fprintf(stderr, "[cor3] PAAI-2 d=%zu...\n", d);
    const auto measured = measure_detection(
        protocols::ProtocolKind::kPaai2, d, 0.01,
        args.scaled(d <= 6 ? 600000 : 1200000), runs2, args.jobs,
        session.trace(), args);
    if (measured) {
      session.metric("paai2.d" + std::to_string(d),
                     static_cast<double>(*measured));
    }
    p2.row()
        .integer(static_cast<long long>(d))
        .cell(fmt_detection(measured))
        .num(analysis::tau_paai2(ap), 4);
  }
  p2.print(std::cout, args.csv);

  std::printf("\nshape checks: the PAAI-1 column barely moves across the "
              "d/rho grid while its bound scales ~1/eps^2 with sigma. "
              "PAAI-2 stays far below its 2^d bound at every d: the bound "
              "is driven by the paper's coarse interval scoring, while our "
              "source-side per-selection estimator converges polynomially "
              "(a measured refinement of Corollary 3, recorded in "
              "EXPERIMENTS.md).\n");
  return 0;
}
