// Theorem 1 / Corollary 2, measured.
//
// Part 1 (Theorem 1): a single malicious link sweeps its drop rate; we
// measure the ground-truth damage it inflicts and how fast PAAI-1 convicts
// it. Below the per-link threshold alpha it hides (bounded damage z*alpha);
// above it, detection time collapses — the protocol enforces exactly the
// damage bound of Theorem 1(a).
//
// Part 2 (Corollary 2): a fixed budget of z = 3 malicious links, placed
// either concentrated on one path or spread one-per-path across three
// paths. Spreading maximizes total undetected damage (~linear in z), and
// every touched path still convicts its malicious link.
#include <cmath>
#include <iostream>

#include "analysis/bounds.h"
#include "bench_common.h"
#include "runner/fleet.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

int main(int argc, char** argv) {
  bench::BenchSession session("bench_theorem1", argc, argv);
  const auto& args = session.args;
  bench::print_header("Theorem 1 / Corollary 2 — damage bounds, measured",
                      "Theorem 1, Corollaries 1-2");

  // ---- Part 1: drop-rate sweep on l_4 (PAAI-1) --------------------------
  const std::size_t runs = args.runs_or(16);
  Table sweep({"malicious_extra_rate", "true_l4_loss", "delivery",
               "damage_vs_clean", "detect_pkts", "verdict"});
  const double clean_delivery = [&] {
    MonteCarloConfig mc;
    mc.base = paper_config(protocols::ProtocolKind::kPaai1, 30000, 0);
    mc.base.link_faults.clear();
    const auto r = run_experiment(mc.base);
    return r.ground_truth_delivery;
  }();

  for (const double extra : {0.005, 0.02, 0.05, 0.1, 0.2}) {
    std::fprintf(stderr, "[thm1] extra=%.3f...\n", extra);
    MonteCarloConfig mc;
    mc.base = paper_config(protocols::ProtocolKind::kPaai1,
                           args.scaled(150000), 0);
    mc.base.link_faults = {LinkFault{4, extra}};
    mc.base.checkpoints = log_checkpoints(1000, mc.base.params.total_packets,
                                          12);
    args.apply_adversaries(mc);
    mc.runs = runs;
    mc.seed0 = 1000;
    mc.jobs = args.jobs;
    mc.malicious_links = {4};
    mc.trace = session.trace();
    const MonteCarloResult agg = run_monte_carlo(mc);
    if (agg.detection_packets) {
      session.metric("sweep.rate" + fmt_num(extra, 3) + ".detection_packets",
                     static_cast<double>(*agg.detection_packets));
    }

    // One representative run for the ground-truth columns.
    ExperimentConfig one = mc.base;
    one.path.seed = 77;
    const ExperimentResult r = run_experiment(one);

    sweep.row()
        .num(extra, 3)
        .num(r.true_link_loss[4], 4)
        .num(r.ground_truth_delivery, 4)
        .num(clean_delivery - r.ground_truth_delivery, 4)
        .cell(agg.detection_packets ? std::to_string(*agg.detection_packets)
                                    : "not in budget")
        .cell(agg.detection_packets
                  ? "convicted"
                  : (extra <= 0.02 ? "hiding (damage <= alpha bound)"
                                   : "needs more packets"));
  }
  std::printf("-- Theorem 1: single malicious link l_4, rate sweep "
              "(alpha = 0.03, threshold between rho and alpha) --\n");
  sweep.print(std::cout, args.csv);
  std::printf("reading: below/at alpha the link blends into the threshold "
              "band — its damage is bounded by ~alpha = 0.03 of the "
              "path's traffic; past alpha, conviction accelerates "
              "sharply.\n\n");

  // ---- Part 2: Corollary 2 placement comparison -------------------------
  // At the stealth rate (alpha) the spread-vs-concentrated difference is
  // second-order (~C(z,2) alpha^2), so we average several fleet seeds and
  // additionally show an exaggerated rate where the concavity of
  // 1-(1-x)^z is visible to the naked eye.
  Table fleet({"placement", "rate/link", "total_damage(avg)",
               "analytic", "all_malicious_convicted", "honest_framed"});
  const std::size_t fleet_reps = std::max<std::size_t>(args.runs_or(16) / 2, 4);
  for (const double rate : {0.02, 0.15}) {
    for (const bool is_spread : {true, false}) {
      FleetConfig cfg;
      cfg.base = paper_config(protocols::ProtocolKind::kPaai1,
                              args.scaled(60000), 0);
      cfg.jobs = args.jobs;
      cfg.base.link_faults.clear();
      if (is_spread) {
        cfg.paths = {{LinkFault{4, rate}},
                     {LinkFault{2, rate}},
                     {LinkFault{3, rate}},
                     {}};
      } else {
        cfg.paths = {{LinkFault{2, rate}, LinkFault{3, rate},
                      LinkFault{4, rate}},
                     {},
                     {},
                     {}};
      }
      std::fprintf(stderr, "[cor2] %s rate=%.2f...\n",
                   is_spread ? "spread" : "concentrated", rate);
      RunningStat damage;
      bool all_convicted = true;
      bool framed = false;
      for (std::size_t rep = 0; rep < fleet_reps; ++rep) {
        cfg.seed0 = 9000 + rep * 101;
        const FleetResult fr = run_fleet(cfg);
        damage.add(fr.total_damage);
        for (const auto& p : fr.paths) {
          if (!p.malicious.empty()) {
            all_convicted &= p.all_malicious_convicted;
          }
          framed |= p.any_honest_convicted;
        }
      }
      // Analytic damage under independent per-traversal loss, relative to
      // the natural baseline (the (1-rho) factors cancel to first order).
      const double z = 3.0;
      const double analytic =
          is_spread ? z * rate : 1.0 - std::pow(1.0 - rate, z);
      session.metric(std::string("cor2.") +
                         (is_spread ? "spread" : "concentrated") + ".rate" +
                         fmt_num(rate, 3) + ".damage",
                     damage.mean());
      fleet.row()
          .cell(is_spread ? "spread (1 link/path, 3 paths)"
                          : "concentrated (3 links, 1 path)")
          .num(rate, 3)
          .num(damage.mean(), 4)
          .num(analytic, 4)
          .cell(all_convicted ? "yes" : "NO")
          .cell(framed ? "YES" : "no");
    }
  }
  std::printf("-- Corollary 2: z = 3 malicious links, placement "
              "comparison (4 paths, d = 6, %zu fleet seeds) --\n",
              fleet_reps);
  fleet.print(std::cout, args.csv);
  std::printf("reading: total damage grows ~linearly in z when the links "
              "are spread one-per-path (the adversary's optimal "
              "deployment), while concentration compounds drops on one "
              "path for strictly less total loss — clearly visible at the "
              "exaggerated rate. Either way, every touched path localizes "
              "its malicious links.\n");
  return 0;
}
