// Figure 2(c): PAAI-2 false positive/negative vs packets sent.
#include "fig2_common.h"

int main(int argc, char** argv) {
  return paai::bench::run_fig2(argc, argv,
                               paai::protocols::ProtocolKind::kPaai2,
                               "Figure 2(c) — PAAI-2 FP/FN", 1000000, 24,
                               10000);
}
