// Mesh-fleet scale bench (src/mesh): cross-path score aggregation at up
// to 1M simultaneous paths over one shared topology.
//
// Reports the three quantities the mesh design is accountable for:
//
//   paths/s      stat-engine throughput of the sharded fan-out
//                (machine-dependent, like bench_micro's timings —
//                cross-snapshot gates should ignore it);
//   store bytes  peak score-store memory = aggregated store + one
//                in-flight shard per worker, and bytes per link — the
//                O(links) claim, independent of the path count;
//   detection    units-per-path percentiles at which malicious links'
//                cumulative cross-path evidence first convicted.
//
// The deterministic metrics (links, units, convictions, damage,
// detection percentiles, store bytes) are stable and diffable. A small
// prologue run double-checks the --jobs bit-identity contract before the
// big run spends any time.
//
// Extra flags beyond bench_common's: --topo=SPEC (topology grammar, see
// docs/MESH.md), --paths=N, --units=N, --rounds=N, --blame=MODE
// (conviction rule over the merged evidence — docs/DETECTORS.md; rounds
// are the mesh's windows, so windowed/hybrid W is ignored).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "mesh/runner.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::mesh;

namespace {

using Clock = std::chrono::steady_clock;

/// Exact-equality digest of everything a MeshResult derives from the
/// evidence; any cross-jobs divergence shows up here.
std::string digest(const MeshResult& r) {
  std::string d;
  for (const auto& row : r.links) {
    d += std::to_string(row.units) + "," + std::to_string(row.blames) + "," +
         std::to_string(row.solo_convictions) + "," +
         std::to_string(row.first_convicted_units) + "," +
         (row.convicted ? "C" : ".") + ";";
  }
  char damage[64];
  std::snprintf(damage, sizeof damage, "%a", r.total_damage);  // bit-exact
  d += damage;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_mesh", argc, argv);
  const auto& args = session.args;
  bench::print_header("Mesh fleet — cross-path aggregation at scale",
                      "Corollary 2 at mesh scale; src/mesh design notes "
                      "in docs/MESH.md");

  MeshConfig cfg;
  cfg.topo =
      Topology::parse(flag_str(argc, argv, "--topo").value_or("fattree@16"));
  const auto n_paths = static_cast<std::size_t>(
      flag_or_env(argc, argv, "--paths", "PAAI_MESH_PATHS",
                  static_cast<long long>(args.scaled(1000000))));
  cfg.engine = MeshEngine::kStat;
  cfg.units_per_path = static_cast<std::uint64_t>(
      flag_or_env(argc, argv, "--units", "PAAI_MESH_UNITS", 2000));
  cfg.rounds = static_cast<std::size_t>(
      flag_or_env(argc, argv, "--rounds", "PAAI_MESH_ROUNDS", 8));
  cfg.natural_loss = 0.01;
  cfg.decision_threshold = 0.02;
  cfg.blame = protocols::BlameSpec::parse(
      flag_str(argc, argv, "--blame").value_or("margin"));
  // Default adversary: one compromised core straddling a large share of
  // the inter-pod paths — the cross-path union scenario.
  cfg.adversaries = args.adversaries.empty()
                        ? adversary::AdversaryPlan::parse(
                              "uniform@0:rate=0.03")
                        : args.adversaries;
  cfg.faults = args.faults;
  cfg.seed0 = 424242;
  cfg.jobs = args.jobs;
  cfg.paths = cfg.topo.enumerate_paths(n_paths, /*seed=*/7);

  // Prologue: the bit-identity contract on a trimmed copy of the same
  // scenario (jobs=1 vs the requested pool). Cheap insurance before the
  // full-scale run.
  {
    MeshConfig probe = cfg;
    probe.paths = cfg.topo.enumerate_paths(
        std::min<std::size_t>(n_paths, 20000), /*seed=*/7);
    probe.jobs = 1;
    const std::string serial = digest(run_mesh(probe));
    probe.jobs = args.jobs;
    const std::string pooled = digest(run_mesh(probe));
    if (serial != pooled) {
      std::fprintf(stderr,
                   "bench_mesh: --jobs bit-identity violated:\n  jobs=1: "
                   "%s\n  jobs=N: %s\n",
                   serial.c_str(), pooled.c_str());
      return 2;
    }
    std::fprintf(stderr, "[mesh] jobs bit-identity probe OK (%zu paths)\n",
                 probe.paths.size());
  }

  std::fprintf(stderr, "[mesh] %s: %zu paths x %llu units, rounds=%zu...\n",
               cfg.topo.to_string().c_str(), cfg.paths.size(),
               static_cast<unsigned long long>(cfg.units_per_path),
               cfg.rounds);
  const auto t0 = Clock::now();
  const MeshResult r = run_mesh(cfg);
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double paths_per_s = static_cast<double>(r.paths) / wall;
  // Peak = aggregated store + one in-flight shard per worker (worker
  // count is a machine property; the per-link figure uses the
  // deterministic store alone so it diffs across machines).
  const std::size_t peak_bytes =
      r.store_bytes + r.shard_bytes * (r.exec.jobs > 0 ? r.exec.jobs : 1);
  const double bytes_per_link =
      static_cast<double>(r.store_bytes) /
      static_cast<double>(cfg.topo.num_links());

  Table t({"topology", "paths", "links", "wall_s", "paths_per_s",
           "peak_store_B", "B_per_link", "convicted", "false_acc",
           "det_p50", "det_p99"});
  t.row()
      .cell(cfg.topo.to_string())
      .integer(static_cast<long long>(r.paths))
      .integer(static_cast<long long>(cfg.topo.num_links()))
      .num(wall, 2)
      .num(paths_per_s, 0)
      .integer(static_cast<long long>(peak_bytes))
      .num(bytes_per_link, 1)
      .integer(static_cast<long long>(r.convicted.size()))
      .integer(static_cast<long long>(r.false_accusations))
      .num(r.detection_units_p50, 0)
      .num(r.detection_units_p99, 0);
  t.print(std::cout, args.csv);

  session.arg("paths", static_cast<long long>(r.paths));
  session.arg("units_per_path", static_cast<long long>(cfg.units_per_path));
  session.info("topology", cfg.topo.to_string());
  session.info("adversary", cfg.adversaries.to_string());
  session.info("blame", cfg.blame.to_string());
  // Deterministic metrics (diffable across machines).
  session.metric("mesh.links", static_cast<double>(cfg.topo.num_links()));
  session.metric("mesh.total_units", static_cast<double>(r.total_units));
  session.metric("mesh.convicted", static_cast<double>(r.convicted.size()));
  session.metric("mesh.false_accusations",
                 static_cast<double>(r.false_accusations));
  session.metric("mesh.missed_malicious",
                 static_cast<double>(r.missed_malicious));
  session.metric("mesh.total_damage", r.total_damage);
  session.metric("mesh.detection_units_p50", r.detection_units_p50);
  session.metric("mesh.detection_units_p90", r.detection_units_p90);
  session.metric("mesh.detection_units_p99", r.detection_units_p99);
  session.metric("mesh.store_bytes", static_cast<double>(r.store_bytes));
  session.metric("mesh.bytes_per_link", bytes_per_link);
  // Machine metrics (throughput — ignore in cross-snapshot gates).
  session.metric("mesh.paths_per_s", paths_per_s);
  session.metric("mesh.peak_store_bytes", static_cast<double>(peak_bytes));
  session.exec(r.exec);

  if (r.false_accusations != 0) {
    std::fprintf(stderr, "bench_mesh: %zu false accusations\n",
                 r.false_accusations);
    return 1;
  }
  return 0;
}
