// Shared implementation for the three Figure 2 benches: false-positive and
// false-negative rates vs number of packets sent (log-spaced grid), for
// one protocol on the reference path (d = 6, rho = 0.01, malicious l_4 at
// ~alpha = 0.03).
#pragma once

#include <iostream>

#include "bench_common.h"
#include "util/csv.h"
#include "util/stats.h"

namespace paai::bench {

inline int run_fig2(int argc, char** argv, protocols::ProtocolKind kind,
                    const char* fig_name, std::uint64_t default_packets,
                    std::size_t default_runs,
                    std::uint64_t first_checkpoint) {
  BenchSession session(fig_name, argc, argv);
  const auto& args = session.args;
  const std::size_t runs = args.runs_or(default_runs);
  const std::uint64_t packets = args.scaled(default_packets);
  session.info("protocol", protocols::protocol_name(kind));
  session.arg("packets", static_cast<long long>(packets));

  print_header(fig_name,
               "Figure 2: false positive/negative vs packets sent");
  std::printf("protocol=%s runs=%zu packets=%llu (paper used 10000 runs; "
              "--runs=N or PAAI_RUNS to scale)\n\n",
              protocols::protocol_name(kind), runs,
              static_cast<unsigned long long>(packets));

  const auto mc = detection_curve(kind, packets, runs, 18, first_checkpoint,
                                  args.jobs, session.trace(), &args);
  session.exec(mc.exec);

  Table table({"packets_sent", "false_positive", "false_negative",
               "fp_ci95", "fn_ci95"});
  for (const auto& pt : mc.curve) {
    table.row()
        .integer(static_cast<long long>(pt.packets))
        .num(pt.fp, 4)
        .num(pt.fn, 4)
        .num(wilson_halfwidth(pt.fp, runs), 3)
        .num(wilson_halfwidth(pt.fn, runs), 3);
  }
  table.print(std::cout, args.csv);

  if (mc.detection_packets) {
    std::printf("\nconverged (FP, FN <= 0.03) at %llu packets = %.2f min "
                "@100 pkt/s\n",
                static_cast<unsigned long long>(*mc.detection_packets),
                static_cast<double>(*mc.detection_packets) / 6000.0);
  } else {
    std::printf("\nnot converged within the packet budget\n");
  }
  std::printf("per-run stable conviction: mean %.0f packets (sd %.0f, "
              "%zu/%zu runs)\n",
              mc.per_run_detection_packets.mean(),
              mc.per_run_detection_packets.stddev(),
              mc.per_run_detection_packets.count(), runs);
  if (!mc.detection_samples.empty()) {
    std::printf("convergence timeline: p50 %.0f  p90 %.0f  p99 %.0f "
                "packets-to-detection\n",
                mc.detection_p50, mc.detection_p90, mc.detection_p99);
  }
  std::printf("final theta estimates (mean over runs):");
  for (std::size_t i = 0; i < mc.final_thetas.size(); ++i) {
    std::printf(" l_%zu=%.4f", i, mc.final_thetas[i].mean());
  }
  std::printf("\n");

  if (mc.detection_packets) {
    session.metric("detection_packets",
                   static_cast<double>(*mc.detection_packets));
  }
  session.metric("per_run_detection_packets_mean",
                 mc.per_run_detection_packets.mean());
  if (!mc.detection_samples.empty()) {
    session.metric("detection_packets_p50", mc.detection_p50);
    session.metric("detection_packets_p90", mc.detection_p90);
    session.metric("detection_packets_p99", mc.detection_p99);
  }
  session.metric("final_fp", mc.curve.empty() ? 0.0 : mc.curve.back().fp);
  session.metric("final_fn", mc.curve.empty() ? 0.0 : mc.curve.back().fn);
  session.metric("final_e2e_rate", mc.final_e2e_rate.mean());
  session.metric("overhead_bytes_ratio", mc.overhead_bytes_ratio.mean());
  return 0;
}

}  // namespace paai::bench
