// Footnote 1, measured: the asymmetric-crypto AAI variant (W-OTS signed
// acks) against the symmetric full-ack scheme and PAAI-1. Detection works,
// but the per-packet communication and computation overheads are what the
// paper says they are — prohibitive.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "crypto/wots.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

int main(int argc, char** argv) {
  bench::BenchSession session("bench_asymmetric", argc, argv);
  const auto& args = session.args;
  bench::print_header("Footnote 1 — the asymmetric-crypto AAI variant",
                      "footnote 1's overhead claim");

  struct Plan {
    protocols::ProtocolKind kind;
    const char* name;
    std::uint64_t packets;
  };
  const Plan plans[] = {
      {protocols::ProtocolKind::kSigAck, "sig-ack (W-OTS)",
       args.scaled(2500)},
      {protocols::ProtocolKind::kFullAck, "full-ack (MAC)",
       args.scaled(2500)},
      {protocols::ProtocolKind::kPaai1, "PAAI-1 (MAC)", args.scaled(60000)},
  };

  Table table({"protocol", "ctrl_bytes/data_byte", "ctrl_pkts/data",
               "cpu_us/pkt(sim)", "convicted", "ack_bytes"});
  for (const Plan& plan : plans) {
    ExperimentConfig cfg = paper_config(plan.kind, plan.packets, 0);
    cfg.crypto = crypto::CryptoKind::kReal;  // honest crypto cost
    cfg.params.send_rate_pps = 500.0;
    args.apply_adversaries(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    const ExperimentResult r = run_experiment(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double us_per_pkt =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(r.packets_sent);

    std::string convicted;
    for (const auto l : r.final_convicted) {
      convicted += "l_" + std::to_string(l) + " ";
    }
    const std::string prefix = std::string(plan.name) + ".";
    session.metric(prefix + "overhead_bytes_ratio", r.overhead_bytes_ratio);
    session.metric(prefix + "overhead_packets_ratio",
                   r.overhead_packets_ratio);
    session.metric(prefix + "cpu_us_per_pkt", us_per_pkt);
    table.row()
        .cell(plan.name)
        .num(r.overhead_bytes_ratio, 4)
        .num(r.overhead_packets_ratio, 4)
        .num(us_per_pkt, 2)
        .cell(convicted.empty() ? "-" : convicted)
        .cell(plan.kind == protocols::ProtocolKind::kSigAck
                  ? std::to_string(crypto::kWotsSignatureSize) + " (sig)"
                  : "8 (MAC)");
  }
  table.print(std::cout, args.csv);
  std::printf("\nreading: every protocol localizes l_4; the signature "
              "variant pays >100%% byte overhead (a 2.1 KB signature per "
              "ack vs 8-byte MACs) and two orders of magnitude more "
              "CPU — footnote 1's dismissal, quantified.\n");
  return 0;
}
