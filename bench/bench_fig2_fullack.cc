// Figure 2(a): full-ack false positive/negative vs packets sent.
#include "fig2_common.h"

int main(int argc, char** argv) {
  return paai::bench::run_fig2(argc, argv,
                               paai::protocols::ProtocolKind::kFullAck,
                               "Figure 2(a) — full-ack FP/FN", 6000, 300,
                               50);
}
