// Figure 3(c): storage overhead at different path positions (F_1, F_3,
// F_5) under the full-ack scheme, with the malicious node's rate enlarged
// to 0.1, 2000 packets at 1000 pkt/s, adversary bypassed after 1000
// packets. Expected shape (paper): nodes closer to the destination hold
// less state and are less affected by the adversarial drops; the bypass
// visibly deflates all curves.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

int main(int argc, char** argv) {
  bench::BenchSession session("bench_fig3c_positions", argc, argv);
  const auto& args = session.args;
  bench::print_header("Figure 3(c) — storage by path position (full-ack)",
                      "Figure 3(c)");
  const std::size_t runs = args.runs_or(40);

  MonteCarloConfig mc;
  mc.base = paper_config(protocols::ProtocolKind::kFullAck, 2000, 0);
  mc.base.params.send_rate_pps = 1000.0;
  // "we enlarge the drop rate of F_4 to 0.1"
  mc.base.link_faults.clear();
  mc.base.link_faults.push_back(LinkFault{4, 0.1});
  mc.base.bypass_after_packets = 1000;
  mc.base.storage_sample_period = sim::milliseconds(1.0);
  args.apply_adversaries(mc);
  mc.runs = runs;
  mc.seed0 = 5000;
  mc.jobs = args.jobs;
  mc.storage_bins = 50;
  mc.storage_horizon_seconds = 2.2;
  mc.trace = session.trace();

  std::fprintf(stderr, "[fig3c] full-ack, l_4 at 0.1, bypass @1000, "
               "%zu runs...\n", runs);
  const MonteCarloResult result = run_monte_carlo(mc);
  session.exec(result.exec);

  Table table({"time_s", "F1_storage", "F3_storage", "F5_storage"});
  for (std::size_t i = 0; i < result.storage_grids[1].size(); ++i) {
    table.row()
        .num(result.storage_grids[1].x(i), 3)
        .num(result.storage_grids[1].stat(i).mean(), 2)
        .num(result.storage_grids[3].stat(i).mean(), 2)
        .num(result.storage_grids[5].stat(i).mean(), 2);
  }
  table.print(std::cout, args.csv);

  // Summary statistics for the shape checks.
  auto avg_range = [&](std::size_t node, double t0, double t1) {
    RunningStat s;
    const auto& g = result.storage_grids[node];
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (g.x(i) >= t0 && g.x(i) < t1) s.add(g.stat(i).mean());
    }
    return s.mean();
  };
  std::printf("\nmean storage, attack phase (0.2-1.0s):  F1=%.2f F3=%.2f "
              "F5=%.2f\n",
              avg_range(1, 0.2, 1.0), avg_range(3, 0.2, 1.0),
              avg_range(5, 0.2, 1.0));
  std::printf("mean storage, after bypass (1.2-2.0s): F1=%.2f F3=%.2f "
              "F5=%.2f\n",
              avg_range(1, 1.2, 2.0), avg_range(3, 1.2, 2.0),
              avg_range(5, 1.2, 2.0));

  session.metric("attack_phase.f1", avg_range(1, 0.2, 1.0));
  session.metric("attack_phase.f3", avg_range(3, 0.2, 1.0));
  session.metric("attack_phase.f5", avg_range(5, 0.2, 1.0));
  session.metric("after_bypass.f1", avg_range(1, 1.2, 2.0));
  session.metric("after_bypass.f3", avg_range(3, 1.2, 2.0));
  session.metric("after_bypass.f5", avg_range(5, 1.2, 2.0));
  return 0;
}
