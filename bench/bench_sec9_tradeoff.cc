// §9 practicality claims for PAAI-1 at p = 1/(5 d^2):
//   * ~3% additional communication overhead on a d = 6 path;
//   * detection bound ~45 minutes, average ~20 minutes at 100 pkt/s;
//   * storage below ~45 KB peak at 1.5 MB/s (1000 x 1.5 KB pkt/s) and
//     ~6 KB peak at 150 KB/s, assuming 1.5 KB data packets.
#include <iostream>

#include "analysis/bounds.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

int main(int argc, char** argv) {
  bench::BenchSession session("bench_sec9_tradeoff", argc, argv);
  const auto& args = session.args;
  bench::print_header("§9 — PAAI-1 practicality at p = 1/(5 d^2)",
                      "§9 'Practicality' paragraph (b)");

  const double p_small = 1.0 / (5.0 * 36.0);

  analysis::Params ap;
  ap.d = 6;
  ap.rho = 0.01;
  ap.alpha = 0.03;
  ap.sigma = 0.03;
  ap.p = p_small;
  const double bound_pkts = analysis::tau_paai1(ap);
  std::printf("analytic: comm overhead p*d = %.3f ctrl pkts/data pkt; "
              "detection bound = %.0f packets = %.1f min @100 pps "
              "(paper: ~3%%, 45 min)\n\n",
              analysis::comm_paai1(ap), bound_pkts,
              analysis::detection_minutes(bound_pkts, 100.0));

  // Measured: detection + overhead.
  const std::size_t runs = args.runs_or(24);
  const std::uint64_t packets = args.scaled(700000);
  MonteCarloConfig mc;
  mc.base = paper_config(protocols::ProtocolKind::kPaai1, packets, 0);
  mc.base.params.probe_probability = p_small;
  mc.base.params.payload_size = 1500;  // "each data packet is 1.5KB"
  mc.base.checkpoints = log_checkpoints(5000, packets, 14);
  args.apply_adversaries(mc);
  mc.runs = runs;
  mc.seed0 = 1000;
  mc.jobs = args.jobs;
  mc.trace = session.trace();
  std::fprintf(stderr, "[sec9] detection run: %zu x %llu packets...\n",
               runs, static_cast<unsigned long long>(packets));
  const MonteCarloResult det = run_monte_carlo(mc);
  session.exec(det.exec);
  session.metric("comm_overhead_bytes_ratio",
                 det.overhead_bytes_ratio.mean());
  session.metric("comm_overhead_packets_ratio",
                 det.overhead_packets_ratio.mean());
  if (det.detection_packets) {
    session.metric("detection_packets",
                   static_cast<double>(*det.detection_packets));
  }
  session.metric("per_run_detection_packets_mean",
                 det.per_run_detection_packets.mean());

  Table table({"metric", "measured", "paper"});
  table.row()
      .cell("comm overhead (bytes ratio)")
      .num(det.overhead_bytes_ratio.mean(), 4)
      .cell("~0.03");
  table.row()
      .cell("comm overhead (ctrl pkts/data)")
      .num(det.overhead_packets_ratio.mean(), 4)
      .cell("~0.033");
  table.row()
      .cell("detection, curve (min @100pps)")
      .num(det.detection_packets
               ? static_cast<double>(*det.detection_packets) / 6000.0
               : -1.0,
           3)
      .cell("~20 (avg) / 45 (bound)");
  table.row()
      .cell("detection, per-run mean (min)")
      .num(det.per_run_detection_packets.mean() / 6000.0, 3)
      .cell("~20");

  // Storage peaks at the two rates (KB, 1.5 KB packets).
  for (const double rate : {1000.0, 100.0}) {
    MonteCarloConfig smc;
    smc.base = paper_config(protocols::ProtocolKind::kPaai1, 4000, 0);
    smc.base.params.probe_probability = p_small;
    smc.base.params.payload_size = 1500;
    smc.base.params.send_rate_pps = rate;
    smc.base.storage_sample_period = sim::milliseconds(1000.0 / rate);
    smc.runs = std::max<std::size_t>(runs / 4, 4);
    smc.seed0 = 8000;
    smc.jobs = args.jobs;
    smc.storage_bins = 40;
    smc.storage_horizon_seconds = 4000.0 / rate;
    std::fprintf(stderr, "[sec9] storage run @%g pps...\n", rate);
    const MonteCarloResult st = run_monte_carlo(smc);
    double peak = 0.0;
    for (std::size_t i = 0; i < st.storage_grids[1].size(); ++i) {
      peak = std::max(peak, st.storage_grids[1].stat(i).mean());
    }
    table.row()
        .cell(std::string("F_1 peak storage KB @") +
              fmt_num(rate * 1.5, 4) + "KB/s")
        .num(peak * 1.5, 2)
        .cell(rate > 500 ? "<45" : "~6");
    session.metric("f1_peak_storage_kb." + fmt_num(rate, 4) + "pps",
                   peak * 1.5);
  }

  table.print(std::cout, args.csv);
  return 0;
}
