// Table 1: detection rate and overhead comparison across all six
// protocols, evaluated from the closed forms of §7 at the paper's
// reference parameters (sigma = 0.03, rho = 0.01, alpha = 0.03, d = 6,
// p = 1/d^2), plus the §7.2 worked example.
#include <cmath>
#include <iostream>

#include "analysis/bounds.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::analysis;

int main(int argc, char** argv) {
  bench::BenchSession session("bench_table1", argc, argv);
  const auto& args = session.args;
  bench::print_header("Table 1 — detection rate and overhead comparison",
                      "Table 1 and the worked example of §7.2");

  Params p;
  p.d = 6;
  p.rho = 0.01;
  p.alpha = 0.03;
  p.sigma = 0.03;
  p.p = 1.0 / 36.0;
  p.psi = 0.077;  // end-to-end natural loss for the overhead columns

  std::printf("parameters: d=%zu rho=%.3f alpha=%.3f sigma=%.3f p=1/36 "
              "psi=%.3f nu=100 pkt/s\n\n",
              p.d, p.rho, p.alpha, p.sigma, p.psi);

  struct Row {
    const char* name;
    double tau;
    double comm;
    StorageBound storage;
  };
  const Row rows[] = {
      {"Full-ack", tau_fullack(p), comm_fullack(p), storage_fullack(p)},
      {"PAAI-1", tau_paai1(p), comm_paai1(p), storage_paai1(p)},
      {"PAAI-2", tau_paai2(p), comm_paai2(p), storage_paai2(p)},
      {"Statistical FL", tau_statfl(p), comm_statfl(p), storage_statfl(p)},
      {"Combination 1", tau_comb1(p), comm_comb1(p), storage_comb1(p)},
      {"Combination 2", tau_comb2(p), comm_comb2(p), storage_comb2(p)},
  };

  Table table({"protocol", "detection_rate_pkts", "detection_minutes@100pps",
               "comm_ctrl_pkts_per_data", "storage_worst_r0nu",
               "storage_ideal_r0nu"});
  for (const Row& r : rows) {
    table.row()
        .cell(r.name)
        .num(r.tau, 3)
        .num(detection_minutes(r.tau, 100.0), 3)
        .num(r.comm, 3)
        .num(r.storage.worst, 3)
        .num(r.storage.ideal, 3);
  }
  table.print(std::cout, args.csv);

  std::printf("\n§7.2 worked example (paper: tau_1=1500, tau_2=5e4, "
              "tau_3=6e5, statistical FL=2e7):\n");
  std::printf("  tau_1 (full-ack)      = %.0f\n", tau_fullack(p));
  std::printf("  tau_2 (PAAI-1)        = %.0f\n", tau_paai1(p));
  std::printf("  tau_3 (PAAI-2)        = %.0f\n", tau_paai2(p));
  std::printf("  tau    (stat. FL)     = %.3g\n", tau_statfl(p));

  std::printf("\nTheorem 1 — maximum undetected malicious end-to-end drop "
              "rate (z compromised links):\n");
  Table t1({"z", "full-ack/PAAI-1 (z*alpha)", "PAAI-2"});
  for (std::size_t z = 1; z <= 4; ++z) {
    t1.row()
        .integer(static_cast<long long>(z))
        .num(zeta_onion(z, p), 4)
        .num(zeta_paai2(z, p), 4);
  }
  t1.print(std::cout, args.csv);
  std::printf("PAAI-2 end-to-end threshold psi_th = %.4f\n",
              psi_threshold(p));

  session.metric("tau_fullack", tau_fullack(p));
  session.metric("tau_paai1", tau_paai1(p));
  session.metric("tau_paai2", tau_paai2(p));
  session.metric("tau_statfl", tau_statfl(p));
  session.metric("psi_threshold", psi_threshold(p));
  return 0;
}
