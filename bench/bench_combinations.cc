// §10 ablation: the two combination protocols against their parents.
// Expected shape (Table 1 rows 5-6): Combination 1 keeps PAAI-1's
// detection rate at lower communication overhead but higher storage;
// Combination 2 undercuts everyone's overhead at a detection rate ~1/p
// slower than PAAI-2's.
#include <iostream>

#include "analysis/bounds.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace paai;
using namespace paai::runner;

namespace {

struct Plan {
  protocols::ProtocolKind kind;
  const char* name;
  std::uint64_t packets;
  std::size_t runs;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchSession session("bench_combinations", argc, argv);
  const auto& args = session.args;
  bench::print_header("§10 — combination protocols vs their parents",
                      "§10 / Table 1 (Combination 1 & 2)");

  const Plan plans[] = {
      {protocols::ProtocolKind::kPaai1, "PAAI-1", args.scaled(120000),
       args.runs_or(40)},
      {protocols::ProtocolKind::kCombination1, "Combination 1",
       args.scaled(120000), args.runs_or(40)},
      {protocols::ProtocolKind::kPaai2, "PAAI-2", args.scaled(1000000),
       args.runs_or(12)},
      {protocols::ProtocolKind::kCombination2, "Combination 2",
       args.scaled(3000000), args.runs_or(6)},
  };

  Table table({"protocol", "detect_pkts(curve)", "detect_min@100pps",
               "ctrl_pkts/data", "ctrl_bytes/data", "F1_storage_pkts"});

  for (const Plan& plan : plans) {
    std::fprintf(stderr, "[comb] %s: %zu x %llu...\n", plan.name, plan.runs,
                 static_cast<unsigned long long>(plan.packets));
    const auto mc =
        bench::detection_curve(plan.kind, plan.packets, plan.runs, 12, 2000,
                               args.jobs, session.trace(), &args);
    session.exec(mc.exec);

    // Storage probe (short run).
    MonteCarloConfig smc;
    smc.base = paper_config(plan.kind, 6000, 0);
    smc.base.storage_sample_period = sim::milliseconds(10.0);
    smc.runs = 5;
    smc.seed0 = 100;
    smc.jobs = args.jobs;
    smc.storage_bins = 30;
    smc.storage_horizon_seconds = 60.0;
    const auto st = run_monte_carlo(smc);
    RunningStat f1;
    for (std::size_t i = 3; i < st.storage_grids[1].size(); ++i) {
      f1.add(st.storage_grids[1].stat(i).mean());
    }

    const std::string prefix = std::string(plan.name) + ".";
    if (mc.detection_packets) {
      session.metric(prefix + "detection_packets",
                     static_cast<double>(*mc.detection_packets));
    }
    session.metric(prefix + "ctrl_pkts_per_data",
                   mc.overhead_packets_ratio.mean());
    session.metric(prefix + "ctrl_bytes_per_data",
                   mc.overhead_bytes_ratio.mean());
    session.metric(prefix + "f1_storage_pkts", f1.mean());

    table.row()
        .cell(plan.name)
        .cell(mc.detection_packets
                  ? std::to_string(*mc.detection_packets)
                  : std::string(">") + std::to_string(plan.packets))
        .num(mc.detection_packets
                 ? static_cast<double>(*mc.detection_packets) / 6000.0
                 : -1.0,
             3)
        .num(mc.overhead_packets_ratio.mean(), 4)
        .num(mc.overhead_bytes_ratio.mean(), 4)
        .num(f1.mean(), 2);
  }

  table.print(std::cout, args.csv);
  std::printf("\nshape checks: Comb-1 detection ~= PAAI-1 at lower "
              "comm, higher storage; Comb-2 comm < everyone, detection "
              "slowest (may exceed its budget here — that is the "
              "finding).\n");
  return 0;
}
