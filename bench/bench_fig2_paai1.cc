// Figure 2(b): PAAI-1 false positive/negative vs packets sent.
#include "fig2_common.h"

int main(int argc, char** argv) {
  return paai::bench::run_fig2(argc, argv,
                               paai::protocols::ProtocolKind::kPaai1,
                               "Figure 2(b) — PAAI-1 FP/FN", 120000, 120,
                               1000);
}
